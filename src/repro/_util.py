"""Shared validation and small numeric helpers used across :mod:`repro`.

The library follows a few global conventions (see ``DESIGN.md``):

* permutations are 0-indexed tuples internally,
* all randomness flows through :class:`numpy.random.Generator` objects,
* array-like inputs are normalised to ``numpy.ndarray`` with ``np.intp``
  dtype where they index data items.

This module keeps those conversions in one place so every public entry point
performs identical, predictable validation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

__all__ = [
    "as_int_array",
    "check_permutation_array",
    "check_positive_int",
    "check_nonnegative_int",
    "ensure_rng",
    "pairwise_leq",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    Parameters
    ----------
    value:
        Candidate value.  NumPy integer scalars are accepted.
    name:
        Parameter name used in the error message.

    Raises
    ------
    TypeError
        If ``value`` is not an integral type.
    ValueError
        If ``value`` is not strictly positive.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def as_int_array(values: Iterable[int], name: str = "values") -> np.ndarray:
    """Convert ``values`` to a 1-D ``np.intp`` array without copying when possible.

    Parameters
    ----------
    values:
        Any iterable of integers (list, tuple, generator, ndarray).
    name:
        Parameter name used in error messages.

    Returns
    -------
    numpy.ndarray
        A one-dimensional integer array.
    """
    arr = np.asarray(list(values) if not isinstance(values, (np.ndarray, Sequence)) else values)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        # Accept float arrays that are integer valued (e.g. from np.arange * 1.0).
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.intp)
        else:
            raise TypeError(f"{name} must contain integers, got dtype {arr.dtype}")
    return arr.astype(np.intp, copy=False)


def check_permutation_array(values: Iterable[int], name: str = "permutation") -> np.ndarray:
    """Validate a 0-indexed one-line permutation and return it as an array.

    A valid permutation of size ``m`` contains every integer in ``[0, m)``
    exactly once.

    Raises
    ------
    ValueError
        If the array is not a permutation of ``0..m-1``.
    """
    arr = as_int_array(values, name)
    m = arr.size
    if m == 0:
        return arr
    seen = np.zeros(m, dtype=bool)
    if arr.min() < 0 or arr.max() >= m:
        raise ValueError(f"{name} must contain each of 0..{m - 1} exactly once; " f"values outside range found")
    seen[arr] = True
    if not seen.all():
        raise ValueError(f"{name} must contain each of 0..{m - 1} exactly once")
    return arr


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from ``rng``.

    ``None`` creates a fresh default generator; integers are used as seeds;
    existing generators are passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError("rng must be None, an int seed, or a numpy.random.Generator, " f"got {type(rng).__name__}")


def pairwise_leq(left: Sequence[int], right: Sequence[int]) -> bool:
    """Return ``True`` when ``left[i] <= right[i]`` for every index ``i``."""
    a = np.asarray(left)
    b = np.asarray(right)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b))
