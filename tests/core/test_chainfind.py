"""Unit tests for repro.core.chainfind — Algorithm 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MissRatioLabeling,
    Permutation,
    RandomTiebreakLabeling,
    TransposedLabeling,
    chain_find,
    chain_hit_matrix,
    count_tie_events,
    max_inversions,
    random_permutation,
)
from repro.core.feasibility import DependencyDAG, feasibility_predicate, is_feasible


class TestChainFindBasics:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_reaches_sawtooth_from_identity(self, m):
        result = chain_find(Permutation.identity(m))
        assert result.end.is_reverse()
        assert result.length == max_inversions(m)
        assert result.stopped_reason == "top"
        assert result.is_saturated()

    def test_chain_starts_at_start(self):
        start = Permutation([1, 0, 2, 3])
        result = chain_find(start)
        assert result.start == start
        assert result.chain[0] == start

    def test_start_at_top_yields_trivial_chain(self):
        result = chain_find(Permutation.reverse(5))
        assert result.length == 0
        assert result.stopped_reason == "top"
        assert result.tie_multiplicities == []

    def test_inversion_numbers_consecutive(self):
        result = chain_find(Permutation.identity(5))
        ells = result.inversion_numbers()
        assert ells == list(range(0, max_inversions(5) + 1))

    def test_max_steps_cap(self):
        result = chain_find(Permutation.identity(6), max_steps=4)
        assert result.length == 4
        assert result.stopped_reason == "max_steps"

    def test_labels_recorded_per_step(self):
        result = chain_find(Permutation.identity(4))
        assert len(result.labels) == result.length
        assert len(result.tie_multiplicities) == result.length

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            chain_find(Permutation.identity(3), tie_break="bogus")

    def test_random_tie_break_reproducible(self):
        a = chain_find(Permutation.identity(6), tie_break="random", rng=42)
        b = chain_find(Permutation.identity(6), tie_break="random", rng=42)
        assert a.chain == b.chain

    def test_random_start(self, rng):
        start = random_permutation(7, rng)
        result = chain_find(start)
        assert result.end.is_reverse()
        assert result.length == max_inversions(7) - start.inversions()


class TestTheorem3AlongChains:
    def test_hit_matrix_rows_dominate(self):
        result = chain_find(Permutation.identity(5))
        matrix = chain_hit_matrix(result)
        diffs = np.diff(matrix, axis=0)
        assert np.all(diffs >= 0)
        # each covering step adds exactly one hit below cache size m
        assert np.all(diffs[:, :-1].sum(axis=1) == 1)

    def test_final_row_is_sawtooth_hits(self):
        result = chain_find(Permutation.identity(4))
        matrix = chain_hit_matrix(result)
        assert matrix[-1].tolist() == [1, 2, 3, 4]


class TestTies:
    def test_tie_statistics_consistency(self):
        result = chain_find(Permutation.identity(5))
        assert result.arbitrary_choice_count == sum(1 for k in result.tie_multiplicities if k > 1)
        product = 1
        for k in result.tie_multiplicities:
            product *= k
        assert result.chain_multiplicity == product

    def test_count_tie_events_driver(self):
        stats = count_tie_events(5)
        assert stats["m"] == 5
        assert stats["chain_length"] == max_inversions(5)
        assert stats["arbitrary_choices"] >= 1
        assert stats["chain_multiplicity"] >= 2

    def test_good_labeling_eliminates_ties(self):
        result = chain_find(Permutation.identity(5), TransposedLabeling())
        assert result.arbitrary_choice_count == 0
        assert result.chain_multiplicity == 1
        assert result.end.is_reverse()

    def test_random_tiebreak_labeling_removes_ties(self):
        labeling = RandomTiebreakLabeling(MissRatioLabeling(), rng=0)
        result = chain_find(Permutation.identity(5), labeling)
        assert result.arbitrary_choice_count == 0
        assert result.end.is_reverse()

    def test_ties_grow_with_group_size(self):
        ties = [count_tie_events(m)["arbitrary_choices"] for m in (3, 4, 5, 6)]
        assert all(b >= a for a, b in zip(ties, ties[1:]))


class TestFeasibilityRestrictedChains:
    def test_total_order_blocks_all_moves(self):
        dag = DependencyDAG.total_order(5)
        result = chain_find(Permutation.identity(5), feasibility=feasibility_predicate(dag))
        assert result.length == 0
        assert result.stopped_reason == "no_feasible_cover"

    def test_unconstrained_predicate_reaches_top(self):
        dag = DependencyDAG.unconstrained(5)
        result = chain_find(Permutation.identity(5), feasibility=feasibility_predicate(dag))
        assert result.end.is_reverse()

    def test_chain_stays_feasible(self, rng):
        dag = DependencyDAG.random(6, 0.3, rng)
        result = chain_find(Permutation.identity(6), feasibility=feasibility_predicate(dag))
        for sigma in result.chain:
            assert is_feasible(sigma, dag)

    def test_block_constraints_allow_partial_progress(self):
        dag = DependencyDAG.blocks([2, 2, 2])
        result = chain_find(Permutation.identity(6), feasibility=feasibility_predicate(dag))
        assert 0 < result.length < max_inversions(6)
        assert result.stopped_reason == "no_feasible_cover"
        assert is_feasible(result.end, dag)
