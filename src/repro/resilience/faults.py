"""Deterministic fault injection: seeded chaos for every recovery path.

A :class:`FaultPlan` is a frozen list of :class:`FaultSpec` triggers —
*raise a transient error on attempt n of task j*, *kill the worker running
task j*, *stall task j past its timeout*, *crash the replay after epoch e*
— installed for the duration of a ``with`` block via :func:`install_faults`.
Instrumented sites (the resilient pool's task wrapper, the online replay's
profile extraction and checkpoint hook) call :func:`fire` with their site
name and index; with no plan installed that is a single ``None`` check.

Fork-first pools inherit the installed plan copy-on-write, so a plan
installed in the parent fires inside pooled workers too — which is how the
chaos suite kills a real forked child mid-task, deterministically.

The trace-corruption helpers (:func:`truncate_trace_column`,
:func:`corrupt_trace_column`) damage memmap trace columns on disk the way
real incidents do — bytes cut off the end, bits flipped in place — to drive
the :class:`~repro.resilience.errors.TraceIntegrityError` paths.

Examples
--------
>>> plan = FaultPlan((transient("pool.task", 2, attempts=(1,)),))
>>> with install_faults(plan):
...     fire("pool.task", 0, attempt=1)   # no spec for task 0: no-op
...     try:
...         fire("pool.task", 2, attempt=1)
...     except FaultInjected as error:
...         print(error)
injected fault: transient error at pool.task[2] attempt 1
>>> fire("pool.task", 2, attempt=1)   # nothing installed outside the block
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "corrupt_trace_column",
    "fire",
    "install_faults",
    "kill",
    "stall",
    "transient",
    "truncate_trace_column",
]


class FaultInjected(RuntimeError):
    """The transient exception raised by an ``error`` fault (retryable by design)."""


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: what goes wrong, where, and on which attempts.

    ``site`` names the instrumented location (``"pool.task"``,
    ``"online.profile"``, ``"online.checkpoint"``), ``index`` the entity at
    that site (task index, tenant id, epoch index), and ``attempts`` the
    1-based attempt numbers the fault fires on — sites without retries
    always call with ``attempt=1``.  ``kind`` is ``"error"`` (raise
    :class:`FaultInjected`), ``"kill"`` (``SIGKILL`` the current process —
    inside a forked worker this is the OOM-killer scenario), or ``"stall"``
    (sleep ``seconds``, driving a task past its timeout).
    """

    site: str
    index: int
    kind: str = "error"
    attempts: tuple[int, ...] = (1,)
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in ("error", "kill", "stall"):
            raise ValueError(f"kind must be error|kill|stall, got {self.kind!r}")
        if not self.attempts:
            raise ValueError("attempts cannot be empty")

    def matches(self, site: str, index: int, attempt: int) -> bool:
        """Whether this spec fires at ``site``/``index`` on ``attempt``."""
        return self.site == site and int(self.index) == int(index) and int(attempt) in self.attempts


def transient(site: str, index: int, *, attempts: Sequence[int] = (1,)) -> FaultSpec:
    """A retryable :class:`FaultInjected` on the given 1-based ``attempts``."""
    return FaultSpec(site=site, index=int(index), kind="error", attempts=tuple(int(a) for a in attempts))


def kill(site: str, index: int, *, attempts: Sequence[int] = (1,)) -> FaultSpec:
    """``SIGKILL`` the process executing ``site``/``index`` (a dead/lost worker)."""
    return FaultSpec(site=site, index=int(index), kind="kill", attempts=tuple(int(a) for a in attempts))


def stall(site: str, index: int, seconds: float, *, attempts: Sequence[int] = (1,)) -> FaultSpec:
    """Sleep ``seconds`` at ``site``/``index`` (drives a task past its timeout)."""
    return FaultSpec(
        site=site, index=int(index), kind="stall", attempts=tuple(int(a) for a in attempts), seconds=float(seconds)
    )


@dataclass(frozen=True)
class FaultPlan:
    """A frozen set of fault triggers, installable via :func:`install_faults`."""

    specs: tuple[FaultSpec, ...] = ()

    def fire(self, site: str, index: int, attempt: int = 1) -> None:
        """Trigger every matching spec (raise / kill / stall) for this event."""
        for spec in self.specs:
            if not spec.matches(site, index, attempt):
                continue
            if spec.kind == "stall":
                time.sleep(spec.seconds)
            elif spec.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            else:
                raise FaultInjected(f"injected fault: transient error at {site}[{index}] attempt {attempt}")

    @classmethod
    def seeded(
        cls,
        seed: int,
        site: str,
        population: int,
        *,
        count: int = 1,
        kind: str = "error",
        attempts: Sequence[int] = (1,),
        seconds: float = 0.0,
    ) -> "FaultPlan":
        """A deterministic plan of ``count`` faults over ``population`` indices.

        The victim indices are drawn (without replacement) from
        ``random.Random(seed)``, so the same seed always injures the same
        tasks — chaos runs are exactly reproducible.
        """
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        count = min(int(count), int(population))
        victims = random.Random(int(seed)).sample(range(int(population)), count)
        return cls(
            tuple(
                FaultSpec(
                    site=site,
                    index=v,
                    kind=kind,
                    attempts=tuple(int(a) for a in attempts),
                    seconds=float(seconds),
                )
                for v in sorted(victims)
            )
        )


#: The currently-installed plan; forked pool children inherit it copy-on-write.
_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan currently installed by :func:`install_faults`, if any."""
    return _ACTIVE


@contextmanager
def install_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block (test/chaos hook).

    Instrumented sites consult the installed plan through :func:`fire`;
    nesting replaces the plan and restores the outer one on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fire(site: str, index: int, attempt: int = 1) -> None:
    """Trigger the installed plan at one instrumented site (no-op without one)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site, index, attempt)


# --------------------------------------------------------------------------- #
# On-disk trace damage (drives the TraceIntegrityError paths)
# --------------------------------------------------------------------------- #
def _column_file(path, column: str):
    from ..trace.streaming import _column_paths

    items_path, tenants_path = _column_paths(path)
    if column == "items":
        return items_path
    if column == "tenants":
        return tenants_path
    raise ValueError(f"column must be 'items' or 'tenants', got {column!r}")


def truncate_trace_column(path, column: str, *, drop: int = 1):
    """Cut ``drop`` elements' worth of bytes off the end of one column file.

    Mimics a crash mid-write or a copy that stopped short: the ``.npy``
    header still promises the full length, the data region no longer
    delivers it.  Returns the damaged file's path.
    """
    import numpy as np

    file = _column_file(path, column)
    if int(drop) < 1:
        raise ValueError(f"drop must be >= 1, got {drop}")
    size = os.path.getsize(file)
    os.truncate(file, max(size - int(drop) * np.dtype(np.int64).itemsize, 0))
    return file


def corrupt_trace_column(path, column: str, *, seed: int = 0, nbytes: int = 8):
    """Flip ``nbytes`` deterministic bytes inside one column's data region.

    The file keeps its size and header, so only a checksum can tell — which
    is exactly what the sidecar manifest's verification is for.  Returns the
    damaged file's path.
    """
    file = _column_file(path, column)
    size = os.path.getsize(file)
    header = 128  # .npy v1 header span; the data region starts after it
    if size <= header:
        raise ValueError(f"{file} is too small to corrupt past its header")
    rng = random.Random(int(seed))
    with open(file, "r+b") as handle:
        for _ in range(int(nbytes)):
            offset = rng.randrange(header, size)
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return file
