"""Decomposing general traces into re-traversals (Section VI-D).

The theory of symmetric locality covers periodic traces ``A σ(A)`` in which
every item is reused exactly once.  Real traces revisit their data many times;
the paper lists extending the theory to such traces as future work.  This
module provides the bridge used by the extended experiments:

``phase_decomposition``
    Split a trace into consecutive *phases*, each a complete traversal of the
    trace's working set (every distinct item accessed exactly once per phase).
    Traces produced by repeated full sweeps — STREAM repetitions, training
    epochs over a parameter set, stencil sweeps at item granularity — satisfy
    this exactly; other traces are reported as non-decomposable.

``retraversal_permutations``
    For a decomposable trace, the permutation relating each phase to the
    previous one (the ``σ`` of each re-traversal), after relabelling items by
    their order in the earlier phase.

``predicted_hits`` / ``prediction_error``
    The symmetric-locality *prediction* of the trace's hit counts — the sum of
    the closed-form hit vectors of the per-phase permutations — compared with
    the exact measurement from stack distances.  For phase-structured traces
    the two agree exactly (each item is reused once per phase), which is the
    justification for applying the per-phase theory to epoch-style workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hits import cache_hit_vector
from ..core.permutation import Permutation
from .trace import Trace

__all__ = [
    "PhaseDecomposition",
    "phase_decomposition",
    "retraversal_permutations",
    "predicted_hits",
    "prediction_error",
]


@dataclass(frozen=True)
class PhaseDecomposition:
    """Result of splitting a trace into complete traversals of its working set.

    Attributes
    ----------
    phases:
        One integer array per phase; each is a permutation of the distinct
        items of the trace, in access order.
    footprint:
        Number of distinct items.
    decomposable:
        ``True`` when the whole trace splits exactly into such phases.
    remainder:
        Accesses left over after the last complete phase (empty when
        ``decomposable``).
    """

    phases: tuple[np.ndarray, ...]
    footprint: int
    decomposable: bool
    remainder: np.ndarray

    @property
    def num_phases(self) -> int:
        """Number of detected traversal phases."""
        return len(self.phases)


def phase_decomposition(trace: Trace | np.ndarray) -> PhaseDecomposition:
    """Split ``trace`` into consecutive complete traversals of its working set.

    A phase ends exactly when every distinct item of the *whole trace* has been
    accessed once since the phase began; the next access starts a new phase.
    If any phase accesses an item twice before completing the sweep, or the
    footprint of a phase differs from the trace's footprint, the trace is
    reported as non-decomposable (with the phases found so far and the
    remainder).
    """
    arr = trace.accesses if isinstance(trace, Trace) else np.asarray(trace)
    if arr.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    n = arr.size
    if n == 0:
        return PhaseDecomposition(phases=(), footprint=0, decomposable=True, remainder=arr)
    footprint = int(np.unique(arr).size)

    phases: list[np.ndarray] = []
    position = 0
    decomposable = True
    while position < n:
        end = position + footprint
        if end > n:
            decomposable = False
            break
        window = arr[position:end]
        if np.unique(window).size != footprint:
            decomposable = False
            break
        phases.append(window.copy())
        position = end
    remainder = arr[position:]
    if remainder.size:
        decomposable = False
    return PhaseDecomposition(
        phases=tuple(phases),
        footprint=footprint,
        decomposable=decomposable,
        remainder=remainder.copy(),
    )


def retraversal_permutations(decomposition: PhaseDecomposition) -> list[Permutation]:
    """The re-traversal permutation of each phase relative to the previous phase.

    Phase ``k`` is viewed as ``σ_k`` applied to phase ``k-1``: after
    relabelling the items by their position in phase ``k-1`` (so the earlier
    phase reads ``0, 1, ..., m-1``), the later phase's access order *is* the
    one-line notation of ``σ_k``.  Identical consecutive phases give the
    identity (cyclic re-traversal); reversed phases give the sawtooth.
    """
    sigmas: list[Permutation] = []
    for previous, current in zip(decomposition.phases, decomposition.phases[1:]):
        position_in_previous = {int(item): index for index, item in enumerate(previous)}
        sigmas.append(Permutation([position_in_previous[int(item)] for item in current]))
    return sigmas


def predicted_hits(decomposition: PhaseDecomposition, cache_size: int) -> int:
    """Hits predicted by the per-phase symmetric-locality model at one cache size.

    Each phase after the first contributes the closed-form hit count of its
    re-traversal permutation; the first phase is cold.  For decomposable
    traces this equals the exact LRU hit count because every item is reused
    exactly once per phase.
    """
    if cache_size < 1:
        raise ValueError(f"cache_size must be >= 1, got {cache_size}")
    total = 0
    for sigma in retraversal_permutations(decomposition):
        vec = cache_hit_vector(sigma)
        c = min(cache_size, sigma.size)
        total += int(vec[c - 1])
    return total


def prediction_error(trace: Trace | np.ndarray, cache_size: int) -> dict[str, float]:
    """Compare the per-phase model prediction with the exact LRU measurement.

    Returns the predicted and measured hit counts and their difference.  For
    decomposable traces the difference is zero; for general traces it
    quantifies how far the periodic model is from reality (the Section VI-D
    limitation, made measurable).
    """
    from ..cache.stack_distance import hit_counts

    arr = trace.accesses if isinstance(trace, Trace) else np.asarray(trace)
    decomposition = phase_decomposition(arr)
    predicted = predicted_hits(decomposition, cache_size) if decomposition.num_phases > 1 else 0
    measured_vec = hit_counts(arr, max_cache_size=cache_size)
    measured = int(measured_vec[cache_size - 1]) if measured_vec.size else 0
    return {
        "decomposable": decomposition.decomposable,
        "phases": decomposition.num_phases,
        "predicted_hits": predicted,
        "measured_hits": measured,
        "absolute_error": abs(measured - predicted),
    }
