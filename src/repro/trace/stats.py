"""Descriptive statistics of traces.

These summarise a trace before the heavier locality analyses are run:
footprint, access frequencies, reuse-interval and stack-distance summaries,
and a locality *score* comparing the trace's mean stack distance against the
cyclic and sawtooth extremes of the same footprint (the normalised position of
the trace within the symmetric-locality spectrum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.stack_distance import COLD, reuse_intervals, stack_distances
from .trace import Trace

__all__ = ["TraceStats", "summarize", "locality_score"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    name: str
    accesses: int
    footprint: int
    cold_accesses: int
    mean_reuse_interval: float
    mean_stack_distance: float
    median_stack_distance: float
    max_stack_distance: int

    def reuse_fraction(self) -> float:
        """Fraction of accesses that reuse previously touched data."""
        return 1.0 - self.cold_accesses / self.accesses if self.accesses else 0.0


def summarize(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    arr = trace.accesses
    if arr.size == 0:
        raise ValueError("cannot summarise an empty trace")
    intervals = reuse_intervals(arr)
    distances = stack_distances(arr)
    finite_intervals = intervals[intervals != COLD]
    finite_distances = distances[distances != COLD]
    cold = int(arr.size - finite_distances.size)
    return TraceStats(
        name=trace.name,
        accesses=int(arr.size),
        footprint=trace.footprint,
        cold_accesses=cold,
        mean_reuse_interval=float(finite_intervals.mean()) if finite_intervals.size else float("nan"),
        mean_stack_distance=float(finite_distances.mean()) if finite_distances.size else float("nan"),
        median_stack_distance=float(np.median(finite_distances)) if finite_distances.size else float("nan"),
        max_stack_distance=int(finite_distances.max()) if finite_distances.size else 0,
    )


def locality_score(trace: Trace) -> float:
    """Position of the trace's mean stack distance between sawtooth (1) and cyclic (0).

    For the trace's footprint ``m``, the best possible mean stack distance of
    a full re-traversal is ``(m + 1) / 2`` (sawtooth) and the worst is ``m``
    (cyclic).  The score linearly interpolates between those anchors and is
    clipped to ``[0, 1]``; traces with no reuse at all return 0.
    """
    stats = summarize(trace)
    m = stats.footprint
    if m <= 1 or np.isnan(stats.mean_stack_distance):
        return 0.0
    best = (m + 1) / 2.0
    worst = float(m)
    if worst == best:
        return 1.0
    raw = (worst - stats.mean_stack_distance) / (worst - best)
    return float(np.clip(raw, 0.0, 1.0))
