"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import os
import time

import pytest

import numpy as np

from repro.resilience.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    corrupt_trace_column,
    fire,
    install_faults,
    kill,
    stall,
    transient,
    truncate_trace_column,
)
from repro.trace.streaming import create_memmap_trace


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="pool.task", index=0, kind="explode")

    def test_rejects_empty_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(site="pool.task", index=0, attempts=())

    def test_matches_site_index_and_attempt(self):
        spec = FaultSpec(site="pool.task", index=3, attempts=(1, 2))
        assert spec.matches("pool.task", 3, 1)
        assert spec.matches("pool.task", 3, 2)
        assert not spec.matches("pool.task", 3, 3)
        assert not spec.matches("pool.task", 4, 1)
        assert not spec.matches("online.profile", 3, 1)

    def test_builders(self):
        assert transient("s", 1).kind == "error"
        assert kill("s", 1).kind == "kill"
        stalled = stall("s", 1, 0.25)
        assert stalled.kind == "stall"
        assert stalled.seconds == 0.25


class TestFaultPlan:
    def test_error_fault_raises_fault_injected(self):
        plan = FaultPlan((transient("site", 2),))
        plan.fire("site", 0)  # no spec: no-op
        with pytest.raises(FaultInjected, match=r"site\[2\] attempt 1"):
            plan.fire("site", 2)

    def test_stall_fault_sleeps(self):
        plan = FaultPlan((stall("site", 0, 0.05),))
        start = time.perf_counter()
        plan.fire("site", 0)
        assert time.perf_counter() - start >= 0.05

    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded(11, "pool.task", population=20, count=3)
        b = FaultPlan.seeded(11, "pool.task", population=20, count=3)
        assert a == b
        assert len(a.specs) == 3
        assert all(0 <= spec.index < 20 for spec in a.specs)
        assert FaultPlan.seeded(12, "pool.task", population=20, count=3) != a

    def test_seeded_count_clamped_to_population(self):
        plan = FaultPlan.seeded(0, "s", population=2, count=10)
        assert len(plan.specs) == 2

    def test_seeded_rejects_empty_population(self):
        with pytest.raises(ValueError, match="population"):
            FaultPlan.seeded(0, "s", population=0)


class TestInstallFaults:
    def test_fire_is_noop_without_plan(self):
        assert active_plan() is None
        fire("anywhere", 0)  # must not raise

    def test_install_and_restore(self):
        plan = FaultPlan((transient("s", 0),))
        with install_faults(plan):
            assert active_plan() is plan
            with pytest.raises(FaultInjected):
                fire("s", 0)
        assert active_plan() is None
        fire("s", 0)  # uninstalled again

    def test_nesting_restores_outer_plan(self):
        outer = FaultPlan((transient("s", 0),))
        inner = FaultPlan((transient("s", 1),))
        with install_faults(outer):
            with install_faults(inner):
                fire("s", 0)  # outer plan replaced: no-op
                with pytest.raises(FaultInjected):
                    fire("s", 1)
            with pytest.raises(FaultInjected):
                fire("s", 0)


class TestTraceDamage:
    def _write_trace(self, tmp_path):
        tmp_path.mkdir(parents=True, exist_ok=True)
        stem = tmp_path / "trace"
        trace = create_memmap_trace(stem, 64)
        trace.fill(0, np.arange(64), np.zeros(64, dtype=np.int64))
        trace.flush()
        return stem

    def test_truncate_shortens_the_column_file(self, tmp_path):
        stem = self._write_trace(tmp_path)
        file = stem.with_name("trace.items.npy")
        before = os.path.getsize(file)
        damaged = truncate_trace_column(stem, "items", drop=4)
        assert damaged == file
        assert os.path.getsize(file) == before - 4 * 8

    def test_corrupt_keeps_size_but_changes_bytes(self, tmp_path):
        stem = self._write_trace(tmp_path)
        file = stem.with_name("trace.tenants.npy")
        before = file.read_bytes()
        corrupt_trace_column(stem, "tenants", seed=3)
        after = file.read_bytes()
        assert len(after) == len(before)
        assert after != before
        # header untouched: only the data region is damaged
        assert after[:128] == before[:128]

    def test_corrupt_is_deterministic(self, tmp_path):
        stem_a = self._write_trace(tmp_path / "a")
        stem_b = self._write_trace(tmp_path / "b")
        corrupt_trace_column(stem_a, "items", seed=9)
        corrupt_trace_column(stem_b, "items", seed=9)
        a = stem_a.with_name("trace.items.npy").read_bytes()
        b = stem_b.with_name("trace.items.npy").read_bytes()
        assert a == b

    def test_rejects_unknown_column(self, tmp_path):
        stem = self._write_trace(tmp_path)
        with pytest.raises(ValueError, match="column"):
            truncate_trace_column(stem, "bogus")
