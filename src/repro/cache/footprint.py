"""Footprint and timescale locality metrics.

Section VI (Problem 3) reports that the authors tried to build edge labelings
out of other locality metrics — *timescale locality* (the relational theory of
locality, Yuan et al., the paper's reference [1]) and *data movement
complexity* (Smith et al., reference [10]).  To make those attempts
reproducible this module implements the trace-level metrics they are built on:

``footprint``
    The average working-set size over all time windows of a given length
    (Xiang's average footprint), computed for every window length in one
    ``O(N log N + N)`` pass from reuse intervals — the standard
    all-window-lengths formula.
``footprint_curve`` / ``miss_ratio_from_footprint``
    The full footprint curve and Xiang's conversion from footprint to miss
    ratio (``mr(c) ≈ fp(w+1) - fp(w)`` evaluated where ``fp(w) = c``), which is
    the "timescale" view of locality.
``data_movement_distance``
    The data-movement cost of a trace: each access is charged the square root
    of its stack distance (the paper's reference [10] charges movement over a
    √c × √c mesh), with cold accesses charged √m.  Lower is better.

The corresponding ChainFind edge labelings live in
:mod:`repro.core.timescale_labelings`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .stack_distance import COLD, reuse_intervals, stack_distances

__all__ = [
    "footprint_curve",
    "footprint",
    "miss_ratio_from_footprint",
    "data_movement_distance",
]


def footprint_curve(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Average footprint ``fp(w)`` for every window length ``w = 0 .. N``.

    ``fp(w)`` is the mean number of distinct items accessed in a length-``w``
    window, averaged over all ``N - w + 1`` windows.  Computed with Xiang's
    closed-form decomposition: a window of length ``w`` misses an item only if
    the item's reuse interval covers the window or the item's first/last
    access lies outside it, so the whole curve follows from the histogram of
    reuse intervals plus the first/last access positions in ``O(N)`` after the
    interval computation.

    Returns an array ``fp`` of length ``N + 1`` with ``fp[0] = 0`` and
    ``fp[N]`` equal to the number of distinct items.
    """
    arr = np.asarray(trace)
    n = arr.size
    if n == 0:
        return np.zeros(1, dtype=np.float64)

    # reuse-interval histogram (intervals measured as gaps: accesses strictly between)
    intervals = reuse_intervals(arr)
    finite = intervals[intervals != COLD] + 1  # convert to "distance in accesses" between the pair

    first_seen: dict[int, int] = {}
    last_seen: dict[int, int] = {}
    for pos in range(n):
        item = int(arr[pos])
        if item not in first_seen:
            first_seen[item] = pos
        last_seen[item] = pos
    distinct = len(first_seen)

    # Xiang's formula: the total "absence" of items from windows of length w is
    #   sum over reuse intervals r > w of (r - w)
    # + sum over items of (first access position f): windows ending before f
    #   -> contributes (f - w)+ ... symmetric for the tail after the last access.
    # We accumulate, for each window length w, the number of (item, window)
    # pairs where the item is absent, then fp(w) = distinct - absence(w) / (n - w + 1).
    max_w = n

    def window_deficit(gap_lengths: np.ndarray) -> np.ndarray:
        """For each window length ``w``, the number of (gap, window) pairs where a
        length-``w`` window fits entirely inside a gap: sum of ``max(g - w + 1, 0)``.

        Computed from the gap-length histogram with suffix sums, ``O(n)``.
        """
        result = np.zeros(max_w + 1, dtype=np.float64)
        gaps = gap_lengths[gap_lengths > 0]
        if gaps.size == 0:
            return result
        hist = np.bincount(gaps, minlength=max_w + 2).astype(np.float64)
        count_ge = np.cumsum(hist[::-1])[::-1]  # count_ge[w] = #gaps with g >= w
        sum_ge = np.cumsum((hist * np.arange(hist.size))[::-1])[::-1]
        w = np.arange(max_w + 1, dtype=np.float64)
        # sum over gaps g >= w of (g - w + 1)
        result = sum_ge[: max_w + 1] - w * count_ge[: max_w + 1] + count_ge[: max_w + 1]
        return result

    # gaps between consecutive accesses of the same item (positions strictly between)
    between_gaps = (finite - 1).astype(np.int64)
    # gap before the first access and after the last access of each item
    heads = np.asarray([first_seen[item] for item in first_seen], dtype=np.int64)
    tails = np.asarray([n - 1 - last_seen[item] for item in last_seen], dtype=np.int64)

    absence = window_deficit(between_gaps) + window_deficit(heads) + window_deficit(tails)

    fp = np.empty(max_w + 1, dtype=np.float64)
    fp[0] = 0.0
    w = np.arange(1, max_w + 1)
    fp[1:] = distinct - absence[1:] / (n - w + 1)
    fp = np.clip(fp, 0.0, distinct)
    # the footprint is non-decreasing in the window length by definition;
    # enforce it to absorb floating-point round-off
    np.maximum.accumulate(fp, out=fp)
    return fp


def footprint(trace: Sequence[int] | np.ndarray, window: int) -> float:
    """Average footprint of windows of length ``window`` (see :func:`footprint_curve`)."""
    curve = footprint_curve(trace)
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    index = min(window, curve.size - 1)
    return float(curve[index])


def miss_ratio_from_footprint(trace: Sequence[int] | np.ndarray, cache_size: int) -> float:
    """Estimate the LRU miss ratio at ``cache_size`` from the footprint curve.

    Xiang's conversion: find the window length ``w`` whose average footprint
    fills the cache (``fp(w) = c``); the miss ratio is approximated by the
    footprint growth rate at that window, ``fp(w+1) - fp(w)``.  This is the
    "timescale" route to the miss ratio used by the relational theory of
    locality; the tests compare it against the exact stack-distance MRC.
    """
    if cache_size < 1:
        raise ValueError(f"cache_size must be >= 1, got {cache_size}")
    curve = footprint_curve(trace)
    if curve.size <= 1:
        return 0.0
    if cache_size >= curve[-1]:
        return 0.0
    w = int(np.searchsorted(curve, cache_size))
    if w >= curve.size - 1:
        return 0.0
    return float(max(curve[w + 1] - curve[w], 0.0))


def data_movement_distance(trace: Sequence[int] | np.ndarray) -> float:
    """Total data-movement distance of a trace (√-of-stack-distance cost model).

    Following the data-movement-complexity view (the paper's reference [10]),
    an access whose reuse occupies ``d`` distinct items is charged ``√d`` —
    the distance data travels on a √d × √d mesh of that capacity; cold
    accesses are charged ``√M`` for the full footprint ``M``.  Lower totals
    mean less data movement.  For re-traversals this induces the same ranking
    as the inversion number (both are monotone in the stack-distance
    multiset), which is why the paper considered it as a labeling ingredient.
    """
    arr = np.asarray(trace)
    if arr.size == 0:
        return 0.0
    distances = stack_distances(arr)
    footprint_size = int(np.unique(arr).size)
    finite = distances[distances != COLD].astype(np.float64)
    cold = distances.size - finite.size
    return float(np.sqrt(finite).sum() + cold * np.sqrt(footprint_size))
