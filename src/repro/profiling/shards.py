"""SHARDS-style spatially-hashed sampling for approximate miss-ratio curves.

Exact MRC construction (:func:`repro.cache.mrc.mrc_from_trace`) processes every
reference; SHARDS (*Spatially Hashed Approximate Reuse Distance Sampling*,
Waldspurger et al., FAST'15) instead samples the references of a pseudo-random
subset of *items*: an item is in the sample iff ``hash(item) mod P < T``, so
every reference to a sampled item is kept and the reuse structure of each
sampled item is preserved intact.  Stack distances measured on the sampled
sub-trace count only distinct *sampled* items, so they are rescaled by the
inverse sampling rate ``1/R`` to estimate true distances, and the resulting
histogram is renormalised to the expected sample size (the ``SHARDS-adj``
correction) to remove the bias introduced when popular items fall in or out
of the sample.

Two sampling policies are provided:

* **fixed-rate** — a constant rate ``R = T/P``; cost scales with ``R``.
* **fixed-size** — :func:`adaptive_rate` chooses the largest threshold that
  keeps at most ``smax`` distinct items in the sample, bounding memory and
  work regardless of the trace footprint (the rate-adaptation half of the
  SHARDS design, realised here as a threshold-selection pass).

Because a single hash function can place a very hot item just inside or just
outside the sample, :func:`shards_mrc` can pool the scaled histograms of
several independent hash seeds (``n_seeds``); pooling ``k`` seeds costs ``k``
times the single-seed work but reduces the head-item variance the same way a
``k``-fold larger rate would, while keeping the per-seed data structures
small.

Accuracy/cost dial: on a ``10^6``-reference Zipfian trace, ``rate=0.01`` with
the default two pooled seeds is roughly two orders of magnitude cheaper than
the exact curve and keeps the mean absolute MRC error around ``0.01``
(asserted in ``tests/profiling/test_shards.py``); ``rate=0.1`` roughly halves
that error for ten times the work.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from ..cache.mrc import MissRatioCurve
from ..cache.stack_distance import stack_distance_histogram

__all__ = [
    "HASH_SPACE",
    "spatial_hash",
    "rate_threshold",
    "sample_trace",
    "adaptive_rate",
    "scaled_distance_histogram",
    "histogram_to_mrc",
    "shards_mrc",
]

#: Size of the hash space the sampling threshold is expressed in (``P`` in the
#: SHARDS papers).  ``rate = threshold / HASH_SPACE``.
HASH_SPACE: int = 1 << 24

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser — a cheap, well-mixed 64-bit hash (vectorised)."""
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def spatial_hash(items: Sequence[int] | np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash item labels into ``[0, HASH_SPACE)`` deterministically.

    The same item always hashes to the same value for a given ``seed``, which
    is what makes the sampling *spatial*: either every reference to an item is
    in the sub-trace or none is.
    """
    arr = np.asarray(items).astype(np.uint64, copy=False)
    tweak = np.uint64((0xABCD0123 + int(seed) * _GOLDEN) & _MASK64)
    hashed = _splitmix64((arr << np.uint64(20)) ^ tweak)
    return hashed & np.uint64(HASH_SPACE - 1)


@lru_cache(maxsize=256)
def rate_threshold(rate: float) -> int:
    """Quantise a sampling rate to its integer hash threshold ``T`` (validated).

    ``rate = T / HASH_SPACE``; every SHARDS consumer — the whole-trace
    profiler here and the windowed sketches in :mod:`repro.online.windowed` —
    must use this one quantisation so the same nominal rate always selects
    the same item sub-population.  Memoised per rate: the online engine asks
    for the same handful of thresholds on every epoch of every run.
    """
    if not 0.0 < float(rate) <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    return max(1, int(round(float(rate) * HASH_SPACE)))


def sample_trace(trace: Sequence[int] | np.ndarray, rate: float, *, seed: int = 0) -> tuple[np.ndarray, float]:
    """The spatially-sampled sub-trace and the effective sampling rate.

    ``rate`` is quantised to the ``HASH_SPACE`` grid; the returned effective
    rate is the one that must be used for distance rescaling.
    """
    arr = np.asarray(trace)
    threshold = rate_threshold(rate)
    mask = spatial_hash(arr, seed) < np.uint64(threshold)
    return arr[mask], threshold / HASH_SPACE


def adaptive_rate(
    trace: Sequence[int] | np.ndarray,
    smax: int,
    *,
    seed: int = 0,
    assume_distinct: bool = False,
) -> float:
    """The largest sampling rate that keeps at most ``smax`` distinct items.

    This is the fixed-size flavour of SHARDS: instead of fixing the rate, fix
    the sample's item budget and let the threshold adapt to the footprint.
    The threshold is placed just above the ``smax``-th smallest distinct-item
    hash, so sampling with the returned rate retains exactly the ``smax``
    lowest-hashing items (fewer if the footprint is smaller).  Callers that
    already hold the deduplicated item set pass ``assume_distinct=True`` to
    skip the ``np.unique`` pass.
    """
    if smax < 1:
        raise ValueError(f"smax must be >= 1, got {smax}")
    items = np.asarray(trace)
    distinct = items if assume_distinct else np.unique(items)
    hashes = np.sort(spatial_hash(distinct, seed))
    if hashes.size <= smax:
        return 1.0
    threshold = int(hashes[smax - 1]) + 1
    return threshold / HASH_SPACE


def scaled_distance_histogram(sub_trace: np.ndarray, effective_rate: float) -> tuple[np.ndarray, int, int]:
    """Stack-distance histogram of a sub-trace, rescaled to full-trace cache sizes.

    Returns ``(hist, cold, sampled)`` where ``hist[c - 1]`` estimates the
    number of full-trace references that hit at cache size ``c`` but miss at
    ``c - 1``; sampled distances ``d`` count distinct *sampled* items and are
    mapped to ``ceil(d / R)``.
    """
    hist, cold = stack_distance_histogram(sub_trace)
    if hist.size == 0:
        return np.zeros(1, dtype=np.float64), cold, int(sub_trace.size)
    distances = np.arange(1, hist.size + 1, dtype=np.float64)
    scaled = np.ceil(distances / effective_rate).astype(np.int64)
    full = np.zeros(int(scaled.max()), dtype=np.float64)
    np.add.at(full, scaled - 1, hist.astype(np.float64))
    return full, cold, int(sub_trace.size)


def histogram_to_mrc(
    histogram: np.ndarray,
    denominator: float,
    accesses: int,
    *,
    max_cache_size: int | None = None,
) -> MissRatioCurve:
    """Normalise a corrected distance histogram into a monotone miss-ratio curve.

    The shared tail of every SHARDS-style estimator — :func:`shards_mrc` here
    and the windowed sketches in :mod:`repro.online.windowed` — so the
    clamping/monotonisation convention cannot drift between them.
    ``denominator`` is the reference mass the cumulative hit counts are
    normalised by (expected sample size under the SHARDS-adj correction).
    """
    ratios = 1.0 - np.cumsum(histogram) / denominator
    ratios = np.minimum.accumulate(np.clip(ratios, 0.0, 1.0))
    # ndarray.tolist() builds plain floats in one C pass — the per-element
    # generator version showed up in online-replay profiles, where this runs
    # for every tenant on every epoch.
    curve = MissRatioCurve(ratios=tuple(ratios.tolist()), accesses=int(accesses))
    if max_cache_size is not None:
        from .accuracy import curve_values

        curve = MissRatioCurve(
            ratios=tuple(curve_values(curve, max_cache_size).tolist()),
            accesses=int(accesses),
        )
    return curve


def shards_mrc(
    trace: Sequence[int] | np.ndarray,
    rate: float = 0.01,
    *,
    smax: int | None = None,
    seed: int = 0,
    n_seeds: int = 2,
    adjust: bool = True,
    max_cache_size: int | None = None,
) -> MissRatioCurve:
    """Approximate LRU miss-ratio curve by SHARDS sampling.

    Parameters
    ----------
    trace:
        The full reference trace (integer item labels).
    rate:
        Target sampling rate ``R``; ignored when ``smax`` is given.
    smax:
        Optional fixed-size budget: adapt the rate (per seed) so at most
        ``smax`` distinct items are sampled.
    seed, n_seeds:
        ``n_seeds`` independent hash functions (seeds ``seed .. seed+n_seeds-1``)
        are pooled; more seeds cost proportionally more but cut the variance
        contributed by hot items near the sampling threshold.
    adjust:
        Apply the ``SHARDS-adj`` correction: renormalise to the *expected*
        sample size and charge the count mismatch to the smallest cache size.
    max_cache_size:
        Crop or extend (with the final value) the returned curve to this
        length; by default the curve extends to the largest rescaled distance.
    """
    arr = np.asarray(trace)
    if arr.size == 0:
        raise ValueError("cannot build a miss-ratio curve for an empty trace")
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")

    distinct = np.unique(arr) if smax is not None else None
    histograms: list[np.ndarray] = []
    sampled_total = 0
    expected_total = 0.0
    for offset in range(n_seeds):
        sub_seed = seed + offset
        sub_rate = adaptive_rate(distinct, smax, seed=sub_seed, assume_distinct=True) if smax is not None else rate
        sub, effective = sample_trace(arr, sub_rate, seed=sub_seed)
        if sub.size == 0:
            continue
        hist, _cold, sampled = scaled_distance_histogram(sub, effective)
        histograms.append(hist)
        sampled_total += sampled
        expected_total += arr.size * effective
    if not histograms:
        raise ValueError("sampling produced an empty sub-trace for every seed; increase rate or smax")

    length = max(h.size for h in histograms)
    pooled = np.zeros(length, dtype=np.float64)
    for h in histograms:
        pooled[: h.size] += h
    if adjust:
        pooled[0] += expected_total - sampled_total
        denominator = expected_total
    else:
        denominator = float(sampled_total)
    return histogram_to_mrc(pooled, denominator, int(arr.size), max_cache_size=max_cache_size)
