"""Capacity allocators over per-tenant discretized miss curves.

Three allocation strategies divide a shared budget of cache units among
tenants, plus the naive baseline they are measured against:

:func:`greedy_allocate`
    Marginal-miss-gain greedy: repeatedly hand the next unit to the tenant
    whose miss count drops the most.  Optimal when every curve is convex
    (equal to the DP, asserted by the property tests); blind to cliffs —
    a capacity step that only pays off ``k`` units ahead contributes zero
    one-unit marginal gain, so greedy never climbs it.
:func:`dp_allocate`
    Exact dynamic program over the discretized curves: minimises total
    misses over *all* integral splits of the budget.  Handles arbitrary
    non-convex curves at ``O(tenants × budget × units-per-tenant)`` cost
    (vectorised over the budget axis).
:func:`hull_allocate`
    Talus-style: allocate steepest-hull-segment-first over the lower convex
    hulls of the curves (:func:`~repro.alloc.curves.lower_convex_hull`).
    Hull segments are taken whole — landing mid-segment of a non-convex
    region would realise the raw curve, not the hull — and any leftover
    budget is spent by raw marginal-gain greedy.  Near-optimal like the DP
    on cliff curves at near-greedy cost.
:func:`proportional_split`
    The no-curve baseline: split the budget in proportion to tenant
    footprints (what an operator without MRCs would configure).

All allocators return an integer array of per-tenant unit allocations with
``sum(alloc) <= budget_units``; ties break deterministically toward the
lower tenant index, so results are reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from .curves import DiscretizedMRC, lower_convex_hull

__all__ = [
    "greedy_allocate",
    "dp_allocate",
    "hull_allocate",
    "proportional_split",
    "total_misses",
]


def total_misses(curves: Sequence[DiscretizedMRC], allocation: Sequence[int] | np.ndarray) -> float:
    """Total expected misses of an allocation under the tenants' (raw) curves.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.alloc.curves import DiscretizedMRC
    >>> curve = DiscretizedMRC(misses=np.array([10.0, 4.0, 2.0]), unit=1, accesses=10)
    >>> total_misses([curve, curve], [1, 2])
    6.0
    """
    alloc = np.asarray(allocation, dtype=np.int64)
    if alloc.size != len(curves):
        raise ValueError(f"allocation has {alloc.size} entries for {len(curves)} tenants")
    return float(sum(curve.misses_at(int(a)) for curve, a in zip(curves, alloc)))


def _check_budget(budget_units: int) -> int:
    budget_units = int(budget_units)
    if budget_units < 0:
        raise ValueError(f"budget_units must be >= 0, got {budget_units}")
    return budget_units


def greedy_allocate(curves: Sequence[DiscretizedMRC], budget_units: int) -> np.ndarray:
    """Marginal-miss-gain greedy allocation of ``budget_units`` cache units.

    A max-heap keyed on the miss reduction of each tenant's *next* unit; the
    winner takes one unit and re-queues its following gain.  Exactly optimal
    when all curves are convex; on non-convex curves it can stall at zero
    marginal gain (see :func:`hull_allocate`).  Units with zero gain
    everywhere are not handed out.
    """
    budget_units = _check_budget(budget_units)
    allocation = np.zeros(len(curves), dtype=np.int64)
    # Heap entries: (-gain, tenant index, next unit index).  Negated gain for
    # a max-heap; tenant index doubles as the deterministic tie-break.
    heap: list[tuple[float, int, int]] = []
    for t, curve in enumerate(curves):
        if curve.max_units >= 1:
            gain = float(curve.misses[0] - curve.misses[1])
            heapq.heappush(heap, (-gain, t, 1))
    remaining = budget_units
    while remaining > 0 and heap:
        neg_gain, t, next_unit = heapq.heappop(heap)
        if neg_gain >= 0.0:
            break  # no tenant gains anything from another unit
        allocation[t] = next_unit
        remaining -= 1
        curve = curves[t]
        if next_unit < curve.max_units:
            gain = float(curve.misses[next_unit] - curve.misses[next_unit + 1])
            heapq.heappush(heap, (-gain, t, next_unit + 1))
    return allocation


def dp_allocate(curves: Sequence[DiscretizedMRC], budget_units: int) -> np.ndarray:
    """Exact minimum-total-miss allocation by dynamic programming.

    ``dp[b]`` is the minimum total miss count of the tenants considered so
    far using exactly ``b`` units or fewer; each tenant is folded in with a
    (min, +) convolution against its miss curve, vectorised over the budget
    axis.  The traceback reconstructs one optimal allocation, preferring
    smaller per-tenant allocations on ties (deterministic).
    """
    budget_units = _check_budget(budget_units)
    num_tenants = len(curves)
    if num_tenants == 0:
        return np.zeros(0, dtype=np.int64)
    width = budget_units + 1
    dp = np.zeros(width, dtype=np.float64)
    choices = np.zeros((num_tenants, width), dtype=np.int64)
    for t, curve in enumerate(curves):
        limit = min(curve.max_units, budget_units)
        best = np.full(width, np.inf)
        choice = np.zeros(width, dtype=np.int64)
        for x in range(limit + 1):
            # Give tenant t exactly x units on top of any predecessor split
            # of b - x units; strict improvement keeps the smallest x on ties.
            candidate = dp[: width - x] + curve.misses[x]
            better = candidate < best[x:]
            best[x:][better] = candidate[better]
            choice[x:][better] = x
        dp = best
        choices[t] = choice
    # dp is non-increasing in b (misses never grow with budget), so the full
    # budget is an optimal end point; trace the per-tenant choices back.
    allocation = np.zeros(num_tenants, dtype=np.int64)
    b = budget_units
    for t in range(num_tenants - 1, -1, -1):
        allocation[t] = choices[t, b]
        b -= int(choices[t, b])
    return allocation


def hull_allocate(curves: Sequence[DiscretizedMRC], budget_units: int) -> np.ndarray:
    """Talus-style convex-hull allocation of ``budget_units`` cache units.

    Every tenant's curve is replaced by its lower convex hull; the hull
    segments of all tenants are then consumed steepest-slope-first (the
    classic water-filling argument: on convex curves this is optimal).  When
    the remaining budget is smaller than a segment, the partial take is
    accepted only if the *raw* curve delivers the hull's promised gain there
    (a convex region, where raw and hull coincide); otherwise the segment is
    skipped whole and blocks its tenant — an allocation stranded mid-cliff
    would realise the flat raw curve, not the hull's interpolation.
    Whatever budget survives the hull pass is resolved *exactly* by a
    dynamic program over the raw curves restricted to the leftover (see
    :func:`dp_allocate`): the leftover is small whenever the hulls did their
    job, so the boundary DP keeps near-greedy cost while staircase-shaped
    (e.g. sampled) curves and cliffs both land correctly.
    """
    budget_units = _check_budget(budget_units)
    num_tenants = len(curves)
    allocation = np.zeros(num_tenants, dtype=np.int64)
    if num_tenants == 0 or budget_units == 0:
        return allocation

    # Collect every hull segment: (slope, tenant, start unit, end unit).
    # Slopes are negative; steeper (more negative) segments remove more
    # misses per unit and go first.  Within a tenant, hull slopes strictly
    # increase, so sorting by slope preserves each tenant's segment order;
    # the (tenant, start) tie-break keeps equal-slope ordering deterministic.
    segments: list[tuple[float, int, int, int]] = []
    for t, curve in enumerate(curves):
        vertices, values = lower_convex_hull(curve.misses)
        for (u0, u1), (m0, m1) in zip(zip(vertices, vertices[1:]), zip(values, values[1:])):
            slope = (float(m1) - float(m0)) / float(u1 - u0)
            if slope < 0.0:
                segments.append((slope, t, int(u0), int(u1)))
    segments.sort()

    remaining = budget_units
    blocked = np.zeros(num_tenants, dtype=bool)
    for slope, t, start, end in segments:
        if remaining == 0:
            break
        if blocked[t]:
            continue
        span = end - start
        if span <= remaining:
            allocation[t] = end
            remaining -= span
            continue
        # Partial take: safe exactly when the raw curve follows the hull up
        # to start + remaining (then the water-filling optimality argument
        # still applies); on a cliff the raw gain collapses to ~0 and the
        # tenant is skipped instead of stranded mid-segment.
        curve = curves[t]
        raw_gain = float(curve.misses[start] - curve.misses[start + remaining])
        hull_gain = -slope * remaining
        if raw_gain + 1e-9 * max(1.0, hull_gain) >= hull_gain:
            allocation[t] = start + remaining
            remaining = 0
            break
        blocked[t] = True
    if remaining > 0:
        # Resolve the budget boundary exactly: a DP over the raw curves past
        # the hull allocations, bounded by the (small) leftover.
        return _dp_top_up(curves, allocation, remaining)
    return allocation


def _dp_top_up(curves: Sequence[DiscretizedMRC], allocation: np.ndarray, remaining: int) -> np.ndarray:
    """Distribute ``remaining`` units optimally on top of ``allocation``.

    Each tenant's curve is shifted to start at its current allocation and
    truncated to the leftover, then :func:`dp_allocate` splits the leftover
    exactly.  Cost is ``O(tenants × remaining²)`` — negligible when the hull
    pass consumed most of the budget.
    """
    shifted = []
    for curve, units in zip(curves, allocation):
        start = int(units)
        stop = min(curve.max_units, start + remaining) + 1
        shifted.append(DiscretizedMRC(misses=curve.misses[start:stop], unit=curve.unit, accesses=curve.accesses))
    extra = dp_allocate(shifted, remaining)
    return allocation + extra


def proportional_split(footprints: Sequence[int], budget_units: int) -> np.ndarray:
    """Split the budget proportionally to tenant footprints (the naive baseline).

    Largest-remainder rounding keeps the total at exactly
    ``min(budget_units, sum(footprints))``; no tenant receives more units
    than its footprint (the excess is re-shared proportionally).

    Examples
    --------
    >>> proportional_split([100, 300], 8).tolist()
    [2, 6]
    """
    budget_units = _check_budget(budget_units)
    sizes = np.asarray(footprints, dtype=np.float64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise ValueError("footprints must be a non-empty 1-D sequence")
    if np.any(sizes <= 0):
        raise ValueError("every tenant footprint must be positive")
    caps = sizes.astype(np.int64)
    allocation = np.zeros(sizes.size, dtype=np.int64)
    remaining = min(budget_units, int(caps.sum()))
    active = np.ones(sizes.size, dtype=bool)
    while remaining > 0 and active.any():
        weights = np.where(active, sizes, 0.0)
        shares = weights / weights.sum() * remaining
        grant = np.minimum(np.floor(shares).astype(np.int64), caps - allocation)
        if grant.sum() == 0:
            # Largest remainders first, one unit each, among uncapped tenants.
            order = np.argsort(-(shares - np.floor(shares)), kind="stable")
            for t in order:
                if remaining == 0:
                    break
                if active[t] and allocation[t] < caps[t]:
                    allocation[t] += 1
                    remaining -= 1
            active &= allocation < caps
            continue
        allocation += grant
        remaining -= int(grant.sum())
        active &= allocation < caps
    return allocation
