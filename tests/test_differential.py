"""Differential and metamorphic cross-checks between independent implementations.

The repo carries three independent routes to the same answers: the
lane-vectorised sweep kernels (:mod:`repro.sim.kernels`), the
access-by-access reference simulators (:mod:`repro.cache`) and the
stack-distance algorithms behind :func:`repro.cache.mrc.mrc_from_trace`.
This module pits them against each other:

* a deterministic sweep of policies × capacities × seeds (> 200 cases, the
  acceptance floor, independent of the hypothesis profile in use), asserting
  *exact* agreement between every kernel and its reference simulator;
* hypothesis-generated traces for the same agreements plus the
  stack-distance implementations (vectorised vs. Fenwick vs. naive stack);
* the windowed-SHARDS sketch against the exact MRC on stationary traces
  (MAE ≤ 0.02);
* the batch partitioned-LRU data plane (:mod:`repro.sim.partitioned`)
  against the per-event ``OrderedDict`` reference on hypothesis-generated
  drifting traffic with random reallocation schedules (hits, misses,
  occupancies at shrink boundaries, per-segment counts), the chunked
  :class:`~repro.cache.stack_distance.StackDistanceStream` against the
  whole-array pass, and the ``batch`` vs ``reference`` replay engines end to
  end;
* metamorphic properties: the optimal partition *value* is invariant under
  tenant order permutation, MRCs are monotone non-increasing in capacity,
  and a windowed profile of a concatenated trace with decay → 0 equals the
  tail window's exact profile.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import DiscretizedMRC, dp_allocate, total_misses
from repro.alloc.partition import PartitionJob, run_partition
from repro.cache import FIFOCache, LRUCache, SetAssociativeCache
from repro.cache.mrc import mrc_from_trace
from repro.cache.stack_distance import (
    COLD,
    StackDistanceStream,
    stack_distances,
    stack_distances_naive,
    stack_distances_vectorized,
    stack_distances_with_previous,
)
from repro.obs import MetricsRegistry, recording
from repro.online import OnlineJob, PartitionedLRU, WindowedShardsSketch, pooled_curve, run_replay
from repro.profiling.accuracy import compare_curves
from repro.sim.kernels import (
    _DEVIATE_SALT,
    compact_trace,
    fifo_sweep_hits,
    lru_sweep_hits,
    random_sweep_hits,
    set_associative_sweep_hits,
)
from repro.sim.partitioned import BatchPartitionedLRU, TenantDistanceStreams
from repro.sim.sweep import SweepJob, run_sweep
from repro.trace import zipfian_trace
from repro.trace.drift import three_phase_pair
from repro.trace.tenancy import TenantSpec

# --------------------------------------------------------------------------- #
# Reference implementations and strategies
# --------------------------------------------------------------------------- #
traces = st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=60)
capacity_grids = st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=5, unique=True)


def random_kernel_reference(trace: np.ndarray, capacity: int, seed: int) -> int:
    """Scalar replay of the documented random-kernel semantics (one deviate per access).

    This is an independent, dict-based re-implementation of the lane
    machinery in :func:`repro.sim.kernels.random_sweep_hits`: the same
    pre-drawn shared deviate stream, explicit victim slots, no vectorisation.
    """
    deviates = np.random.default_rng((int(seed), _DEVIATE_SALT)).random(trace.size)
    slots: list[int] = []
    position: dict[int, int] = {}
    hits = 0
    for step, item in enumerate(int(x) for x in trace):
        if item in position:
            hits += 1
            continue
        if len(slots) < capacity:
            position[item] = len(slots)
            slots.append(item)
            continue
        victim_slot = int(deviates[step] * capacity)
        del position[slots[victim_slot]]
        slots[victim_slot] = item
        position[item] = victim_slot
    return hits


def kernel_vs_reference_case(trace: np.ndarray, capacities: np.ndarray, seed: int, ways: int) -> int:
    """Assert every kernel matches its reference on one case; returns checks done."""
    dense, distinct = compact_trace(trace)
    checks = 0

    lru = lru_sweep_hits(trace, capacities)
    fifo = fifo_sweep_hits(dense, capacities, distinct=distinct)
    random_hits = random_sweep_hits(dense, capacities, seed=seed, distinct=distinct)
    sa_caps = capacities * ways
    sa = set_associative_sweep_hits(trace, sa_caps, ways=ways)

    for k, capacity in enumerate(int(c) for c in capacities):
        assert int(lru[k]) == LRUCache(capacity).run(trace.tolist()).hits
        assert int(fifo[k]) == FIFOCache(capacity).run(trace.tolist()).hits
        assert int(random_hits[k]) == random_kernel_reference(dense, capacity, seed)
        assert int(sa[k]) == SetAssociativeCache(capacity, ways).run(trace.tolist()).hits
        checks += 4
    return checks


class TestDeterministicSweep:
    """The fixed-seed grid behind the '>= 200 generated cases' acceptance bar."""

    def test_kernels_match_references_on_generated_grid(self):
        checks = 0
        capacities = np.asarray([1, 2, 3, 5, 8, 13], dtype=np.int64)
        for seed in range(6):
            rng = np.random.default_rng(1000 + seed)
            for footprint, length in ((4, 40), (10, 120), (25, 200)):
                trace = rng.integers(0, footprint, size=length)
                checks += kernel_vs_reference_case(trace, capacities, seed=seed, ways=2)
        assert checks >= 200, f"only {checks} kernel-vs-reference checks ran"

    def test_random_kernel_is_capacity_partition_invariant(self):
        """Splitting the grid across calls (as the sweep pool does) changes nothing."""
        rng = np.random.default_rng(42)
        dense, distinct = compact_trace(rng.integers(0, 30, size=300))
        grid = np.asarray([1, 2, 4, 8, 16, 24], dtype=np.int64)
        together = random_sweep_hits(dense, grid, seed=9, distinct=distinct)
        one_by_one = [
            int(random_sweep_hits(dense, np.asarray([c], dtype=np.int64), seed=9, distinct=distinct)[0])
            for c in grid
        ]
        assert together.tolist() == one_by_one


class TestHypothesisDifferential:
    @given(traces, capacity_grids)
    def test_lru_kernel_matches_reference(self, trace, capacities):
        arr = np.asarray(trace, dtype=np.int64)
        hits = lru_sweep_hits(arr, np.asarray(sorted(capacities), dtype=np.int64))
        for k, capacity in enumerate(sorted(capacities)):
            assert int(hits[k]) == LRUCache(capacity).run(trace).hits

    @given(traces, capacity_grids)
    def test_fifo_kernel_matches_reference(self, trace, capacities):
        dense, distinct = compact_trace(np.asarray(trace, dtype=np.int64))
        hits = fifo_sweep_hits(dense, np.asarray(sorted(capacities), dtype=np.int64), distinct=distinct)
        for k, capacity in enumerate(sorted(capacities)):
            assert int(hits[k]) == FIFOCache(capacity).run(trace).hits

    @given(traces, capacity_grids, st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_kernel_matches_scalar_reference(self, trace, capacities, seed):
        dense, distinct = compact_trace(np.asarray(trace, dtype=np.int64))
        hits = random_sweep_hits(dense, np.asarray(sorted(capacities), dtype=np.int64), seed=seed, distinct=distinct)
        for k, capacity in enumerate(sorted(capacities)):
            assert int(hits[k]) == random_kernel_reference(dense, capacity, seed)

    @given(traces, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=4))
    def test_set_associative_kernel_matches_reference(self, trace, num_sets, ways):
        arr = np.asarray(trace, dtype=np.int64)
        capacity = num_sets * ways
        hits = set_associative_sweep_hits(arr, np.asarray([capacity], dtype=np.int64), ways=ways)
        assert int(hits[0]) == SetAssociativeCache(num_sets, ways).run(trace).hits

    @given(traces)
    def test_stack_distance_implementations_agree(self, trace):
        vectorised = stack_distances_vectorized(trace)
        assert np.array_equal(vectorised, stack_distances(trace))
        assert np.array_equal(vectorised, stack_distances_naive(trace))

    @given(traces, st.integers(min_value=1, max_value=16))
    def test_mrc_matches_lru_simulation(self, trace, capacity):
        curve = mrc_from_trace(trace)
        simulated = LRUCache(capacity).run(trace)
        assert curve[capacity] == pytest.approx(simulated.miss_ratio)


class TestWindowedVsExact:
    """Windowed-SHARDS accuracy on stationary traffic (the MAE <= 0.02 bar)."""

    @pytest.mark.parametrize(("exponent", "rate"), [(0.6, 0.4), (0.9, 0.25)])
    def test_windowed_shards_tracks_exact_mrc(self, exponent, rate):
        """Two pooled seeds keep the MAE within 0.02; flatter popularity (lower
        exponent) spreads reuse over more items and needs a higher rate."""
        trace = zipfian_trace(30_000, 2000, exponent=exponent, rng=11).accesses
        window = 15_000
        exact = mrc_from_trace(trace[-window:])
        sketches = []
        for seed in (0, 1):
            sketch = WindowedShardsSketch(window=window, rate=rate, seed=seed)
            sketch.update(trace)
            sketches.append(sketch)
        assert compare_curves(pooled_curve(sketches), exact).mean_absolute_error <= 0.02

    def test_full_rate_windowed_profile_is_exact(self):
        trace = zipfian_trace(4000, 300, exponent=0.7, rng=5).accesses
        sketch = WindowedShardsSketch(window=2000, rate=1.0)
        sketch.update(trace)
        assert compare_curves(sketch.curve(), mrc_from_trace(trace[-2000:])).max_absolute_error == 0.0


# --------------------------------------------------------------------------- #
# Batch partitioned-LRU data plane vs. the OrderedDict reference
# --------------------------------------------------------------------------- #
# One replay schedule: interleaved per-segment event batches and (possibly
# shrinking) reallocations, the exact shape the online engine produces.
replay_schedules = st.lists(
    st.tuples(
        st.lists(  # one segment of (tenant, item) events
            st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=12)),
            min_size=0,
            max_size=40,
        ),
        st.one_of(  # an optional resize applied after the segment
            st.none(),
            st.lists(st.integers(min_value=0, max_value=8), min_size=3, max_size=3),
        ),
    ),
    min_size=1,
    max_size=6,
)


class TestPartitionedKernelDifferential:
    """The batch kernel is bit-identical to the per-event reference on every
    schedule of drifting traffic and random reallocations — hits, misses,
    per-segment counts, and the occupancies left behind by shrink evictions."""

    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=3, max_size=3), replay_schedules)
    def test_batch_kernel_matches_ordereddict_reference(self, initial, schedule):
        reference = PartitionedLRU(initial)
        batch = BatchPartitionedLRU(initial)
        streams = TenantDistanceStreams(3)
        for events, resize in schedule:
            before = (reference.hits, reference.misses)
            for tenant, item in events:
                reference.access(tenant, item)
            items = np.asarray([item for _tenant, item in events], dtype=np.int64)
            tenants = np.asarray([tenant for tenant, _item in events], dtype=np.int64)
            segment_hits, segment_misses = batch.run_segment(streams.feed(items, tenants))
            assert segment_hits == reference.hits - before[0]
            assert segment_misses == reference.misses - before[1]
            assert batch.occupancies == reference.occupancies
            if resize is not None:
                reference.resize(resize)
                batch.resize(resize)
                # shrink evictions: the kernel's occupancy clamp must match
                # the reference's LRU-end evictions block for block
                assert batch.occupancies == reference.occupancies
        assert (batch.hits, batch.misses) == (reference.hits, reference.misses)

    @given(traces, st.integers(min_value=1, max_value=7))
    def test_streamed_distances_match_whole_array(self, trace, chunk):
        arr = np.asarray(trace, dtype=np.int64)
        stream = StackDistanceStream()
        parts = [stream.feed(arr[start : start + chunk]) for start in range(0, arr.size, chunk)]
        assert np.array_equal(np.concatenate(parts), stack_distances_vectorized(arr))

    @given(traces)
    def test_previous_positions_are_consistent_with_distances(self, trace):
        distances, previous = stack_distances_with_previous(trace)
        arr = np.asarray(trace, dtype=np.int64)
        for position in range(arr.size):
            if distances[position] == COLD:
                assert previous[position] == -1
            else:
                prev = int(previous[position])
                assert arr[prev] == arr[position]
                assert not np.any(arr[prev + 1 : position] == arr[position])


class TestReplayEngineDifferential:
    def test_batch_and_reference_engines_agree_end_to_end(self):
        """The full online run — profiles, detector, controller, all three
        lanes — is bit-identical between the vectorised and per-event data
        planes, per epoch and in aggregate."""
        workload = three_phase_pair(3000, seed=7)
        job = OnlineJob(budget=600, window=3000, epoch=1000, method="hull", rate=0.5)
        batch = run_replay(workload, job)
        reference = run_replay(workload, job, engine="reference")
        assert batch.rows() == reference.rows()
        assert batch.summary() == reference.summary()
        assert batch.oracle_allocations == reference.oracle_allocations


# --------------------------------------------------------------------------- #
# Metrics recording is purely observational
# --------------------------------------------------------------------------- #
class TestMetricsDifferential:
    """Every instrumented engine returns bit-identical results whether a
    metrics registry is recording or not — observation never perturbs."""

    def test_online_replay_identical_with_metrics_on(self):
        workload = three_phase_pair(1500, seed=3)
        job = OnlineJob(budget=300, window=1500, epoch=500, method="hull", rate=0.5)
        plain = run_replay(workload, job)
        registry = MetricsRegistry()
        with recording(registry):
            recorded = run_replay(workload, job)
        assert recorded.rows() == plain.rows()
        assert recorded.summary() == plain.summary()
        assert recorded.oracle_allocations == plain.oracle_allocations
        # ...while the registry really did observe the run
        assert len(registry.series("online.epochs")) == len(plain.epochs)
        snapshot = registry.snapshot()
        assert any(name == "online.events" for _kind, name, _labels in snapshot)
        assert any(name == "replay.lane_refs" for _kind, name, _labels in snapshot)

    def test_sweep_identical_with_metrics_on(self):
        trace = zipfian_trace(5000, 400, exponent=0.8, rng=2).accesses
        job = SweepJob(trace=trace, policies=("lru", "fifo", "random"), capacities=(4, 16, 64))
        plain = run_sweep(job)
        registry = MetricsRegistry()
        with recording(registry):
            recorded = run_sweep(job)
        assert recorded.rows() == plain.rows()
        assert registry.counter("sweep.lane_refs", policy="lru").value == trace.size * 3

    def test_sweep_with_pool_identical_with_metrics_on(self):
        """The timed pool wrapper changes neither results nor their order."""
        trace = zipfian_trace(3000, 300, exponent=0.9, rng=4).accesses
        job = SweepJob(trace=trace, policies=("lru", "fifo", "random", "set-associative"), capacities=(8, 32))
        plain = run_sweep(job, workers=1)
        registry = MetricsRegistry()
        with recording(registry):
            recorded = run_sweep(job, workers=2)
        assert recorded.rows() == plain.rows()
        snapshot = registry.snapshot()
        assert any(name == "pool.task" for _kind, name, _labels in snapshot)

    def test_partition_identical_with_metrics_on(self):
        tenants = (
            TenantSpec(zipfian_trace(2000, 300, exponent=0.9, rng=1), name="zipf"),
            TenantSpec(zipfian_trace(2000, 150, exponent=0.7, rng=2), name="flat", rate=2.0),
        )
        job = PartitionJob(tenants=tenants, budget=256, method="dp", mode="shards", rate=0.2)
        plain = run_partition(job)
        registry = MetricsRegistry()
        with recording(registry):
            recorded = run_partition(job)
        assert recorded.rows() == plain.rows()
        assert recorded.summary() == plain.summary()
        assert registry.counter("partition.tenants", method="dp").value == 2


# --------------------------------------------------------------------------- #
# Metamorphic properties
# --------------------------------------------------------------------------- #
monotone_curves = st.lists(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8),
    min_size=1,
    max_size=4,
).map(
    lambda rows: [
        DiscretizedMRC(
            misses=np.sort(np.asarray(row, dtype=np.float64))[::-1].copy(),
            unit=1,
            accesses=max(int(max(row)), 1),
        )
        for row in rows
    ]
)


class TestMetamorphic:
    @given(monotone_curves, st.integers(min_value=0, max_value=20), st.randoms(use_true_random=False))
    def test_optimal_partition_value_invariant_under_tenant_order(self, curves, budget, shuffler):
        """Permuting the tenants permutes the allocation but not the optimum."""
        baseline = total_misses(curves, dp_allocate(curves, budget))
        order = list(range(len(curves)))
        shuffler.shuffle(order)
        permuted = [curves[i] for i in order]
        assert total_misses(permuted, dp_allocate(permuted, budget)) == pytest.approx(baseline)

    @given(traces)
    def test_mrc_monotone_nonincreasing_in_capacity(self, trace):
        ratios = mrc_from_trace(trace).as_array()
        assert np.all(np.diff(ratios) <= 1e-12)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80), st.data())
    def test_windowed_sketch_monotone_nonincreasing(self, trace, data):
        window = data.draw(st.integers(min_value=1, max_value=len(trace)))
        sketch = WindowedShardsSketch(window=window, rate=1.0)
        sketch.update(trace)
        ratios = sketch.curve().as_array()
        assert np.all(np.diff(ratios) <= 1e-12)

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=60),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60),
    )
    def test_windowed_concat_with_vanishing_decay_equals_tail_exact(self, head, tail):
        """window = len(tail), decay -> 0: the head cannot influence the profile."""
        for decay in (0.0, 1e-9):
            sketch = WindowedShardsSketch(window=len(tail), rate=1.0, decay=decay)
            sketch.update(np.asarray(head + tail, dtype=np.int64))
            comparison = compare_curves(sketch.curve(), mrc_from_trace(tail))
            assert comparison.max_absolute_error <= 1e-6

    @given(traces, st.integers(min_value=1, max_value=16))
    @settings(max_examples=30)
    def test_windowed_profile_invariant_to_history_before_the_window(self, tail, pad_items):
        """Any prefix older than the window leaves the sketch state unchanged."""
        rng = np.random.default_rng(0)
        head = rng.integers(0, pad_items, size=100)
        direct = WindowedShardsSketch(window=len(tail), rate=1.0)
        direct.update(np.asarray(tail, dtype=np.int64))
        with_history = WindowedShardsSketch(window=len(tail), rate=1.0)
        with_history.update(np.concatenate([head, np.asarray(tail, dtype=np.int64)]))
        assert direct.curve().ratios == with_history.curve().ratios
