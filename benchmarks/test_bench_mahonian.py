"""Appendix VIII-F — Mahonian numbers and hit-vector integer partitions.

Reproduces the observations that (a) the number of permutations at each
inversion level is the Mahonian number, and (b) every attainable cache-hit
vector at level ``n`` corresponds to an integer partition of ``n`` with parts
at most ``m - 1``.  The per-partition multiplicities (the paper's open
problem) are reported empirically.
"""

from __future__ import annotations

from repro.analysis import format_table, run_mahonian_partitions, write_csv
from repro.core import mahonian_row, partition_counts_at_level


def test_mahonian_partition_characterisation(benchmark, results_dir):
    result = benchmark(run_mahonian_partitions, 6)

    assert result["mahonian_row"] == list(mahonian_row(6))
    for level in result["levels"]:
        assert level["permutations_enumerated"] == level["mahonian"]
        assert level["all_hit_vectors_are_partitions"]
        assert level["distinct_hit_vectors"] <= level["partitions_of_level"]

    print()
    print(format_table(result["levels"], title="S_6 — Mahonian counts and hit-vector partitions per inversion level"))
    write_csv(results_dir / "mahonian_s6.csv", result["levels"])


def test_partition_multiplicities_open_problem_sample(benchmark, results_dir):
    # the open problem: how many permutations realise each partition; report
    # the empirical counts for a middle level of S_6
    counts = benchmark(partition_counts_at_level, 6, 7)
    rows = [
        {"partition": "+".join(map(str, part)) or "0", "permutations": count}
        for part, count in sorted(counts.items())
    ]
    assert sum(r["permutations"] for r in rows) == mahonian_row(6)[7]
    print()
    print(format_table(rows, title="S_6, level 7 — permutations per hit-vector partition (open problem, empirical)"))
    write_csv(results_dir / "mahonian_s6_level7_partitions.csv", rows)
