"""Shared multiprocessing utilities for the profiling and sweep engines.

Both :mod:`repro.profiling.engine` and :mod:`repro.sim.sweep` fan independent
tasks across a process pool.  The helpers here centralise the two conventions
those engines share:

* **fork first** — the ``fork`` start method lets workers inherit large trace
  arrays copy-on-write instead of pickling them; platforms without ``fork``
  fall back to the default start method.
* **inline when trivial** — ``pool_map`` runs the tasks in the current process
  when a pool would not help (one worker or at most one task), which keeps
  single-process runs deterministic, debuggable and free of pool overhead.

``workers`` is always validated the same way: any integer below 1 is an error
rather than a silent serial fallback.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from typing import Any

__all__ = ["check_workers", "fork_available", "fork_pool", "pool_map"]


def fork_available() -> bool:
    """Whether the ``fork`` start method (copy-on-write globals) exists here."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return False
    return True


def check_workers(workers: int) -> int:
    """Validate a worker count (must be a positive integer)."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def fork_pool(workers: int):
    """A ``multiprocessing`` pool using the ``fork`` start method when available."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return context.Pool(processes=check_workers(workers))


def pool_map(function: Callable[[Any], Any], tasks: Sequence[Any], *, workers: int = 1) -> list[Any]:
    """Map ``function`` over ``tasks``, preserving task order.

    Runs inline (no pool) when ``workers == 1`` or there is at most one task;
    otherwise fans out over ``min(workers, len(tasks))`` forked processes.
    ``function`` and every task must be picklable in the pooled case.
    """
    workers = check_workers(workers)
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    with fork_pool(min(workers, len(tasks))) as pool:
        return pool.map(function, tasks)
