"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    """A small sawtooth trace file generated through the CLI itself."""
    path = tmp_path / "saw.trace"
    assert main(["generate", "sawtooth", "--items", "16", "-o", str(path)]) == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "does-not-exist"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "cyclic"])


class TestGenerate:
    @pytest.mark.parametrize("kind", ["cyclic", "sawtooth", "random-retraversal", "zipf", "stream"])
    def test_generate_all_kinds(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.trace"
        code = main(["generate", kind, "--items", "8", "--length", "64", "-o", str(path)])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out


class TestAnalyzeAndMrc:
    def test_analyze_prints_statistics(self, trace_file, capsys):
        assert main(["analyze", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Trace statistics" in out
        assert "locality score" in out
        assert "1.0000" in out  # sawtooth has perfect locality score

    def test_mrc_prints_curve(self, trace_file, capsys):
        assert main(["mrc", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Miss-ratio curve" in out
        assert "cache_size" in out

    def test_mrc_writes_csv(self, trace_file, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        assert main(["mrc", str(trace_file), "--csv", str(csv_path), "--max-size", "8"]) == 0
        content = csv_path.read_text().splitlines()
        assert content[0] == "cache_size,miss_ratio"
        assert len(content) == 9


class TestParseCapacities:
    def test_pow2_grid_covers_footprint(self):
        from repro.cli import parse_capacities

        assert parse_capacities("pow2", 100) == (1, 2, 4, 8, 16, 32, 64)
        assert parse_capacities("pow2", 1) == (1,)

    def test_ranges_lists_and_unions(self):
        from repro.cli import parse_capacities

        assert parse_capacities("4:12:4", 0) == (4, 8, 12)
        assert parse_capacities("1:3", 0) == (1, 2, 3)
        assert parse_capacities("7,3,7,1:2", 0) == (1, 2, 3, 7)

    def test_rejects_bad_specs(self):
        from repro.cli import parse_capacities

        with pytest.raises(ValueError):
            parse_capacities("1:2:3:4", 8)
        with pytest.raises(ValueError):
            parse_capacities("4:8:0", 8)
        with pytest.raises(ValueError):
            parse_capacities(",", 8)


class TestSweep:
    @pytest.fixture(scope="class")
    def zipf_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("sweep") / "zipf.trace"
        code = main(
            [
                "generate", "zipf", "--length", "5000", "--items", "256",
                "--exponent", "0.9", "--seed", "5", "-o", str(path),
            ]
        )
        assert code == 0
        return path

    def test_sweep_prints_policy_capacity_table(self, zipf_file, capsys):
        code = main(
            ["sweep", str(zipf_file), "--policies", "lru,fifo,random,set-associative",
             "--capacities", "4,8,16,32", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy sweep" in out
        assert "set-associative" in out
        assert "kernel compute time per policy" in out

    def test_sweep_writes_csv(self, zipf_file, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", str(zipf_file), "--policies", "lru", "--capacities", "1:16", "--csv", str(csv_path)])
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "trace,policy,capacity,accesses,hits,misses,miss_ratio"
        assert len(lines) == 17
        ratios = [float(line.split(",")[-1]) for line in lines[1:]]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(ratios, ratios[1:]))

    def test_sweep_matches_mrc_curve(self, zipf_file, tmp_path):
        """The LRU sweep agrees with the mrc subcommand at every grid point."""
        mrc_csv = tmp_path / "mrc.csv"
        sweep_csv = tmp_path / "sweep.csv"
        assert main(["mrc", str(zipf_file), "--max-size", "32", "--csv", str(mrc_csv)]) == 0
        assert main(
            ["sweep", str(zipf_file), "--policies", "lru", "--capacities", "1:32", "--csv", str(sweep_csv)]
        ) == 0
        mrc_ratios = [float(line.split(",")[1]) for line in mrc_csv.read_text().splitlines()[1:]]
        sweep_ratios = [float(line.split(",")[-1]) for line in sweep_csv.read_text().splitlines()[1:]]
        assert len(mrc_ratios) == len(sweep_ratios) == 32
        for a, b in zip(mrc_ratios, sweep_ratios):
            assert abs(a - b) < 1e-9

    def test_sweep_rejects_bad_grid(self, zipf_file, capsys):
        assert main(["sweep", str(zipf_file), "--capacities", "0:4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_rejects_unknown_policy(self, zipf_file, capsys):
        assert main(["sweep", str(zipf_file), "--policies", "mru"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_rejects_bad_workers_and_unrealisable_ways(self, zipf_file, capsys):
        assert main(["sweep", str(zipf_file), "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err
        code = main(["sweep", str(zipf_file), "--policies", "set-associative", "--capacities", "1,2,3", "--ways", "4"])
        assert code == 2
        assert "multiple of ways" in capsys.readouterr().err


class TestPartition:
    ACCEPTANCE_TENANTS = "zipf:length=15000:items=2048,sawtooth:items=2000,stream:n=1000:repetitions=3"

    def _total_row(self, csv_path):
        lines = csv_path.read_text().splitlines()
        headers = lines[0].split(",")
        rows = [dict(zip(headers, line.split(","))) for line in lines[1:]]
        total = [row for row in rows if row["tenant"] == "TOTAL"]
        assert len(total) == 1
        return rows, total[0]

    def test_partition_prints_tables(self, capsys):
        code = main(
            ["partition", "--tenants", "zipf:length=4000:items=512,sawtooth:items=256",
             "--budget", "256", "--method", "greedy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "partition --method greedy" in out
        assert "shared-cache miss ratios" in out
        assert "win_vs_proportional" in out

    def test_partition_acceptance_criteria(self, tmp_path, capsys):
        """The ISSUE acceptance bar: 3-tenant Zipf/sawtooth/STREAM composition,
        |predicted - simulated| <= 0.02, and hull/DP beat the proportional split."""
        for method in ("hull", "dp"):
            csv_path = tmp_path / f"{method}.csv"
            code = main(
                ["partition", "--tenants", self.ACCEPTANCE_TENANTS, "--budget", "1024",
                 "--method", method, "--workers", "2", "--csv", str(csv_path)]
            )
            assert code == 0
            rows, total = self._total_row(csv_path)
            assert len(rows) == 4  # 3 tenants + TOTAL
            assert abs(float(total["predicted"]) - float(total["simulated"])) <= 0.02
            assert float(total["win_vs_proportional"]) > 0.0

    def test_partition_shards_mode_stays_accurate(self, tmp_path):
        csv_path = tmp_path / "shards.csv"
        code = main(
            ["partition", "--tenants", self.ACCEPTANCE_TENANTS, "--budget", "1024",
             "--method", "hull", "--mode", "shards", "--rate", "0.1", "--csv", str(csv_path)]
        )
        assert code == 0
        _, total = self._total_row(csv_path)
        assert float(total["error"]) <= 0.02

    def test_partition_file_tenant_kind(self, trace_file, capsys):
        code = main(
            ["partition", "--tenants", f"file:path={trace_file}:name=disk,zipf:length=2000:items=256",
             "--budget", "64"]
        )
        assert code == 0
        assert "disk" in capsys.readouterr().out

    def test_partition_rejects_bad_specs(self, capsys):
        assert main(["partition", "--tenants", "nosuch", "--budget", "64"]) == 2
        assert "unknown tenant kind" in capsys.readouterr().err
        assert main(["partition", "--tenants", "zipf:bogus=1", "--budget", "64"]) == 2
        assert "unknown option" in capsys.readouterr().err
        assert main(["partition", "--tenants", "zipf:items", "--budget", "64"]) == 2
        assert "expected key=value" in capsys.readouterr().err
        assert main(["partition", "--tenants", "file", "--budget", "64"]) == 2
        assert "requires a path" in capsys.readouterr().err

    def test_partition_rejects_bad_budget_and_unit(self, capsys):
        assert main(["partition", "--tenants", "zipf", "--budget", "0"]) == 2
        assert "budget" in capsys.readouterr().err
        assert main(["partition", "--tenants", "zipf", "--budget", "64", "--unit", "128"]) == 2
        assert "unit" in capsys.readouterr().err


class TestOnline:
    ARGS = ["online", "--length", "2000", "--budget", "600", "--window", "2000",
            "--epoch", "1000", "--rate", "0.5"]

    def test_online_prints_epoch_series_and_scoreboard(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "online --method hull" in out
        assert "static vs adaptive vs oracle" in out
        assert "win_vs_static" in out

    def test_online_csv_has_epoch_rows_and_total(self, tmp_path):
        csv_path = tmp_path / "online.csv"
        assert main([*self.ARGS, "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().splitlines()
        headers = lines[0].split(",")
        rows = [dict(zip(headers, line.split(","))) for line in lines[1:]]
        total = [row for row in rows if row["epoch"] == "TOTAL"]
        assert len(total) == 1 and rows[-1]["epoch"] == "TOTAL"
        # the TOTAL row carries the scoreboard: overall ratios and the win
        assert 0.0 <= float(total[0]["static"]) <= 1.0
        assert 0.0 <= float(total[0]["adaptive"]) <= 1.0
        expected_win = float(total[0]["static"]) - float(total[0]["adaptive"])
        assert float(total[0]["win_vs_static"]) == pytest.approx(expected_win)
        # epoch rows cover the whole trace
        epoch_rows = rows[:-1]
        assert int(epoch_rows[-1]["end"]) == int(total[0]["accesses"])

    def test_online_churn_workload(self, capsys):
        code = main(["online", "--workload", "churn", "--length", "1500", "--budget", "400",
                     "--window", "1500", "--epoch", "750", "--rate", "0.5"])
        assert code == 0
        assert "resident/visitor" in capsys.readouterr().out

    def test_online_workers_do_not_change_the_csv(self, tmp_path):
        serial, parallel = tmp_path / "serial.csv", tmp_path / "parallel.csv"
        assert main([*self.ARGS, "--csv", str(serial)]) == 0
        assert main([*self.ARGS, "--workers", "3", "--csv", str(parallel)]) == 0
        assert serial.read_text() == parallel.read_text()

    def test_online_rejects_bad_parameters(self, capsys):
        bad = ["online", "--length", "1000", "--budget", "100", "--window", "500", "--epoch", "250"]
        assert main([*bad, "--unit", "200"]) == 2
        assert "unit" in capsys.readouterr().err
        assert main([*bad, "--rate", "2.0"]) == 2
        assert "rate" in capsys.readouterr().err
        assert main([*bad, "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err


class TestMainModuleEntryPoint:
    def test_python_dash_m_repro_runs(self, capsys, monkeypatch):
        """``python -m repro`` (the console-script path) executes __main__.py."""
        import runpy
        import sys

        monkeypatch.setattr(sys, "argv", ["repro", "chain", "4"])
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_module("repro", run_name="__main__")
        assert excinfo.value.code == 0
        assert "ChainFind result" in capsys.readouterr().out


class TestChain:
    def test_chain_default_labeling(self, capsys):
        assert main(["chain", "5"]) == 0
        out = capsys.readouterr().out
        assert "ChainFind result" in out
        assert "True" in out  # reaches the sawtooth

    def test_chain_show_chain_weak_moves(self, capsys):
        assert main(["chain", "4", "--moves", "weak", "--show-chain", "--labeling", "transposition"]) == 0
        out = capsys.readouterr().out
        assert "Chain" in out
        assert "(4, 3, 2, 1)" in out  # the sawtooth in 1-indexed notation

    @pytest.mark.parametrize("labeling", ["miss-ratio", "ranked", "timescale", "data-movement"])
    def test_chain_all_labelings(self, labeling, capsys):
        assert main(["chain", "5", "--labeling", labeling]) == 0
        assert "chain_length" in capsys.readouterr().out


class TestProfile:
    @pytest.fixture(scope="class")
    def zipf_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("profile") / "zipf.trace"
        code = main(
            [
                "generate", "zipf", "--length", "20000", "--items", "1024",
                "--exponent", "0.8", "--seed", "7", "-o", str(path),
            ]
        )
        assert code == 0
        return path

    @pytest.mark.parametrize("mode", ["exact", "shards", "reuse"])
    def test_profile_all_modes(self, zipf_file, mode, capsys):
        assert main(["profile", str(zipf_file), "--mode", mode]) == 0
        out = capsys.readouterr().out
        assert f"profile --mode {mode}" in out
        assert "seconds" in out

    def test_profile_writes_csv(self, zipf_file, tmp_path, capsys):
        csv_path = tmp_path / "approx.csv"
        code = main(
            ["profile", str(zipf_file), "--mode", "shards", "--rate", "0.1", "--max-size", "64", "--csv", str(csv_path)]
        )
        assert code == 0
        content = csv_path.read_text().splitlines()
        assert content[0] == "cache_size,miss_ratio"
        assert len(content) == 65
        ratios = [float(line.split(",")[1]) for line in content[1:]]
        assert all(0.0 <= r <= 1.0 for r in ratios)
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_profile_compare_exact_reports_error(self, zipf_file, capsys):
        code = main(["profile", str(zipf_file), "--mode", "shards", "--rate", "0.1", "--compare-exact"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mae" in out and "speedup" in out

    def test_profile_reuse_workers_shards_one_trace(self, zipf_file, capsys):
        assert main(["profile", str(zipf_file), "--mode", "reuse", "--workers", "2"]) == 0
        assert "reuse" in capsys.readouterr().out

    def test_profile_batch_of_traces(self, zipf_file, tmp_path, capsys):
        other = tmp_path / "saw.trace"
        assert main(["generate", "sawtooth", "--items", "32", "-o", str(other)]) == 0
        code = main(["profile", str(zipf_file), str(other), "--mode", "exact", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "zipf" in out and "saw" in out

    def test_profile_csv_rejects_multiple_traces(self, zipf_file, tmp_path, capsys):
        other = tmp_path / "saw2.trace"
        assert main(["generate", "sawtooth", "--items", "16", "-o", str(other)]) == 0
        code = main(["profile", str(zipf_file), str(other), "--csv", str(tmp_path / "x.csv")])
        assert code == 2


class TestEndToEndWorkflow:
    def test_generate_analyze_mrc_profile_flow(self, tmp_path, capsys):
        """The full CLI pipeline on one temp dir: every stage exits 0 and the
        exact and approximate CSV curves agree at every cache size."""
        trace_path = tmp_path / "workload.trace"
        exact_csv = tmp_path / "exact.csv"
        approx_csv = tmp_path / "approx.csv"

        assert main(
            ["generate", "zipf", "--length", "10000", "--items", "512", "--seed", "3", "-o", str(trace_path)]
        ) == 0
        assert trace_path.exists()

        assert main(["analyze", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Trace statistics" in out and "locality score" in out

        assert main(["mrc", str(trace_path), "--max-size", "128", "--csv", str(exact_csv)]) == 0
        assert main(
            ["profile", str(trace_path), "--mode", "shards", "--rate", "0.5",
             "--max-size", "128", "--csv", str(approx_csv)]
        ) == 0

        exact_lines = exact_csv.read_text().splitlines()
        approx_lines = approx_csv.read_text().splitlines()
        assert exact_lines[0] == approx_lines[0] == "cache_size,miss_ratio"
        assert len(exact_lines) == len(approx_lines) == 129
        for exact_line, approx_line in zip(exact_lines[1:], approx_lines[1:]):
            exact_size, exact_ratio = exact_line.split(",")
            approx_size, approx_ratio = approx_line.split(",")
            assert exact_size == approx_size
            assert abs(float(exact_ratio) - float(approx_ratio)) < 0.25


class TestExperiment:
    @pytest.mark.parametrize("name", ["fig2", "sawtooth-cyclic", "matrix-reuse", "miss-integral"])
    def test_experiment_subcommands_run(self, name, capsys):
        assert main(["experiment", name]) == 0
        out = capsys.readouterr().out
        assert f"experiment: {name}" in out

    def test_experiment_fig1_prints_curve_table(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "ell=0" in out and "ell=10" in out

    def test_experiment_online_adaptation(self, capsys):
        assert main(["experiment", "online-adaptation"]) == 0
        out = capsys.readouterr().out
        assert "experiment: online-adaptation" in out
        assert "adaptive" in out and "oracle" in out
