"""One-pass streaming reuse-time profiling and the AET miss-ratio model.

The exact MRC pipeline needs the whole trace in memory (Fenwick tree over
positions).  This module profiles a trace in a *single forward pass* with
memory bounded by the footprint plus a fixed histogram, so arbitrarily long,
generator-backed traces can be profiled without ever materialising them:

1. :class:`ReuseTimeProfiler` consumes references one at a time and records
   each access's *reuse time* — the number of references since the previous
   access to the same item (``t = pos - last_pos``) — into a
   :class:`ReuseTimeHistogram`.
2. :meth:`ReuseTimeHistogram.to_mrc` converts the reuse-time distribution to
   a miss-ratio curve with the average-eviction-time (AET) model (Hu et al.,
   USENIX ATC'16): under LRU, a cache of size ``c`` evicts items after they
   have been idle for ``AET(c)`` references, where
   ``c = sum_{t=0..AET(c)} P(t)`` and ``P(t)`` is the probability a reference
   has reuse time greater than ``t``; the miss ratio at size ``c`` is then
   ``P(AET(c))``.

The histogram is exact for reuse times up to ``fine_limit`` and logarithmic
beyond it (each power-of-two octave split into ``coarse_per_octave`` equal
buckets), so its size is ``O(fine_limit + log(trace length))`` — independent
of both trace length and footprint.  All bucket arithmetic is integral, which
makes histograms mergeable bit-for-bit: the sharded execution engine
(:mod:`repro.profiling.engine`) computes chunk partials in parallel and merges
them into exactly the histogram a single pass would have produced.

Unlike SHARDS (:mod:`repro.profiling.shards`), which is exact modulo sampling,
the AET conversion is itself a model: it assumes reuse times describe the
trace homogeneously.  It is extremely cheap (one dictionary update per
reference) and accurate on throughput-style workloads; the sampling-ablation
experiment quantifies the error against the exact curve.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..cache.mrc import MissRatioCurve

__all__ = [
    "ReuseTimeHistogram",
    "ReuseTimeProfiler",
    "reuse_mrc",
]


def _check_power_of_two(value: int, name: str) -> int:
    value = int(value)
    if value < 2 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two >= 2, got {value}")
    return value


@dataclass
class ReuseTimeHistogram:
    """Bounded-size histogram of reuse times with integral bucket arithmetic.

    Buckets: reuse time ``t`` (``t >= 1``) lands in bucket ``t - 1`` while
    ``t <= fine_limit``; beyond that, the octave ``[2^k, 2^(k+1))`` is split
    into ``coarse_per_octave`` equal-width buckets.  Counts are additive, so
    two histograms with the same parameters merge exactly.
    """

    fine_limit: int = 4096
    coarse_per_octave: int = 256
    cold: int = 0
    accesses: int = 0
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.fine_limit = _check_power_of_two(self.fine_limit, "fine_limit")
        self.coarse_per_octave = _check_power_of_two(self.coarse_per_octave, "coarse_per_octave")
        if self.coarse_per_octave > self.fine_limit:
            raise ValueError(
                f"coarse_per_octave ({self.coarse_per_octave}) must not exceed "
                f"fine_limit ({self.fine_limit})"
            )
        self.counts = np.asarray(self.counts, dtype=np.int64)

    # ----------------------------------------------------------------- #
    # Bucket arithmetic (scalar and vectorised forms must agree exactly)
    # ----------------------------------------------------------------- #
    def bucket_index(self, reuse_time: int) -> int:
        """Bucket index of a single reuse time (``>= 1``)."""
        t = int(reuse_time)
        if t < 1:
            raise ValueError(f"reuse time must be >= 1, got {t}")
        if t <= self.fine_limit:
            return t - 1
        k = t.bit_length() - 1
        octave = k - (self.fine_limit.bit_length() - 1)
        offset = ((t - (1 << k)) * self.coarse_per_octave) >> k
        return self.fine_limit + octave * self.coarse_per_octave + offset

    def bucket_indices(self, reuse_times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`bucket_index` (bit-identical to the scalar form)."""
        t = np.asarray(reuse_times, dtype=np.int64)
        if t.size and int(t.min()) < 1:
            raise ValueError("reuse times must be >= 1")
        out = t - 1
        coarse = t > self.fine_limit
        if np.any(coarse):
            tc = t[coarse]
            # frexp is exact for integers below 2^53: bit_length == exponent.
            _, exponent = np.frexp(tc.astype(np.float64))
            k = exponent.astype(np.int64) - 1
            octave = k - (self.fine_limit.bit_length() - 1)
            offset = ((tc - (np.int64(1) << k)) * self.coarse_per_octave) >> k
            out[coarse] = self.fine_limit + octave * self.coarse_per_octave + offset
        return out

    def bucket_upper_edge(self, index: int) -> int:
        """Largest reuse time mapped to bucket ``index``."""
        index = int(index)
        if index < self.fine_limit:
            return index + 1
        octave, j = divmod(index - self.fine_limit, self.coarse_per_octave)
        k = (self.fine_limit.bit_length() - 1) + octave
        width = (1 << k) // self.coarse_per_octave
        return (1 << k) + (j + 1) * width - 1

    # ----------------------------------------------------------------- #
    # Recording and merging
    # ----------------------------------------------------------------- #
    def _ensure(self, index: int) -> None:
        if index >= self.counts.size:
            grown = np.zeros(index + 1, dtype=np.int64)
            grown[: self.counts.size] = self.counts
            self.counts = grown

    def record_reuse(self, reuse_time: int) -> None:
        """Record one access with a finite reuse time."""
        index = self.bucket_index(reuse_time)
        self._ensure(index)
        self.counts[index] += 1
        self.accesses += 1

    def record_reuses(self, reuse_times: np.ndarray) -> None:
        """Record a batch of finite reuse times (vectorised)."""
        t = np.asarray(reuse_times, dtype=np.int64)
        if t.size == 0:
            return
        indices = self.bucket_indices(t)
        self._ensure(int(indices.max()))
        np.add.at(self.counts, indices, 1)
        self.accesses += int(t.size)

    def record_cold(self, n: int = 1) -> None:
        """Record ``n`` cold (first-ever) accesses."""
        self.cold += int(n)
        self.accesses += int(n)

    def merge(self, other: "ReuseTimeHistogram") -> "ReuseTimeHistogram":
        """Add another histogram's counts into this one (in place)."""
        if other.fine_limit != self.fine_limit or other.coarse_per_octave != self.coarse_per_octave:
            raise ValueError("cannot merge histograms with different bucket layouts")
        self._ensure(other.counts.size - 1)
        self.counts[: other.counts.size] += other.counts
        self.cold += other.cold
        self.accesses += other.accesses
        return self

    def __eq__(self, other) -> bool:
        if not isinstance(other, ReuseTimeHistogram):
            return NotImplemented
        if (
            self.fine_limit != other.fine_limit
            or self.coarse_per_octave != other.coarse_per_octave
            or self.cold != other.cold
            or self.accesses != other.accesses
        ):
            return False
        size = max(self.counts.size, other.counts.size)
        a = np.zeros(size, dtype=np.int64)
        b = np.zeros(size, dtype=np.int64)
        a[: self.counts.size] = self.counts
        b[: other.counts.size] = other.counts
        return bool(np.array_equal(a, b))

    # ----------------------------------------------------------------- #
    # AET model
    # ----------------------------------------------------------------- #
    def to_mrc(self, max_cache_size: int | None = None) -> MissRatioCurve:
        """Miss-ratio curve via the average-eviction-time model.

        The default curve length is the number of cold accesses, which equals
        the number of distinct items the profiler has seen.
        """
        if self.accesses == 0:
            raise ValueError("cannot build a miss-ratio curve from an empty histogram")
        limit = int(max_cache_size) if max_cache_size is not None else max(self.cold, 1)
        if limit < 1:
            raise ValueError(f"max_cache_size must be >= 1, got {max_cache_size}")

        n = float(self.accesses)
        tail = int(self.counts.sum())
        ratios: list[float] = []
        integral = 0.0
        prev_edge = 0
        for index in np.nonzero(self.counts)[0]:
            count = int(self.counts[index])
            survival = (self.cold + tail) / n
            # Cache sizes whose AET landed exactly on the previous edge see the
            # post-edge survival probability.
            while len(ratios) < limit and integral >= len(ratios) + 1:
                ratios.append(survival)
            edge = self.bucket_upper_edge(int(index))
            width = edge - prev_edge
            while len(ratios) < limit and integral + survival * width > len(ratios) + 1:
                ratios.append(survival)
            integral += survival * width
            tail -= count
            prev_edge = edge
        floor = self.cold / n
        while len(ratios) < limit:
            ratios.append(floor if self.cold else 0.0)
        return MissRatioCurve(ratios=tuple(ratios), accesses=int(self.accesses))


class ReuseTimeProfiler:
    """Single-pass, bounded-memory reuse-time profiler.

    Feed references one at a time (or in chunks); memory is one dictionary
    entry per distinct item plus the fixed-size histogram.  The input is never
    materialised, so generator-backed traces of arbitrary length can be
    profiled.
    """

    def __init__(self, *, fine_limit: int = 4096, coarse_per_octave: int = 256):
        self.histogram = ReuseTimeHistogram(fine_limit=fine_limit, coarse_per_octave=coarse_per_octave)
        self._last_seen: dict[int, int] = {}
        self._position = 0

    @property
    def accesses(self) -> int:
        """Number of references recorded so far."""
        return self.histogram.accesses

    @property
    def footprint(self) -> int:
        """Distinct items seen so far."""
        return len(self._last_seen)

    def update(self, item: int) -> None:
        """Consume one reference."""
        item = int(item)
        last = self._last_seen.get(item)
        if last is None:
            self.histogram.record_cold()
        else:
            self.histogram.record_reuse(self._position - last)
        self._last_seen[item] = self._position
        self._position += 1

    def feed(self, references: Iterable[int]) -> "ReuseTimeProfiler":
        """Consume an iterable of references; returns ``self`` for chaining."""
        last_seen = self._last_seen
        histogram = self.histogram
        position = self._position
        for item in references:
            item = int(item)
            last = last_seen.get(item)
            if last is None:
                histogram.record_cold()
            else:
                histogram.record_reuse(position - last)
            last_seen[item] = position
            position += 1
        self._position = position
        return self

    def mrc(self, max_cache_size: int | None = None) -> MissRatioCurve:
        """The miss-ratio curve of everything consumed so far."""
        return self.histogram.to_mrc(max_cache_size if max_cache_size is not None else max(self.footprint, 1))


def reuse_mrc(
    trace: Sequence[int] | np.ndarray | Iterator[int] | Iterable[int],
    *,
    max_cache_size: int | None = None,
    fine_limit: int = 4096,
    coarse_per_octave: int = 256,
) -> MissRatioCurve:
    """One-pass approximate miss-ratio curve of a trace or reference stream.

    Array inputs (including :class:`repro.trace.trace.Trace` objects) take a
    vectorised path through the sharded engine's chunk machinery (identical
    results, tested); other iterables stream through
    :class:`ReuseTimeProfiler` one reference at a time.
    """
    accesses = getattr(trace, "accesses", None)
    if accesses is not None:
        trace = accesses
    if isinstance(trace, np.ndarray) or isinstance(trace, Sequence):
        from .engine import parallel_reuse_histogram

        histogram = parallel_reuse_histogram(
            np.asarray(trace),
            workers=1,
            fine_limit=fine_limit,
            coarse_per_octave=coarse_per_octave,
        )
        limit = max_cache_size if max_cache_size is not None else max(histogram.cold, 1)
        return histogram.to_mrc(limit)
    profiler = ReuseTimeProfiler(fine_limit=fine_limit, coarse_per_octave=coarse_per_octave)
    profiler.feed(trace)
    return profiler.mrc(max_cache_size)
