"""Windowed / exponentially-decayed SHARDS miss-ratio-curve sketches.

The whole-trace profilers in :mod:`repro.profiling` answer "what was this
workload's MRC" *after* the fact; serving changing traffic needs the online
question "what is the MRC of the traffic I am seeing *right now*".  A
:class:`WindowedShardsSketch` maintains exactly that: it ingests references
incrementally, spatially samples them with the same hash family as
:func:`repro.profiling.shards.shards_mrc` (an item is sampled for every
reference or none, so reuse structure survives sampling), retains only the
sampled references of the last ``window`` trace positions, and on demand
produces the miss-ratio curve of that window — optionally weighting newer
references more via an exponential decay.

Design points:

* **Incremental** — :meth:`~WindowedShardsSketch.update` appends a batch and
  evicts references that fell out of the window; amortised cost is the
  sampling rate times the batch size.  Curve extraction runs the vectorised
  stack-distance pass over the (small) sampled buffer only.
* **Windowed or decayed** — with ``decay == 0`` every reference in the window
  counts equally, so at ``rate == 1.0`` the sketch's curve *equals* the exact
  MRC of the window (asserted by the metamorphic tests).  With ``decay > 0``
  a reference aged ``a`` positions carries weight ``exp(-decay * a)``, which
  smooths phase transitions without a hard cutoff.
* **Mergeable** — sketches of the same stream under independent hash seeds
  pool their scaled histograms (:func:`pooled_curve`), cutting the head-item
  variance exactly like the ``n_seeds`` knob of
  :func:`~repro.profiling.shards.shards_mrc`.
* **Deterministic** — state is a pure function of the ingested references and
  the constructor arguments; the re-partitioning engine in
  :mod:`repro.online.replay` relies on this to stay bit-identical across
  worker counts.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..cache.mrc import MissRatioCurve
from ..cache.stack_distance import COLD, stack_distances_vectorized
from ..profiling.shards import HASH_SPACE, histogram_to_mrc, rate_threshold, spatial_hash

__all__ = ["WindowSnapshot", "WindowedShardsSketch", "curve_of_snapshot", "pooled_curve"]


@dataclass(frozen=True)
class WindowSnapshot:
    """Immutable, picklable state of one sketch at one instant.

    ``items``/``positions`` are the sampled references currently in the
    window (global timeline positions, increasing); ``clock`` is the number
    of timeline positions elapsed (offered references plus
    :meth:`~WindowedShardsSketch.advance` gaps); ``offered`` counts the
    references actually offered to the sketch inside the window and
    ``offered_weight`` their decayed mass (equal to ``offered`` when
    ``decay == 0``).  Snapshots decouple curve extraction from sketch
    mutation, so the replay engine can fan :func:`curve_of_snapshot` calls
    across a process pool without racing the event loop.
    """

    items: np.ndarray
    positions: np.ndarray
    clock: int
    window: int
    decay: float
    effective_rate: float
    offered: int
    offered_weight: float

    @property
    def sampled(self) -> int:
        """Number of sampled references currently retained."""
        return int(self.items.size)

    @property
    def occupancy(self) -> int:
        """Number of timeline positions the window currently covers."""
        return min(self.clock, self.window)


class WindowedShardsSketch:
    """Incremental windowed/decayed SHARDS sketch of one reference stream.

    Parameters
    ----------
    window:
        Number of most-recent references the profile covers.
    decay:
        Exponential decay rate ``λ >= 0``: a reference aged ``a`` positions
        (the newest has age 0) weighs ``exp(-λ a)``.  ``0`` disables decay.
    rate:
        Spatial sampling rate ``R``; ``1.0`` keeps every reference (exact).
    seed:
        Hash seed of the spatial sampler (same family as
        :func:`repro.profiling.shards.spatial_hash`).

    Examples
    --------
    >>> sketch = WindowedShardsSketch(window=4, rate=1.0)
    >>> sketch.update([0, 1, 0, 1, 2, 1, 2, 1])
    >>> [round(r, 2) for r in sketch.curve().ratios]  # window is [2, 1, 2, 1]
    [1.0, 0.5]
    """

    def __init__(self, *, window: int, decay: float = 0.0, rate: float = 1.0, seed: int = 0):
        if int(window) < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if float(decay) < 0.0:
            raise ValueError(f"decay must be >= 0, got {decay}")
        self.window = int(window)
        self.decay = float(decay)
        self.seed = int(seed)
        self._threshold = rate_threshold(rate)
        # Pre-boxed once: update() compares hashes against it on every batch.
        self._threshold_u64 = np.uint64(self._threshold)
        self.effective_rate = self._threshold / HASH_SPACE
        self._items: np.ndarray = np.zeros(0, dtype=np.int64)
        self._positions: np.ndarray = np.zeros(0, dtype=np.int64)
        self._clock = 0
        # Contiguous [start, length] runs of *offered* timeline positions —
        # the exact denominator of the SHARDS-adj correction even when
        # advance() gaps mean the window is not fully offered to this sketch.
        self._segments: list[list[int]] = []

    @property
    def clock(self) -> int:
        """Number of timeline positions elapsed (offered references plus gaps)."""
        return self._clock

    @property
    def sampled(self) -> int:
        """Number of sampled references currently retained in the window."""
        return int(self._items.size)

    def update(self, batch: Sequence[int] | np.ndarray) -> None:
        """Ingest a batch of references and evict everything past the window."""
        arr = np.asarray(batch, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"batch must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            return
        start = self._clock
        self._clock += int(arr.size)
        if self._segments and self._segments[-1][0] + self._segments[-1][1] == start:
            self._segments[-1][1] += int(arr.size)
        else:
            self._segments.append([start, int(arr.size)])
        mask = spatial_hash(arr, self.seed) < self._threshold_u64
        if mask.any():
            self._items = np.concatenate([self._items, arr[mask]])
            self._positions = np.concatenate([self._positions, start + np.nonzero(mask)[0].astype(np.int64)])
        self._evict()

    def state_dict(self) -> dict:
        """Picklable snapshot of the mutable window state (for checkpoint/resume).

        Constructor knobs (window, decay, rate, seed) are *not* carried —
        they are part of the job a resume rebuilds the sketch from — only the
        retained samples, the clock and the offered-run bookkeeping.
        """
        return {
            "items": self._items.copy(),
            "positions": self._positions.copy(),
            "clock": int(self._clock),
            "segments": [list(segment) for segment in self._segments],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore window state captured by :meth:`state_dict`."""
        self._items = np.asarray(state["items"], dtype=np.int64).copy()
        self._positions = np.asarray(state["positions"], dtype=np.int64).copy()
        self._clock = int(state["clock"])
        self._segments = [[int(start), int(length)] for start, length in state["segments"]]

    def advance(self, count: int) -> None:
        """Advance the clock by ``count`` positions without ingesting references.

        This is how a *shared* timeline is imposed on per-tenant sketches: the
        replay engine advances every sketch past the events of the *other*
        tenants, so windows age in composed-trace time and a tenant that goes
        quiet (departure, load shift) drains out of its own window instead of
        pinning a stale profile forever.
        """
        if int(count) < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._clock += int(count)
        self._evict()

    def _evict(self) -> None:
        """Drop retained references and offered runs that fell out of the window."""
        horizon = self._clock - self.window
        if horizon <= 0:
            return
        if self._positions.size and int(self._positions[0]) < horizon:
            keep = int(np.searchsorted(self._positions, horizon, side="left"))
            self._items = self._items[keep:]
            self._positions = self._positions[keep:]
        while self._segments and self._segments[0][0] + self._segments[0][1] <= horizon:
            self._segments.pop(0)
        if self._segments and self._segments[0][0] < horizon:
            start, length = self._segments[0]
            self._segments[0] = [horizon, length - (horizon - start)]

    def _offered_mass(self) -> tuple[int, float]:
        """Count and decayed weight of offered references inside the window."""
        if not self._segments:
            return 0, 0.0
        bounds = np.asarray(self._segments, dtype=np.float64)
        starts, lengths = bounds[:, 0], bounds[:, 1]
        offered = int(lengths.sum())
        if self.decay == 0.0:
            return offered, float(offered)
        newest = self._clock - 1
        # Positions start .. start+length-1 carry ages newest-p; geometric
        # series per segment summed in closed form, all exponents <= 0 (no
        # overflow).  expm1 keeps the ratio finite as decay -> 0, where the
        # naive (1 - e^-d L) / (1 - e^-d) form degenerates to 0/0 (NaN).
        denominator = -np.expm1(-self.decay)
        youngest_ages = newest - (starts + lengths - 1.0)
        terms = np.exp(-self.decay * youngest_ages) * -np.expm1(-self.decay * lengths) / denominator
        return offered, float(terms.sum())

    def snapshot(self) -> WindowSnapshot:
        """Freeze the current window state for (possibly remote) curve extraction."""
        offered, offered_weight = self._offered_mass()
        return WindowSnapshot(
            items=self._items.copy(),
            positions=self._positions.copy(),
            clock=self._clock,
            window=self.window,
            decay=self.decay,
            effective_rate=self.effective_rate,
            offered=offered,
            offered_weight=offered_weight,
        )

    def curve(self, *, max_cache_size: int | None = None) -> MissRatioCurve:
        """Miss-ratio curve of the current window (see :func:`curve_of_snapshot`)."""
        return curve_of_snapshot(self.snapshot(), max_cache_size=max_cache_size)


def _window_weights(snapshot: WindowSnapshot) -> tuple[np.ndarray, float]:
    """Per-sampled-reference decay weights and the expected sampled weight mass.

    The expected mass is the decayed weight of all *offered* window positions
    scaled by the sampling rate — the denominator of the SHARDS-adj
    correction.  Offered (not elapsed) positions matter: on a shared
    timeline a sketch only sees its own tenant's share of the window.
    """
    if snapshot.decay == 0.0:
        weights = np.ones(snapshot.positions.size, dtype=np.float64)
    else:
        newest = snapshot.clock - 1
        weights = np.exp(-snapshot.decay * (newest - snapshot.positions.astype(np.float64)))
    return weights, snapshot.offered_weight * snapshot.effective_rate


def _snapshot_histogram(snapshot: WindowSnapshot) -> tuple[np.ndarray, float]:
    """Rescaled, decay-weighted, SHARDS-adj-corrected histogram of one snapshot.

    Stack distances are measured on the sampled window buffer (distinct
    *sampled* items), rescaled by ``1 / R`` to full-trace cache sizes, and
    accumulated into a decay-weighted histogram; the SHARDS-adj correction
    charges the gap between the expected and actual sampled weight mass to
    the smallest cache size, exactly as in
    :func:`repro.profiling.shards.shards_mrc`.  Returns the histogram and
    the expected-mass denominator.  The single source of truth for both
    :func:`curve_of_snapshot` and :func:`pooled_curve`.
    """
    distances = stack_distances_vectorized(snapshot.items)
    weights, expected = _window_weights(snapshot)
    finite = distances != COLD
    scaled = np.ceil(distances[finite].astype(np.float64) / snapshot.effective_rate).astype(np.int64)
    length = int(scaled.max()) if scaled.size else 1
    histogram = np.zeros(length, dtype=np.float64)
    if scaled.size:
        np.add.at(histogram, scaled - 1, weights[finite])
    histogram[0] += expected - float(weights.sum())
    return histogram, expected


def curve_of_snapshot(snapshot: WindowSnapshot, *, max_cache_size: int | None = None) -> MissRatioCurve:
    """Miss-ratio curve of one :class:`WindowSnapshot`.

    See :func:`_snapshot_histogram` for the estimator; at ``rate == 1.0`` and
    ``decay == 0`` the result is the exact MRC of the window.
    """
    if snapshot.sampled == 0:
        raise ValueError("the sampled window is empty; grow the window or the sampling rate")
    histogram, expected = _snapshot_histogram(snapshot)
    return histogram_to_mrc(histogram, expected, snapshot.offered, max_cache_size=max_cache_size)


def pooled_curve(
    sketches: Sequence[WindowedShardsSketch | WindowSnapshot],
    *,
    max_cache_size: int | None = None,
) -> MissRatioCurve:
    """Merge same-stream sketches with independent hash seeds into one curve.

    Each sketch contributes its decay-weighted scaled histogram and expected
    weight mass; pooling sums both, which is the windowed analogue of the
    ``n_seeds`` pooling in :func:`~repro.profiling.shards.shards_mrc` — the
    per-seed data structures stay small while head-item variance drops.
    The sketches must observe the same stream (equal clocks).
    """
    if not sketches:
        raise ValueError("need at least one sketch to pool")
    snapshots = [s.snapshot() if isinstance(s, WindowedShardsSketch) else s for s in sketches]
    if len({snap.clock for snap in snapshots}) != 1:
        raise ValueError("pooled sketches must have ingested the same stream (equal clocks)")
    histograms: list[np.ndarray] = []
    expected_total = 0.0
    for snap in snapshots:
        if snap.sampled == 0:
            continue
        histogram, expected = _snapshot_histogram(snap)
        histograms.append(histogram)
        expected_total += expected
    if not histograms:
        raise ValueError("every pooled sketch has an empty sampled window")
    length = max(h.size for h in histograms)
    pooled = np.zeros(length, dtype=np.float64)
    for h in histograms:
        pooled[: h.size] += h
    return histogram_to_mrc(pooled, expected_total, snapshots[0].offered, max_cache_size=max_cache_size)
