"""Feasibility-constrained re-ordering (Definition 7 and Section VI-A2).

Real programs cannot re-order accesses arbitrarily: data and control
dependences restrict the feasible traces to the linear extensions of a partial
order.  The paper models this with a boolean predicate ``Y(T)`` and notes that
ChainFind must stay inside the feasible region; the deep-learning discussion
similarly distinguishes unordered data (sets), totally ordered data (novels)
and partially ordered data (sentences whose internal word order is fixed).

This module provides

* :class:`DependencyDAG` — a partial order over the ``m`` data items, with
  constructors for the common shapes (chains, blocks, random DAGs, layered
  orders),
* feasibility checks and a predicate factory usable directly as the ``Y``
  argument of :func:`repro.core.chainfind.chain_find`,
* exact and greedy maximisation of the inversion number over linear
  extensions (the constrained form of Problem 2):
  :func:`best_feasible_extension` (bitmask DP, exact for ``m ≲ 20``) and
  :func:`greedy_feasible_extension` (linear-time heuristic),
* linear-extension counting and uniform sampling for the ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from .._util import check_nonnegative_int, check_positive_int, ensure_rng
from .permutation import Permutation

__all__ = [
    "DependencyDAG",
    "is_feasible",
    "feasibility_predicate",
    "best_feasible_extension",
    "greedy_feasible_extension",
    "count_linear_extensions",
    "random_linear_extension",
]


@dataclass(frozen=True)
class DependencyDAG:
    """A partial order over ``m`` data items given by precedence edges.

    An edge ``(u, v)`` means item ``u`` must be accessed before item ``v`` in
    any feasible re-traversal.  The canonical first traversal accesses items in
    increasing label order, so a DAG whose edges all satisfy ``u < v`` keeps
    the original program order feasible.

    The class is immutable; predecessor/successor sets are precomputed for
    cheap feasibility checks.
    """

    size: int
    edges: frozenset[tuple[int, int]]

    def __init__(self, size: int, edges: Iterable[tuple[int, int]] = ()):
        size = check_nonnegative_int(size, "size")
        normalised = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < size and 0 <= v < size):
                raise ValueError(f"edge ({u}, {v}) references items outside 0..{size - 1}")
            if u == v:
                raise ValueError(f"self-dependency ({u}, {v}) is not allowed")
            normalised.add((u, v))
        object.__setattr__(self, "size", size)
        object.__setattr__(self, "edges", frozenset(normalised))
        self._check_acyclic()

    # -------------------------------------------------------------- #
    # Constructors for common dependence shapes
    # -------------------------------------------------------------- #
    @classmethod
    def unconstrained(cls, size: int) -> "DependencyDAG":
        """No dependences: every permutation is feasible (unordered data / a set)."""
        return cls(size, ())

    @classmethod
    def total_order(cls, size: int) -> "DependencyDAG":
        """A chain ``0 → 1 → … → m-1``: only the identity re-traversal is feasible."""
        return cls(size, [(i, i + 1) for i in range(size - 1)])

    @classmethod
    def blocks(cls, block_sizes: Sequence[int]) -> "DependencyDAG":
        """Fixed internal order within each block, free order across blocks.

        Models the paper's "sentences may be permuted but the words within a
        sentence may not" example.  Items are numbered consecutively block by
        block.
        """
        edges = []
        start = 0
        for b in block_sizes:
            b = check_positive_int(b, "block size")
            edges.extend((i, i + 1) for i in range(start, start + b - 1))
            start += b
        return cls(start, edges)

    @classmethod
    def layered(cls, layer_sizes: Sequence[int]) -> "DependencyDAG":
        """Every item of layer ``k`` must precede every item of layer ``k+1``.

        Models partially ordered data such as time-stamped particle samples:
        the time steps are ordered, the particles within a step are not.
        """
        edges = []
        start = 0
        prev_layer: list[int] = []
        for size_k in layer_sizes:
            size_k = check_positive_int(size_k, "layer size")
            layer = list(range(start, start + size_k))
            edges.extend((u, v) for u in prev_layer for v in layer)
            prev_layer = layer
            start += size_k
        return cls(start, edges)

    @classmethod
    def random(
        cls,
        size: int,
        edge_probability: float,
        rng: np.random.Generator | int | None = None,
    ) -> "DependencyDAG":
        """Random DAG whose edges respect the original program order (``u < v``).

        Each forward pair ``(u, v)``, ``u < v``, becomes a dependence with the
        given probability, so the identity is always feasible and the expected
        edge count is ``p · m(m-1)/2``.
        """
        size = check_nonnegative_int(size, "size")
        if not 0.0 <= edge_probability <= 1.0:
            raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
        generator = ensure_rng(rng)
        edges = [(u, v) for u in range(size) for v in range(u + 1, size) if generator.random() < edge_probability]
        return cls(size, edges)

    # -------------------------------------------------------------- #
    # Structure
    # -------------------------------------------------------------- #
    def _check_acyclic(self) -> None:
        order = self._topological_order()
        if order is None:
            raise ValueError("dependency edges contain a cycle; no feasible trace exists")

    def _topological_order(self) -> list[int] | None:
        indegree = [0] * self.size
        succ = self.successors()
        for _, v in self.edges:
            indegree[v] += 1
        ready = [i for i in range(self.size) if indegree[i] == 0]
        out = []
        while ready:
            node = ready.pop()
            out.append(node)
            for nxt in succ[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        return out if len(out) == self.size else None

    def predecessors(self) -> list[set[int]]:
        """``predecessors()[v]`` is the set of items that must precede item ``v``."""
        preds: list[set[int]] = [set() for _ in range(self.size)]
        for u, v in self.edges:
            preds[v].add(u)
        return preds

    def successors(self) -> list[set[int]]:
        """``successors()[u]`` is the set of items that must follow item ``u``."""
        succs: list[set[int]] = [set() for _ in range(self.size)]
        for u, v in self.edges:
            succs[u].add(v)
        return succs

    def predecessor_masks(self) -> list[int]:
        """Predecessor sets as bitmasks (used by the exact DP)."""
        masks = [0] * self.size
        for u, v in self.edges:
            masks[v] |= 1 << u
        return masks

    def to_networkx(self):
        """The DAG as a :class:`networkx.DiGraph` (for visualisation / analysis)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.size))
        graph.add_edges_from(self.edges)
        return graph


# ------------------------------------------------------------------ #
# Feasibility checks
# ------------------------------------------------------------------ #
def is_feasible(sigma: Permutation, dag: DependencyDAG) -> bool:
    """Whether the re-traversal ``B = sigma(A)`` respects every dependence.

    ``sigma(i)`` is the item accessed at re-traversal position ``i``, so the
    dependence ``u → v`` requires ``sigma^{-1}(u) < sigma^{-1}(v)`` — i.e.
    ``sigma`` must be a linear extension of the partial order.
    """
    if sigma.size != dag.size:
        raise ValueError(f"permutation size {sigma.size} does not match DAG size {dag.size}")
    position = sigma.inverse()
    return all(position[u] < position[v] for u, v in dag.edges)


def feasibility_predicate(dag: DependencyDAG):
    """A predicate ``Y(sigma)`` suitable for :func:`repro.core.chainfind.chain_find`."""

    def predicate(sigma: Permutation) -> bool:
        """Whether ``sigma`` respects every dependency of the DAG."""
        return is_feasible(sigma, dag)

    return predicate


# ------------------------------------------------------------------ #
# Optimisation over linear extensions
# ------------------------------------------------------------------ #
_EXACT_DP_LIMIT = 22


def best_feasible_extension(dag: DependencyDAG) -> tuple[Permutation, int]:
    """The feasible re-ordering with maximal inversion number (exact, bitmask DP).

    The DP state is the set ``S`` of items already scheduled; placing item
    ``v`` next adds ``#{u ∈ S : u > v}`` inversions, and ``v`` may be placed
    only when all its predecessors are in ``S``.  The recurrence visits each
    of the ``2^m`` states once, so the exact search is limited to
    ``m <= 22``; use :func:`greedy_feasible_extension` beyond that.

    Returns the optimal permutation and its inversion number.
    """
    m = dag.size
    if m > _EXACT_DP_LIMIT:
        raise ValueError(
            f"exact search limited to m <= {_EXACT_DP_LIMIT} items (got {m}); "
            "use greedy_feasible_extension for larger instances"
        )
    if m == 0:
        return Permutation([]), 0
    pred_masks = dag.predecessor_masks()
    full = (1 << m) - 1

    # best[S] = max inversions achievable by a feasible arrangement of exactly
    # the items in S placed in the first |S| positions; choice[S] = last item.
    best = np.full(1 << m, -1, dtype=np.int64)
    choice = np.full(1 << m, -1, dtype=np.int16)
    best[0] = 0

    # popcount table for "how many scheduled items are greater than v"
    for state in range(1 << m):
        if best[state] < 0:
            continue
        base = int(best[state])
        for v in range(m):
            bit = 1 << v
            if state & bit:
                continue
            if (pred_masks[v] & state) != pred_masks[v]:
                continue
            # items already scheduled with a larger label than v
            higher = state >> (v + 1)
            gain = bin(higher).count("1")
            nxt = state | bit
            if base + gain > best[nxt]:
                best[nxt] = base + gain
                choice[nxt] = v

    if best[full] < 0:
        raise RuntimeError("no linear extension found; the DAG validation should prevent this")

    # reconstruct
    order: list[int] = []
    state = full
    while state:
        v = int(choice[state])
        order.append(v)
        state &= ~(1 << v)
    order.reverse()
    sigma = Permutation(order)
    return sigma, int(best[full])


def greedy_feasible_extension(dag: DependencyDAG) -> Permutation:
    """Greedy heuristic: always schedule the largest-labelled available item.

    Placing large labels early maximises the immediate inversion gain against
    the smaller labels that must still follow.  The result is always feasible;
    on unconstrained inputs it recovers the sawtooth optimum, and the
    feasibility ablation benchmark measures its gap to the exact DP on random
    DAGs.
    """
    m = dag.size
    preds = dag.predecessors()
    remaining_pred_counts = [len(p) for p in preds]
    succs = dag.successors()
    available = sorted((v for v in range(m) if remaining_pred_counts[v] == 0), reverse=True)
    order: list[int] = []
    import heapq

    heap = [-v for v in available]
    heapq.heapify(heap)
    while heap:
        v = -heapq.heappop(heap)
        order.append(v)
        for w in succs[v]:
            remaining_pred_counts[w] -= 1
            if remaining_pred_counts[w] == 0:
                heapq.heappush(heap, -w)
    if len(order) != m:
        raise RuntimeError("greedy scheduling failed to place every item")
    return Permutation(order)


def count_linear_extensions(dag: DependencyDAG) -> int:
    """Number of feasible re-orderings (linear extensions), by bitmask DP.

    Exponential in ``m``; limited to the same size as the exact optimiser.
    """
    m = dag.size
    if m > _EXACT_DP_LIMIT:
        raise ValueError(f"counting limited to m <= {_EXACT_DP_LIMIT} items (got {m})")
    if m == 0:
        return 1
    pred_masks = dag.predecessor_masks()
    counts = np.zeros(1 << m, dtype=np.int64)
    counts[0] = 1
    for state in range(1 << m):
        c = int(counts[state])
        if c == 0:
            continue
        for v in range(m):
            bit = 1 << v
            if state & bit or (pred_masks[v] & state) != pred_masks[v]:
                continue
            counts[state | bit] += c
    return int(counts[(1 << m) - 1])


def random_linear_extension(dag: DependencyDAG, rng: np.random.Generator | int | None = None) -> Permutation:
    """A random feasible re-ordering (not exactly uniform; each step picks uniformly among available items)."""
    generator = ensure_rng(rng)
    m = dag.size
    preds = dag.predecessors()
    succs = dag.successors()
    remaining = [len(p) for p in preds]
    available = [v for v in range(m) if remaining[v] == 0]
    order: list[int] = []
    while available:
        idx = int(generator.integers(len(available)))
        v = available.pop(idx)
        order.append(v)
        for w in succs[v]:
            remaining[w] -= 1
            if remaining[w] == 0:
                available.append(w)
    if len(order) != m:
        raise RuntimeError("random extension failed; DAG should be acyclic")
    return Permutation(order)
