"""Segment and epoch boundary arithmetic, shared by every trace-iteration loop.

Three experiment paths used to hand-roll the same boundary handling: the
online replay built its own merged epoch/phase stop schedule and phase
labels, the parallel profiling engine computed chunk offsets from
``np.array_split`` by hand, and the streaming-trace iterator re-derived
fixed-length segment bounds.  The helpers here are that arithmetic, written
once:

* :func:`strided_spans` — fixed-length segment bounds over ``n`` events.
* :func:`chunk_spans` — ``pieces`` near-equal contiguous chunks (the
  ``np.array_split`` convention: earlier chunks get the remainder).
* :func:`replay_stops` — the merged stop schedule of an epoched replay over
  a phased workload: every epoch end plus every interior phase boundary.
* :func:`phase_of_event` / :func:`phase_of_last_event` — phase labeling.

The *boundary epoch* pitfall (found in PR 4, regression-tested in
``tests/engine/test_segments.py``): when an epoch ends exactly on a phase
boundary, the replay's running phase cursor has already advanced to the new
regime even though every event recorded in the epoch belongs to the old one.
:func:`phase_of_last_event` therefore labels an epoch ``[start, end)`` by
the phase of event ``end - 1``, never by the cursor.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = [
    "chunk_spans",
    "phase_of_event",
    "phase_of_last_event",
    "replay_stops",
    "strided_spans",
]


def strided_spans(n: int, length: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, end)`` bounds of fixed-``length`` segments covering ``n``.

    The last span is short when ``length`` does not divide ``n``; ``n == 0``
    yields nothing.
    """
    n = int(n)
    length = int(length)
    if length < 1:
        raise ValueError(f"segment length must be >= 1, got {length}")
    for start in range(0, n, length):
        yield start, min(start + length, n)


def chunk_spans(n: int, pieces: int) -> list[tuple[int, int]]:
    """Bounds of ``pieces`` near-equal contiguous chunks of ``n`` events.

    Follows the ``np.array_split`` convention — the first ``n % pieces``
    chunks are one longer — so chunked passes that split with either idiom
    agree on every boundary.  ``pieces`` is clamped to ``n`` (no empty
    chunks) except when ``n == 0``, which yields a single empty span.
    """
    n = int(n)
    pieces = int(pieces)
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1, got {pieces}")
    if n == 0:
        return [(0, 0)]
    pieces = min(pieces, n)
    base, extra = divmod(n, pieces)
    bounds = [0]
    for k in range(pieces):
        bounds.append(bounds[-1] + base + (1 if k < extra else 0))
    return list(zip(bounds[:-1], bounds[1:]))


def replay_stops(n: int, epoch: int, boundaries: Sequence[int] = ()) -> tuple[list[int], frozenset[int]]:
    """The merged stop schedule of an epoched replay over a phased workload.

    Returns ``(stops, epoch_ends)``: ``stops`` is every position the event
    loop must pause at, sorted ascending — each multiple of ``epoch`` (plus
    the final partial epoch at ``n``), merged with every *interior* phase
    boundary (oracle lanes resize there) — and ``epoch_ends`` is the subset
    where an epoch closes (profiles refresh, controllers are consulted).
    ``boundaries`` follows the :class:`repro.trace.drift.DriftingWorkload`
    convention: ``boundaries[p]`` is phase ``p``'s first event, with
    ``boundaries[0] == 0`` (ignored here — nothing stops before event 0).
    """
    n = int(n)
    epoch = int(epoch)
    if n < 1:
        raise ValueError(f"need at least one event, got {n}")
    if epoch < 1:
        raise ValueError(f"epoch must be >= 1, got {epoch}")
    epoch_ends = frozenset(range(epoch, n, epoch)) | {n}
    stops = sorted(epoch_ends | {int(b) for b in boundaries if 0 < int(b) < n})
    return stops, epoch_ends


def phase_of_event(boundaries: Sequence[int], position: int) -> int:
    """Index of the phase containing event ``position``.

    ``boundaries[p]`` is phase ``p``'s first event; a position at a boundary
    therefore belongs to the *new* phase.
    """
    return int(np.searchsorted(np.asarray(boundaries), int(position), side="right")) - 1


def phase_of_last_event(boundaries: Sequence[int], end: int) -> int:
    """Phase label of a half-open epoch ``[start, end)``: the last event's phase.

    An epoch that ends exactly on a phase boundary is attributed to the
    regime it *measured* — every one of its events precedes the boundary —
    not to the regime the replay's phase cursor has already advanced into.
    """
    return phase_of_event(boundaries, int(end) - 1)
