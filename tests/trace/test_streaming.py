"""Unit tests for the chunked columnar / memmap streaming trace layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    StreamingTrace,
    Trace,
    as_streaming,
    create_memmap_trace,
    open_memmap_trace,
)


class TestStreamingTrace:
    def test_segments_cover_the_trace_in_order(self):
        trace = as_streaming(np.arange(10), segment=4)
        segments = list(trace.segments())
        assert [items.tolist() for items, _ids in segments] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert all(ids.tolist() == [0] * items.size for items, ids in segments)

    def test_segments_are_copies_not_views(self):
        backing = np.arange(6)
        trace = as_streaming(backing, segment=3)
        items, _ids = next(trace.segments())
        items[0] = 999
        assert backing[0] == 0

    def test_tenant_ids_and_num_tenants(self):
        trace = as_streaming([1, 2, 3, 4], tenant_ids=[0, 1, 1, 2], segment=2)
        assert trace.num_tenants == 3
        assert len(trace) == 4

    def test_accepts_trace_objects(self):
        assert len(as_streaming(Trace(np.arange(5)))) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            as_streaming([1, 2], tenant_ids=[0])
        with pytest.raises(ValueError):
            as_streaming([1, 2], segment=0)
        with pytest.raises(ValueError):
            StreamingTrace(items=np.zeros((2, 2), dtype=np.int64), tenant_ids=np.zeros((2, 2), dtype=np.int64))

    def test_float_labels_rejected_not_truncated(self):
        """1.5 and 1.9 are distinct items; astype would collapse them into
        spurious hits, so non-integer columns must raise like the rest of
        the library."""
        with pytest.raises(TypeError):
            as_streaming(np.asarray([1.5, 1.9, 2.7]))
        with pytest.raises(TypeError):
            as_streaming([1, 2], tenant_ids=np.asarray([0.0, 0.5]))
        with pytest.raises(TypeError):
            StreamingTrace(items=np.asarray([1.5]), tenant_ids=np.zeros(1, dtype=np.int64))
        trace = as_streaming(np.zeros(4, dtype=np.int64))
        with pytest.raises(TypeError):
            trace.fill(0, np.asarray([1.5, 2.5]), [0, 0])

    def test_fill_bounds_checked(self):
        trace = as_streaming(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            trace.fill(3, [1, 2], [0, 0])
        with pytest.raises(ValueError):
            trace.fill(0, [1, 2], [0])


class TestMemmapRoundTrip:
    def test_round_trip_segment_by_segment(self, tmp_path):
        rng = np.random.default_rng(7)
        items = rng.integers(0, 1000, size=5000)
        ids = rng.integers(0, 2, size=5000)
        writable = create_memmap_trace(tmp_path / "trace", length=5000, segment=512)
        position = 0
        for start in range(0, 5000, 1024):
            position = writable.fill(position, items[start : start + 1024], ids[start : start + 1024])
        writable.flush()

        reopened = open_memmap_trace(tmp_path / "trace", segment=700)
        assert len(reopened) == 5000
        assert isinstance(reopened.items, np.memmap)
        got_items = np.concatenate([chunk for chunk, _ in reopened.segments()])
        got_ids = np.concatenate([chunk for _, chunk in reopened.segments()])
        assert np.array_equal(got_items, items)
        assert np.array_equal(got_ids, ids)

    def test_columns_are_plain_npy_files(self, tmp_path):
        writable = create_memmap_trace(tmp_path / "t", length=8)
        writable.fill(0, np.arange(8), np.zeros(8, dtype=np.int64))
        writable.flush()
        assert np.array_equal(np.load(tmp_path / "t.items.npy"), np.arange(8))

    def test_create_validation(self, tmp_path):
        with pytest.raises(ValueError):
            create_memmap_trace(tmp_path / "bad", length=0)
