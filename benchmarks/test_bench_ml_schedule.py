"""Section VI-A — Theorem-4 traversal schedules on model parameter traces.

Compares the naive cyclic schedule, the Theorem-4 sawtooth alternation and the
deliberately wrong "reverse on every pass" schedule on a parameter working set,
measuring total reuse, miss ratios at several cache fractions and the average
memory access time under a two-level hierarchy.  The paper's headline factor
(the leading term of total reuse halves) should reproduce, and the alternation
must also win end-to-end on a real traced MLP training loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table, run_ml_schedule, write_csv
from repro.cache import LRUCache
from repro.core import Permutation, alternating_schedule
from repro.ml import TracedAttention, TracedMLP


def test_parameter_schedule_comparison(benchmark, results_dir):
    result = benchmark(run_ml_schedule, items=256, passes=6)
    by_name = {row["schedule"]: row for row in result["rows"]}

    cyclic = by_name["cyclic"]
    sawtooth = by_name["sawtooth"]
    assert sawtooth["total_reuse"] < by_name["reverse-every-pass"]["total_reuse"] < cyclic["total_reuse"]
    assert 1.9 < cyclic["total_reuse"] / sawtooth["total_reuse"] < 2.01
    assert sawtooth["amat"] < cyclic["amat"]
    assert sawtooth["miss_ratio@0.50m"] < cyclic["miss_ratio@0.50m"]

    print()
    print(format_table(result["rows"], title="Theorem-4 schedules over 256 parameter blocks, 6 passes"))
    write_csv(results_dir / "ml_schedule.csv", result["rows"])


def test_traced_mlp_training_schedule(benchmark, results_dir):
    rng = np.random.default_rng(0)
    mlp_naive = TracedMLP([64, 128, 32], granularity=16, rng=1)
    mlp_optim = TracedMLP([64, 128, 32], granularity=16, rng=1)
    x = rng.standard_normal((16, 64))
    y = rng.standard_normal((16, 32))
    steps = 3
    m = mlp_naive.num_weight_items

    # learning_rate=0 keeps the weights fixed so repeated benchmark rounds (and
    # the naive/optimised pair) stay numerically identical; the traversal
    # schedule only changes the memory behaviour.
    naive_trace = mlp_naive.training_trace(x, y, steps=steps, learning_rate=0.0)
    schedule = alternating_schedule(Permutation.reverse(m), 2 * steps)
    optim_trace = benchmark(mlp_optim.training_trace, x, y, steps=steps, schedule=schedule, learning_rate=0.0)

    rows = []
    for fraction in (0.25, 0.5, 0.75):
        capacity = max(1, int(fraction * m))
        naive_mr = LRUCache(capacity).run(naive_trace).miss_ratio
        optim_mr = LRUCache(capacity).run(optim_trace).miss_ratio
        assert optim_mr <= naive_mr
        rows.append(
            {
                "cache_fraction": fraction,
                "cyclic_miss_ratio": naive_mr,
                "alternating_miss_ratio": optim_mr,
                "reduction": naive_mr - optim_mr,
            }
        )
    # losses are identical: the schedule changes memory behaviour only
    assert mlp_naive.backward(x, y).loss == pytest.approx(mlp_optim.backward(x, y).loss)

    print()
    print(format_table(rows, title="Traced MLP training (64-128-32): miss ratio, cyclic vs Theorem-4 alternation"))
    write_csv(results_dir / "ml_mlp_training.csv", rows)


def test_attention_head_schedule(benchmark, results_dir):
    attention = TracedAttention(256, 8, granularity=64, rng=0)
    passes = 6
    naive = attention.access_trace(passes)
    schedule = [None if p % 2 == 0 else Permutation.reverse(8) for p in range(passes)]
    optimised = benchmark(attention.access_trace, passes, head_schedule=schedule)

    rows = []
    for fraction in (0.25, 0.5, 0.75):
        capacity = max(1, int(fraction * attention.num_weight_items))
        naive_mr = LRUCache(capacity).run(naive).miss_ratio
        optim_mr = LRUCache(capacity).run(optimised).miss_ratio
        assert optim_mr <= naive_mr
        rows.append(
            {
                "cache_fraction": fraction,
                "cyclic_miss_ratio": naive_mr,
                "head_alternation_miss_ratio": optim_mr,
            }
        )
    print()
    print(format_table(rows, title="Multi-head attention (d=256, 8 heads): head-order alternation vs cyclic"))
    write_csv(results_dir / "ml_attention_schedule.csv", rows)
