"""Belady's OPT — the clairvoyant optimal replacement policy.

OPT evicts the resident item whose next use is farthest in the future (or that
is never used again).  It needs the whole trace in advance, so it is an
offline oracle rather than a practical policy; it provides the lower bound on
miss ratio against which LRU's behaviour on re-traversals can be judged in the
policy ablation benchmark.

The implementation precomputes, for every access position, the position of the
next access to the same item, and keeps the resident set in a heap keyed by
next use.  Stale heap entries are discarded lazily, giving an overall
``O(N log C)`` simulation for a trace of ``N`` accesses and capacity ``C``.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from .._util import check_positive_int
from .base import CacheStats

__all__ = ["BeladyCache", "simulate_opt"]

_NEVER = np.iinfo(np.int64).max


def _next_use_positions(trace: np.ndarray) -> np.ndarray:
    """For each position, the index of the next access to the same item (or ``_NEVER``)."""
    n = trace.size
    next_use = np.full(n, _NEVER, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for pos in range(n - 1, -1, -1):
        item = int(trace[pos])
        if item in last_seen:
            next_use[pos] = last_seen[item]
        last_seen[item] = pos
    return next_use


def simulate_opt(trace: Sequence[int] | np.ndarray, capacity: int) -> CacheStats:
    """Replay ``trace`` under Belady's optimal replacement with the given capacity."""
    capacity = check_positive_int(capacity, "capacity")
    arr = np.asarray(trace, dtype=np.int64)
    stats = CacheStats()
    if arr.size == 0:
        return stats
    next_use = _next_use_positions(arr)

    resident: dict[int, int] = {}  # item -> its current next-use position
    heap: list[tuple[int, int]] = []  # (-next_use, item) max-heap via negation

    for pos in range(arr.size):
        item = int(arr[pos])
        hit = item in resident
        stats.record(item, hit)
        if hit:
            resident[item] = int(next_use[pos])
            heapq.heappush(heap, (-int(next_use[pos]), item))
            continue
        if len(resident) >= capacity:
            # evict the resident item with the farthest (possibly never) next use
            while heap:
                neg_use, victim = heapq.heappop(heap)
                if victim in resident and resident[victim] == -neg_use:
                    del resident[victim]
                    stats.evictions += 1
                    break
            else:  # pragma: no cover - defensive; resident is never empty here
                raise RuntimeError("OPT heap exhausted while the cache is full")
        resident[item] = int(next_use[pos])
        heapq.heappush(heap, (-int(next_use[pos]), item))
    return stats


class BeladyCache:
    """Object wrapper around :func:`simulate_opt` with a CacheModel-like surface.

    Unlike the online policies, OPT cannot be driven one access at a time
    without the future; the wrapper therefore only supports whole-trace
    replay through :meth:`run`.
    """

    def __init__(self, capacity: int):
        self.capacity = check_positive_int(capacity, "capacity")
        self.stats = CacheStats()

    @property
    def name(self) -> str:
        """Policy name used in reports."""
        return "opt"

    def reset(self) -> None:
        """Clear the accumulated statistics."""
        self.stats = CacheStats()

    def run(self, trace: Sequence[int] | np.ndarray) -> CacheStats:
        """Replay ``trace`` through Belady-OPT and return the statistics."""
        self.stats = simulate_opt(trace, self.capacity)
        return self.stats
