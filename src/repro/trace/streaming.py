"""Chunked columnar traces: bounded-memory segments, optionally memmap-backed.

The in-memory :class:`~repro.trace.trace.Trace` container materialises the
whole access array; the replay data plane (:mod:`repro.sim.partitioned`)
only ever needs one *segment* at a time.  :class:`StreamingTrace` provides
that view: columnar ``items`` / ``tenant_ids`` arrays — plain ``ndarray`` or
``numpy.memmap`` — iterated as fixed-size segment copies, so a ``10^7+``
reference trace on disk replays with one segment plus ``O(footprint)``
carried state resident (asserted in ``benchmarks/test_bench_replay.py``).

File-backed traces use the standard ``.npy`` format, one file per column
(``<stem>.items.npy`` and ``<stem>.tenants.npy``), so they round-trip
through plain :func:`numpy.load` and external tools as well:

* :func:`create_memmap_trace` — allocate a writable trace of a given length
  and fill it segment by segment (nothing is ever fully resident).
* :func:`open_memmap_trace` — reopen it read-only, memory-mapped.
* :func:`as_streaming` — wrap an in-memory trace/array in the same interface
  so consumers are agnostic to where the columns live.

**Integrity.** ``flush`` additionally writes a ``<stem>.manifest.json``
sidecar recording each column's length, dtype and CRC-32; ``open`` verifies
the columns against it (and always checks existence, shape and dtype
agreement) so a truncated or bit-flipped trace fails up front with a
:class:`~repro.resilience.errors.TraceIntegrityError` naming the file and
the expected vs. found value — not hours later as an unrelated numpy shape
error deep in a replay.  Traces written before the sidecar existed still
open; they simply get the structural checks only.
"""

from __future__ import annotations

import json
import os
import zlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..obs import get_registry
from ..resilience.errors import TraceIntegrityError
from .trace import Trace

__all__ = [
    "DEFAULT_SEGMENT",
    "StreamingTrace",
    "as_streaming",
    "create_memmap_trace",
    "open_memmap_trace",
    "verify_memmap_trace",
    "write_trace_manifest",
]

#: Schema version of the trace sidecar manifest; bumped on incompatible changes.
TRACE_MANIFEST_SCHEMA = 1

#: Default segment length (references per yielded chunk).
DEFAULT_SEGMENT: int = 1 << 18


def _check_integer_column(column: np.ndarray, name: str) -> None:
    """Reject non-integer columns instead of silently truncating labels.

    ``astype(int64)`` would collapse distinct float labels (1.5 and 1.9 both
    become 1), manufacturing hits downstream; the rest of the library raises
    ``TypeError`` on float traces, so the streaming layer must too.
    """
    if column.size and not np.issubdtype(column.dtype, np.integer):
        raise TypeError(f"{name} must be integers, got dtype {column.dtype}")


@dataclass(frozen=True)
class StreamingTrace:
    """A columnar access trace iterated in bounded-memory segments.

    ``items`` holds the access labels and ``tenant_ids`` the owning tenant
    per access (all zeros for a single-tenant trace); either may be a
    ``numpy.memmap``, in which case :meth:`segments` is what keeps residency
    bounded — each yielded pair is an in-memory *copy* of one segment, so no
    reference into the mapped file escapes to the consumer.

    Examples
    --------
    >>> trace = as_streaming([3, 1, 4, 1, 5, 9, 2, 6], segment=3)
    >>> [items.tolist() for items, _ids in trace.segments()]
    [[3, 1, 4], [1, 5, 9], [2, 6]]
    """

    items: np.ndarray
    tenant_ids: np.ndarray
    segment: int = DEFAULT_SEGMENT

    def __post_init__(self):
        if self.items.ndim != 1 or self.tenant_ids.ndim != 1:
            raise ValueError("items and tenant_ids must be one-dimensional")
        if self.items.shape != self.tenant_ids.shape:
            raise ValueError(f"items and tenant_ids must align, got {self.items.shape} vs {self.tenant_ids.shape}")
        for name, column in (("items", self.items), ("tenant_ids", self.tenant_ids)):
            _check_integer_column(column, name)
        if int(self.segment) < 1:
            raise ValueError(f"segment must be >= 1, got {self.segment}")

    def __len__(self) -> int:
        return int(self.items.size)

    @property
    def num_tenants(self) -> int:
        """One more than the largest tenant id (1 for an empty trace)."""
        return int(self.tenant_ids.max()) + 1 if len(self) else 1

    def segments(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(items, tenant_ids)`` copies of at most ``segment`` references."""
        registry = get_registry()
        if registry.enabled:
            registry.gauge("trace.memmap").set(int(isinstance(self.items, np.memmap)))
            registry.gauge("trace.references").set(len(self))
        for start in range(0, len(self), int(self.segment)):
            stop = start + int(self.segment)
            items = np.array(self.items[start:stop], dtype=np.int64, copy=True)
            tenant_ids = np.array(self.tenant_ids[start:stop], dtype=np.int64, copy=True)
            if registry.enabled:
                registry.counter("trace.segments").inc()
                registry.counter("trace.segment_bytes").add(items.nbytes + tenant_ids.nbytes)
            yield items, tenant_ids

    def fill(self, start: int, items: Sequence[int] | np.ndarray, tenant_ids: Sequence[int] | np.ndarray) -> int:
        """Write one segment at position ``start`` (for writable/memmap traces).

        Returns the position after the written segment, so producers can
        thread it through a fill loop.
        """
        items = np.asarray(items)
        tenant_ids = np.asarray(tenant_ids)
        if items.shape != tenant_ids.shape or items.ndim != 1:
            raise ValueError("fill needs aligned one-dimensional items and tenant_ids")
        _check_integer_column(items, "items")
        _check_integer_column(tenant_ids, "tenant_ids")
        items = items.astype(np.int64, copy=False)
        tenant_ids = tenant_ids.astype(np.int64, copy=False)
        stop = int(start) + int(items.size)
        if not 0 <= int(start) <= stop <= len(self):
            backing = f" (backing file {self.items.filename})" if isinstance(self.items, np.memmap) else ""
            raise ValueError(
                f"segment [{start}, {stop}) does not fit a {len(self)}-reference trace: "
                f"need 0 <= start <= stop <= {len(self)}{backing}"
            )
        self.items[int(start) : stop] = items
        self.tenant_ids[int(start) : stop] = tenant_ids
        return stop

    def flush(self) -> None:
        """Flush memmap columns to disk and refresh the integrity sidecar.

        No-op for plain in-memory arrays.  For memmap-backed traces the
        ``<stem>.manifest.json`` sidecar is rewritten after the data lands,
        so :func:`open_memmap_trace` can verify the columns' length, dtype
        and CRC-32 the next time the trace is opened.
        """
        mapped = [column for column in (self.items, self.tenant_ids) if isinstance(column, np.memmap)]
        for column in mapped:
            column.flush()
        if len(mapped) == 2 and getattr(self.items, "filename", None):
            write_trace_manifest(_stem_of(Path(self.items.filename)))


def _column_paths(path: str | Path) -> tuple[Path, Path]:
    stem = Path(path)
    return stem.with_name(stem.name + ".items.npy"), stem.with_name(stem.name + ".tenants.npy")


def _manifest_path(path: str | Path) -> Path:
    stem = Path(path)
    return stem.with_name(stem.name + ".manifest.json")


def _stem_of(items_path: Path) -> Path:
    """Recover the trace stem from an ``<stem>.items.npy`` column path."""
    name = items_path.name
    suffix = ".items.npy"
    if not name.endswith(suffix):  # pragma: no cover - only reachable with foreign memmaps
        raise ValueError(f"{items_path} is not a <stem>{suffix} trace column")
    return items_path.with_name(name[: -len(suffix)])


def _crc32_of(path: Path) -> int:
    """Streamed CRC-32 of a whole file (1 MiB blocks, nothing fully resident)."""
    crc = 0
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            crc = zlib.crc32(block, crc)
    return crc & 0xFFFFFFFF


def write_trace_manifest(path: str | Path) -> Path:
    """Write the ``<stem>.manifest.json`` integrity sidecar for a trace on disk.

    Records each column file's length, dtype and streamed CRC-32.  Written
    atomically (tmp file + rename) so a crash mid-write leaves the previous
    sidecar, never a half-written one.  ``flush`` calls this automatically;
    it is public so externally produced column files can be sealed too.
    """
    columns = {}
    for name, file in zip(("items", "tenants"), _column_paths(path)):
        column = np.load(file, mmap_mode="r")  # header only; data stays on disk
        columns[name] = {
            "file": file.name,
            "length": int(column.shape[0]),
            "dtype": str(column.dtype),
            "crc32": _crc32_of(file),
        }
        del column
    manifest_path = _manifest_path(path)
    payload = json.dumps({"schema": TRACE_MANIFEST_SCHEMA, "columns": columns}, indent=2) + "\n"
    tmp = manifest_path.with_name(manifest_path.name + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    os.replace(tmp, manifest_path)
    return manifest_path


def _verify_against_manifest(path: str | Path) -> None:
    """Check column files against the sidecar manifest, if one exists."""
    manifest_path = _manifest_path(path)
    if not manifest_path.exists():
        return  # pre-sidecar trace: structural checks only
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise TraceIntegrityError(str(manifest_path), reason=f"unreadable manifest: {error}") from error
    schema = manifest.get("schema")
    if schema != TRACE_MANIFEST_SCHEMA:
        raise TraceIntegrityError(
            str(manifest_path), reason="manifest schema mismatch", expected=TRACE_MANIFEST_SCHEMA, found=schema
        )
    for name, file in zip(("items", "tenants"), _column_paths(path)):
        recorded = manifest.get("columns", {}).get(name)
        if recorded is None:
            raise TraceIntegrityError(str(manifest_path), reason=f"manifest lists no {name!r} column")
        size = os.path.getsize(file)
        expected_size = recorded["length"] * np.dtype(recorded["dtype"]).itemsize
        if size < expected_size:  # cheap truncation check before hashing
            raise TraceIntegrityError(
                str(file),
                reason=f"column file is shorter than its {recorded['length']}-element manifest entry",
                expected=f">= {expected_size} data bytes",
                found=f"{size} file bytes",
            )
        found = _crc32_of(file)
        if found != recorded["crc32"]:
            raise TraceIntegrityError(
                str(file),
                reason="column checksum mismatch (file changed since flush)",
                expected=f"crc32={recorded['crc32']}",
                found=f"crc32={found}",
            )


def verify_memmap_trace(path: str | Path) -> None:
    """Run every integrity check on an on-disk trace without opening it for use.

    Raises :class:`~repro.resilience.errors.TraceIntegrityError` on missing
    column files, unreadable/truncated ``.npy`` payloads, shape or dtype
    disagreements, and — when the ``<stem>.manifest.json`` sidecar exists —
    checksum mismatches.  Returns ``None`` when the trace is sound.
    """
    items_path, tenants_path = _column_paths(path)
    for file in (items_path, tenants_path):
        if not file.exists():
            raise TraceIntegrityError(str(file), reason="column file is missing")
    columns = {}
    for file in (items_path, tenants_path):
        try:
            columns[file] = np.load(file, mmap_mode="r")
        except (ValueError, OSError) as error:
            raise TraceIntegrityError(str(file), reason=f"unreadable .npy column: {error}") from error
    items, tenants = columns[items_path], columns[tenants_path]
    for file, column in columns.items():
        if column.ndim != 1:
            raise TraceIntegrityError(
                str(file), reason="column is not one-dimensional", expected="1-d", found=f"shape {column.shape}"
            )
        if not np.issubdtype(column.dtype, np.integer):
            raise TraceIntegrityError(
                str(file), reason="column dtype is not integral", expected="integer dtype", found=str(column.dtype)
            )
    if items.shape != tenants.shape:
        raise TraceIntegrityError(
            str(tenants_path),
            reason=f"column lengths disagree with {items_path.name}",
            expected=f"shape {items.shape}",
            found=f"shape {tenants.shape}",
        )
    _verify_against_manifest(path)


def create_memmap_trace(path: str | Path, length: int, *, segment: int = DEFAULT_SEGMENT) -> StreamingTrace:
    """Allocate a writable memmap-backed trace of ``length`` references.

    Creates ``<path>.items.npy`` and ``<path>.tenants.npy`` (standard
    ``.npy`` files) and returns the :class:`StreamingTrace` over the mapped
    columns; fill it with :meth:`StreamingTrace.fill` and
    :meth:`StreamingTrace.flush`, then reopen read-only with
    :func:`open_memmap_trace`.
    """
    if int(length) < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    items_path, tenants_path = _column_paths(path)
    items = np.lib.format.open_memmap(items_path, mode="w+", dtype=np.int64, shape=(int(length),))
    tenants = np.lib.format.open_memmap(tenants_path, mode="w+", dtype=np.int64, shape=(int(length),))
    return StreamingTrace(items=items, tenant_ids=tenants, segment=int(segment))


def open_memmap_trace(path: str | Path, *, segment: int = DEFAULT_SEGMENT, verify: bool = True) -> StreamingTrace:
    """Reopen a trace written by :func:`create_memmap_trace`, memory-mapped read-only.

    With ``verify`` (the default) the columns are integrity-checked first —
    existence, readable ``.npy`` payload, shape/dtype agreement, and the
    sidecar manifest's length/dtype/CRC-32 when one exists — raising
    :class:`~repro.resilience.errors.TraceIntegrityError` on any damage
    instead of handing a broken trace to the replay.
    """
    if verify:
        verify_memmap_trace(path)
    items_path, tenants_path = _column_paths(path)
    try:
        items = np.load(items_path, mmap_mode="r")
        tenants = np.load(tenants_path, mmap_mode="r")
    except (ValueError, OSError) as error:
        raise TraceIntegrityError(str(items_path), reason=f"unreadable .npy column: {error}") from error
    return StreamingTrace(items=items, tenant_ids=tenants, segment=int(segment))


def as_streaming(
    trace: Trace | Sequence[int] | np.ndarray,
    *,
    tenant_ids: Sequence[int] | np.ndarray | None = None,
    segment: int = DEFAULT_SEGMENT,
) -> StreamingTrace:
    """Wrap an in-memory trace (or raw access array) in the streaming interface.

    Without ``tenant_ids`` every access belongs to tenant 0, which is how a
    single-stream trace replays through the multi-tenant data plane.
    """
    items = trace.accesses if isinstance(trace, Trace) else np.asarray(trace)
    if items.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {items.shape}")
    _check_integer_column(items, "items")
    items = items.astype(np.int64, copy=False)
    if tenant_ids is None:
        ids = np.zeros(items.size, dtype=np.int64)
    else:
        ids = np.asarray(tenant_ids)
        _check_integer_column(ids, "tenant_ids")
        ids = ids.astype(np.int64, copy=False)
    return StreamingTrace(items=items, tenant_ids=ids, segment=int(segment))
