"""Checkpoint/resume chaos tests: killed runs continue bit-identically.

The headline guarantee of the resilience layer: a replay (or sweep) that is
interrupted — by an injected crash or a real ``SIGKILL`` — and restarted
with ``resume=True`` produces rows, summaries and allocations **exactly**
equal to the uninterrupted ``workers=1`` run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import numpy as np

from repro.online.replay import OnlineJob, replay_fingerprint, run_replay
from repro.resilience import CheckpointError
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec, install_faults, transient
from repro.sim.sweep import SweepJob, run_sweep
from repro.trace.drift import three_phase_pair

LENGTH_PER_PHASE = 2_000
JOB = OnlineJob(budget=240, window=1_000, epoch=400, method="hull", rate=0.5, move_cost=1.0)


@pytest.fixture(scope="module")
def workload():
    return three_phase_pair(LENGTH_PER_PHASE, seed=7)


@pytest.fixture(scope="module")
def baseline(workload):
    """The uninterrupted workers=1 reference replay."""
    return run_replay(workload, JOB)


class TestReplayCheckpointing:
    def test_checkpointing_never_changes_the_result(self, workload, baseline, tmp_path):
        checkpointed = run_replay(workload, JOB, checkpoint_dir=tmp_path, checkpoint_every=2)
        assert checkpointed == baseline

    def test_resume_from_complete_store_matches(self, workload, baseline, tmp_path):
        run_replay(workload, JOB, checkpoint_dir=tmp_path)
        resumed = run_replay(workload, JOB, checkpoint_dir=tmp_path, resume=True)
        assert resumed.rows() == baseline.rows()
        assert resumed.summary() == baseline.summary()
        assert resumed.final_allocation == baseline.final_allocation

    def test_crash_then_resume_is_bit_identical(self, workload, baseline, tmp_path):
        # Crash right after the 3rd epoch's checkpoint lands on disk.
        plan = FaultPlan((FaultSpec(site="online.checkpoint", index=3, kind="error"),))
        with install_faults(plan), pytest.raises(FaultInjected):
            run_replay(workload, JOB, checkpoint_dir=tmp_path, checkpoint_every=1)
        resumed = run_replay(workload, JOB, checkpoint_dir=tmp_path, resume=True)
        assert resumed.epochs == baseline.epochs
        assert resumed.summary() == baseline.summary()
        assert resumed == baseline

    def test_resume_is_engine_faithful(self, workload, tmp_path):
        reference = run_replay(workload, JOB, engine="reference")
        plan = FaultPlan((FaultSpec(site="online.checkpoint", index=2, kind="error"),))
        with install_faults(plan), pytest.raises(FaultInjected):
            run_replay(workload, JOB, engine="reference", checkpoint_dir=tmp_path, checkpoint_every=1)
        resumed = run_replay(workload, JOB, engine="reference", checkpoint_dir=tmp_path, resume=True)
        assert resumed == reference

    def test_resume_against_empty_store_runs_fresh(self, workload, baseline, tmp_path):
        resumed = run_replay(workload, JOB, checkpoint_dir=tmp_path, resume=True)
        assert resumed == baseline

    def test_resume_needs_a_directory(self, workload):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_replay(workload, JOB, resume=True)

    def test_wrong_job_is_rejected(self, workload, tmp_path):
        run_replay(workload, JOB, checkpoint_dir=tmp_path)
        other = OnlineJob(budget=250, window=1_000, epoch=400)
        with pytest.raises(CheckpointError, match="different run"):
            run_replay(workload, other, checkpoint_dir=tmp_path, resume=True)

    def test_fingerprint_separates_engines_and_jobs(self, workload):
        batch = replay_fingerprint(workload, JOB, "batch")
        assert batch == replay_fingerprint(workload, JOB, "batch")
        assert batch != replay_fingerprint(workload, JOB, "reference")
        assert batch != replay_fingerprint(workload, OnlineJob(budget=241, window=1_000, epoch=400), "batch")


class TestReplaySigkill:
    def test_sigkilled_replay_resumes_bit_identical(self, workload, baseline, tmp_path):
        """A real SIGKILL (self-inflicted, deterministically, after the 3rd
        checkpoint write) — then an in-process resume must match the
        uninterrupted reference exactly."""
        script = textwrap.dedent(
            f"""
            import sys
            from repro.online.replay import OnlineJob, run_replay
            from repro.resilience.faults import FaultPlan, FaultSpec, install_faults
            from repro.trace.drift import three_phase_pair

            workload = three_phase_pair({LENGTH_PER_PHASE}, seed=7)
            job = OnlineJob(budget=240, window=1000, epoch=400, method="hull", rate=0.5, move_cost=1.0)
            plan = FaultPlan((FaultSpec(site="online.checkpoint", index=3, kind="kill"),))
            with install_faults(plan):
                run_replay(workload, job, checkpoint_dir=sys.argv[1], checkpoint_every=1)
            raise SystemExit("the kill fault never fired")
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert list(tmp_path.glob("step-*.ckpt")), "no checkpoint survived the kill"
        resumed = run_replay(workload, JOB, checkpoint_dir=tmp_path, resume=True)
        assert resumed == baseline


class TestProfileHold:
    def test_failed_extraction_holds_last_known_good(self, workload, baseline):
        # Tenant 1's profile extraction fails on every epoch after the first
        # two; the replay must finish, hold the allocation on failed epochs,
        # and count every failure.
        epochs = len(baseline.epochs)
        plan = FaultPlan((transient("online.profile", 1),))
        with install_faults(plan):
            held = run_replay(workload, JOB)
        assert held.profile_failures == epochs
        assert held.accesses == baseline.accesses
        # the scoreboard stays schema-stable: failures are not a summary key
        assert "profile_failures" not in held.summary()
        assert set(held.epochs[0].row()) == set(baseline.epochs[0].row())

    def test_failed_epochs_never_reallocate(self, workload):
        plan = FaultPlan((transient("online.profile", 0),))  # every epoch, tenant 0
        with install_faults(plan):
            held = run_replay(workload, JOB)
        # no controller consults at all: the initial split never moves
        assert held.reallocations == 0
        assert all(not epoch.reallocated for epoch in held.epochs)

    def test_metrics_series_flags_failed_epochs(self, workload):
        from repro.obs import MetricsRegistry, recording

        registry = MetricsRegistry()
        plan = FaultPlan((transient("online.profile", 1),))
        with recording(registry), install_faults(plan):
            run_replay(workload, JOB)
        rows = [r["row"] for r in registry.records() if r.get("type") == "series" and r.get("name") == "online.epochs"]
        assert rows
        assert all(row["profile_failures"] == 1 for row in rows)


class TestSweepResume:
    def _job(self):
        rng = np.random.default_rng(3)
        trace = rng.zipf(1.4, size=10_000) % 500
        return SweepJob(
            trace=trace,
            name="chaos",
            policies=("lru", "fifo", "random", "set-associative"),
            capacities=tuple(range(8, 129, 8)),
            ways=4,
            seed=5,
        )

    def test_interrupted_sweep_resumes_identically(self, tmp_path):
        job = self._job()
        reference = run_sweep(job)
        plan = FaultPlan((FaultSpec(site="sweep.checkpoint", index=2, kind="error"),))
        with install_faults(plan), pytest.raises(FaultInjected):
            run_sweep(job, checkpoint_dir=tmp_path, checkpoint_every=1)
        resumed = run_sweep(job, checkpoint_dir=tmp_path, resume=True)
        for policy in job.policies:
            assert resumed[policy].capacities == reference[policy].capacities
            assert resumed[policy].hits == reference[policy].hits

    def test_resume_under_different_worker_count(self, tmp_path):
        job = self._job()
        reference = run_sweep(job)
        plan = FaultPlan((FaultSpec(site="sweep.checkpoint", index=1, kind="error"),))
        with install_faults(plan), pytest.raises(FaultInjected):
            run_sweep(job, checkpoint_dir=tmp_path, checkpoint_every=1)
        resumed = run_sweep(job, workers=2, checkpoint_dir=tmp_path, resume=True)
        for policy in job.policies:
            assert resumed[policy].hits == reference[policy].hits

    def test_wrong_sweep_is_rejected(self, tmp_path):
        job = self._job()
        run_sweep(job, checkpoint_dir=tmp_path)
        other = SweepJob(trace=np.arange(100), name="chaos", policies=("lru",), capacities=(8, 16))
        with pytest.raises(CheckpointError, match="different run"):
            run_sweep(other, checkpoint_dir=tmp_path, resume=True)
