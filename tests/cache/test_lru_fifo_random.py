"""Unit tests for the fully-associative cache policies (LRU, FIFO, random)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheStats, FIFOCache, LRUCache, RandomCache, simulate_trace


class TestCacheStats:
    def test_record_and_ratios(self):
        stats = CacheStats()
        stats.record(1, True)
        stats.record(2, False)
        stats.record(1, True)
        assert stats.accesses == 3
        assert stats.hits == 2 and stats.misses == 1
        assert stats.hit_ratio == pytest.approx(2 / 3)
        assert stats.miss_ratio == pytest.approx(1 / 3)
        assert stats.per_item_hits == {1: 2}

    def test_empty_ratios(self):
        stats = CacheStats()
        assert stats.hit_ratio == 0.0
        assert stats.miss_ratio == 0.0

    def test_merge(self):
        a = CacheStats(accesses=2, hits=1, misses=1, evictions=0, per_item_hits={1: 1})
        b = CacheStats(accesses=3, hits=2, misses=1, evictions=1, per_item_hits={1: 1, 2: 1})
        merged = a.merge(b)
        assert merged.accesses == 5
        assert merged.hits == 3
        assert merged.evictions == 1
        assert merged.per_item_hits == {1: 2, 2: 1}


class TestLRU:
    def test_basic_hit_miss_sequence(self):
        cache = LRUCache(2)
        results = [cache.access(x) for x in [0, 1, 0, 2, 1]]
        assert results == [False, False, True, False, False]

    def test_eviction_order_is_lru_not_fifo(self):
        cache = LRUCache(2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 becomes MRU; 1 is now LRU
        cache.access(2)  # evicts 1
        assert cache.contents() == {0, 2}
        assert cache.access(1) is False

    def test_capacity_respected(self):
        cache = LRUCache(3)
        for item in range(10):
            cache.access(item)
        assert len(cache.contents()) == 3
        assert cache.contents() == {7, 8, 9}

    def test_recency_order(self):
        cache = LRUCache(3)
        for item in [5, 6, 7, 5]:
            cache.access(item)
        assert cache.recency_order() == [6, 7, 5]

    def test_reset(self):
        cache = LRUCache(2)
        cache.run([0, 1, 0])
        cache.reset()
        assert cache.contents() == set()
        assert cache.stats.accesses == 0

    def test_run_records_stats(self):
        cache = LRUCache(2)
        stats = cache.run([0, 1, 0, 2, 0])
        assert stats.accesses == 5
        assert stats.hits == 2
        assert stats.evictions >= 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(TypeError):
            LRUCache("four")

    def test_name(self):
        assert LRUCache(1).name == "lru"

    def test_single_entry_cache(self):
        cache = LRUCache(1)
        assert cache.access(3) is False
        assert cache.access(3) is True
        assert cache.access(4) is False
        assert cache.access(3) is False


class TestFIFO:
    def test_fifo_ignores_recency(self):
        # same access pattern as the LRU test, but FIFO evicts 0 (inserted first)
        cache = FIFOCache(2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # hit, but does not refresh insertion order
        cache.access(2)  # evicts 0
        assert cache.contents() == {1, 2}

    def test_fifo_hits_on_resident(self):
        cache = FIFOCache(3)
        results = [cache.access(x) for x in [1, 2, 3, 1, 2, 3]]
        assert results == [False, False, False, True, True, True]

    def test_fifo_differs_from_lru_on_some_trace(self):
        trace = [0, 1, 0, 2, 1, 0]
        lru = simulate_trace(LRUCache(2), trace)
        fifo = simulate_trace(FIFOCache(2), trace)
        assert lru.hits != fifo.hits

    def test_name_and_reset(self):
        cache = FIFOCache(2)
        assert cache.name == "fifo"
        cache.run([1, 2, 3])
        cache.reset()
        assert cache.contents() == set()


class TestRandom:
    def test_reproducible_with_seed(self):
        trace = list(np.random.default_rng(0).integers(0, 20, 200))
        a = RandomCache(5, rng=7).run(trace)
        b = RandomCache(5, rng=7).run(trace)
        assert a.hits == b.hits

    def test_capacity_respected(self, rng):
        cache = RandomCache(4, rng=rng)
        for item in range(50):
            cache.access(item)
        assert len(cache.contents()) == 4

    def test_hits_on_resident_items(self, rng):
        cache = RandomCache(3, rng=rng)
        cache.access(1)
        assert cache.access(1) is True

    def test_internal_index_consistency_after_evictions(self, rng):
        cache = RandomCache(3, rng=rng)
        for item in [0, 1, 2, 3, 4, 2, 5, 1, 6, 0, 7]:
            cache.access(item)
        # every resident item must report a hit immediately after
        for item in cache.contents():
            assert cache.access(item) is True

    def test_reset(self, rng):
        cache = RandomCache(2, rng=rng)
        cache.run([1, 2, 3])
        cache.reset()
        assert cache.contents() == set()

    def test_name(self):
        assert RandomCache(2).name == "random"


class TestSimulateTrace:
    def test_resets_before_running(self):
        cache = LRUCache(2)
        cache.run([0, 1])
        stats = simulate_trace(cache, [0, 1, 0])
        assert stats.accesses == 3
        assert stats.hits == 1  # 0 and 1 are cold again after the reset

    def test_accepts_numpy_arrays(self):
        stats = simulate_trace(LRUCache(2), np.asarray([0, 1, 0, 1]))
        assert stats.hits == 2
