"""repro — a reproduction of *Symmetric Locality: Definition and Initial Results*.

The package implements the paper's theory of the locality of data
re-traversals indexed by the symmetric group, together with every substrate
needed to evaluate it: a permutation/Bruhat-order toolkit, LRU and alternative
cache simulators, reuse-distance algorithms for arbitrary traces, synthetic
workload generators, and an application layer for permutation-equivariant
deep-learning access patterns.

Quick start
-----------
>>> from repro import Permutation, cache_hit_vector, chain_find
>>> sawtooth = Permutation.reverse(4)
>>> [int(h) for h in cache_hit_vector(sawtooth)]
[1, 2, 3, 4]
>>> chain = chain_find(Permutation.identity(4))
>>> chain.end.is_reverse()
True

Subpackages
-----------
``repro.api``
    The public experiment API: :func:`repro.api.profile`,
    :func:`repro.api.sweep`, :func:`repro.api.partition` and
    :func:`repro.api.online`, all speaking the common job/result protocol of
    the engine layer.
``repro.engine``
    The shared experiment substrate: segment arithmetic over streaming
    traces, one columnar stack-distance pass per tenant, lane simulators,
    and the worker-pool runner (with its bit-identical single-process
    reference mode) that every experiment path fans out through.
``repro.core``
    The paper's primary contribution: symmetric locality theory, Algorithm 1
    (reuse-distance histograms), Algorithm 2 (ChainFind), Theorems 2-4, and
    the appendix combinatorics.
``repro.cache``
    Cache simulators (LRU, FIFO, Belady-OPT, random, set-associative,
    multi-level) and stack-distance / miss-ratio-curve algorithms for
    arbitrary traces.
``repro.trace``
    Trace containers, re-traversal generators and synthetic workloads
    (STREAM, matrix multiply, stencil, MLP, attention, GNN).
``repro.profiling``
    Approximate MRC profiling at production scale: SHARDS spatial sampling,
    a one-pass streaming reuse-time/AET model, a sharded parallel execution
    engine, and curve-error metrics.
``repro.sim``
    The policy-sweep engine: the full ``policies × capacities`` miss-ratio
    matrix of a trace in one or few passes (single-pass exact LRU grids,
    lane-vectorised FIFO/random kernels, set-associative fan-out).
``repro.alloc``
    Multi-tenant cache partitioning: divide a shared budget among
    co-running workloads using their exact or approximate MRCs (greedy, an
    exact DP, and Talus-style convex-hull allocation) and validate against
    the simulated shared cache.
``repro.ml``
    The Section VI application layer: permutation-equivariant models and
    Theorem-4 traversal scheduling for their parameter accesses.
``repro.analysis``
    Experiment drivers that regenerate every figure and numeric claim of the
    paper (used by the ``benchmarks/`` harness).
"""

from .core import (  # noqa: F401
    ChainFindResult,
    DependencyDAG,
    LocalityProfile,
    MissRatioLabeling,
    Permutation,
    RankedMissRatioLabeling,
    TransposedLabeling,
    alternating_schedule,
    best_feasible_extension,
    bruhat_leq,
    cache_hit_vector,
    chain_find,
    count_inversions,
    covers,
    is_covering,
    locality_profile,
    mahonian_number,
    matrix_traversal_costs,
    max_inversions,
    miss_ratio,
    miss_ratio_curve,
    random_permutation,
    reuse_distances,
    stack_distances,
    theorem2_deficit,
    theorem3_compare,
    total_reuse,
)

__version__ = "1.0.0"

__all__ = [
    "ChainFindResult",
    "DependencyDAG",
    "LocalityProfile",
    "MissRatioLabeling",
    "Permutation",
    "RankedMissRatioLabeling",
    "TransposedLabeling",
    "alternating_schedule",
    "best_feasible_extension",
    "bruhat_leq",
    "cache_hit_vector",
    "chain_find",
    "count_inversions",
    "covers",
    "is_covering",
    "locality_profile",
    "mahonian_number",
    "matrix_traversal_costs",
    "max_inversions",
    "miss_ratio",
    "miss_ratio_curve",
    "random_permutation",
    "reuse_distances",
    "stack_distances",
    "theorem2_deficit",
    "theorem3_compare",
    "total_reuse",
    "__version__",
]
