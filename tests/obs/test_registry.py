"""MetricsRegistry: metric semantics, the recording context, merge laws."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, get_registry, recording, span
from repro.obs.registry import Histogram


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events", source="a")
        counter.inc()
        counter.add(4)
        assert registry.counter("events", source="a").value == 5

    def test_labels_address_distinct_counters(self):
        registry = MetricsRegistry()
        registry.counter("events", source="a").inc()
        registry.counter("events", source="b").add(2)
        assert registry.counter("events", source="a").value == 1
        assert registry.counter("events", source="b").value == 2

    def test_label_keyword_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("events", a=1, b=2).inc()
        assert registry.counter("events", b=2, a=1).value == 1

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError, match="monotone"):
            MetricsRegistry().counter("events").add(-1)


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        assert gauge.value is None and not gauge.updated
        gauge.set(4)
        gauge.set(8)
        assert gauge.value == 8 and gauge.updated


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", edges=(1, 2, 4), labels={})
        for value, expected in [(0.5, 0), (1, 0), (1.5, 1), (2, 1), (3, 2), (4, 2), (5, 3)]:
            assert h.bucket_index(value) == expected, value

    def test_observe_fills_buckets_and_totals(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", edges=(1, 4, 16))
        h.observe_many([0, 2, 3, 20])
        assert h.counts == [1, 2, 0, 1]
        assert h.count == 4
        assert h.total == 25.0

    def test_rejects_bad_edges(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("a", edges=())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("b", edges=(1, 1, 2))
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("c", edges=(1, float("inf")))

    def test_rejects_conflicting_edges_for_same_name(self):
        registry = MetricsRegistry()
        registry.histogram("h", edges=(1, 2))
        with pytest.raises(ValueError, match="already exists"):
            registry.histogram("h", edges=(1, 2, 4))

    @given(
        edges=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=8, unique=True).map(
            lambda xs: tuple(sorted(xs))
        ),
        values=st.lists(st.floats(min_value=-10, max_value=2000, allow_nan=False), max_size=50),
    )
    def test_every_value_lands_in_exactly_one_bucket(self, edges, values):
        h = Histogram("h", edges=edges, labels={})
        h.observe_many(values)
        assert sum(h.counts) == len(values) == h.count
        for value in values:
            index = h.bucket_index(value)
            # the chosen bucket's upper edge is the first edge >= value
            if index < len(edges):
                assert value <= edges[index]
            if index > 0:
                assert value > edges[index - 1]


class TestSpanAndSeries:
    def test_span_records_into_active_registry(self):
        registry = MetricsRegistry()
        with recording(registry):
            with span("work", stage="x") as timer:
                pass
        assert timer.seconds >= 0.0
        stats = registry.snapshot()[("span", "work", (("stage", "x"),))]
        assert stats[0] == 1  # count

    def test_span_measures_even_when_disabled(self):
        with span("work") as timer:
            total = sum(range(1000))
        assert total == 499500
        assert timer.seconds > 0.0

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = get_registry()
        assert not registry.enabled
        registry.counter("x").add(5)
        registry.gauge("x").set(1)
        registry.histogram("x", edges=(1,)).observe(0)
        registry.series("x").record(epoch=0)
        assert registry.counter("x").value == 0
        assert registry.records() == []

    def test_recording_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with recording(outer):
            get_registry().counter("c").inc()
            with recording(inner):
                get_registry().counter("c").inc()
            get_registry().counter("c").inc()
        assert not get_registry().enabled
        assert outer.counter("c").value == 2
        assert inner.counter("c").value == 1

    def test_series_preserves_row_order(self):
        registry = MetricsRegistry()
        series = registry.series("epochs")
        series.record(epoch=0, hits=1)
        series.record(epoch=1, hits=2)
        assert len(series) == 2
        assert [row["epoch"] for row in series.rows] == [0, 1]

    def test_record_span_aggregates_deterministically(self):
        registry = MetricsRegistry()
        for seconds in (0.25, 0.5, 0.125):
            registry.record_span("chunk", seconds, worker="pool")
        count, total, mn, mx = registry.snapshot()[("span", "chunk", (("worker", "pool"),))]
        assert (count, total, mn, mx) == (3, 0.875, 0.125, 0.5)


# -- merge ------------------------------------------------------------------- #
_names = st.sampled_from(["a", "b", "c"])
_labels = st.dictionaries(st.sampled_from(["k", "m"]), st.sampled_from(["1", "2"]), max_size=1)


@st.composite
def registries(draw):
    """A small random registry exercising every metric kind."""
    registry = MetricsRegistry()
    for _ in range(draw(st.integers(0, 4))):
        registry.counter(draw(_names), **draw(_labels)).add(draw(st.integers(0, 100)))
    for _ in range(draw(st.integers(0, 3))):
        registry.gauge(draw(_names), **draw(_labels)).set(draw(st.integers(-5, 5)))
    for _ in range(draw(st.integers(0, 3))):
        registry.histogram("hist", edges=(1, 4, 16)).observe(draw(st.integers(0, 32)))
    for _ in range(draw(st.integers(0, 3))):
        registry.record_span(draw(_names), draw(st.floats(0, 1, allow_nan=False)), **draw(_labels))
    for _ in range(draw(st.integers(0, 2))):
        registry.series("s").record(v=draw(st.integers(0, 9)))
    return registry


@st.composite
def registry_triples(draw):
    return draw(registries()), draw(registries()), draw(registries())


class TestMerge:
    def test_counters_add_and_gauges_right_win(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").add(3)
        right.counter("c").add(4)
        left.gauge("g").set(1)
        right.gauge("g").set(2)
        left.gauge("only_left").set(9)
        left.merge(right)
        assert left.counter("c").value == 7
        assert left.gauge("g").value == 2
        assert left.gauge("only_left").value == 9  # right never wrote it

    def test_histograms_require_identical_edges(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", edges=(1, 2)).observe(1)
        right.histogram("h", edges=(1, 2, 4)).observe(1)
        with pytest.raises(ValueError, match="cannot merge"):
            left.merge(right)

    def test_series_concatenate_in_order(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.series("s").record(v=1)
        right.series("s").record(v=2)
        left.merge(right)
        assert [row["v"] for row in left.series("s").rows] == [1, 2]

    @given(registry_triples())
    def test_merge_is_associative(self, triple):
        a1, b1, c1 = triple
        # merge mutates the left operand, so build each grouping from
        # independent snapshots of the same measurements via fresh merges
        # into empty registries.
        def clone(r):
            return MetricsRegistry().merge(r)

        left_first = clone(a1).merge(b1).merge(c1)
        right_first = clone(a1).merge(clone(b1).merge(c1))
        assert left_first.snapshot() == right_first.snapshot()

    @given(registries())
    def test_merge_into_empty_is_identity(self, registry):
        assert MetricsRegistry().merge(registry).snapshot() == registry.snapshot()
