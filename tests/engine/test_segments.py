"""Unit tests for the engine's segment/boundary arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.segments import chunk_spans, phase_of_event, phase_of_last_event, replay_stops, strided_spans


class TestStridedSpans:
    def test_exact_division(self):
        assert list(strided_spans(6, 3)) == [(0, 3), (3, 6)]

    def test_short_tail(self):
        assert list(strided_spans(7, 3)) == [(0, 3), (3, 6), (6, 7)]

    def test_empty(self):
        assert list(strided_spans(0, 4)) == []

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            list(strided_spans(5, 0))


class TestChunkSpans:
    @pytest.mark.parametrize("n,pieces", [(10, 3), (7, 7), (5, 2), (100, 16), (3, 8)])
    def test_matches_array_split(self, n, pieces):
        spans = chunk_spans(n, pieces)
        parts = np.array_split(np.arange(n), min(pieces, n))
        assert [(int(p[0]), int(p[-1]) + 1) for p in parts] == spans

    def test_zero_events_single_empty_span(self):
        assert chunk_spans(0, 4) == [(0, 0)]

    def test_rejects_bad_pieces(self):
        with pytest.raises(ValueError):
            chunk_spans(5, 0)


class TestReplayStops:
    def test_matches_legacy_inline_schedule(self):
        # The exact expression run_replay used before the engine existed.
        n, epoch, boundaries = 10_500, 500, (0, 3000, 6000)
        epoch_ends = set(range(epoch, n, epoch)) | {n}
        legacy = sorted(epoch_ends | {b for b in boundaries if b > 0})
        stops, ends = replay_stops(n, epoch, boundaries)
        assert stops == legacy
        assert ends == frozenset(epoch_ends)

    def test_partial_final_epoch(self):
        stops, ends = replay_stops(7, 3)
        assert stops == [3, 6, 7]
        assert ends == frozenset({3, 6, 7})

    def test_interior_boundaries_merge_without_becoming_epochs(self):
        stops, ends = replay_stops(10, 5, (0, 7))
        assert stops == [5, 7, 10]
        assert 7 not in ends

    def test_boundary_past_the_trace_is_ignored(self):
        stops, _ = replay_stops(10, 5, (0, 10, 15))
        assert stops == [5, 10]

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            replay_stops(0, 5)


class TestPhaseLabels:
    BOUNDARIES = (0, 3000, 6000)

    def test_phase_of_event(self):
        assert phase_of_event(self.BOUNDARIES, 0) == 0
        assert phase_of_event(self.BOUNDARIES, 2999) == 0
        assert phase_of_event(self.BOUNDARIES, 3000) == 1
        assert phase_of_event(self.BOUNDARIES, 6001) == 2

    def test_boundary_epoch_labeled_by_its_last_event(self):
        # Regression for the boundary-epoch pitfall: an epoch ending exactly
        # on a phase boundary contains only old-phase events, even though the
        # replay's phase cursor has already advanced past the boundary.
        assert phase_of_last_event(self.BOUNDARIES, 3000) == 0
        assert phase_of_last_event(self.BOUNDARIES, 3001) == 1
        assert phase_of_last_event(self.BOUNDARIES, 6000) == 1

    def test_replay_attributes_boundary_epochs_to_the_old_phase(self):
        # End-to-end: with epoch dividing the phase length, every phase's
        # last epoch ends exactly on a boundary and must carry that phase's
        # label (this is pinned bit-exactly by the golden online fixture too).
        from repro.online.replay import OnlineJob, run_replay
        from repro.trace.drift import three_phase_pair

        workload = three_phase_pair(1500, seed=7)
        phase_length = workload.boundaries[1]
        assert phase_length % 500 == 0
        job = OnlineJob(budget=320, window=1500, epoch=500, rate=0.5, name="boundary")
        result = run_replay(workload, job)
        for epoch in result.epochs:
            assert epoch.phase == phase_of_last_event(workload.boundaries, epoch.end)
        boundary_epochs = [e for e in result.epochs if e.end in workload.boundaries]
        assert boundary_epochs, "expected epochs ending exactly on phase boundaries"
        for epoch in boundary_epochs:
            assert epoch.phase == phase_of_event(workload.boundaries, epoch.end) - 1
