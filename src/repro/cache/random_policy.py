"""Fully-associative cache with uniform random replacement.

Random replacement is the memoryless baseline: it carries no locality
information at all, so comparing it against LRU on re-traversal traces
quantifies how much of the symmetric-locality benefit is attributable to
recency tracking rather than to mere residency.
"""

from __future__ import annotations

import numpy as np

from .._util import ensure_rng
from .base import CacheModel

__all__ = ["RandomCache"]


class RandomCache(CacheModel):
    """Fully-associative cache evicting a uniformly random resident item.

    Parameters
    ----------
    capacity:
        Cache capacity in items.
    rng:
        Seed or :class:`numpy.random.Generator`; runs with the same seed are
        reproducible.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | int | None = None):
        super().__init__(capacity)
        self._rng = ensure_rng(rng)
        self._items: list[int] = []
        self._index: dict[int, int] = {}

    @property
    def name(self) -> str:
        """Policy name used in reports."""
        return "random"

    def access(self, item: int) -> bool:
        """Access one item; return ``True`` on a hit."""
        if item in self._index:
            return True
        if len(self._items) >= self.capacity:
            victim_pos = int(self._rng.integers(len(self._items)))
            victim = self._items[victim_pos]
            last = self._items.pop()
            if victim_pos < len(self._items):
                self._items[victim_pos] = last
                self._index[last] = victim_pos
            del self._index[victim]
            self.stats.evictions += 1
        self._index[item] = len(self._items)
        self._items.append(item)
        return False

    def contents(self) -> set[int]:
        """The set of items currently cached."""
        return set(self._items)

    def _reset_state(self) -> None:
        self._items = []
        self._index = {}
