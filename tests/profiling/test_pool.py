"""Unit tests for the shared process-pool helpers."""

from __future__ import annotations

import os

import pytest

from repro.profiling.pool import check_workers, pool_map


def _square(x: int) -> int:
    return x * x


def _tag_pid(x: int) -> tuple[int, int]:
    return x, os.getpid()


class TestCheckWorkers:
    def test_accepts_positive(self):
        assert check_workers(1) == 1
        assert check_workers(8) == 8

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_workers(bad)


class TestPoolMap:
    def test_inline_when_single_worker(self):
        values, pids = zip(*pool_map(_tag_pid, [1, 2, 3], workers=1))
        assert values == (1, 2, 3)
        assert set(pids) == {os.getpid()}

    def test_inline_when_single_task(self):
        _, pid = pool_map(_tag_pid, [5], workers=4)[0]
        assert pid == os.getpid()

    def test_pooled_preserves_order(self):
        assert pool_map(_square, list(range(20)), workers=3) == [x * x for x in range(20)]

    def test_empty_tasks(self):
        assert pool_map(_square, [], workers=4) == []

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            pool_map(_square, [1], workers=0)
