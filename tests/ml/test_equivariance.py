"""Unit tests for the permutation-equivariance checks (Section VI-A1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Permutation, random_permutation
from repro.ml import (
    gelu,
    hidden_unit_permutation_invariant,
    is_permutation_equivariant,
    layer_norm,
    linear,
    relu,
    self_attention,
    softmax,
)


class TestComponentFunctions:
    def test_relu(self):
        assert np.array_equal(relu(np.asarray([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gelu_limits_and_positive_branch(self):
        # GELU approaches 0 for very negative inputs, the identity for large
        # positive inputs, and is increasing on the non-negative axis.
        assert gelu(np.asarray([-10.0]))[0] == pytest.approx(0.0, abs=1e-6)
        assert gelu(np.asarray([10.0]))[0] == pytest.approx(10.0, abs=1e-6)
        x = np.linspace(0, 2, 21)
        assert np.all(np.diff(gelu(x)) > 0)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.standard_normal((5, 7))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_softmax_stability_large_values(self):
        x = np.asarray([[1000.0, 1000.0]])
        assert np.allclose(softmax(x), [[0.5, 0.5]])

    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((4, 16))
        y = layer_norm(x)
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_linear_bias(self, rng):
        x = rng.standard_normal((3, 4))
        w = rng.standard_normal((4, 2))
        b = rng.standard_normal(2)
        assert np.allclose(linear(x, w, b), x @ w + b)


class TestEquivariance:
    @pytest.mark.parametrize(
        "fn",
        [
            relu,
            gelu,
            layer_norm,
            lambda x: softmax(x, axis=-1),
        ],
    )
    def test_elementwise_and_rowwise_ops_equivariant(self, fn):
        assert is_permutation_equivariant(fn, tokens=7, features=5, rng=0)

    def test_linear_layer_equivariant(self, rng):
        w = rng.standard_normal((5, 3))
        assert is_permutation_equivariant(lambda x: linear(x, w), tokens=7, features=5, rng=0)

    def test_self_attention_equivariant(self, rng):
        d = 6
        w_q, w_k, w_v = (rng.standard_normal((d, d)) for _ in range(3))
        w_o = rng.standard_normal((d, d))
        assert is_permutation_equivariant(lambda x: self_attention(x, w_q, w_k, w_v, w_o), tokens=5, features=d, rng=1)

    def test_positional_function_is_not_equivariant(self):
        # adding a position-dependent bias breaks equivariance, and the check
        # must detect it
        def positional(x):
            return x + np.arange(x.shape[0])[:, None]

        assert not is_permutation_equivariant(positional, tokens=6, features=3, rng=0)

    def test_cumulative_function_is_not_equivariant(self):
        assert not is_permutation_equivariant(lambda x: np.cumsum(x, axis=0), tokens=6, features=3, rng=0)


class TestHiddenUnitInvariance:
    def test_holds_for_consistent_permutation(self, rng):
        w1 = rng.standard_normal((6, 9))
        w2 = rng.standard_normal((9, 4))
        sigma = random_permutation(9, rng)
        assert hidden_unit_permutation_invariant(w1, w2, sigma, rng=0)

    def test_holds_with_gelu(self, rng):
        w1 = rng.standard_normal((4, 5))
        w2 = rng.standard_normal((5, 2))
        assert hidden_unit_permutation_invariant(w1, w2, random_permutation(5, rng), activation=gelu, rng=0)

    def test_detects_inconsistent_permutation(self, rng):
        # permuting only one side changes the function: emulate by wrapping a
        # fake "activation" that permutes its input, breaking consistency.
        w1 = rng.standard_normal((4, 6))
        w2 = rng.standard_normal((6, 3))
        sigma = Permutation([1, 0, 2, 3, 4, 5])
        perm = np.asarray(Permutation([2, 3, 4, 5, 0, 1]).one_line)

        def mangling_activation(h):
            return np.maximum(h, 0.0)[:, perm]

        assert not hidden_unit_permutation_invariant(w1, w2, sigma, activation=mangling_activation, rng=0)

    def test_shape_validation(self, rng):
        w1 = rng.standard_normal((4, 6))
        w2 = rng.standard_normal((5, 3))
        with pytest.raises(ValueError):
            hidden_unit_permutation_invariant(w1, w2, Permutation.identity(6))
        w2_ok = rng.standard_normal((6, 3))
        with pytest.raises(ValueError):
            hidden_unit_permutation_invariant(w1, w2_ok, Permutation.identity(4))
