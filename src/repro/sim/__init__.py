"""Policy-sweep simulation engine: many cache configurations per trace pass.

Comparing replacement policies or sizing a cache means asking "what is the
miss ratio of {LRU, FIFO, random, set-associative} × {capacity grid}" — and
answering it by replaying the trace once per :class:`~repro.cache.base.CacheModel`
instance costs ``policies × capacities`` full pure-Python passes.  This
subsystem collapses that matrix:

:mod:`repro.sim.kernels`
    Single-pass multi-capacity kernels: the LRU grid from one stack-distance
    histogram (exact, via stack inclusion), lane-vectorised FIFO and seeded
    random replacement, and set-partitioned stack-distance passes for
    set-associative LRU.
:mod:`repro.sim.sweep`
    The :class:`~repro.sim.sweep.SweepJob` / :class:`~repro.sim.sweep.SweepResult`
    API and :func:`~repro.sim.sweep.run_sweep`, which fans kernel tasks across
    the engine's shared process pool (:mod:`repro.engine.runner`).  Results are
    bit-identical for every ``workers`` value, including the seeded random
    policy.
:mod:`repro.sim.partitioned`
    The batch partitioned-LRU data plane of the online replay engine: whole
    segments per kernel call (hit iff stack distance ≤ current occupancy),
    per-tenant streaming distances shared by every capacity schedule, and a
    bounded-memory :func:`~repro.sim.partitioned.replay_partitioned` for
    ``numpy.memmap``-backed traces.  Bit-identical to the per-event
    ``OrderedDict`` reference simulator.

The CLI exposes the engine as ``python -m repro sweep``; the
``policy-sweep`` experiment and ``benchmarks/test_bench_sweep.py`` build on it.

Examples
--------
>>> from repro.sim import SweepJob, run_sweep
>>> from repro.trace import zipfian_trace
>>> trace = zipfian_trace(5000, 256, exponent=0.9, rng=5).accesses
>>> job = SweepJob(trace=trace, policies=("lru", "fifo"), capacities=(16, 64, 256))
>>> result = run_sweep(job)
>>> result["lru"].miss_ratio_at(64) <= result["lru"].miss_ratio_at(16)
True
"""

from .kernels import (
    check_capacities,
    compact_trace,
    fifo_sweep_hits,
    lru_sweep_hits,
    random_sweep_hits,
    set_associative_sweep_hits,
)
from ..engine.columnar import PrecomputedTenantDistances, TenantDistanceStreams
from .partitioned import BatchPartitionedLRU, partitioned_lru_segment, replay_partitioned
from .sweep import POLICIES, PolicySweep, SweepJob, SweepResult, naive_sweep_hits, run_sweep

__all__ = [
    "check_capacities",
    "compact_trace",
    "fifo_sweep_hits",
    "lru_sweep_hits",
    "random_sweep_hits",
    "set_associative_sweep_hits",
    "BatchPartitionedLRU",
    "PrecomputedTenantDistances",
    "TenantDistanceStreams",
    "partitioned_lru_segment",
    "replay_partitioned",
    "POLICIES",
    "PolicySweep",
    "SweepJob",
    "SweepResult",
    "naive_sweep_hits",
    "run_sweep",
]
