"""Unit tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Permutation
from repro.trace import (
    attention_parameter_trace,
    gnn_neighbor_trace,
    matrix_multiply_blocked,
    matrix_multiply_ijk,
    mlp_parameter_trace,
    stencil_sweeps,
    stream_copy,
    stream_triad,
    summarize,
)
from repro.cache import LRUCache


class TestStream:
    def test_copy_footprint_and_length(self):
        trace = stream_copy(100, block=1)
        assert len(trace) == 200
        assert trace.footprint == 200

    def test_copy_blocked_granularity(self):
        trace = stream_copy(100, block=10)
        assert trace.footprint == 20

    def test_copy_no_reuse_within_single_pass(self):
        stats = summarize(stream_copy(50))
        assert stats.cold_accesses == stats.accesses

    def test_repetitions_reuse_everything(self):
        trace = stream_copy(50, repetitions=3)
        stats = summarize(trace)
        assert stats.cold_accesses == 100
        assert stats.accesses == 300

    def test_triad_three_arrays(self):
        trace = stream_triad(60, block=4)
        assert trace.footprint == 45
        assert len(trace) == 180

    def test_stream_thrashes_small_cache(self):
        trace = stream_copy(64, repetitions=4)
        stats = LRUCache(16).run(trace)
        assert stats.hit_ratio == 0.0


class TestLinearAlgebra:
    def test_matmul_ijk_footprint(self):
        n = 4
        trace = matrix_multiply_ijk(n)
        assert trace.footprint == 3 * n * n
        assert len(trace) == 3 * n**3

    def test_matmul_blocked_same_footprint_and_length(self):
        n, tile = 6, 2
        naive = matrix_multiply_ijk(n)
        blocked = matrix_multiply_blocked(n, tile)
        assert naive.footprint == blocked.footprint
        assert len(naive) == len(blocked)
        assert np.array_equal(np.sort(naive.distinct_items()), np.sort(blocked.distinct_items()))

    def test_blocking_improves_locality(self):
        n, tile = 8, 2
        cache = n * n // 2
        naive = LRUCache(cache).run(matrix_multiply_ijk(n))
        blocked = LRUCache(cache).run(matrix_multiply_blocked(n, tile))
        assert blocked.miss_ratio < naive.miss_ratio

    def test_stencil_reverse_odd_improves_locality(self):
        n, sweeps, cache = 64, 4, 16
        forward = LRUCache(cache).run(stencil_sweeps(n, sweeps, reverse_odd=False))
        zigzag = LRUCache(cache).run(stencil_sweeps(n, sweeps, reverse_odd=True))
        assert zigzag.miss_ratio < forward.miss_ratio

    def test_stencil_length(self):
        trace = stencil_sweeps(10, 2)
        assert len(trace) == 2 * (10 - 2) * 3


class TestModelTraces:
    def test_mlp_trace_shape(self):
        trace = mlp_parameter_trace([4, 8, 2], passes=2, granularity=1)
        weights = 4 * 8 + 8 * 2
        assert trace.footprint == weights
        assert len(trace) == 2 * weights

    def test_mlp_requires_two_layers(self):
        with pytest.raises(ValueError):
            mlp_parameter_trace([4])

    def test_mlp_weight_order_applied_on_odd_passes(self):
        m = 4 * 2 + 2 * 2
        order = Permutation.reverse(m)
        trace = mlp_parameter_trace([4, 2, 2], passes=2, granularity=1, weight_order=order)
        first = trace.accesses[:m]
        second = trace.accesses[m:]
        assert np.array_equal(second, first[::-1])

    def test_mlp_weight_order_size_mismatch(self):
        with pytest.raises(ValueError):
            mlp_parameter_trace([4, 2], passes=2, weight_order=Permutation.identity(3))

    def test_mlp_sawtooth_passes_beat_cyclic(self):
        layers = [16, 32, 8]
        m = 16 * 32 + 32 * 8
        cache = m // 2
        cyclic = mlp_parameter_trace(layers, passes=4, granularity=1)
        saw = mlp_parameter_trace(layers, passes=4, granularity=1, weight_order=Permutation.reverse(m))
        assert LRUCache(cache).run(saw).miss_ratio < LRUCache(cache).run(cyclic).miss_ratio

    def test_attention_trace_shape(self):
        trace = attention_parameter_trace(64, 4, passes=2, granularity=64)
        assert len(trace) == 2 * trace.footprint

    def test_attention_validation(self):
        with pytest.raises(ValueError):
            attention_parameter_trace(30, 4)
        with pytest.raises(ValueError):
            attention_parameter_trace(32, 4, head_order=Permutation.identity(3))

    def test_attention_head_order_on_even_passes(self):
        trace_default = attention_parameter_trace(32, 4, passes=2, granularity=64)
        trace_reversed = attention_parameter_trace(32, 4, passes=2, granularity=64, head_order=Permutation.reverse(4))
        half = len(trace_default) // 2
        assert np.array_equal(trace_default.accesses[:half], trace_reversed.accesses[:half])
        assert not np.array_equal(trace_default.accesses[half:], trace_reversed.accesses[half:])

    def test_gnn_trace_items_are_nodes(self, rng):
        trace = gnn_neighbor_trace(30, 4, rounds=2, rng=rng)
        assert trace.footprint <= 30
        assert trace.accesses.max() < 30

    def test_gnn_node_order_changes_trace(self, rng):
        order = Permutation.reverse(30)
        a = gnn_neighbor_trace(30, 4, rounds=1, rng=1)
        b = gnn_neighbor_trace(30, 4, rounds=1, node_order=order, rng=1)
        assert len(a) == len(b)
        assert not np.array_equal(a.accesses, b.accesses)

    def test_gnn_validation(self, rng):
        with pytest.raises(ValueError):
            gnn_neighbor_trace(10, 0, rng=rng)
        with pytest.raises(ValueError):
            gnn_neighbor_trace(10, 2, node_order=Permutation.identity(5), rng=rng)
