"""Resilience-layer overhead on the canonical online replay.

Two acceptance claims for the fault-tolerant execution layer:

1. **Enabled**: checkpointing *plus* a full trace-integrity verification
   pass costs **< 5%** of the 72k-reference online replay's wall time.
   Durability that slows the experiment loop down would never be left on,
   so the snapshots must stay cheap relative to the epochs they protect.
   A snapshot is a fixed ~1ms (one self-checksummed atomic tmp+rename
   write), so the cadence scales with epoch cost: this bench's epochs are ~4ms
   scale-downs of paper-scale epochs, and the matching cadence is one
   snapshot per drift phase (``checkpoint_every=12``).  The per-snapshot
   cost is recorded separately so a regression in the write path itself is
   visible regardless of cadence.
2. **Disabled** (the default for every entry point): the hooks left in the
   hot paths — ``fire()`` fault-injection sites and the
   ``checkpoint_dir is None`` guards — cost **< 2%**.  Like the
   observability bench, this is measured compositionally: per-call cost of
   each disabled primitive times a generous over-count of call sites,
   bounded against the replay's measured wall time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table, write_csv
from repro.obs import MetricsRegistry, record_perf, recording
from repro.online import OnlineJob, run_replay
from repro.online.replay import replay_fingerprint
from repro.resilience import write_checkpoint
from repro.resilience.faults import active_plan, fire
from repro.trace.drift import three_phase_pair
from repro.trace.streaming import create_memmap_trace, verify_memmap_trace

LENGTH_PER_PHASE = 12_000
SEED = 7
JOB = OnlineJob(
    budget=1150,
    window=6000,
    epoch=2000,
    method="hull",
    rate=0.5,
    move_cost=1.0,
    name="bench-resilience",
)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _per_call(fn, calls: int = 200_000) -> float:
    """Median-of-5 per-call cost of one disabled-mode primitive."""
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        samples.append((time.perf_counter() - start) / calls)
    return sorted(samples)[2]


def test_checkpoint_and_integrity_overhead_below_5_percent(results_dir, perf_trajectory, tmp_path):
    workload = three_phase_pair(LENGTH_PER_PHASE, seed=SEED)

    plain_seconds = min(_timed(lambda: run_replay(workload, JOB)) for _ in range(5))

    # The checkpoint work is measured exactly, in-process, via the
    # ``online.checkpoint`` span: differencing two independently-timed wall
    # clocks would drown a ~5ms signal in this-machine scheduling noise.
    # The store is pre-created so the one-time manifest write (which shells
    # out to git for provenance) stays out of the steady-state claim.
    fingerprint = replay_fingerprint(workload, JOB, "batch")
    snapshots, snapshot_seconds = 0, float("inf")
    for round_index in range(3):
        store = tmp_path / f"ck-{round_index}"
        write_checkpoint(store, 0, {}, fingerprint=fingerprint, command="online")
        registry = MetricsRegistry()
        with recording(registry):
            run_replay(workload, JOB, checkpoint_dir=store, checkpoint_every=12)
        for key, stats in registry.snapshot().items():
            if key[0] == "span" and key[1] == "online.checkpoint":
                # stats = (count, total, min, max); the per-snapshot *min* is
                # the steady-state cost — totals inherit whatever load spike
                # hit one unlucky epoch.
                snapshots = stats[0]
                snapshot_seconds = min(snapshot_seconds, stats[2])
    checkpoint_seconds = snapshot_seconds * snapshots
    fingerprint_seconds = min(_timed(lambda: replay_fingerprint(workload, JOB, "batch")) for _ in range(3))

    # Integrity verification of the same workload serialised as a memmap
    # trace: the cost a resumed run pays before trusting on-disk columns.
    stem = tmp_path / "trace"
    accesses = workload.composed.trace.accesses
    trace = create_memmap_trace(stem, len(accesses))
    trace.fill(0, np.asarray(accesses, dtype=np.int64), np.asarray(workload.composed.tenant_ids, dtype=np.int64))
    trace.flush()
    verify_seconds = min(_timed(lambda: verify_memmap_trace(stem)) for _ in range(3))

    overhead = checkpoint_seconds + fingerprint_seconds + verify_seconds
    fraction = overhead / plain_seconds
    assert fraction < 0.05, (
        f"phase-cadence checkpointing + trace verification must cost < 5% of the replay: "
        f"{overhead * 1e3:.1f}ms over {plain_seconds * 1e3:.0f}ms = {fraction:.2%} "
        f"({snapshots} snapshots)"
    )

    row = {
        "replay_seconds": plain_seconds,
        "snapshots": snapshots,
        "snapshot_ms": checkpoint_seconds / snapshots * 1e3,
        "fingerprint_ms": fingerprint_seconds * 1e3,
        "verify_ms": verify_seconds * 1e3,
        "overhead_percent": fraction * 100,
    }
    print()
    print(format_table([row], title=f"checkpoint + integrity overhead — {len(accesses)} refs"))
    write_csv(results_dir / "resilience_overhead.csv", [row])
    record_perf(
        perf_trajectory,
        "bench_resilience",
        "checkpoint_overhead_percent",
        fraction * 100,
        unit="%",
        direction="lower_is_better",
    )
    record_perf(
        perf_trajectory,
        "bench_resilience",
        "snapshot_ms",
        checkpoint_seconds / snapshots * 1e3,
        unit="ms",
        direction="lower_is_better",
    )


def test_disabled_resilience_hooks_below_2_percent(perf_trajectory):
    workload = three_phase_pair(LENGTH_PER_PHASE, seed=SEED)

    assert active_plan() is None
    replay_seconds = min(_timed(lambda: run_replay(workload, JOB)) for _ in range(3))

    result = run_replay(workload, JOB)
    epochs = len(result.epochs)
    num_tenants = int(np.max(workload.composed.tenant_ids)) + 1
    # Disabled-mode call sites, over-counted from above: one fire() per
    # tenant per epoch (profile extraction), one per epoch (checkpoint
    # site), one per pooled task had a pool been used, plus the
    # ``checkpoint_dir is None`` / ``policy is None`` guards.
    fire_calls = epochs * (num_tenants + 2) + 16
    guard_calls = 2 * epochs + 16

    cost_fire = _per_call(lambda: fire("bench.noop", 0))

    sentinel = None

    def one_guard():
        if sentinel is not None:  # pragma: no cover - never taken
            raise AssertionError

    cost_guard = _per_call(one_guard)

    overhead = fire_calls * cost_fire + guard_calls * cost_guard
    fraction = overhead / replay_seconds
    assert fraction < 0.02, (
        f"disabled resilience hooks must cost < 2% of the replay: "
        f"{overhead * 1e6:.0f}us over {replay_seconds * 1e3:.0f}ms = {fraction:.2%} "
        f"({fire_calls} fire sites, {guard_calls} guards)"
    )
    record_perf(
        perf_trajectory,
        "bench_resilience",
        "disabled_overhead_percent",
        fraction * 100,
        unit="%",
        direction="lower_is_better",
    )
