#!/usr/bin/env python
"""Quickstart: symmetric locality of data re-traversals in five minutes.

This walks through the paper's core objects on a small example:

1. build re-traversal permutations (cyclic, sawtooth, random),
2. compute their reuse distances, cache-hit vectors and miss-ratio curves
   (Algorithm 1 / Theorem 1),
3. check the Bruhat-locality identity (Theorem 2),
4. validate the closed forms against a real LRU cache simulation,
5. run ChainFind (Algorithm 2) to walk from the worst ordering to the best,
6. profile a long trace approximately (SHARDS sampling and the one-pass
   reuse-time model) and measure the error against the exact curve.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Permutation,
    cache_hit_vector,
    chain_find,
    miss_ratio_curve,
    random_permutation,
    reuse_distances,
    theorem2_deficit,
)
from repro.analysis import format_series, format_table
from repro.cache import LRUCache
from repro.trace import PeriodicTrace


def main() -> None:
    m = 8
    rng = np.random.default_rng(2024)

    # 1. Three re-traversal orders of the same m data items -------------------
    cyclic = Permutation.identity(m)      # streaming order: worst locality
    sawtooth = Permutation.reverse(m)     # reversed order: best locality
    shuffled = random_permutation(m, rng)

    print("Re-traversal orders (1-indexed, as in the paper):")
    for name, sigma in [("cyclic", cyclic), ("sawtooth", sawtooth), ("random", shuffled)]:
        print(f"  {name:9s} sigma = {sigma.one_indexed()}   inversions ℓ = {sigma.inversions()}")
    print()

    # 2. Locality of each order (Algorithm 1) ---------------------------------
    rows = []
    for name, sigma in [("cyclic", cyclic), ("random", shuffled), ("sawtooth", sawtooth)]:
        rows.append(
            {
                "order": name,
                "inversions": sigma.inversions(),
                "reuse distances": str(reuse_distances(sigma).tolist()),
                "hit vector": str(cache_hit_vector(sigma).tolist()),
            }
        )
    print(format_table(rows, title="Reuse distances and cache-hit vectors (re-traversal of A = 1..8)"))
    print()

    # 3. Theorem 2: the truncated hit-vector sum equals the inversion number --
    for name, sigma in [("cyclic", cyclic), ("random", shuffled), ("sawtooth", sawtooth)]:
        assert theorem2_deficit(sigma) == 0
        total = int(cache_hit_vector(sigma)[:-1].sum())
        print(f"Theorem 2 [{name:9s}]  sum_(c<m) hits_c = {total:2d} = ℓ(sigma) = {sigma.inversions()}")
    print()

    # 4. The closed form matches a real LRU simulation of the concrete trace --
    trace = PeriodicTrace(shuffled).to_trace()
    print(f"Concrete trace T = A sigma(A): {trace.accesses.tolist()}")
    for cache_size in (2, 4, 8):
        simulated = LRUCache(cache_size).run(trace).hits
        closed = int(cache_hit_vector(shuffled)[cache_size - 1])
        print(f"  cache size {cache_size}: LRU simulation hits = {simulated}, Algorithm 1 hits = {closed}")
    print()

    # 5. Miss-ratio curve of the random order ----------------------------------
    curve = miss_ratio_curve(shuffled, convention="full")
    print(format_series("miss ratio (full trace)", list(range(1, m + 1)), list(curve)))
    print()

    # 6. ChainFind: greedily improve the ordering step by step -----------------
    result = chain_find(Permutation.identity(m))
    print(
        f"ChainFind from the cyclic order: {result.length} covering steps, "
        f"{result.arbitrary_choice_count} arbitrary choices, "
        f"ends at sawtooth = {result.end.is_reverse()}"
    )
    sample = [result.chain[k] for k in (0, result.length // 2, result.length)]
    rows = [
        {"step": k, "sigma": str(sigma.one_indexed()), "ℓ": sigma.inversions(),
         "hits": str(cache_hit_vector(sigma).tolist())}
        for k, sigma in zip((0, result.length // 2, result.length), sample)
    ]
    print(format_table(rows, title="Chain snapshots (start / middle / end)"))
    print()

    # 7. Approximate profiling: the accuracy/cost dial -------------------------
    # Exact curves touch every reference; SHARDS samples a hashed subset of
    # items and the reuse-time profiler streams the trace once in bounded
    # memory.  Both are orders of magnitude cheaper on long traces.
    from repro.cache.mrc import mrc_from_trace
    from repro.profiling import mean_absolute_error, reuse_mrc, shards_mrc
    from repro.trace import zipfian_trace

    workload = zipfian_trace(50_000, 4096, exponent=0.8, rng=rng).accesses
    exact_curve = mrc_from_trace(workload)
    sampled = shards_mrc(workload, rate=0.1)
    streamed = reuse_mrc(workload)
    rows = [
        {"profiler": "shards(R=0.1)", "mae": mean_absolute_error(sampled, exact_curve)},
        {"profiler": "reuse/AET", "mae": mean_absolute_error(streamed, exact_curve)},
    ]
    print(format_table(rows, title="Approximate MRC error vs exact (50k-ref Zipfian trace)"))


if __name__ == "__main__":
    main()
