"""Unit tests for the shared validation helpers in repro._util."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import (
    as_int_array,
    check_nonnegative_int,
    check_permutation_array,
    check_positive_int,
    ensure_rng,
    pairwise_leq,
)


class TestIntChecks:
    def test_positive_accepts_python_and_numpy_ints(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int64(5), "x") == 5

    def test_positive_rejects_zero_negative_bool_float(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_nonnegative(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")
        with pytest.raises(TypeError):
            check_nonnegative_int("3", "x")

    def test_error_message_mentions_name(self):
        with pytest.raises(ValueError, match="capacity"):
            check_positive_int(-1, "capacity")


class TestAsIntArray:
    def test_accepts_lists_tuples_generators_arrays(self):
        assert as_int_array([1, 2, 3]).tolist() == [1, 2, 3]
        assert as_int_array((4, 5)).tolist() == [4, 5]
        assert as_int_array(iter([6])).tolist() == [6]
        assert as_int_array(np.asarray([7, 8])).dtype == np.intp

    def test_accepts_integer_valued_floats(self):
        assert as_int_array(np.asarray([1.0, 2.0])).tolist() == [1, 2]

    def test_rejects_fractional_floats_and_2d(self):
        with pytest.raises(TypeError):
            as_int_array(np.asarray([1.5]))
        with pytest.raises(ValueError):
            as_int_array(np.zeros((2, 2), dtype=int))

    def test_empty(self):
        assert as_int_array([]).size == 0


class TestCheckPermutationArray:
    def test_valid(self):
        assert check_permutation_array([2, 0, 1]).tolist() == [2, 0, 1]
        assert check_permutation_array([]).size == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            check_permutation_array([0, 0, 1])
        with pytest.raises(ValueError):
            check_permutation_array([1, 2, 3])
        with pytest.raises(ValueError):
            check_permutation_array([-1, 0, 1])


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_reproducible(self):
        a = ensure_rng(42).integers(1000)
        b = ensure_rng(42).integers(1000)
        assert a == b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestPairwiseLeq:
    def test_basic(self):
        assert pairwise_leq([1, 2], [1, 3])
        assert not pairwise_leq([1, 4], [1, 3])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_leq([1], [1, 2])
