"""Executable documentation: doctests in docs/*.md, docstring examples, CLI examples.

Three layers keep the documentation honest (and back the CI ``docs`` job):

1. every ``>>>`` snippet in ``docs/*.md`` runs as a doctest,
2. every ``Examples`` section in the public package/subpackage docstrings
   (and the new :mod:`repro.alloc` / :mod:`repro.trace.tenancy` modules)
   runs as a doctest,
3. every ``python -m repro …`` command line in ``docs/cli.md`` is executed,
   in order, in one temporary directory — a broken CLI example fails the
   suite.
"""

from __future__ import annotations

import doctest
import importlib
import shlex
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))

#: Modules whose docstring examples are part of the public documentation.
DOCTESTED_MODULES = [
    "repro",
    "repro.api",
    "repro.engine",
    "repro.core",
    "repro.trace",
    "repro.trace.tenancy",
    "repro.cache",
    "repro.cache.mrc",
    "repro.profiling",
    "repro.sim",
    "repro.ml",
    "repro.alloc",
    "repro.alloc.curves",
    "repro.alloc.allocators",
    "repro.online",
    "repro.online.windowed",
    "repro.online.phases",
    "repro.trace.drift",
    "repro.analysis",
    "repro.obs",
    "repro.resilience",
]


@pytest.mark.parametrize("page", DOC_PAGES, ids=[p.name for p in DOC_PAGES])
def test_docs_pages_exist_and_doctests_pass(page):
    results = doctest.testfile(str(page), module_relative=False, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {page.name}"


def test_docs_tree_is_complete():
    names = {page.name for page in DOC_PAGES}
    assert {"index.md", "api.md", "architecture.md", "cli.md", "theory.md"} <= names


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_docstring_examples_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def cli_commands() -> list[str]:
    """Every ``python -m repro …`` line of docs/cli.md, in document order."""
    commands = []
    for line in (DOCS_DIR / "cli.md").read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line.startswith("python -m repro "):
            commands.append(line.removeprefix("python -m repro "))
    return commands


def test_cli_reference_has_examples_for_every_subcommand():
    commands = cli_commands()
    used = {shlex.split(command)[0] for command in commands}
    from repro.cli import build_parser

    documented = {
        "generate",
        "analyze",
        "mrc",
        "profile",
        "sweep",
        "partition",
        "online",
        "chain",
        "experiment",
        "metrics",
    }
    assert used == documented
    # and the parser knows no subcommand the docs forgot
    parser_actions = next(a for a in build_parser()._actions if a.dest == "command")
    assert set(parser_actions.choices) == documented


def test_cli_examples_run_in_order(tmp_path, monkeypatch, capsys):
    """Replay the cli.md pipeline in one directory; every command must exit 0."""
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    commands = cli_commands()
    assert commands, "docs/cli.md lost its executable examples"
    for command in commands:
        code = main(shlex.split(command))
        assert code == 0, f"documented command failed: python -m repro {command}"
        capsys.readouterr()  # keep the captured output small
