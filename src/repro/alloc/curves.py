"""Discretized miss curves and Talus-style convex hulls for the allocators.

The allocators in :mod:`repro.alloc.allocators` do not work on
:class:`~repro.cache.mrc.MissRatioCurve` objects directly; they work on a
*discretized miss curve*: expected absolute miss counts at the capacities
``0, unit, 2·unit, …`` up to the smaller of the budget and the point where
the curve flattens.  Working in absolute misses (miss ratio × accesses)
makes curves of tenants with different access volumes directly comparable —
one unit of cache is worth giving to whichever tenant removes the most
misses with it.

Miss-ratio curves of real workloads are frequently non-convex (a cyclic
re-traversal is the extreme case: a cliff at its footprint and no gain
anywhere else), which breaks marginal-gain greedy allocation.  Talus-style
shaping fixes this by replacing each curve with its *lower convex hull*:
every point on the hull is achievable (Talus realises interior points by
splitting the tenant's partition between the two bracketing hull vertices in
the right ratio; here the allocator simply lands on hull vertices whenever it
can), and on convex curves steepest-slope-first allocation is exactly
optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.mrc import MissRatioCurve

__all__ = ["DiscretizedMRC", "discretize_curve", "lower_convex_hull"]


@dataclass(frozen=True)
class DiscretizedMRC:
    """Expected absolute misses of one tenant at capacities ``0, unit, 2·unit, …``.

    Attributes
    ----------
    misses:
        ``misses[j]`` is the expected miss count at capacity ``j * unit``;
        ``misses[0]`` is the tenant's access count (an empty partition misses
        every access).  Non-increasing by construction.
    unit:
        Capacity granularity (cache blocks per allocation unit).
    accesses:
        The tenant's access count (the normaliser back to miss ratios).
    """

    misses: np.ndarray
    unit: int
    accesses: int

    def __post_init__(self):
        misses = np.asarray(self.misses, dtype=np.float64)
        if misses.ndim != 1 or misses.size == 0:
            raise ValueError("misses must be a non-empty 1-D array")
        if int(self.unit) < 1:
            raise ValueError(f"unit must be >= 1, got {self.unit}")
        if int(self.accesses) < 1:
            raise ValueError(f"accesses must be >= 1, got {self.accesses}")
        object.__setattr__(self, "misses", misses)

    @property
    def max_units(self) -> int:
        """Largest useful allocation in units (beyond it the curve is flat)."""
        return int(self.misses.size - 1)

    def _index(self, units: int) -> int:
        """Clamp an allocation to the curve, rejecting negative allocations.

        Without the explicit check a negative allocation would silently wrap
        to the *end* of the miss array (Python negative indexing) and read as
        a fully-provisioned tenant — the exact opposite of an empty one.
        """
        units = int(units)
        if units < 0:
            raise ValueError(f"units must be >= 0, got {units}")
        return min(units, self.max_units)

    def miss_ratio_at(self, units: int) -> float:
        """Miss ratio at an allocation of ``units`` units (clamped to the curve).

        ``units == 0`` reads the empty-partition point (every access misses);
        allocations beyond :attr:`max_units` clamp to the curve's flat tail.
        """
        return float(self.misses[self._index(units)]) / self.accesses

    def misses_at(self, units: int) -> float:
        """Expected miss count at an allocation of ``units`` units (clamped)."""
        return float(self.misses[self._index(units)])


def discretize_curve(curve: MissRatioCurve, budget: int, *, unit: int = 1) -> DiscretizedMRC:
    """Discretize a miss-ratio curve into expected misses per allocation unit.

    The result covers capacities ``0, unit, …, K·unit`` where ``K`` is the
    number of whole units inside ``min(budget, curve length + unit - 1)`` —
    allocating beyond the curve's last point cannot help, so the tail is
    dropped and the allocators treat the final value as flat.  Monotonicity
    is enforced with a running minimum so approximate (sampled) curves with
    small inversions cannot create phantom negative gains.

    Examples
    --------
    >>> from repro.cache.mrc import mrc_from_trace
    >>> curve = mrc_from_trace([0, 1, 0, 1, 0, 1])
    >>> d = discretize_curve(curve, budget=4)
    >>> [round(float(m), 1) for m in d.misses]
    [6.0, 6.0, 2.0]
    >>> d.miss_ratio_at(2)
    0.3333333333333333
    """
    if int(budget) < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if int(unit) < 1:
        raise ValueError(f"unit must be >= 1, got {unit}")
    budget, unit = int(budget), int(unit)
    max_units = budget // unit
    # Beyond the curve's last point the miss ratio is flat; keep one unit past
    # the last distinct capacity so that point is representable.
    useful_units = min(max_units, -(-curve.max_cache_size // unit))
    sizes = np.arange(1, useful_units + 1) * unit
    # Vectorised curve[c] gather (sizes beyond the curve clamp to its last
    # point) — this runs once per tenant per epoch in the online engine, so a
    # per-size Python loop would be a real hot spot.
    values = curve.as_array()
    ratios = values[np.minimum(sizes, values.size) - 1]
    ratios = np.minimum.accumulate(ratios)
    misses = np.concatenate([[float(curve.accesses)], ratios * curve.accesses])
    return DiscretizedMRC(misses=misses, unit=unit, accesses=int(curve.accesses))


def lower_convex_hull(misses: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower convex hull of a discretized miss curve.

    Returns the hull vertex indices (allocation units, starting at 0) and the
    hull miss values at those vertices.  Slopes between consecutive vertices
    are strictly increasing (becoming less steep), which is what makes
    steepest-first allocation on the hull optimal.

    Examples
    --------
    A cliff curve (no gain until the whole working set fits) hulls to a single
    straight segment:

    >>> import numpy as np
    >>> units, values = lower_convex_hull(np.array([8.0, 8.0, 8.0, 8.0, 1.0]))
    >>> units.tolist()
    [0, 4]
    >>> values.tolist()
    [8.0, 1.0]
    """
    values = np.asarray(misses, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("misses must be a non-empty 1-D array")
    # Monotone-chain over the points (j, values[j]): keep vertices while the
    # turn is convex (cross product <= 0 pops the middle point).  The chain
    # walks plain Python floats (one tolist() up front): hull extraction runs
    # on every controller consult in the online engine, and unboxing NumPy
    # scalars per comparison dominates the loop otherwise.
    points = values.tolist()
    hull: list[int] = []
    for j, value in enumerate(points):
        while len(hull) >= 2:
            i, k = hull[-2], hull[-1]
            # slope(i -> k) >= slope(k -> j) means k lies on or above the
            # chord i -> j and is not a lower-hull vertex.
            if (points[k] - points[i]) * (j - k) >= (value - points[k]) * (k - i):
                hull.pop()
            else:
                break
        hull.append(j)
    vertices = np.asarray(hull, dtype=np.int64)
    return vertices, values[vertices]
