"""The columnar experiment substrate shared by every experiment path.

Before this layer existed, the sweep (:mod:`repro.sim`), partition
(:mod:`repro.alloc`) and online replay (:mod:`repro.online`) paths each
re-implemented trace iteration, per-tenant profile extraction and worker
fan-out.  The engine is that machinery written once; every experiment is the
same four-stage pipeline over it:

1. **segments** (:mod:`repro.engine.segments`) — boundary arithmetic: epoch
   stops, phase labels, chunk spans.  Workloads are consumed as columnar
   segments (``items`` / ``tenant_ids`` arrays, plain or memmap-backed).
2. **columnar state** (:mod:`repro.engine.columnar`) — one stack-distance
   pass per tenant (:class:`~repro.engine.columnar.TenantDistancePasses`),
   shared by MRC extraction, sweep kernels and replay lanes alike.
3. **lanes** (:mod:`repro.engine.lanes`) — any number of cache
   configurations measured over one data plane, with a bit-identical
   per-event reference mode.
4. **runner** (:mod:`repro.engine.runner`) — one worker-pool fan-out with
   one bit-identical single-process reference mode (``workers=1``).

The job/result contract every experiment speaks is pinned in
:mod:`repro.engine.job`; the public entry points live one level up in
:mod:`repro.api`.

Examples
--------
>>> import numpy as np
>>> from repro.engine import TenantDistancePasses, split_by_tenant
>>> items = np.array([1, 9, 1, 9, 2, 1])
>>> ids = np.array([0, 1, 0, 1, 0, 0])
>>> [s.tolist() for s in split_by_tenant(items, ids, 2)]
[[1, 1, 2, 1], [9, 9]]
>>> passes = TenantDistancePasses(items, ids, 2)
>>> passes.whole_stream_curve(0, budget=2, unit=1).miss_ratio_at(2)  # [1,1,2,1]: 2 cold misses in 4
0.5
"""

from .columnar import (
    PrecomputedTenantDistances,
    TenantDistancePasses,
    TenantDistanceStreams,
    check_tenant_ids,
    discretized_from_distances,
    exact_discretized_curve,
    idle_curve,
    split_by_tenant,
    tenant_positions,
)
from .job import (
    ALLOC_METHODS,
    PROFILE_MODES,
    ExperimentJob,
    ExperimentResult,
    check_choice,
    check_fraction,
    check_non_negative,
    check_positive,
    check_unit,
)
from .lanes import LANE_ENGINES, LaneSet, PartitionedLRU
from .runner import check_workers, fork_available, fork_pool, pool_map, published_arrays, resolve_array
from .segments import chunk_spans, phase_of_event, phase_of_last_event, replay_stops, strided_spans

__all__ = [
    "ALLOC_METHODS",
    "LANE_ENGINES",
    "PROFILE_MODES",
    "ExperimentJob",
    "ExperimentResult",
    "LaneSet",
    "PartitionedLRU",
    "PrecomputedTenantDistances",
    "TenantDistancePasses",
    "TenantDistanceStreams",
    "check_choice",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_tenant_ids",
    "check_unit",
    "check_workers",
    "chunk_spans",
    "discretized_from_distances",
    "exact_discretized_curve",
    "fork_available",
    "fork_pool",
    "idle_curve",
    "phase_of_event",
    "phase_of_last_event",
    "pool_map",
    "published_arrays",
    "replay_stops",
    "resolve_array",
    "split_by_tenant",
    "strided_spans",
    "tenant_positions",
]
