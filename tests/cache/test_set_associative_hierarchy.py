"""Unit tests for the set-associative cache and the cache hierarchy."""

from __future__ import annotations

import pytest

from repro.cache import CacheHierarchy, LRUCache, SetAssociativeCache
from repro.trace import PeriodicTrace


class TestSetAssociative:
    def test_total_capacity(self):
        cache = SetAssociativeCache(4, 2)
        assert cache.capacity == 8
        assert cache.name == "2-way-lru"

    def test_single_set_equals_fully_associative(self):
        trace = PeriodicTrace.sawtooth(12).to_trace().accesses.tolist()
        sa = SetAssociativeCache(1, 6)
        fa = LRUCache(6)
        assert sa.run(trace).hits == fa.run(trace).hits

    def test_direct_mapped_conflicts(self):
        # two items mapping to the same set keep evicting each other
        cache = SetAssociativeCache(4, 1)
        results = [cache.access(x) for x in [0, 4, 0, 4]]
        assert results == [False, False, False, False]
        # items in different sets coexist
        assert cache.access(1) is False
        assert cache.access(1) is True

    def test_conflict_misses_exceed_fully_associative(self):
        # a strided trace hammering one set: set-associative misses more
        trace = [0, 8, 16, 24] * 10
        sa = SetAssociativeCache(8, 1)
        fa = LRUCache(8)
        assert sa.run(list(trace)).misses >= fa.run(list(trace)).misses

    def test_custom_index_function(self):
        cache = SetAssociativeCache(2, 1, index_function=lambda item: item // 100)
        cache.access(5)
        cache.access(105)
        assert cache.contents() == {5, 105}

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(2, 2, policy="mru")

    def test_fifo_and_random_policies_run(self):
        trace = PeriodicTrace.cyclic(16).to_trace().accesses.tolist()
        for policy in ("fifo", "random"):
            cache = SetAssociativeCache(4, 2, policy=policy, rng=0)
            stats = cache.run(list(trace))
            assert stats.accesses == len(trace)

    def test_reset(self):
        cache = SetAssociativeCache(2, 2)
        cache.run([1, 2, 3, 4])
        cache.reset()
        assert cache.contents() == set()


class TestHierarchy:
    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_levels_from_capacities(self):
        hierarchy = CacheHierarchy([4, 16])
        assert [lvl.capacity for lvl in hierarchy.levels] == [4, 16]

    def test_l2_sees_only_l1_misses(self):
        hierarchy = CacheHierarchy([2, 8])
        trace = PeriodicTrace.sawtooth(8).to_trace().accesses.tolist()
        results = hierarchy.run(trace)
        l1, l2 = results
        assert l1.accesses == len(trace)
        assert l2.accesses == l1.misses

    def test_access_returns_hit_level(self):
        hierarchy = CacheHierarchy([1, 4])
        assert hierarchy.access(0) == 2      # cold: misses everywhere
        assert hierarchy.access(0) == 0      # now in L1
        hierarchy.access(1)
        hierarchy.access(2)  # pushes 0 and 1 out of the 1-entry L1
        assert hierarchy.access(0) == 1      # still in L2

    def test_amat_between_latencies(self):
        hierarchy = CacheHierarchy([4, 16], hit_latencies=[1.0, 10.0], memory_latency=100.0)
        hierarchy.run(PeriodicTrace.sawtooth(32).to_trace().accesses.tolist())
        assert 1.0 <= hierarchy.amat() <= 100.0

    def test_amat_improves_with_locality(self):
        good = CacheHierarchy([8, 32])
        bad = CacheHierarchy([8, 32])
        m = 64
        good.run(PeriodicTrace.sawtooth(m).to_trace().accesses.tolist())
        bad.run(PeriodicTrace.cyclic(m).to_trace().accesses.tolist())
        assert good.amat() < bad.amat()

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            CacheHierarchy([4, 8], hit_latencies=[1.0])

    def test_reset(self):
        hierarchy = CacheHierarchy([2, 4])
        hierarchy.run([0, 1, 2, 0])
        hierarchy.reset()
        assert hierarchy.amat() == 0.0
        assert all(lvl.stats.accesses == 0 for lvl in hierarchy.levels)

    def test_accepts_prebuilt_models(self):
        hierarchy = CacheHierarchy([LRUCache(2), LRUCache(8)])
        hierarchy.run([0, 1, 0])
        assert hierarchy.levels[0].stats.accesses == 3
