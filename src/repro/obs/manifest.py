"""Run manifests: what produced a metrics file.

A :class:`RunManifest` pins the provenance of one run — command, argv, seed,
git commit, interpreter/numpy versions, platform, UTC timestamp — so a
metrics JSONL is reproducible evidence rather than a bag of numbers.  It is
written as the first line of every exported metrics file (``"type":
"manifest"``), and the ``repro metrics`` scoreboard prints it back.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = ["RunManifest", "git_sha"]


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current git commit hash, or ``None`` outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one instrumented run."""

    command: str
    argv: tuple[str, ...] = ()
    seed: int | None = None
    git: str | None = None
    python: str = ""
    numpy: str = ""
    platform: str = ""
    timestamp: str = ""
    extra: dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str,
        *,
        argv: list[str] | tuple[str, ...] | None = None,
        seed: int | None = None,
        **extra: object,
    ) -> "RunManifest":
        """Capture the environment of the current process."""
        import numpy as np

        return cls(
            command=command,
            argv=tuple(argv or ()),
            seed=seed,
            git=git_sha(),
            python=sys.version.split()[0],
            numpy=np.__version__,
            platform=platform.platform(),
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            extra=dict(extra),
        )

    def to_record(self) -> dict[str, object]:
        """The JSONL line form (``"type": "manifest"``)."""
        record: dict[str, object] = {
            "type": "manifest",
            "command": self.command,
            "argv": list(self.argv),
            "seed": self.seed,
            "git": self.git,
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "timestamp": self.timestamp,
        }
        if self.extra:
            record["extra"] = dict(self.extra)
        return record
