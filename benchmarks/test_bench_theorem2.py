"""Theorem 2 / Corollary 1 — the Bruhat-locality identity at scale.

``Σ_{c<m} hits_c(σ) = ℓ(σ)`` is checked exactly on random permutations up to
m = 4096, and the Algorithm-1 kernel (closed-form hit vector computation) is
timed — it is the inner loop of every other experiment.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, run_theorem2_random, write_csv
from repro.core import cache_hit_vector, random_permutation

SIZES = (16, 64, 256, 1024, 4096)


def test_theorem2_random_permutations(benchmark, results_dir):
    rows = benchmark(run_theorem2_random, SIZES, trials=3, rng=7)
    assert all(row["max_deviation"] == 0 for row in rows)

    print()
    print(format_table(rows, title="Theorem 2 / Corollary 1 deviation on random permutations (0 = exact)"))
    write_csv(results_dir / "theorem2_random.csv", rows)


def test_algorithm1_kernel_throughput(benchmark):
    sigma = random_permutation(4096, rng=3)
    vec = benchmark(cache_hit_vector, sigma)
    assert vec.size == 4096
    assert int(vec[-1]) == 4096
    assert np.all(np.diff(vec) >= 0)
