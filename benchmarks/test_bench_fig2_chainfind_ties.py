"""Figure 2 — arbitrary choices faced by ChainFind vs. group size.

Paper: Section V-B, Figure 2.  With the miss-ratio labeling λ_e the greedy
chain is not unique; the number of steps with an arbitrary choice grows with
the group size (roughly linearly), so λ_e is not a good labeling.
"""

from __future__ import annotations

from repro.analysis import format_table, run_fig2_chainfind_ties, write_csv
from repro.core import max_inversions

SIZES = (3, 4, 5, 6, 7, 8)


def test_fig2_chainfind_arbitrary_choices(benchmark, results_dir):
    rows = benchmark(run_fig2_chainfind_ties, SIZES)

    # chains are saturated all the way to the sawtooth
    for row in rows:
        assert row["chain_length"] == max_inversions(row["m"])
        assert row["chain_multiplicity"] >= 1

    # the count of arbitrary choices grows (non-strictly) with m and is
    # strictly larger at the top of the range — the Figure 2 trend
    ties = [row["arbitrary_choices"] for row in rows]
    assert all(b >= a for a, b in zip(ties, ties[1:]))
    assert ties[-1] > ties[0]

    print()
    print(
        format_table(
            rows,
            title="Figure 2 — ChainFind arbitrary choices vs. group size (labeling λ_e)",
        )
    )
    write_csv(results_dir / "fig2_chainfind_ties.csv", rows)
