"""Poset-level statistics of the locality order on ``S_m``.

Complements :mod:`repro.core.covering_graph` with the aggregate quantities the
appendix discusses: the rank generating function (whose coefficients are the
Mahonian numbers), per-rank cover-degree statistics (how much branching
ChainFind faces at each level), and the distribution of hit-vector partitions
across ranks.
"""

from __future__ import annotations

import numpy as np

from ..core.bruhat import covers
from ..core.inversions import max_inversions
from ..core.mahonian import mahonian_row
from ..core.permutation import Permutation, all_permutations

__all__ = [
    "rank_generating_function",
    "cover_degree_by_rank",
    "expected_cover_degree",
    "whitney_numbers",
]


def rank_generating_function(m: int) -> np.polynomial.Polynomial:
    """The rank generating function ``Σ_k M(m, k) q^k`` of the Bruhat-graded poset.

    Evaluating at ``q = 1`` gives ``m!``; the coefficient sequence is symmetric
    (Poincaré duality of the poset) and unimodal.
    """
    return np.polynomial.Polynomial(list(mahonian_row(m)))


def whitney_numbers(m: int) -> list[int]:
    """The Whitney numbers of the second kind of the locality poset (= Mahonian row)."""
    return list(mahonian_row(m))


def cover_degree_by_rank(m: int) -> dict[int, dict[str, float]]:
    """Min/mean/max number of Bruhat covers per permutation, grouped by rank.

    The cover degree bounds the branching of ChainFind at each step; the paper
    bounds it by ``O(m)`` reflections times feasibility, and the top element
    has no covers at all.
    """
    stats: dict[int, list[int]] = {}
    for sigma in all_permutations(m):
        stats.setdefault(sigma.inversions(), []).append(len(covers(sigma)))
    out: dict[int, dict[str, float]] = {}
    for rank in sorted(stats):
        values = np.asarray(stats[rank])
        out[rank] = {
            "count": int(values.size),
            "min": int(values.min()),
            "mean": float(values.mean()),
            "max": int(values.max()),
        }
    return out


def expected_cover_degree(m: int, *, samples: int = 200, rng=0) -> float:
    """Monte-Carlo estimate of the average cover degree over ``S_m`` (for large ``m``)."""
    from .._util import ensure_rng
    from ..core.permutation import random_permutation

    generator = ensure_rng(rng)
    total = 0
    for _ in range(samples):
        total += len(covers(random_permutation(m, generator)))
    return total / samples


def saturated_chain_count_identity_to_top(m: int) -> int:
    """Number of saturated chains from the identity to the reverse permutation in Bruhat order.

    This counts chains through *all* covering relations (not just adjacent
    swaps, whose chains are the reduced words of the longest element and are
    counted by staircase standard Young tableaux).  The Bruhat count is larger
    and grows super-exponentially — which is why ChainFind's greedy selection
    (not enumeration) matters.  Computed by dynamic programming over ranks for
    ``m <= 7``.
    """
    if m > 7:
        raise ValueError("chain counting is limited to m <= 7 (the count grows super-exponentially)")
    counts: dict[Permutation, int] = {Permutation.identity(m): 1}
    total_ranks = max_inversions(m)
    frontier = [Permutation.identity(m)]
    for _ in range(total_ranks):
        nxt: dict[Permutation, int] = {}
        for sigma in frontier:
            ways = counts[sigma]
            for tau in covers(sigma):
                nxt[tau] = nxt.get(tau, 0) + ways
        counts.update(nxt)
        frontier = list(nxt)
    return counts[Permutation.reverse(m)]
