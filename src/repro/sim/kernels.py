"""Single-pass multi-capacity simulation kernels.

Each kernel answers "how many hits does policy P score at *every* capacity in
a grid" with one pass over the trace, instead of replaying the trace once per
:class:`~repro.cache.base.CacheModel` instance:

* :func:`lru_sweep_hits` — LRU satisfies the stack inclusion property, so the
  whole capacity grid falls out of a single stack-distance histogram
  (``hits(c)`` = accesses at stack distance ≤ ``c``).  Exact: bit-identical
  to per-capacity :class:`~repro.cache.lru.LRUCache` replay.
* :func:`fifo_sweep_hits` — FIFO has no inclusion property (Belady's
  anomaly), so every capacity is a genuine *lane* of the simulation; the
  kernel advances all lanes together with vectorised NumPy per access.  A
  FIFO-resident item is exactly one whose last insertion is among the lane's
  ``capacity`` most recent insertions, so each lane needs only a per-item
  last-insertion index and a miss counter — no queue.  Bit-identical to
  :class:`~repro.cache.fifo.FIFOCache` replay.
* :func:`random_sweep_hits` — random replacement, same lane layout, with
  explicit victim slots.  All lanes consume one shared pre-drawn uniform
  deviate per access, so any subset of capacities — in particular any
  partition of the grid across worker processes — reproduces exactly the same
  per-capacity results for a given seed.
* :func:`set_associative_sweep_hits` — per-set LRU: an access hits iff its
  stack distance *within its set's subtrace* is at most the associativity, so
  each capacity is one grouped stack-distance pass over the set-partitioned
  trace.  Bit-identical to
  :class:`~repro.cache.set_associative.SetAssociativeCache` replay of the
  same label sequence with the default modulo index function (and therefore
  fed *original*, not relabelled, traces by the sweep engine).

The lane kernels take a *preprocessed* trace: :func:`compact_trace` densifies
arbitrary item labels to ``0 .. U-1`` once so they can use flat
``(items × capacities)`` state tables.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..cache.stack_distance import COLD, hit_counts, stack_distances_vectorized

__all__ = [
    "compact_trace",
    "check_capacities",
    "lru_sweep_hits",
    "fifo_sweep_hits",
    "random_sweep_hits",
    "set_associative_sweep_hits",
]

#: Entropy salt mixed into the random-replacement deviate stream so that a
#: sweep seeded with integer ``s`` never aliases a trace generated from the
#: same ``s`` (see :func:`random_sweep_hits`).
_DEVIATE_SALT = 0x5EE9D


def compact_trace(trace: Sequence[int] | np.ndarray) -> tuple[np.ndarray, int]:
    """Relabel a trace to dense item ids ``0 .. U-1`` (access order preserved).

    Returns ``(dense, distinct)`` where ``distinct`` is the footprint ``U``.
    The LRU/FIFO/random policies depend only on item *identity*, so for them
    the relabelled trace is simulation-equivalent and enables flat state
    tables.  The set-associative kernel is the exception — its ``item %
    num_sets`` mapping changes under relabelling — so the sweep engine feeds
    it the original labels instead.
    """
    arr = np.asarray(trace)
    if arr.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("cannot sweep an empty trace")
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"trace items must be integers, got dtype {arr.dtype}")
    _, dense = np.unique(arr.astype(np.int64, copy=False), return_inverse=True)
    return dense.astype(np.int64, copy=False), int(dense.max()) + 1


def check_capacities(capacities: Sequence[int] | np.ndarray) -> np.ndarray:
    """Validate a capacity grid: positive integers, returned as an int64 array."""
    caps = np.asarray(capacities)
    if caps.ndim != 1 or caps.size == 0:
        raise ValueError("capacities must be a non-empty one-dimensional sequence")
    if not np.issubdtype(caps.dtype, np.integer):
        raise TypeError(f"capacities must be integers, got dtype {caps.dtype}")
    caps = caps.astype(np.int64, copy=False)
    if caps.min() < 1:
        raise ValueError(f"capacities must be >= 1, got {int(caps.min())}")
    return caps


def lru_sweep_hits(trace: Sequence[int] | np.ndarray, capacities: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exact LRU hit counts for every capacity from one stack-distance pass.

    ``hits[k]`` equals ``LRUCache(capacities[k]).run(trace).hits`` for every
    entry of the grid, but the whole grid costs a single ``O(N log N)``
    histogram pass instead of ``len(capacities)`` trace replays.
    """
    arr = np.asarray(trace)
    caps = check_capacities(capacities)
    cumulative = hit_counts(arr, max_cache_size=int(caps.max()))
    return cumulative[caps - 1]


def fifo_sweep_hits(
    dense_trace: np.ndarray, capacities: Sequence[int] | np.ndarray, *, distinct: int | None = None
) -> np.ndarray:
    """Exact FIFO hit counts for every capacity in one pass (lane-vectorised).

    ``dense_trace`` must use dense ids (see :func:`compact_trace`).  Per lane
    the state is the item's last-insertion index and the lane's miss count:
    with ``M`` misses so far, the resident items are precisely those inserted
    at miss index ``>= M - capacity`` (an item inside that window can never
    have been re-inserted, because re-insertion requires a prior eviction).
    """
    arr = np.asarray(dense_trace, dtype=np.int64)
    caps = check_capacities(capacities)
    items = int(distinct) if distinct is not None else (int(arr.max()) + 1 if arr.size else 0)
    never = np.int64(np.iinfo(np.int64).min // 2)
    last_insert = np.full((items, caps.size), never, dtype=np.int64)
    misses = np.zeros(caps.size, dtype=np.int64)
    hits = np.zeros(caps.size, dtype=np.int64)
    for item in arr:
        row = last_insert[item]
        resident = row >= misses - caps
        hits += resident
        missed = ~resident
        row[missed] = misses[missed]
        misses[missed] += 1
    return hits


def random_sweep_hits(
    dense_trace: np.ndarray,
    capacities: Sequence[int] | np.ndarray,
    *,
    seed: int = 0,
    distinct: int | None = None,
) -> np.ndarray:
    """Seeded random-replacement hit counts for every capacity in one pass.

    Every lane holds an explicit slot table; on an eviction the victim slot is
    ``floor(u_t * capacity)`` where ``u_t`` is the access's pre-drawn uniform
    deviate, shared by all lanes.  Because the deviate stream depends only on
    ``seed`` (never on which other capacities run alongside), partitioning the
    grid across processes cannot change any lane's outcome — the engine's
    ``workers`` knob stays a pure performance knob even for this stochastic
    policy.

    The stream is seeded as ``(seed, salt)`` rather than ``seed`` alone:
    deviates sampled at miss times are uniform i.i.d. only while they are
    independent of the trace, and a synthetic trace generated from the same
    integer seed would otherwise be *index-aligned* with its own victim
    choices — a resonance that measurably biases hit ratios.
    """
    arr = np.asarray(dense_trace, dtype=np.int64)
    caps = check_capacities(capacities)
    items = int(distinct) if distinct is not None else (int(arr.max()) + 1 if arr.size else 0)
    lanes = caps.size
    slots = np.full((lanes, int(caps.max())), -1, dtype=np.int64)
    position = np.full((items, lanes), -1, dtype=np.int64)
    occupancy = np.zeros(lanes, dtype=np.int64)
    hits = np.zeros(lanes, dtype=np.int64)
    deviates = np.random.default_rng((int(seed), _DEVIATE_SALT)).random(arr.size)
    lane_index = np.arange(lanes)
    for step, item in enumerate(arr):
        resident = position[item] >= 0
        hits += resident
        missing = lane_index[~resident]
        if missing.size == 0:
            continue
        full = occupancy[missing] >= caps[missing]
        filling = missing[~full]
        if filling.size:
            free = occupancy[filling]
            slots[filling, free] = item
            position[item, filling] = free
            occupancy[filling] += 1
        evicting = missing[full]
        if evicting.size:
            victim_slot = (deviates[step] * caps[evicting]).astype(np.int64)
            victims = slots[evicting, victim_slot]
            position[victims, evicting] = -1
            slots[evicting, victim_slot] = item
            position[item, evicting] = victim_slot
    return hits


def set_associative_sweep_hits(trace: np.ndarray, capacities: Sequence[int] | np.ndarray, *, ways: int) -> np.ndarray:
    """Exact set-associative-LRU hit counts for a grid of total capacities.

    Capacity ``c`` means ``c // ways`` sets of ``ways`` entries each, indexed
    by ``item % num_sets`` — the defaults of
    :class:`~repro.cache.set_associative.SetAssociativeCache`, and
    bit-identical to replaying *the same label sequence* through that model.
    Unlike the other kernels this one is **not** relabelling-invariant (the
    modulo mapping depends on the labels), so callers must pass the trace in
    its original label space.  Within a set the policy is plain LRU, so an
    access hits iff its stack distance inside its set's subtrace is at most
    ``ways``; one capacity therefore costs one set-partitioned stack-distance
    pass (the subtraces partition the trace, so the total work per capacity
    matches a single full-trace pass).

    Every capacity must be a positive multiple of ``ways``.
    """
    arr = np.asarray(trace, dtype=np.int64)
    caps = check_capacities(capacities)
    ways = int(ways)
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    if np.any(caps % ways != 0):
        bad = caps[caps % ways != 0]
        raise ValueError(f"set-associative capacities must be multiples of ways={ways}, got {bad.tolist()}")
    hits = np.zeros(caps.size, dtype=np.int64)
    for k, capacity in enumerate(caps):
        num_sets = int(capacity) // ways
        set_of = arr % num_sets
        order = np.argsort(set_of, kind="stable")
        grouped = arr[order]
        boundaries = np.searchsorted(set_of[order], np.arange(1, num_sets))
        total = 0
        for subtrace in np.split(grouped, boundaries):
            if subtrace.size == 0:
                continue
            distances = stack_distances_vectorized(subtrace)
            total += int(np.count_nonzero(distances[distances != COLD] <= ways))
        hits[k] = total
    return hits
