"""Unit tests for the windowed/decayed SHARDS sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.mrc import mrc_from_trace
from repro.online import WindowedShardsSketch, curve_of_snapshot, pooled_curve
from repro.profiling.accuracy import compare_curves


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WindowedShardsSketch(window=0)
        with pytest.raises(ValueError):
            WindowedShardsSketch(window=4, decay=-0.1)
        with pytest.raises(ValueError):
            WindowedShardsSketch(window=4, rate=0.0)
        with pytest.raises(ValueError):
            WindowedShardsSketch(window=4, rate=1.5)

    def test_rejects_bad_updates(self):
        sketch = WindowedShardsSketch(window=4)
        with pytest.raises(ValueError):
            sketch.update(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            sketch.advance(-1)

    def test_empty_window_curve_raises(self):
        sketch = WindowedShardsSketch(window=4)
        with pytest.raises(ValueError):
            sketch.curve()


class TestExactness:
    """At rate 1 and no decay the sketch IS the exact MRC of the tail window."""

    def test_equals_exact_mrc_of_tail_window(self, rng):
        trace = rng.integers(0, 50, size=800)
        sketch = WindowedShardsSketch(window=300, rate=1.0)
        sketch.update(trace)
        tail = mrc_from_trace(trace[-300:])
        assert compare_curves(sketch.curve(), tail).max_absolute_error == 0.0

    def test_incremental_updates_equal_one_shot(self, rng):
        trace = rng.integers(0, 30, size=500)
        one_shot = WindowedShardsSketch(window=200, rate=0.5, seed=3)
        one_shot.update(trace)
        piecewise = WindowedShardsSketch(window=200, rate=0.5, seed=3)
        for start in range(0, trace.size, 37):
            piecewise.update(trace[start : start + 37])
        assert one_shot.curve().ratios == piecewise.curve().ratios

    def test_advance_gaps_profile_only_offered_references(self, rng):
        """With gaps the sketch profiles exactly the offered sub-stream's tail."""
        trace = rng.integers(0, 40, size=400)
        sketch = WindowedShardsSketch(window=200, rate=1.0)
        for i in range(0, trace.size, 2):
            sketch.update(trace[i : i + 1])
            sketch.advance(1)
        offered = trace[::2]
        tail = mrc_from_trace(offered[-100:])  # 100 offered refs inside the window
        assert compare_curves(sketch.curve(), tail).max_absolute_error == 0.0

    def test_idle_stream_drains_out_of_the_window(self, rng):
        sketch = WindowedShardsSketch(window=100, rate=1.0)
        sketch.update(rng.integers(0, 10, size=50))
        assert sketch.sampled > 0
        sketch.advance(100)
        assert sketch.sampled == 0
        assert sketch.snapshot().offered == 0


class TestWindowSemantics:
    def test_eviction_keeps_only_window_positions(self):
        sketch = WindowedShardsSketch(window=4, rate=1.0)
        sketch.update([0, 1, 0, 1, 2, 1, 2, 1])
        snapshot = sketch.snapshot()
        assert snapshot.positions.tolist() == [4, 5, 6, 7]
        assert snapshot.items.tolist() == [2, 1, 2, 1]
        assert snapshot.offered == 4

    def test_window_curve_tracks_regime_change(self, rng):
        """After a working-set shift the window forgets the old regime."""
        old = rng.integers(0, 20, size=400)
        new = 1000 + rng.integers(0, 20, size=400)
        sketch = WindowedShardsSketch(window=200, rate=1.0)
        sketch.update(np.concatenate([old, new]))
        tail_only = mrc_from_trace(new[-200:])
        assert compare_curves(sketch.curve(), tail_only).max_absolute_error == 0.0

    def test_monotone_nonincreasing_under_sampling(self, rng):
        trace = rng.integers(0, 500, size=4000)
        sketch = WindowedShardsSketch(window=2000, rate=0.3, seed=1)
        sketch.update(trace)
        ratios = sketch.curve().as_array()
        assert np.all(np.diff(ratios) <= 1e-12)
        assert np.all((ratios >= 0.0) & (ratios <= 1.0))

    def test_max_cache_size_crops_and_extends(self, rng):
        trace = rng.integers(0, 50, size=300)
        sketch = WindowedShardsSketch(window=300, rate=1.0)
        sketch.update(trace)
        cropped = sketch.curve(max_cache_size=5)
        assert cropped.max_cache_size == 5
        extended = sketch.curve(max_cache_size=200)
        assert extended.max_cache_size == 200
        assert extended[200] == extended[60]


class TestDecay:
    def test_zero_decay_equals_pure_window(self, rng):
        trace = rng.integers(0, 40, size=600)
        plain = WindowedShardsSketch(window=250, rate=1.0)
        decayed = WindowedShardsSketch(window=250, rate=1.0, decay=0.0)
        plain.update(trace)
        decayed.update(trace)
        assert plain.curve().ratios == decayed.curve().ratios

    def test_tiny_decay_approaches_pure_window(self, rng):
        trace = rng.integers(0, 40, size=600)
        plain = WindowedShardsSketch(window=250, rate=1.0)
        decayed = WindowedShardsSketch(window=250, rate=1.0, decay=1e-6)
        plain.update(trace)
        decayed.update(trace)
        assert compare_curves(decayed.curve(), plain.curve()).max_absolute_error < 1e-3

    @pytest.mark.parametrize("decay", [1e-17, 1e-12])
    def test_subnormal_decay_stays_finite(self, rng, decay):
        """Regression: the geometric-series denominator underflowed to 0 for
        decay below float64 resolution, turning every ratio into NaN."""
        trace = rng.integers(0, 40, size=600)
        decayed = WindowedShardsSketch(window=250, rate=1.0, decay=decay)
        plain = WindowedShardsSketch(window=250, rate=1.0)
        decayed.update(trace)
        plain.update(trace)
        ratios = decayed.curve().as_array()
        assert np.all(np.isfinite(ratios))
        assert compare_curves(decayed.curve(), plain.curve()).max_absolute_error < 1e-9

    def test_decay_weights_recent_regime_more(self, rng):
        """Under decay the curve leans toward the newer half of the window."""
        old = rng.integers(0, 200, size=300)  # wide working set: high miss ratio
        new = rng.integers(0, 10, size=300)  # tiny working set: low miss ratio
        plain = WindowedShardsSketch(window=600, rate=1.0)
        decayed = WindowedShardsSketch(window=600, rate=1.0, decay=0.02)
        plain.update(np.concatenate([old, new]))
        decayed.update(np.concatenate([old, new]))
        # at cache size 10 the new regime hits, the old one mostly misses
        assert decayed.curve()[10] < plain.curve()[10]


class TestPoolingAndSnapshots:
    def test_pooled_seeds_stay_accurate(self):
        from repro.trace import zipfian_trace

        trace = zipfian_trace(12_000, 800, exponent=0.8, rng=3).accesses
        exact = mrc_from_trace(trace[-3000:])
        sketches = []
        for seed in (0, 1, 2):
            sketch = WindowedShardsSketch(window=3000, rate=0.3, seed=seed)
            sketch.update(trace)
            sketches.append(sketch)
        pooled = pooled_curve(sketches)
        assert compare_curves(pooled, exact).mean_absolute_error <= 0.02

    def test_pooling_rejects_mismatched_clocks(self, rng):
        a = WindowedShardsSketch(window=100, rate=0.5)
        b = WindowedShardsSketch(window=100, rate=0.5, seed=1)
        a.update(rng.integers(0, 10, size=50))
        b.update(rng.integers(0, 10, size=40))
        with pytest.raises(ValueError):
            pooled_curve([a, b])

    def test_pooling_requires_sketches(self):
        with pytest.raises(ValueError):
            pooled_curve([])

    def test_snapshot_is_detached_from_the_sketch(self, rng):
        sketch = WindowedShardsSketch(window=100, rate=1.0)
        sketch.update(rng.integers(0, 10, size=80))
        snapshot = sketch.snapshot()
        before = curve_of_snapshot(snapshot).ratios
        sketch.update(rng.integers(0, 10, size=80))
        assert curve_of_snapshot(snapshot).ratios == before
