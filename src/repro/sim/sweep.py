"""Policy-sweep engine: many cache configurations, one (or few) trace passes.

A :class:`SweepJob` names a trace, a set of replacement policies and a grid of
capacities; :func:`run_sweep` evaluates the full ``policies × capacities``
matrix and returns a :class:`SweepResult`.  The engine never replays the trace
once per configuration:

* **LRU** — the entire capacity grid comes from one stack-distance pass
  (:func:`repro.sim.kernels.lru_sweep_hits`).
* **FIFO / random** — one lane-vectorised pass simulates every capacity of the
  policy together; with ``workers > 1`` the capacity grid is partitioned
  across forked processes (lanes are independent, and the random kernel's
  shared deviate stream makes the partition invisible to the results).
* **set-associative** — capacities are independent set-partitioned
  stack-distance passes, fanned out one capacity per pool task.

The pool plumbing is the engine runner (:mod:`repro.engine.runner`), shared
with the profiling engine and the online replay; ``workers=1`` runs
everything inline and is always bit-identical to any ``workers > 1`` run
with the same job.

Item labels are density-compacted once up front
(:func:`~repro.sim.kernels.compact_trace`) for the flat-table LRU/FIFO/random
kernels, whose results are invariant under relabelling; the set-associative
kernel runs on the *original* labels, because its ``item % num_sets`` mapping
is not — its results match simulating the user's actual trace.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import zlib
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..engine.job import check_positive
from ..engine.runner import check_workers, fork_available, pool_map, published_arrays, resolve_array
from ..obs import get_registry, span
from ..resilience.checkpoint import latest_step, load_checkpoint, write_checkpoint
from ..resilience.faults import fire as _fire_fault
from ..resilience.policy import RetryPolicy
from .kernels import (
    check_capacities,
    compact_trace,
    fifo_sweep_hits,
    lru_sweep_hits,
    random_sweep_hits,
    set_associative_sweep_hits,
)

__all__ = ["POLICIES", "SweepJob", "PolicySweep", "SweepResult", "run_sweep", "naive_sweep_hits"]

#: Replacement policies the sweep engine understands.
POLICIES = ("lru", "fifo", "random", "set-associative")


@dataclass(frozen=True)
class SweepJob:
    """Specification of one policy sweep (picklable, pool-dispatchable).

    Exactly one of ``trace`` (integer array) or ``path`` (text trace file
    readable by :func:`repro.trace.io.read_text`) must be provided.  The
    capacity grid is normalised to a sorted tuple of distinct positive
    integers; for the set-associative policy, capacities that are not
    multiples of ``ways`` are skipped (that policy's grid keeps only the
    realisable configurations), and requesting it with a grid containing no
    realisable capacity at all is an error rather than a silently empty
    result.
    """

    trace: np.ndarray | None = None
    path: str | None = None
    name: str = "trace"
    policies: tuple[str, ...] = ("lru",)
    capacities: tuple[int, ...] = ()
    ways: int = 4
    seed: int = 0

    def __post_init__(self):
        if (self.trace is None) == (self.path is None):
            raise ValueError("provide exactly one of trace= or path=")
        policies = tuple(self.policies)
        unknown = [p for p in policies if p not in POLICIES]
        if unknown:
            raise ValueError(f"unknown policies {unknown}; choose from {list(POLICIES)}")
        if not policies:
            raise ValueError("need at least one policy to sweep")
        caps = check_capacities(np.asarray(self.capacities))
        normalised = tuple(int(c) for c in np.unique(caps))
        check_positive("ways", self.ways)
        if "set-associative" in policies and not any(c % int(self.ways) == 0 for c in normalised):
            raise ValueError(
                f"set-associative sweep needs at least one capacity that is a "
                f"multiple of ways={int(self.ways)}; got {list(normalised)}"
            )
        object.__setattr__(self, "policies", policies)
        object.__setattr__(self, "capacities", normalised)
        object.__setattr__(self, "ways", int(self.ways))

    def capacities_for(self, policy: str) -> tuple[int, ...]:
        """The realisable capacity grid for one policy (filters set-associative)."""
        if policy == "set-associative":
            return tuple(c for c in self.capacities if c % self.ways == 0)
        return self.capacities


@dataclass(frozen=True)
class PolicySweep:
    """Hit counts of one policy across its capacity grid."""

    policy: str
    capacities: tuple[int, ...]
    hits: tuple[int, ...]
    accesses: int
    seconds: float

    @property
    def misses(self) -> tuple[int, ...]:
        """Miss counts, aligned with ``capacities``."""
        return tuple(self.accesses - h for h in self.hits)

    @property
    def miss_ratios(self) -> tuple[float, ...]:
        """Miss ratios, aligned with ``capacities``."""
        return tuple(m / self.accesses for m in self.misses)

    def miss_ratio_at(self, capacity: int) -> float:
        """Miss ratio at one swept capacity (raises if it was not in the grid)."""
        try:
            index = self.capacities.index(int(capacity))
        except ValueError:
            raise KeyError(f"capacity {capacity} was not swept for policy {self.policy!r}") from None
        return self.miss_ratios[index]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one :class:`SweepJob`: a :class:`PolicySweep` per policy."""

    name: str
    accesses: int
    footprint: int
    sweeps: tuple[PolicySweep, ...]

    def __getitem__(self, policy: str) -> PolicySweep:
        for sweep in self.sweeps:
            if sweep.policy == policy:
                return sweep
        raise KeyError(f"policy {policy!r} was not part of this sweep")

    def rows(self) -> list[dict]:
        """Flat ``policy × capacity`` rows for tables and CSV export."""
        out: list[dict] = []
        for sweep in self.sweeps:
            for capacity, hits, ratio in zip(sweep.capacities, sweep.hits, sweep.miss_ratios):
                out.append(
                    {
                        "trace": self.name,
                        "policy": sweep.policy,
                        "capacity": capacity,
                        "accesses": self.accesses,
                        "hits": hits,
                        "misses": self.accesses - hits,
                        "miss_ratio": ratio,
                    }
                )
        return out

    def summary(self) -> dict:
        """One aggregate scoreboard row across every swept policy."""
        return {
            "trace": self.name,
            "accesses": self.accesses,
            "footprint": self.footprint,
            "policies": len(self.sweeps),
            "points": sum(len(sweep.capacities) for sweep in self.sweeps),
            "seconds": sum(sweep.seconds for sweep in self.sweeps),
        }


def _load(job: SweepJob) -> np.ndarray:
    if job.trace is not None:
        return np.asarray(job.trace)
    from ..trace.io import read_text

    return read_text(Path(job.path)).accesses


#: Keys into the per-task trace payload: the lane kernels want compacted
#: labels, the set-associative kernel the original ones (its ``item %
#: num_sets`` mapping is label-dependent).
_TRACE_KEY = {"lru": "dense", "fifo": "dense", "random": "dense", "set-associative": "raw"}


def _run_task(task: tuple) -> tuple[str, tuple[int, ...], np.ndarray, float]:
    """Evaluate one (policy, capacity-chunk) task; returns hits plus compute seconds."""
    policy, caps, payload, distinct, ways, seed = task
    trace = resolve_array(payload)
    capacities = np.asarray(caps, dtype=np.int64)
    with span("sweep.task", policy=policy) as timer:
        if policy == "lru":
            hits = lru_sweep_hits(trace, capacities)
        elif policy == "fifo":
            hits = fifo_sweep_hits(trace, capacities, distinct=distinct)
        elif policy == "random":
            hits = random_sweep_hits(trace, capacities, seed=seed, distinct=distinct)
        elif policy == "set-associative":
            hits = set_associative_sweep_hits(trace, capacities, ways=ways)
        else:  # pragma: no cover - SweepJob validates policies
            raise ValueError(f"unknown policy {policy!r}")
    return policy, tuple(caps), hits, timer.seconds


def _tasks_for(job: SweepJob, arrays: dict[str, np.ndarray], distinct: int, workers: int, by_key: bool) -> list[tuple]:
    """Split the policy × capacity matrix into pool tasks.

    LRU is always a single task (one histogram pass covers the whole grid);
    FIFO/random grids are chunked only when a pool exists, because each chunk
    re-walks the trace; set-associative capacities are independent passes and
    fan out one per task.  With ``by_key`` the tasks reference the trace by
    its :func:`repro.engine.runner.published_arrays` key instead of embedding
    the array, so task tuples stay a few bytes each.
    """
    tasks: list[tuple] = []
    for policy in job.policies:
        caps = job.capacities_for(policy)
        if policy == "lru" or workers == 1:
            chunks = [caps]
        elif policy == "set-associative":
            chunks = [(c,) for c in caps]
        else:
            pieces = min(workers, len(caps))
            chunks = [tuple(int(c) for c in part) for part in np.array_split(np.asarray(caps), pieces)]
        key = _TRACE_KEY[policy]
        payload = key if by_key else arrays[key]
        for chunk in chunks:
            if chunk:
                tasks.append((policy, tuple(chunk), payload, distinct, job.ways, job.seed))
    return tasks


def _sweep_fingerprint(job: SweepJob, trace: np.ndarray) -> str:
    """Stable identity of one logical sweep (job knobs + trace contents).

    Deliberately excludes ``workers``: task *chunking* varies with the worker
    count, but outcomes are memoized by their ``policy:capacities`` key, so a
    resume under a different worker count reuses every chunk it recognises
    and recomputes the rest — the merged result is identical either way.
    """
    basis = {
        "name": job.name,
        "policies": list(job.policies),
        "capacities": [int(c) for c in job.capacities],
        "ways": int(job.ways),
        "seed": int(job.seed),
        "accesses": int(trace.size),
        "trace_crc": zlib.crc32(np.ascontiguousarray(trace, dtype=np.int64).tobytes()) & 0xFFFFFFFF,
    }
    digest = hashlib.sha256(json.dumps(basis, sort_keys=True).encode("utf-8")).hexdigest()
    return f"sweep/1/{digest[:32]}"


def _task_key(task: tuple) -> str:
    """Memoization key of one pool task: its policy and capacity chunk."""
    policy, caps = task[0], task[1]
    return f"{policy}:{','.join(str(int(c)) for c in caps)}"


def run_sweep(
    job: SweepJob,
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
) -> SweepResult:
    """Evaluate every policy of ``job`` over its capacity grid.

    ``workers`` fans (policy, capacity-chunk) tasks across forked processes;
    the result is bit-identical for every worker count (asserted in
    ``tests/sim/test_sweep.py``), including the seeded random policy.

    ``policy`` (a :class:`repro.resilience.RetryPolicy`) hardens the pool:
    per-task timeouts, bounded retries and an inline fallback instead of a
    hang or a bare pickling error when a worker dies mid-task.

    With ``checkpoint_dir`` finished task outcomes are memoized to disk after
    every ``checkpoint_every`` completed tasks (atomic, checksummed,
    fingerprinted); a killed sweep restarted with ``resume=True`` recomputes
    only the tasks that never finished and merges to the identical result.
    ``resume=True`` against an empty store simply runs from the start.
    """
    workers = check_workers(workers)
    check_positive("checkpoint_every", checkpoint_every)
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs checkpoint_dir= naming the checkpoint store")
    raw = np.asarray(_load(job))
    dense, distinct = compact_trace(raw)
    arrays = {"dense": dense, "raw": raw.astype(np.int64, copy=False)}
    by_key = workers > 1 and fork_available()
    tasks = _tasks_for(job, arrays, distinct, workers, by_key)

    fingerprint = None
    by_outcome: dict[str, tuple] = {}
    if checkpoint_dir is not None:
        fingerprint = _sweep_fingerprint(job, raw)
        if resume and latest_step(checkpoint_dir) is not None:
            by_outcome = dict(load_checkpoint(checkpoint_dir, fingerprint=fingerprint).state["outcomes"])
    remaining = [task for task in tasks if _task_key(task) not in by_outcome]

    # Publish the trace arrays through the engine runner so forked children
    # inherit them copy-on-write instead of pickling the whole trace through
    # the task queue once per task; held open across checkpoint batches.
    publication = published_arrays(arrays) if by_key else contextlib.nullcontext()
    with publication:
        if checkpoint_dir is None:
            outcomes = pool_map(_run_task, remaining, workers=workers, policy=policy) if remaining else []
            by_outcome.update(zip(map(_task_key, remaining), outcomes))
        else:
            # Batches at least `workers` wide keep the pool saturated even
            # when checkpoint_every=1 asks for per-task durability.
            batch_size = max(int(checkpoint_every), workers)
            completed = len(tasks) - len(remaining)
            for start in range(0, len(remaining), batch_size):
                batch = remaining[start : start + batch_size]
                batch_outcomes = pool_map(_run_task, batch, workers=workers, policy=policy)
                by_outcome.update(zip(map(_task_key, batch), batch_outcomes))
                completed += len(batch)
                with span("sweep.checkpoint"):
                    write_checkpoint(
                        checkpoint_dir, completed, {"outcomes": by_outcome}, fingerprint=fingerprint, command="sweep"
                    )
                _fire_fault("sweep.checkpoint", completed)
    outcomes = [by_outcome[_task_key(task)] for task in tasks]

    per_policy: dict[str, tuple[list[int], list[int], float]] = {}
    for policy, caps, hits, seconds in outcomes:
        caps_list, hits_list, total = per_policy.setdefault(policy, ([], [], 0.0))
        caps_list.extend(caps)
        hits_list.extend(int(h) for h in hits)
        per_policy[policy] = (caps_list, hits_list, total + seconds)

    registry = get_registry()
    sweeps = []
    for policy in job.policies:
        caps_list, hits_list, seconds = per_policy[policy]
        order = np.argsort(np.asarray(caps_list))
        sweeps.append(
            PolicySweep(
                policy=policy,
                capacities=tuple(int(caps_list[i]) for i in order),
                hits=tuple(int(hits_list[i]) for i in order),
                accesses=int(dense.size),
                seconds=float(seconds),
            )
        )
        # Kernel throughput in lane-references: every swept capacity is one
        # lane over the full trace.  Recorded from the returned outcome data
        # (not inside workers), so the aggregate is deterministic.
        registry.record_span("sweep.kernel", float(seconds), policy=policy)
        registry.counter("sweep.lane_refs", policy=policy).add(int(dense.size) * len(caps_list))
    registry.gauge("sweep.footprint").set(distinct)
    return SweepResult(name=job.name, accesses=int(dense.size), footprint=distinct, sweeps=tuple(sweeps))


def naive_sweep_hits(
    trace: Sequence[int] | np.ndarray, capacities: Sequence[int] | np.ndarray, *, policy: str = "lru"
) -> np.ndarray:
    """Reference oracle: replay the trace once per capacity through a CacheModel.

    This is the cost wall the sweep engine removes — ``len(capacities)`` full
    pure-Python replays.  Used by the cross-validation tests and as the
    baseline of the ``benchmarks/test_bench_sweep.py`` speedup assertion.
    """
    from ..cache.fifo import FIFOCache
    from ..cache.lru import LRUCache

    models = {"lru": LRUCache, "fifo": FIFOCache}
    if policy not in models:
        raise ValueError(f"naive replay supports {sorted(models)}, got {policy!r}")
    caps = check_capacities(capacities)
    arr = np.asarray(trace).tolist()
    hits = np.zeros(caps.size, dtype=np.int64)
    for k, capacity in enumerate(caps):
        model = models[policy](int(capacity))
        hits[k] = model.run(arr).hits
    return hits
