"""Per-tenant columnar state: one stack-distance pass feeding every consumer.

Every multi-tenant experiment consumes a composed trace as two columns —
``items`` (access labels) and ``tenant_ids`` (owning tenant per event) — and
every one of them needs the same two facts per tenant: *its sub-stream* (the
items it touched, in order) and *its stack distances* over that sub-stream.
Distances are a property of the tenant stream alone — independent of any
capacity schedule — so one pass per tenant serves MRC extraction (static
whole-trace and per-phase-window profiles), the batch replay lanes, and any
future consumer simultaneously.

* :func:`tenant_positions` / :func:`split_by_tenant` — the one columnar
  split (previously hand-rolled as ``items[ids == t]`` loops in three
  modules).
* :class:`TenantDistancePasses` — the full per-tenant distance pass
  (distances plus previous-access positions), with
  :meth:`~TenantDistancePasses.whole_stream_curve` and
  :meth:`~TenantDistancePasses.window_curve` deriving exact discretized MRCs
  of the whole stream or of any event window for free.
* :class:`TenantDistanceStreams` — the streaming variant: chunked distances
  with ``O(footprint)`` carried state, for traces too large to hold.
* :class:`PrecomputedTenantDistances` — whole-stream distances sliced out
  chunk by chunk (the in-memory replay fast path).
* :func:`exact_discretized_curve` / :func:`discretized_from_distances` —
  exact discretized MRC extraction from a stream or from precomputed
  distances, bit-identical to each other on the same stream.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..cache.stack_distance import COLD, StackDistanceStream, stack_distances_vectorized

__all__ = [
    "PrecomputedTenantDistances",
    "TenantDistancePasses",
    "TenantDistanceStreams",
    "check_tenant_ids",
    "discretized_from_distances",
    "exact_discretized_curve",
    "idle_curve",
    "split_by_tenant",
    "tenant_positions",
]


def check_tenant_ids(tenant_ids: np.ndarray, num_tenants: int) -> None:
    """Reject tenant ids outside ``[0, num_tenants)``.

    Splitting with boolean masks would otherwise silently *drop* the events
    of an out-of-range tenant — wrong totals instead of an error, where the
    per-event reference simulator raises.
    """
    if tenant_ids.size and not 0 <= int(tenant_ids.min()) <= int(tenant_ids.max()) < num_tenants:
        raise ValueError(
            f"tenant ids must be within [0, {num_tenants}), got range "
            f"[{int(tenant_ids.min())}, {int(tenant_ids.max())}]"
        )


def tenant_positions(tenant_ids: np.ndarray, num_tenants: int) -> list[np.ndarray]:
    """Per-tenant event positions (sorted ascending) in a composed trace."""
    tenant_ids = np.asarray(tenant_ids)
    check_tenant_ids(tenant_ids, int(num_tenants))
    return [np.flatnonzero(tenant_ids == t) for t in range(int(num_tenants))]


def split_by_tenant(items: np.ndarray, tenant_ids: np.ndarray, num_tenants: int) -> list[np.ndarray]:
    """Per-tenant sub-streams of a composed ``(items, tenant_ids)`` trace."""
    items = np.asarray(items)
    tenant_ids = np.asarray(tenant_ids)
    if items.shape != tenant_ids.shape:
        raise ValueError(f"items and tenant_ids must align, got {items.shape} vs {tenant_ids.shape}")
    check_tenant_ids(tenant_ids, int(num_tenants))
    return [items[tenant_ids == t] for t in range(int(num_tenants))]


# --------------------------------------------------------------------------- #
# Exact discretized MRC extraction
# --------------------------------------------------------------------------- #
_IDLE_CURVE_ACCESSES = 1


def idle_curve(unit: int):
    """Zero-demand curve for a tenant with no traffic: never allocate to it."""
    from ..alloc.curves import DiscretizedMRC

    return DiscretizedMRC(misses=np.zeros(1, dtype=np.float64), unit=unit, accesses=_IDLE_CURVE_ACCESSES)


def exact_discretized_curve(stream: np.ndarray, budget: int, unit: int):
    """Exact whole-stream MRC of one tenant stream, discretized to units.

    The pool-dispatchable profile extractor of the reference engine: one
    stack-distance pass over ``stream``, a miss-ratio curve up to ``budget``
    blocks, discretized to allocation ``unit``\\ s.  An empty stream maps to
    the :func:`idle_curve`.
    """
    from ..alloc.curves import discretize_curve
    from ..cache.mrc import mrc_from_trace

    stream = np.asarray(stream)
    if stream.size == 0:
        return idle_curve(unit)
    curve = mrc_from_trace(stream, max_cache_size=budget)
    return discretize_curve(curve, budget, unit=unit)


def discretized_from_distances(distances: np.ndarray, budget: int, unit: int):
    """Exact discretized MRC straight from precomputed stack distances.

    Bit-identical to :func:`exact_discretized_curve` on the stream the
    distances were measured over (same histogram, same cumulative hits, same
    float ops) — but free once the engine has done its one distance pass per
    tenant.  Cold accesses carry the
    :data:`~repro.cache.stack_distance.COLD` sentinel, which is beyond any
    budget and falls out of the histogram.
    """
    from ..alloc.curves import discretize_curve
    from ..cache.mrc import MissRatioCurve

    n = int(distances.size)
    if n == 0:
        return idle_curve(unit)
    within = distances[distances <= budget]
    hist = np.bincount(within - 1, minlength=budget)[:budget]
    ratios = 1.0 - np.cumsum(hist).astype(np.float64) / n
    curve = MissRatioCurve(ratios=tuple(ratios.tolist()), accesses=n)
    return discretize_curve(curve, budget, unit=unit)


def _exact_discretized_task(task: tuple[np.ndarray, int, int]):
    """Pool worker: :func:`exact_discretized_curve` over one ``(stream, budget, unit)``."""
    stream, budget, unit = task
    return exact_discretized_curve(stream, budget, unit)


class TenantDistancePasses:
    """One full stack-distance pass per tenant, shared by every consumer.

    Built from a composed ``(items, tenant_ids)`` trace; holds, per tenant,
    the event positions in the composed trace, the stack distances over the
    tenant's sub-stream, and each access's previous-occurrence position
    (:data:`~repro.cache.stack_distance.COLD`-sentinel cold accesses have
    ``previous == -1``).  From those arrays, whole-stream and per-window
    exact profiles are array slices — no re-processing:

    * :meth:`whole_stream_curve` histograms the full distance array;
    * :meth:`window_curve` re-labels as cold every access whose previous
      occurrence predates the window (exactly what a from-scratch pass over
      the window's sub-trace would measure).
    """

    def __init__(self, items: np.ndarray, tenant_ids: np.ndarray, num_tenants: int):
        from ..cache.stack_distance import stack_distances_with_previous

        self.positions = tenant_positions(tenant_ids, num_tenants)
        items = np.asarray(items)
        passes = [stack_distances_with_previous(items[idx]) for idx in self.positions]
        self.distances = [distances for distances, _previous in passes]
        self.previous = [previous for _distances, previous in passes]

    @property
    def num_tenants(self) -> int:
        """Number of tenant streams."""
        return len(self.positions)

    def whole_stream_curve(self, tenant: int, budget: int, unit: int):
        """Exact discretized MRC of one tenant's whole stream."""
        return discretized_from_distances(self.distances[tenant], budget, unit)

    def window_curve(self, tenant: int, bounds: tuple[int, int], budget: int, unit: int):
        """Exact discretized MRC of one tenant inside a composed-trace window.

        ``bounds`` is a half-open ``(start, end)`` window over the *composed*
        trace; the tenant's accesses inside it are located with one
        ``searchsorted`` and an access whose previous occurrence predates
        the window is simply cold there.
        """
        lo, hi = (int(x) for x in np.searchsorted(self.positions[tenant], bounds))
        distances = self.distances[tenant]
        previous = self.previous[tenant]
        adjusted = np.where(previous[lo:hi] >= lo, distances[lo:hi], np.int64(COLD))
        return discretized_from_distances(adjusted, budget, unit)


# --------------------------------------------------------------------------- #
# Distance providers for the batch replay data plane
# --------------------------------------------------------------------------- #
class TenantDistanceStreams:
    """Per-tenant streaming stack distances over a composed multi-tenant trace.

    Each tenant's partition is isolated, so its distances are measured on its
    own sub-stream; this wrapper splits a composed ``(items, tenant_ids)``
    segment and feeds each tenant's share to a carried
    :class:`~repro.cache.stack_distance.StackDistanceStream`.  The resulting
    per-tenant distance arrays are what every lane of a replay shares — the
    expensive pass happens once per segment regardless of how many capacity
    schedules are measured on top of it.
    """

    def __init__(self, num_tenants: int):
        if int(num_tenants) < 1:
            raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
        self._streams = [StackDistanceStream() for _ in range(int(num_tenants))]

    @property
    def num_tenants(self) -> int:
        """Number of tenant streams."""
        return len(self._streams)

    def feed(self, items: np.ndarray, tenant_ids: np.ndarray) -> list[np.ndarray]:
        """Split one composed segment and return per-tenant distance arrays."""
        items = np.asarray(items)
        tenant_ids = np.asarray(tenant_ids)
        if items.shape != tenant_ids.shape:
            raise ValueError(f"items and tenant_ids must align, got {items.shape} vs {tenant_ids.shape}")
        check_tenant_ids(tenant_ids, len(self._streams))
        return [self._streams[t].feed(items[tenant_ids == t]) for t in range(len(self._streams))]

    def state_dict(self) -> dict:
        """Picklable snapshot of every tenant stream's carried state."""
        return {"streams": [stream.state_dict() for stream in self._streams]}

    def load_state_dict(self, state: dict) -> None:
        """Restore carried state captured by :meth:`state_dict`."""
        states = state["streams"]
        if len(states) != len(self._streams):
            raise ValueError(f"state holds {len(states)} tenant streams, this provider has {len(self._streams)}")
        for stream, stream_state in zip(self._streams, states):
            stream.load_state_dict(stream_state)


class PrecomputedTenantDistances:
    """Whole-stream per-tenant stack distances, sliced out chunk by chunk.

    The in-memory fast path of the replay data plane: when the composed
    trace is fully resident anyway, one vectorised distance pass per tenant
    up front beats re-running the (overhead-bound) chunked pass on every
    small epoch segment.  ``feed`` has the same surface as
    :class:`TenantDistanceStreams` and yields bit-identical arrays — the
    streaming variant exists for traces too large to hold in memory.
    """

    def __init__(self, items: np.ndarray, tenant_ids: np.ndarray, num_tenants: int):
        items = np.asarray(items)
        tenant_ids = np.asarray(tenant_ids)
        if items.shape != tenant_ids.shape:
            raise ValueError(f"items and tenant_ids must align, got {items.shape} vs {tenant_ids.shape}")
        if int(num_tenants) < 1:
            raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
        check_tenant_ids(tenant_ids, int(num_tenants))
        self._distances = [stack_distances_vectorized(items[tenant_ids == t]) for t in range(int(num_tenants))]
        self._cursors = [0] * int(num_tenants)

    @classmethod
    def from_arrays(cls, distances: Sequence[np.ndarray]) -> "PrecomputedTenantDistances":
        """Wrap already-computed per-tenant distance arrays (no extra pass).

        This is how the replay engine amortises its one distance pass per
        tenant across *every* consumer: the same arrays produce the static
        and per-phase oracle profiles and then drive all three lanes.
        """
        if not distances:
            raise ValueError("need at least one tenant distance array")
        provider = cls.__new__(cls)
        provider._distances = [np.asarray(d) for d in distances]
        provider._cursors = [0] * len(provider._distances)
        return provider

    @classmethod
    def from_passes(cls, passes: TenantDistancePasses) -> "PrecomputedTenantDistances":
        """Wrap the distance arrays of a :class:`TenantDistancePasses`."""
        return cls.from_arrays(passes.distances)

    @property
    def num_tenants(self) -> int:
        """Number of tenant streams."""
        return len(self._distances)

    def feed(self, chunk_items: np.ndarray, chunk_ids: np.ndarray) -> list[np.ndarray]:
        """Per-tenant distance slices for the next chunk of the composed trace."""
        chunk_ids = np.asarray(chunk_ids)
        check_tenant_ids(chunk_ids, len(self._distances))
        out = []
        for tenant, distances in enumerate(self._distances):
            count = int(np.count_nonzero(chunk_ids == tenant))
            cursor = self._cursors[tenant]
            if cursor + count > distances.size:
                raise ValueError(f"tenant {tenant} fed past the precomputed stream ({distances.size} references)")
            out.append(distances[cursor : cursor + count])
            self._cursors[tenant] = cursor + count
        return out

    def state_dict(self) -> dict:
        """Picklable snapshot: just the per-tenant cursors.

        The distance arrays themselves are a deterministic function of the
        trace, so checkpoints carry only the cursors and a resume recomputes
        the arrays before seeking back to them.
        """
        return {"cursors": [int(c) for c in self._cursors]}

    def load_state_dict(self, state: dict) -> None:
        """Restore cursors captured by :meth:`state_dict` (bounds-checked)."""
        cursors = [int(c) for c in state["cursors"]]
        if len(cursors) != len(self._distances):
            raise ValueError(f"state holds {len(cursors)} cursors, this provider has {len(self._distances)}")
        for tenant, (cursor, distances) in enumerate(zip(cursors, self._distances)):
            if not 0 <= cursor <= distances.size:
                raise ValueError(f"tenant {tenant} cursor {cursor} outside [0, {distances.size}]")
        self._cursors = cursors
