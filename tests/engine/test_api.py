"""Tests of the :mod:`repro.api` facade and the common job/result protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.engine import ExperimentJob, ExperimentResult

TRACE = np.array([1, 2, 1, 3, 2, 1, 4, 1, 2, 3] * 20)


def _tenants():
    from repro.trace.tenancy import TenantSpec
    from repro.trace.trace import PeriodicTrace

    return (
        TenantSpec(PeriodicTrace.sawtooth(24).to_trace(), name="saw"),
        TenantSpec(PeriodicTrace.cyclic(16).to_trace(), name="cyc"),
    )


class TestProtocols:
    def test_jobs_conform(self):
        from repro.alloc.partition import PartitionJob
        from repro.online.replay import OnlineJob
        from repro.profiling.engine import ProfileJob
        from repro.sim.sweep import SweepJob

        jobs = [
            ProfileJob(trace=TRACE, mode="exact"),
            SweepJob(trace=TRACE, capacities=(2, 4)),
            PartitionJob(tenants=_tenants(), budget=16),
            OnlineJob(budget=16, window=64, epoch=32),
        ]
        for job in jobs:
            assert isinstance(job, ExperimentJob)

    def test_results_conform(self):
        result = api.sweep(TRACE, capacities=(2, 4))
        assert isinstance(result, ExperimentResult)
        profile = api.profile(TRACE, mode="exact")
        assert isinstance(profile, ExperimentResult)
        assert profile.rows()[0] == {"cache_size": 1, "miss_ratio": profile.curve.ratios[0]}
        assert profile.summary()["mode"] == "exact"


class TestRunDispatch:
    def test_unknown_job_type(self):
        with pytest.raises(TypeError, match="unknown experiment job"):
            api.run(object())

    def test_online_requires_workload(self):
        from repro.online.replay import OnlineJob

        with pytest.raises(ValueError, match="workload"):
            api.run(OnlineJob(budget=16, window=64, epoch=32))

    def test_workload_rejected_for_offline_jobs(self):
        from repro.sim.sweep import SweepJob

        with pytest.raises(ValueError, match="only applies to online jobs"):
            api.run(SweepJob(trace=TRACE, capacities=(2,)), workload="three-phase")

    def test_run_profile_job(self):
        from repro.profiling.engine import ProfileJob

        result = api.run(ProfileJob(trace=TRACE, mode="exact"))
        assert result.accesses == TRACE.size


class TestProfileFacade:
    def test_single_input_single_result(self):
        result = api.profile(TRACE, mode="exact")
        assert result.accesses == TRACE.size

    def test_batch_input_list_result(self):
        results = api.profile([TRACE, TRACE], mode="exact", workers=2)
        assert len(results) == 2
        assert results[0].curve.ratios == results[1].curve.ratios

    def test_path_input(self, tmp_path):
        from repro.trace.io import write_text
        from repro.trace.trace import Trace

        path = write_text(Trace(TRACE, name="t"), tmp_path / "t.trace")
        result = api.profile(path, mode="exact")
        assert result.name == "t"
        assert result.accesses == TRACE.size

    def test_csv_requires_single_trace(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one trace"):
            api.profile([TRACE, TRACE], mode="exact", csv_path=tmp_path / "x.csv")


class TestOnlineFacade:
    def test_rejects_unknown_preset(self):
        with pytest.raises(ValueError, match="workload must be one of"):
            api.online("no-such-preset", 16, 64, 32)

    def test_accepts_prebuilt_workload(self):
        from repro.trace.drift import three_phase_pair

        workload = three_phase_pair(200, seed=7)
        via_preset = api.online("three-phase", 64, 200, 100, length=200, seed=7)
        via_workload = api.online(workload, 64, 200, 100, name="three-phase")
        assert via_preset.rows() == via_workload.rows()
        assert via_preset.summary() == via_workload.summary()


class TestExports:
    def test_csv_matches_cli_bytes(self, tmp_path, monkeypatch):
        # The facade's CSV export and the CLI subcommand must produce
        # byte-identical files (the CLI is a thin wrapper over the facade).
        from repro.cli import main
        from repro.trace.io import write_text
        from repro.trace.trace import Trace

        trace_file = write_text(Trace(TRACE, name="t"), tmp_path / "t.trace")
        cli_csv, api_csv = tmp_path / "cli.csv", tmp_path / "api.csv"
        assert main(["sweep", str(trace_file), "--policies", "lru", "--capacities", "2,4", "--csv", str(cli_csv)]) == 0
        api.sweep(path=trace_file, name="t", policies=("lru",), capacities=(2, 4), csv_path=api_csv)
        assert api_csv.read_bytes() == cli_csv.read_bytes()

    def test_online_csv_has_total_row(self, tmp_path):
        csv_path = tmp_path / "online.csv"
        result = api.online("three-phase", 64, 200, 100, length=200, csv_path=csv_path)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == len(result.rows()) + 2  # header + rows + TOTAL
        assert lines[-1].startswith("TOTAL") or "TOTAL" in lines[-1]

    def test_partition_csv_has_total_row(self, tmp_path):
        csv_path = tmp_path / "partition.csv"
        result = api.partition(_tenants(), 16, csv_path=csv_path)
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == len(result.rows()) + 2
        assert "TOTAL" in lines[-1]

    def test_metrics_path_writes_jsonl(self, tmp_path):
        import json

        metrics_path = tmp_path / "run.jsonl"
        api.sweep(TRACE, capacities=(2, 4), metrics_path=metrics_path)
        records = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        assert any(r.get("type") == "manifest" and r.get("command") == "sweep" for r in records)
        assert any(r.get("type") == "counter" for r in records)

    def test_metrics_recording_never_changes_results(self, tmp_path):
        plain = api.sweep(TRACE, capacities=(2, 4))
        recorded = api.sweep(TRACE, capacities=(2, 4), metrics_path=tmp_path / "m.jsonl")
        assert plain.rows() == recorded.rows()
