"""Tests for the streaming reuse-time profiler and the AET model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.mrc import mrc_from_trace
from repro.profiling import (
    ReuseTimeHistogram,
    ReuseTimeProfiler,
    mean_absolute_error,
    reuse_mrc,
)
from repro.trace.generators import zipfian_stream, zipfian_trace


class TestBucketArithmetic:
    def test_fine_region_is_exact(self):
        hist = ReuseTimeHistogram(fine_limit=64, coarse_per_octave=16)
        for t in range(1, 65):
            assert hist.bucket_index(t) == t - 1
            assert hist.bucket_upper_edge(t - 1) == t

    def test_scalar_and_vector_agree(self):
        hist = ReuseTimeHistogram(fine_limit=256, coarse_per_octave=32)
        rng = np.random.default_rng(0)
        times = np.concatenate(
            [
                np.arange(1, 2_000),
                rng.integers(1, 1 << 40, size=2_000),
                # power-of-two boundaries and their neighbours
                np.array([(1 << k) + d for k in range(1, 45) for d in (-1, 0, 1)]),
            ]
        )
        times = times[times >= 1]
        vector = hist.bucket_indices(times)
        scalar = np.array([hist.bucket_index(int(t)) for t in times])
        assert np.array_equal(vector, scalar)

    def test_upper_edge_contains_bucket(self):
        hist = ReuseTimeHistogram(fine_limit=64, coarse_per_octave=16)
        for t in [1, 63, 64, 65, 100, 127, 128, 1000, 10**6, 10**9]:
            index = hist.bucket_index(t)
            edge = hist.bucket_upper_edge(index)
            assert edge >= t
            assert hist.bucket_index(edge) == index

    def test_edges_strictly_ordered_across_nonempty_buckets(self):
        hist = ReuseTimeHistogram(fine_limit=64, coarse_per_octave=16)
        edges = [hist.bucket_upper_edge(i) for i in range(64 + 16 * 8)]
        assert all(b >= a for a, b in zip(edges, edges[1:]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReuseTimeHistogram(fine_limit=100)
        with pytest.raises(ValueError):
            ReuseTimeHistogram(fine_limit=64, coarse_per_octave=128)
        with pytest.raises(ValueError):
            ReuseTimeHistogram().bucket_index(0)


class TestHistogramMerge:
    def test_merge_equals_combined_recording(self):
        rng = np.random.default_rng(1)
        times = rng.integers(1, 100_000, size=5_000)
        one = ReuseTimeHistogram(fine_limit=512, coarse_per_octave=64)
        one.record_reuses(times)
        one.record_cold(7)

        left = ReuseTimeHistogram(fine_limit=512, coarse_per_octave=64)
        left.record_reuses(times[:2_000])
        left.record_cold(3)
        right = ReuseTimeHistogram(fine_limit=512, coarse_per_octave=64)
        right.record_reuses(times[2_000:])
        right.record_cold(4)
        assert left.merge(right) == one

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ReuseTimeHistogram(fine_limit=64).merge(ReuseTimeHistogram(fine_limit=128))


class TestProfiler:
    def test_counts_and_footprint(self):
        profiler = ReuseTimeProfiler()
        profiler.feed([1, 2, 1, 3, 2, 1])
        assert profiler.accesses == 6
        assert profiler.footprint == 3
        assert profiler.histogram.cold == 3

    def test_scalar_feed_matches_vectorised_array_path(self):
        trace = zipfian_trace(30_000, 1_024, rng=2).accesses
        streamed = ReuseTimeProfiler().feed(int(x) for x in trace)
        from repro.profiling import parallel_reuse_histogram

        vectorised = parallel_reuse_histogram(trace, workers=1)
        assert streamed.histogram == vectorised

    def test_incremental_updates_match_feed(self):
        trace = [5, 3, 5, 5, 2, 3]
        a = ReuseTimeProfiler()
        for x in trace:
            a.update(x)
        b = ReuseTimeProfiler().feed(trace)
        assert a.histogram == b.histogram


class TestAETModel:
    def test_cyclic_trace_is_exact(self):
        """All reuse times equal m: AET reproduces the LRU cliff exactly."""
        m, passes = 16, 5
        trace = np.tile(np.arange(m), passes)
        curve = reuse_mrc(trace)
        exact = mrc_from_trace(trace)
        for c in range(1, m):
            assert curve[c] == pytest.approx(1.0)
        assert curve[m] == pytest.approx(exact[m]) == pytest.approx(m / (m * passes))

    def test_zipfian_accuracy(self):
        trace = zipfian_trace(60_000, 4_096, exponent=0.8, rng=7).accesses
        exact = mrc_from_trace(trace)
        approx = reuse_mrc(trace)
        assert mean_absolute_error(approx, exact) < 0.05

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            ReuseTimeHistogram().to_mrc()

    def test_curve_default_length_is_footprint(self):
        trace = zipfian_trace(10_000, 512, rng=3)
        curve = reuse_mrc(trace)
        assert curve.max_cache_size == trace.footprint


class TestGeneratorBackedStream:
    def test_profiles_stream_without_materialising(self):
        """A pure generator (no __len__, no random access) streams through in
        one pass — the memory profile is footprint + fixed histogram, so the
        same path handles traces too long to materialise."""
        length, footprint = 400_000, 2_048
        stream = zipfian_stream(length, footprint, exponent=0.8, rng=7)
        assert not hasattr(stream, "__len__")
        profiler = ReuseTimeProfiler()
        profiler.feed(stream)
        assert profiler.accesses == length
        assert profiler.footprint <= footprint
        curve = profiler.mrc()
        ratios = curve.as_array()
        assert ratios[0] > ratios[-1]
        assert np.all((0.0 <= ratios) & (ratios <= 1.0))

    def test_stream_matches_materialised_distribution(self):
        """The stream draws from the same distribution as zipfian_trace."""
        stream_items = np.fromiter(zipfian_stream(50_000, 256, rng=11, chunk_size=1_000), dtype=np.int64)
        trace_items = zipfian_trace(50_000, 256, rng=12).accesses
        # Same hot-item ordering: item 0 most popular in both.
        assert np.bincount(stream_items).argmax() == 0
        assert abs(np.mean(stream_items == 0) - np.mean(trace_items == 0)) < 0.02
