"""Tests for SHARDS-style sampled miss-ratio curves."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cache.mrc import mrc_from_trace
from repro.profiling import (
    HASH_SPACE,
    adaptive_rate,
    mean_absolute_error,
    sample_trace,
    shards_mrc,
    spatial_hash,
)
from repro.trace.generators import zipfian_trace


class TestSpatialHash:
    def test_deterministic_per_item(self):
        items = np.arange(1000)
        assert np.array_equal(spatial_hash(items, seed=3), spatial_hash(items, seed=3))

    def test_seed_changes_hashes(self):
        items = np.arange(1000)
        assert not np.array_equal(spatial_hash(items, seed=0), spatial_hash(items, seed=1))

    def test_hashes_within_space(self):
        hashes = spatial_hash(np.arange(10_000), seed=0)
        assert int(hashes.max()) < HASH_SPACE

    def test_roughly_uniform(self):
        hashes = spatial_hash(np.arange(100_000), seed=0)
        below_half = int(np.sum(hashes < HASH_SPACE // 2))
        assert 0.48 < below_half / 100_000 < 0.52


class TestSampleTrace:
    def test_spatial_property(self):
        """Either every reference to an item is sampled or none is."""
        trace = zipfian_trace(20_000, 512, rng=0).accesses
        sub, rate = sample_trace(trace, 0.2, seed=1)
        sampled_items = set(np.unique(sub).tolist())
        for item in sampled_items:
            assert int(np.sum(sub == item)) == int(np.sum(trace == item))

    def test_effective_rate_close_to_requested(self):
        _, rate = sample_trace(np.arange(10), 0.1)
        assert rate == pytest.approx(0.1, abs=1.0 / HASH_SPACE)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            sample_trace(np.arange(10), 0.0)
        with pytest.raises(ValueError):
            sample_trace(np.arange(10), 1.5)


class TestAdaptiveRate:
    def test_bounds_distinct_sampled_items(self):
        trace = zipfian_trace(50_000, 4096, rng=2).accesses
        for smax in (16, 128, 1024):
            rate = adaptive_rate(trace, smax, seed=0)
            sub, _ = sample_trace(trace, rate, seed=0)
            assert 0 < np.unique(sub).size <= smax

    def test_small_footprint_keeps_everything(self):
        trace = np.arange(50)
        assert adaptive_rate(trace, 100) == 1.0

    def test_invalid_smax_rejected(self):
        with pytest.raises(ValueError):
            adaptive_rate(np.arange(10), 0)


class TestShardsMRC:
    def test_rate_one_reproduces_exact_curve(self):
        trace = zipfian_trace(5_000, 256, rng=3).accesses
        exact = mrc_from_trace(trace)
        approx = shards_mrc(trace, 1.0, n_seeds=1)
        assert mean_absolute_error(approx, exact) < 1e-12

    def test_deterministic_for_fixed_seed(self):
        trace = zipfian_trace(20_000, 2048, rng=4).accesses
        a = shards_mrc(trace, 0.1, seed=5)
        b = shards_mrc(trace, 0.1, seed=5)
        assert a.ratios == b.ratios

    def test_curve_is_monotone_and_bounded(self):
        trace = zipfian_trace(30_000, 2048, rng=5).accesses
        curve = shards_mrc(trace, 0.05).as_array()
        assert np.all(curve >= 0.0) and np.all(curve <= 1.0)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_max_cache_size_crops_and_extends(self):
        trace = zipfian_trace(20_000, 1024, rng=6).accesses
        short = shards_mrc(trace, 0.1, max_cache_size=10)
        assert short.max_cache_size == 10
        long = shards_mrc(trace, 0.1, max_cache_size=5_000)
        assert long.max_cache_size == 5_000
        assert long.ratios[-1] == long.ratios[4_000]

    def test_fixed_size_budget(self):
        trace = zipfian_trace(40_000, 4096, rng=8).accesses
        exact = mrc_from_trace(trace)
        approx = shards_mrc(trace, smax=512, seed=0)
        assert mean_absolute_error(approx, exact) < 0.05

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            shards_mrc(np.array([], dtype=np.int64), 0.1)

    def test_error_bound_on_medium_trace(self):
        """MAE stays small at a moderate rate on a seeded 100k-reference trace."""
        trace = zipfian_trace(100_000, 8192, exponent=0.8, rng=7).accesses
        exact = mrc_from_trace(trace)
        approx = shards_mrc(trace, 0.05, seed=0)
        assert mean_absolute_error(approx, exact) <= 0.02


class TestMillionReferenceAcceptance:
    """The headline accuracy/cost claim on a million-reference Zipfian trace.

    This is the subsystem's acceptance bar: SHARDS at ``rate=0.01`` (library
    defaults, seeded) must be at least 10x faster than the exact pipeline
    while keeping the mean absolute MRC error at or below 0.02.  The trace
    and hash seeds are pinned, so the error assertion is deterministic; the
    speedup assertion is a wall-clock ratio with roughly 6x headroom
    (measured ~60x) — both pipelines run in the same process, so load
    affects them proportionally.
    """

    def test_shards_rate_001_speedup_and_error(self):
        trace = zipfian_trace(1_000_000, 65_536, exponent=0.8, rng=7).accesses

        start = time.perf_counter()
        exact = mrc_from_trace(trace)
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        approx = shards_mrc(trace, 0.01, seed=0)
        approx_seconds = time.perf_counter() - start

        error = mean_absolute_error(approx, exact)
        assert error <= 0.02, f"MAE {error:.4f} exceeds the 0.02 acceptance bound"
        speedup = exact_seconds / max(approx_seconds, 1e-9)
        assert speedup >= 10.0, f"speedup {speedup:.1f}x below the 10x acceptance bound"
