"""Experiment drivers that regenerate every figure and numeric claim of the paper.

Each ``run_*`` function corresponds to one row of the experiment index in
``DESIGN.md`` and returns plain Python data (lists/dicts of numbers) so that
the benchmark harness can both assert the qualitative shape the paper reports
and print the series.  ``EXPERIMENTS.md`` records the comparison.

Functions
---------
run_fig1_mrc_by_inversion
    Figure 1 — average miss-ratio curve per inversion number of ``S_m``.
run_fig2_chainfind_ties
    Figure 2 — how many arbitrary choices ChainFind must make vs. group size.
run_s11_ranked_labeling
    The Section V-B.2 numeric example on ``S_11``.
run_sawtooth_cyclic
    The canonical hit vectors (``hits_C(sawtooth4) = (1,2,3,4)`` etc.).
run_matrix_reuse
    Section VI-A2 total-reuse comparison for weight matrices.
run_theorem2_random
    Theorem 2 / Corollary 1 spot checks on random permutations of large ``m``.
run_mahonian_partitions
    Appendix VIII-F Mahonian counts and hit-vector partition characterisation.
run_miss_integral
    Appendix VIII-F integral of the normalised truncated miss vector.
run_policy_ablation
    Extension: does the Bruhat-order locality ranking survive under non-LRU
    policies and set-associativity?
run_feasibility_ablation
    Extension: exact vs. greedy constrained re-ordering on random dependence DAGs.
run_ml_schedule
    Section VI-A end-to-end: Theorem-4 alternation on MLP / attention traces.
run_sampling_ablation
    Extension: accuracy/cost frontier of the approximate MRC profilers
    (SHARDS sampling rates and the streaming reuse-time model) vs. the exact
    curve on a Zipfian trace.
run_policy_sweep
    Extension: the full policy × capacity miss-ratio matrix of a Zipfian
    trace via the single-pass sweep engine (:mod:`repro.sim`), one row per
    capacity with a column per policy.
run_partition_comparison
    Extension: multi-tenant cache partitioning (:mod:`repro.alloc`) on a
    composed Zipf/sawtooth/STREAM workload — one row per allocation method
    with predicted vs. simulated miss ratios and the win over the
    unpartitioned shared cache and the proportional split.
run_online_adaptation
    Extension: online adaptive re-partitioning (:mod:`repro.online`) on the
    canonical 3-phase drifting two-tenant workload — per-epoch miss-ratio
    series of static vs. adaptive vs. oracle-per-phase partitioning, plus
    the adaptation scoreboard (win over static, regret vs. the oracle,
    re-allocation count, profiling work).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from .._util import ensure_rng
from ..cache.belady import simulate_opt
from ..cache.fifo import FIFOCache
from ..cache.lru import LRUCache
from ..cache.mrc import average_curves
from ..cache.set_associative import SetAssociativeCache
from ..core.chainfind import chain_find, count_tie_events
from ..core.feasibility import (
    DependencyDAG,
    best_feasible_extension,
    greedy_feasible_extension,
    random_linear_extension,
)
from ..core.hits import (
    cache_hit_vector,
    corollary1_deficit,
    miss_ratio_curve,
    theorem2_deficit,
    total_reuse,
)
from ..core.inversions import max_inversions
from ..core.labelings import MissRatioLabeling, RankedMissRatioLabeling
from ..core.mahonian import (
    integer_partitions,
    mahonian_number,
    mahonian_row,
    partition_counts_at_level,
    truncated_miss_integral,
)
from ..core.optimal import matrix_traversal_costs
from ..core.permutation import Permutation, all_permutations, random_permutation
from ..ml.schedule import compare_schedules
from ..trace.trace import PeriodicTrace

__all__ = [
    "run_fig1_mrc_by_inversion",
    "run_fig2_chainfind_ties",
    "run_s11_ranked_labeling",
    "run_sawtooth_cyclic",
    "run_matrix_reuse",
    "run_theorem2_random",
    "run_mahonian_partitions",
    "run_miss_integral",
    "run_online_adaptation",
    "run_partition_comparison",
    "run_policy_ablation",
    "run_policy_sweep",
    "run_feasibility_ablation",
    "run_ml_schedule",
    "run_sampling_ablation",
]


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
def run_fig1_mrc_by_inversion(m: int = 5, *, convention: str = "full", max_cache_size: int | None = None) -> dict:
    """Average miss-ratio curve for each inversion number of ``S_m`` (Figure 1).

    Enumerates all ``m!`` permutations, groups them by inversion number and
    averages their miss-ratio curves element-wise, exactly as described in
    Section IV-E.  Returns the cache sizes, the per-level average curves, and
    the per-level permutation counts (the Mahonian numbers).
    """
    limit = max_cache_size or m
    by_level: dict[int, list[np.ndarray]] = {}
    for sigma in all_permutations(m):
        curve = miss_ratio_curve(sigma, convention=convention, max_cache_size=limit)
        by_level.setdefault(sigma.inversions(), []).append(curve)
    levels = sorted(by_level)
    curves = {ell: average_curves(by_level[ell]) for ell in levels}
    return {
        "m": m,
        "convention": convention,
        "cache_sizes": list(range(1, limit + 1)),
        "levels": levels,
        "counts": {ell: len(by_level[ell]) for ell in levels},
        "curves": {ell: [float(x) for x in curves[ell]] for ell in levels},
    }


def fig1_monotone_violations(result: dict) -> int:
    """Number of (level, cache-size) pairs where a higher inversion level has a *worse* average miss ratio.

    The paper's Figure 1 shows a clean separation by inversion number; this
    helper counts violations of that ordering in the reproduced data (0 means
    the separation is exact).
    """
    levels = result["levels"]
    curves = result["curves"]
    violations = 0
    for lower, higher in zip(levels, levels[1:]):
        lo = np.asarray(curves[lower])
        hi = np.asarray(curves[higher])
        violations += int(np.sum(hi > lo + 1e-12))
    return violations


# --------------------------------------------------------------------------- #
# Figure 2 and the S11 example
# --------------------------------------------------------------------------- #
def run_fig2_chainfind_ties(sizes: Sequence[int] = (3, 4, 5, 6, 7, 8)) -> list[dict]:
    """ChainFind tie statistics vs. group size for the λ_e labeling (Figure 2)."""
    rows = []
    for m in sizes:
        stats = count_tie_events(int(m), MissRatioLabeling())
        rows.append(stats)
    return rows


def run_s11_ranked_labeling(m: int = 11) -> dict:
    """The Section V-B.2 example: λ_e vs. the ranked labeling λ_ψ on ``S_m`` (default 11).

    ψ is the cycle that slides the next-to-largest cache size to the front of
    the comparison order, as in the paper ("ψ = (1 10 9 8 7 6 5 4 3 2)").
    Reports the chain length and the tie statistics of both labelings.
    """
    identity = Permutation.identity(m)
    lambda_e = chain_find(identity, MissRatioLabeling())
    # psi: compare hits_{m-1} first, then hits_1, hits_2, ..., hits_{m-2}, hits_m
    psi = Permutation([m - 2] + list(range(0, m - 2)) + [m - 1])
    lambda_psi = chain_find(identity, RankedMissRatioLabeling(psi))
    return {
        "m": m,
        "chain_length": lambda_e.length,
        "lambda_e": {
            "arbitrary_choices": lambda_e.arbitrary_choice_count,
            "chain_multiplicity": lambda_e.chain_multiplicity,
            "reaches_top": lambda_e.end.is_reverse(),
        },
        "lambda_psi": {
            "psi": list(psi.one_indexed()),
            "arbitrary_choices": lambda_psi.arbitrary_choice_count,
            "chain_multiplicity": lambda_psi.chain_multiplicity,
            "reaches_top": lambda_psi.end.is_reverse(),
        },
    }


# --------------------------------------------------------------------------- #
# Canonical traces and Theorem 2
# --------------------------------------------------------------------------- #
def run_sawtooth_cyclic(sizes: Sequence[int] = (4, 8, 16, 64, 256)) -> list[dict]:
    """Hit vectors and total reuse of the cyclic and sawtooth re-traversals."""
    rows = []
    for m in sizes:
        m = int(m)
        saw = Permutation.reverse(m)
        cyc = Permutation.identity(m)
        rows.append(
            {
                "m": m,
                "sawtooth_hits_first4": list(map(int, cache_hit_vector(saw)[: min(4, m)])),
                "cyclic_hits_below_m": int(cache_hit_vector(cyc)[: m - 1].sum()) if m > 1 else 0,
                "sawtooth_total_reuse": total_reuse(saw),
                "cyclic_total_reuse": total_reuse(cyc),
                "sawtooth_inversions": saw.inversions(),
            }
        )
    return rows


def run_theorem2_random(sizes: Sequence[int] = (16, 64, 256, 1024, 2048), *, trials: int = 5, rng=0) -> list[dict]:
    """Theorem 2 / Corollary 1 checks on random permutations of large ``m``."""
    generator = ensure_rng(rng)
    rows = []
    for m in sizes:
        max_dev = 0
        for _ in range(trials):
            sigma = random_permutation(int(m), generator)
            max_dev = max(max_dev, abs(theorem2_deficit(sigma)), abs(corollary1_deficit(sigma)))
        rows.append({"m": int(m), "trials": trials, "max_deviation": int(max_dev)})
    return rows


def run_matrix_reuse(shapes: Sequence[tuple[int, int]] = ((4, 8), (16, 16), (32, 64), (128, 128))) -> list[dict]:
    """Section VI-A2: cyclic vs. sawtooth total reuse of an ``n × m`` weight matrix."""
    rows = []
    for n, m in shapes:
        costs = matrix_traversal_costs(int(n), int(m))
        nm = costs["elements"]
        rows.append(
            {
                "n": int(n),
                "m": int(m),
                "elements": nm,
                "cyclic_total_reuse": costs["cyclic"],
                "sawtooth_total_reuse": costs["sawtooth"],
                "paper_cyclic_formula": nm * nm,
                "paper_sawtooth_formula": nm * (nm + 1) // 2,
                "savings_ratio": costs["savings_ratio"],
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Appendix VIII-F
# --------------------------------------------------------------------------- #
def run_mahonian_partitions(m: int = 6) -> dict:
    """Mahonian counts and the hit-vector ↔ integer-partition characterisation for ``S_m``."""
    row = mahonian_row(m)
    per_level = []
    for level in range(max_inversions(m) + 1):
        counts = partition_counts_at_level(m, level)
        feasible_partitions = {p for p in integer_partitions(level, max_part=m - 1, max_parts=m)}
        per_level.append(
            {
                "inversions": level,
                "mahonian": mahonian_number(m, level),
                "permutations_enumerated": sum(counts.values()),
                "distinct_hit_vectors": len(counts),
                "partitions_of_level": len(feasible_partitions),
                "all_hit_vectors_are_partitions": set(counts) <= feasible_partitions,
            }
        )
    return {"m": m, "mahonian_row": list(row), "levels": per_level}


def run_miss_integral(m: int = 6) -> dict:
    """Integral of the normalised truncated miss vector at every inversion level of ``S_m``.

    Verifies the appendix claim: the integral is constant within a level and
    drops linearly from 1 (identity) to 0.5 (sawtooth) with slope
    ``1 / (m(m-1))`` per inversion.
    """
    by_level: dict[int, list[float]] = {}
    for sigma in all_permutations(m):
        by_level.setdefault(sigma.inversions(), []).append(truncated_miss_integral(sigma))
    levels = sorted(by_level)
    rows = []
    for level in levels:
        values = np.asarray(by_level[level])
        rows.append(
            {
                "inversions": level,
                "integral_mean": float(values.mean()),
                "integral_spread": float(values.max() - values.min()),
                "closed_form": 1.0 - level / (m * (m - 1)),
            }
        )
    slope = (rows[0]["integral_mean"] - rows[-1]["integral_mean"]) / (levels[-1] - levels[0])
    return {"m": m, "rows": rows, "per_inversion_drop": slope, "expected_drop": 1.0 / (m * (m - 1))}


# --------------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------------- #
def run_policy_ablation(
    m: int = 64,
    *,
    levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    cache_fraction: float = 0.5,
    trials: int = 5,
    rng=0,
) -> list[dict]:
    """Miss ratios of re-traversals at several locality levels under different cache models.

    For each normalised inversion level the re-traversal trace ``A σ(A)`` is
    replayed under fully-associative LRU, FIFO, Belady-OPT and a 4-way
    set-associative LRU cache of the same total capacity.  The LRU ordering
    should follow the inversion number exactly (Theorem 3); the others show
    how robust the ranking is to the policy assumption.
    """
    from ..core.mahonian import random_permutation_with_inversions

    generator = ensure_rng(rng)
    capacity = max(1, int(round(cache_fraction * m)))
    ways = 4 if capacity % 4 == 0 else 1
    rows = []
    for fraction in levels:
        inversions = int(round(fraction * max_inversions(m)))
        lru_miss, fifo_miss, opt_miss, sa_miss = [], [], [], []
        for _ in range(trials):
            sigma = random_permutation_with_inversions(m, inversions, generator)
            trace = PeriodicTrace(sigma).to_trace().accesses
            lru = LRUCache(capacity)
            lru_miss.append(lru.run(trace.tolist()).miss_ratio)
            fifo = FIFOCache(capacity)
            fifo_miss.append(fifo.run(trace.tolist()).miss_ratio)
            opt_miss.append(simulate_opt(trace, capacity).miss_ratio)
            sa = SetAssociativeCache(capacity // ways, ways)
            sa_miss.append(sa.run(trace.tolist()).miss_ratio)
        rows.append(
            {
                "inversion_fraction": float(fraction),
                "inversions": inversions,
                "lru": float(np.mean(lru_miss)),
                "fifo": float(np.mean(fifo_miss)),
                "opt": float(np.mean(opt_miss)),
                "set_assoc_4way": float(np.mean(sa_miss)),
            }
        )
    return rows


def run_feasibility_ablation(
    m: int = 14,
    *,
    edge_probabilities: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.8),
    trials: int = 5,
    rng=0,
) -> list[dict]:
    """Exact vs. greedy vs. random feasible re-ordering on random dependence DAGs.

    Reports the achieved inversion numbers (normalised by the unconstrained
    maximum) for the exact bitmask DP, the largest-available-label greedy, and
    a random linear extension, as the dependence density grows.
    """
    generator = ensure_rng(rng)
    top = max_inversions(m)
    rows = []
    for p in edge_probabilities:
        exact_vals, greedy_vals, random_vals = [], [], []
        for _ in range(trials):
            dag = DependencyDAG.random(m, float(p), generator)
            _, exact = best_feasible_extension(dag)
            greedy = greedy_feasible_extension(dag).inversions()
            rand = random_linear_extension(dag, generator).inversions()
            exact_vals.append(exact / top)
            greedy_vals.append(greedy / top)
            random_vals.append(rand / top)
        rows.append(
            {
                "edge_probability": float(p),
                "exact_norm_inversions": float(np.mean(exact_vals)),
                "greedy_norm_inversions": float(np.mean(greedy_vals)),
                "random_norm_inversions": float(np.mean(random_vals)),
                "greedy_to_exact": float(np.mean(greedy_vals) / max(np.mean(exact_vals), 1e-12)),
            }
        )
    return rows


def run_sampling_ablation(
    length: int = 120_000,
    footprint: int = 8192,
    *,
    exponent: float = 0.8,
    rates: Sequence[float] = (0.1, 0.01),
    rng=7,
    repeats: int = 1,
) -> list[dict]:
    """Accuracy/cost frontier of approximate MRC profiling on a Zipfian trace.

    Builds the exact curve once, then each approximate profiler (SHARDS at
    every rate in ``rates`` plus the one-pass reuse-time/AET model) and
    reports wall time, speedup over exact, and mean/max absolute curve error.
    This is the predictable accuracy-vs-cost dial of the profiling subsystem:
    halving the rate should roughly halve the cost while degrading error
    gracefully.

    ``repeats`` reruns every timed pipeline that many times and keeps the
    fastest sample, so speedup ratios reflect the profilers rather than
    whatever else the machine was doing during a single shot.
    """
    from ..cache.mrc import mrc_from_trace
    from ..profiling.accuracy import compare_curves
    from ..profiling.reuse import reuse_mrc
    from ..profiling.shards import shards_mrc
    from ..trace.generators import zipfian_trace

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    def timed(fn):
        best_result, best_seconds = None, float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            seconds = time.perf_counter() - start
            if seconds < best_seconds:
                best_result, best_seconds = result, seconds
        return best_result, best_seconds

    trace = zipfian_trace(length, footprint, exponent=exponent, rng=rng).accesses

    exact, exact_seconds = timed(lambda: mrc_from_trace(trace))

    rows = [
        {
            "mode": "exact",
            "rate": 1.0,
            "seconds": exact_seconds,
            "speedup": 1.0,
            "mae": 0.0,
            "max_error": 0.0,
        }
    ]
    for rate in rates:
        approx, seconds = timed(lambda rate=rate: shards_mrc(trace, float(rate)))
        comparison = compare_curves(approx, exact)
        rows.append(
            {
                "mode": "shards",
                "rate": float(rate),
                "seconds": seconds,
                "speedup": exact_seconds / max(seconds, 1e-9),
                "mae": comparison.mean_absolute_error,
                "max_error": comparison.max_absolute_error,
            }
        )
    streamed, seconds = timed(lambda: reuse_mrc(trace))
    comparison = compare_curves(streamed, exact)
    rows.append(
        {
            "mode": "reuse",
            "rate": 1.0,
            "seconds": seconds,
            "speedup": exact_seconds / max(seconds, 1e-9),
            "mae": comparison.mean_absolute_error,
            "max_error": comparison.max_absolute_error,
        }
    )
    return rows


def run_partition_comparison(
    budget: int = 2048,
    *,
    zipf_length: int = 30_000,
    zipf_footprint: int = 4096,
    exponent: float = 0.9,
    sawtooth_items: int = 4000,
    stream_n: int = 2000,
    workers: int = 1,
    rng: int = 7,
) -> dict:
    """Partitioning-method comparison on a composed Zipf/sawtooth/STREAM workload.

    The three canonical tenant shapes stress each allocator differently: the
    Zipfian tenant has a smooth, steep-then-flat curve (greedy territory),
    the sawtooth re-traversal a linear curve, and STREAM a pure cliff (no
    gain until its whole footprint fits — exactly what marginal-gain greedy
    cannot see and the convex hull / DP can).  Returns one row per method
    with the predicted and simulated partitioned miss ratios, the
    unpartitioned shared-cache and proportional-split baselines, and the
    wins over both.
    """
    from ..alloc.partition import METHODS, PartitionJob, partition_composed, profile_tenants, simulate_baselines
    from ..trace.generators import zipfian_trace
    from ..trace.tenancy import TenantSpec, compose_tenants
    from ..trace.trace import PeriodicTrace
    from ..trace.workloads import stream_copy

    tenants = (
        TenantSpec(zipfian_trace(zipf_length, zipf_footprint, exponent=exponent, rng=rng), name="zipf"),
        TenantSpec(PeriodicTrace.sawtooth(sawtooth_items).to_trace(), name="sawtooth"),
        TenantSpec(stream_copy(stream_n, repetitions=3), name="stream"),
    )
    composed = compose_tenants(tenants, seed=rng, name="zipf+sawtooth+stream")
    # Profiling and the baseline simulations are method-independent; compute
    # both once and reuse them across the three allocators.
    base_job = PartitionJob(tenants=tenants, budget=budget, method=METHODS[0], seed=rng)
    profiles = profile_tenants(base_job, composed, workers=workers)
    baselines = simulate_baselines(composed, budget)
    rows = []
    for method in METHODS:
        job = PartitionJob(tenants=tenants, budget=budget, method=method, seed=rng)
        result = partition_composed(job, composed, workers=workers, profiles=profiles, baselines=baselines)
        rows.append(
            {
                "method": method,
                "allocation": "/".join(str(c) for c in result.allocation().values()),
                "predicted": result.predicted_miss_ratio,
                "simulated": result.simulated_miss_ratio,
                "error": result.prediction_error,
                "unpartitioned": result.unpartitioned_miss_ratio,
                "proportional": result.proportional_miss_ratio,
                "win_vs_unpartitioned": result.win_vs_unpartitioned,
                "win_vs_proportional": result.win_vs_proportional,
            }
        )
    return {
        "budget": budget,
        "tenants": [spec.name for spec in tenants],
        "accesses": len(composed.trace),
        "rows": rows,
    }


def run_online_adaptation(
    length_per_phase: int = 12_000,
    *,
    budget: int = 1150,
    window: int = 6000,
    epoch: int = 2000,
    method: str = "hull",
    rate: float = 0.5,
    move_cost: float = 1.0,
    workers: int = 1,
    rng: int = 7,
) -> dict:
    """Online adaptive re-partitioning on the 3-phase drifting pair.

    The canonical seesaw workload (:func:`repro.trace.drift.three_phase_pair`)
    swaps the tenants' working-set sizes at every phase boundary, so the best
    static split is wrong in every phase.  The replay engine runs static,
    adaptive (windowed-SHARDS profiles + phase detector + move-cost-gated
    controller) and oracle-per-phase partitioning through one event loop and
    reports the per-epoch miss-ratio series plus the adaptation scoreboard.
    The benchmark harness asserts the headline claim on the same code path:
    adaptive strictly beats static while profiling at most twice the
    references a single whole-trace exact profile would touch.
    """
    from ..online.replay import OnlineJob, run_replay
    from ..trace.drift import three_phase_pair

    workload = three_phase_pair(length_per_phase, seed=rng)
    job = OnlineJob(
        budget=budget,
        window=window,
        epoch=epoch,
        method=method,
        rate=rate,
        move_cost=move_cost,
        profile_seed=rng,
        name="online-adaptation",
    )
    result = run_replay(workload, job, workers=workers)
    return {
        "accesses": result.accesses,
        "budget": result.budget,
        "tenants": list(result.tenants),
        "boundaries": list(workload.boundaries),
        "rows": result.rows(),
        "summary": result.summary(),
        "static_allocation": list(result.static_allocation),
        "final_allocation": list(result.final_allocation),
    }


def run_policy_sweep(
    length: int = 60_000,
    footprint: int = 4096,
    *,
    exponent: float = 0.9,
    capacities: Sequence[int] | None = None,
    ways: int = 4,
    workers: int = 1,
    rng: int = 7,
) -> dict:
    """Policy × capacity miss-ratio matrix of a Zipfian trace via the sweep engine.

    All four policies are evaluated over a power-of-two capacity grid
    (multiples of ``ways`` so the set-associative policy realises every
    point) in a handful of trace passes.  Returns one row per capacity with a
    miss-ratio column per policy, plus the per-policy kernel seconds —
    the multi-scenario comparison that naive per-configuration replay makes
    quadratically expensive.
    """
    from ..sim.sweep import SweepJob, run_sweep
    from ..trace.generators import zipfian_trace

    trace = zipfian_trace(length, footprint, exponent=exponent, rng=rng).accesses
    if capacities is None:
        grid = []
        size = ways
        while size <= footprint:
            grid.append(size)
            size *= 2
        capacities = grid
    job = SweepJob(
        trace=trace,
        name=f"zipf(s={exponent})",
        policies=("lru", "fifo", "random", "set-associative"),
        capacities=tuple(int(c) for c in capacities),
        ways=ways,
        seed=int(rng),
    )
    result = run_sweep(job, workers=workers)

    columns = {sweep.policy: dict(zip(sweep.capacities, sweep.miss_ratios)) for sweep in result.sweeps}
    rows = []
    for capacity in result["lru"].capacities:
        row = {"capacity": capacity}
        for policy in job.policies:
            key = policy.replace("-", "_")
            value = columns.get(policy, {}).get(capacity)
            row[key] = float(value) if value is not None else None
        rows.append(row)
    return {
        "length": length,
        "footprint": footprint,
        "exponent": exponent,
        "ways": ways,
        "rows": rows,
        "kernel_seconds": {sweep.policy: sweep.seconds for sweep in result.sweeps},
    }


def run_ml_schedule(
    items: int = 256,
    passes: int = 6,
    *,
    cache_fractions: Sequence[float] = (0.25, 0.5, 0.75),
    hierarchy_levels: Sequence[int] | None = None,
) -> dict:
    """Theorem-4 alternation vs. naive cyclic traversal of a model's parameters.

    ``items`` is the number of parameter blocks (e.g. an MLP's weight blocks);
    the three schedules of :func:`repro.ml.schedule.build_schedule` are
    evaluated and their total reuse and miss ratios at the requested cache
    fractions reported.
    """
    if hierarchy_levels is None:
        hierarchy_levels = [max(items // 16, 1), max(items // 4, 2)]
    results = compare_schedules(items, passes, hierarchy_levels=hierarchy_levels, max_cache_size=items)
    rows = []
    for name, evaluation in results.items():
        row = {
            "schedule": name,
            "total_reuse": evaluation.total_reuse,
            "mean_stack_distance": evaluation.mean_stack_distance,
            "amat": evaluation.amat,
        }
        for fraction in cache_fractions:
            cache = max(1, int(round(fraction * items)))
            row[f"miss_ratio@{fraction:.2f}m"] = evaluation.miss_ratio(cache)
        rows.append(row)
    return {"items": items, "passes": passes, "rows": rows}
