"""Chaos tests for the resilient worker pool.

Every failure mode a forked pool can hit — a task raising, a worker killed
mid-task, a stalled task, retries exhausting into the inline rung — must end
in either a result **bit-identical to the ``workers=1`` reference** or a
structured :class:`~repro.resilience.PoolFailureError`; never a hang and
never a bare pickling traceback.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.engine.runner import pool_map, published_arrays, resolve_array
from repro.obs import MetricsRegistry, recording
from repro.resilience import PoolFailureError, RetryPolicy
from repro.resilience.faults import FaultPlan, install_faults, kill, stall, transient

#: Fast-retry policy for tests: generous timeout (slow CI), tiny backoff.
FAST = RetryPolicy(retries=2, timeout=60.0, backoff=0.01, max_backoff=0.05, seed=1)


def _square(x: int) -> int:
    return x * x


def _sum_published(index: int) -> int:
    return int(resolve_array("data")[index::7].sum())


class TestResilientPoolHealthy:
    def test_matches_workers_1_reference(self):
        tasks = list(range(16))
        reference = pool_map(_square, tasks, workers=1)
        assert pool_map(_square, tasks, workers=3, policy=FAST) == reference

    def test_single_worker_with_policy(self):
        assert pool_map(_square, [2, 3], workers=1, policy=FAST) == [4, 9]

    def test_empty_tasks(self):
        assert pool_map(_square, [], workers=3, policy=FAST) == []

    def test_published_arrays_survive_the_resilient_path(self):
        data = np.arange(1000, dtype=np.int64)
        with published_arrays({"data": data}):
            got = pool_map(_sum_published, [0, 1, 2], workers=3, policy=FAST)
        assert got == [int(data[i::7].sum()) for i in range(3)]


class TestResilientPoolRecovery:
    """Each injected fault hits attempt 1 only; the retry must recover and
    the merged result must equal the fault-free ``workers=1`` reference."""

    def _recovers(self, plan: FaultPlan, policy: RetryPolicy = FAST):
        tasks = list(range(10))
        reference = pool_map(_square, tasks, workers=1)
        with install_faults(plan):
            got = pool_map(_square, tasks, workers=3, policy=policy)
        assert got == reference

    def test_transient_error_is_retried(self):
        self._recovers(FaultPlan((transient("pool.task", 4),)))

    def test_killed_worker_is_detected_and_retried(self):
        # SIGKILL mid-task: the in-flight result never arrives; the per-task
        # timeout declares the worker lost instead of hanging forever.
        self._recovers(
            FaultPlan((kill("pool.task", 2),)),
            RetryPolicy(retries=2, timeout=15.0, backoff=0.01, max_backoff=0.05, seed=1),
        )

    def test_stalled_task_times_out_and_retries(self):
        self._recovers(
            FaultPlan((stall("pool.task", 5, seconds=2.0),)),
            RetryPolicy(retries=2, timeout=0.3, backoff=0.01, max_backoff=0.05, seed=1),
        )

    def test_seeded_chaos_round_trip_is_deterministic(self):
        tasks = list(range(12))
        reference = pool_map(_square, tasks, workers=1)
        plan = FaultPlan.seeded(5, "pool.task", population=len(tasks), count=3)
        for _ in range(2):  # same plan, same outcome, twice
            with install_faults(plan):
                assert pool_map(_square, tasks, workers=3, policy=FAST) == reference

    def test_retries_exhausted_then_inline_rung_succeeds(self):
        # Faults on every pooled attempt (1..3 with retries=2); the inline
        # rung runs attempt 4 in the parent, which the plan leaves alone.
        tasks = list(range(6))
        reference = pool_map(_square, tasks, workers=1)
        plan = FaultPlan((transient("pool.task", 1, attempts=(1, 2, 3)),))
        registry = MetricsRegistry()
        with recording(registry), install_faults(plan):
            got = pool_map(_square, tasks, workers=3, policy=FAST)
        assert got == reference
        snapshot = {key[1]: value for key, value in registry.snapshot().items() if key[0] == "counter"}
        assert snapshot["pool.degraded_inline"] == 1
        assert snapshot["pool.retries"] >= 2

    def test_workers_1_retries_inline(self):
        plan = FaultPlan((transient("pool.task", 0, attempts=(1, 2)),))
        with install_faults(plan):
            assert pool_map(_square, [7, 8], workers=1, policy=FAST) == [49, 64]


class TestPoolFailure:
    def test_permanent_failure_raises_structured_error(self):
        plan = FaultPlan((transient("pool.task", 3, attempts=(1, 2, 3, 4)),))
        with install_faults(plan), pytest.raises(PoolFailureError) as excinfo:
            pool_map(_square, list(range(6)), workers=3, policy=FAST)
        error = excinfo.value
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert failure.index == 3
        assert failure.kind == "error"
        assert failure.attempts == 4  # 3 pooled + 1 inline
        assert "FaultInjected" in failure.cause
        message = str(error)
        assert "1 task(s) failed permanently" in message
        assert "task 3 failed after 4 attempt(s)" in message

    def test_inline_fallback_disabled_fails_after_pool_retries(self):
        policy = RetryPolicy(retries=1, timeout=60.0, backoff=0.01, max_backoff=0.05, seed=1, inline_fallback=False)
        plan = FaultPlan((transient("pool.task", 0, attempts=(1, 2)),))
        with install_faults(plan), pytest.raises(PoolFailureError) as excinfo:
            pool_map(_square, list(range(4)), workers=2, policy=policy)
        assert excinfo.value.failures[0].attempts == 2  # no inline rung

    def test_failure_metrics_recorded_before_raising(self):
        plan = FaultPlan((transient("pool.task", 1, attempts=(1, 2, 3, 4)),))
        registry = MetricsRegistry()
        with recording(registry), install_faults(plan), pytest.raises(PoolFailureError):
            pool_map(_square, list(range(5)), workers=2, policy=FAST)
        counters = {key[1]: value for key, value in registry.snapshot().items() if key[0] == "counter"}
        assert counters["pool.task_failures"] == 1
        assert counters["pool.tasks"] == 5


class TestPolicyValidation:
    def test_attempts_counts_first_try(self):
        assert RetryPolicy(retries=2).attempts == 3

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff=0.1, multiplier=2.0, max_backoff=0.3, jitter=0.5, seed=4)
        first = policy.delay(3, 1)
        assert first == policy.delay(3, 1)
        assert 0.1 <= first <= 0.1 * 1.5
        assert policy.delay(3, 5) <= 0.3 * 1.5  # capped then jittered

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
