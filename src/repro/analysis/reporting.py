"""Plain-text and CSV reporting helpers for the experiment drivers.

The paper's figures are line plots; without a plotting stack in the offline
environment the benchmarks emit the identical numeric series as aligned text
tables (for the console / captured benchmark output) and as CSV files (for
re-plotting elsewhere).  Keeping the formatting in one place makes the
benchmark harness output uniform across experiments.
"""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path

__all__ = ["format_table", "write_csv", "format_series", "format_curve_family"]


def format_table(
    rows: Sequence[Mapping[str, object]] | Sequence[Sequence[object]],
    *,
    headers: Sequence[str] | None = None,
    float_format: str = "{:.4f}",
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    ``rows`` may be dictionaries (headers default to the union of keys, in
    first-seen order) or plain sequences (headers required).
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if isinstance(rows[0], Mapping):
        if headers is None:
            headers = []
            for row in rows:
                for key in row:
                    if key not in headers:
                        headers.append(key)
        table = [[row.get(h, "") for h in headers] for row in rows]
    else:
        if headers is None:
            raise ValueError("headers are required when rows are plain sequences")
        table = [list(row) for row in rows]

    def render(value: object) -> str:
        """Format one cell: floats via ``float_format``, everything else via ``str``."""
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in table]
    widths = [
        max(len(str(headers[col])), *(len(r[col]) for r in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object], *, float_format: str = "{:.4f}") -> str:
    """Render one ``(x, y)`` series as a two-column table titled ``name``."""
    rows = [{"x": x, name: y} for x, y in zip(xs, ys)]
    return format_table(rows, headers=["x", name], float_format=float_format)


def format_curve_family(
    x_label: str,
    xs: Sequence[object],
    curves: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.4f}",
    title: str | None = None,
) -> str:
    """Render a family of curves sharing the same x axis (one column per curve)."""
    headers = [x_label] + list(curves)
    rows = []
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, ys in curves.items():
            row[name] = ys[i]
        rows.append(row)
    return format_table(rows, headers=headers, float_format=float_format, title=title)


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    *,
    headers: Sequence[str] | None = None,
) -> Path:
    """Write dictionaries as CSV (headers default to the union of keys, in order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("", encoding="utf-8")
        return path
    if headers is None:
        headers = []
        for row in rows:
            for key in row:
                if key not in headers:
                    headers.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(headers))
        writer.writeheader()
        for row in rows:
            writer.writerow({h: row.get(h, "") for h in headers})
    return path
