"""Edge labelings for the ChainFind algorithm (Section V of the paper).

ChainFind walks up the Bruhat covering graph greedily, choosing at each step
the cover whose *edge label* is maximal with respect to a total order ``Q``.
The paper proposes two concrete labelings and studies how often they leave the
greedy choice ambiguous (Figure 2):

``MissRatioLabeling`` (``λ_e``)
    The lexicographically ordered cache-hit vector ``hits_C(τ)`` of the
    destination node.  Many covers of a low-rank node share the same label
    (the counterexample at the identity in Section V-B.1), so ties are common.

``RankedMissRatioLabeling`` (``λ_ψ``)
    The hit vector permuted by ``ψ`` so that preferred cache sizes are
    compared first — e.g. the ``S_11`` example with ``ψ`` sliding ``hits_10``
    to the front.

``TransposedLabeling`` and ``RandomTiebreakLabeling``
    The tie-breaking strategies the paper sketches (label by the transposition
    that realises the edge, in the standard Coxeter labeling style; or break
    ties uniformly at random).

The module also implements the *good labeling* and *EL-labeling* diagnostics of
Definitions 21 and 22, used by the open-problem exploration (Problem 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from .._util import ensure_rng
from .bruhat import covers
from .hits import cache_hit_vector
from .permutation import Permutation

__all__ = [
    "EdgeLabeling",
    "MissRatioLabeling",
    "RankedMissRatioLabeling",
    "TransposedLabeling",
    "RandomTiebreakLabeling",
    "CompositeLabeling",
    "is_good_labeling",
    "chain_labels_nondecreasing",
    "count_nondecreasing_chains",
    "is_el_labeling",
]


class EdgeLabeling(ABC):
    """A total-order edge labeler ``λ : {(σ, τ) : σ ◁_B τ} → Q``.

    Labels must be comparable with ``<``/``==`` (tuples of ints/floats work).
    ChainFind picks, among the feasible covers of the current node, one whose
    label is maximal.
    """

    @abstractmethod
    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The label of the covering edge ``sigma ◁_B tau``."""

    def best_covers(
        self, sigma: Permutation, candidates: Sequence[Permutation]
    ) -> tuple[list[Permutation], tuple | None]:
        """Return the candidates with the maximal label, and that label.

        The length of the returned list minus one is the number of *arbitrary
        choices* the greedy algorithm would have to make at this step — the
        quantity plotted in Figure 2.
        """
        if not candidates:
            return [], None
        labelled = [(self.label(sigma, tau), tau) for tau in candidates]
        best = max(lbl for lbl, _ in labelled)
        return [tau for lbl, tau in labelled if lbl == best], best


class MissRatioLabeling(EdgeLabeling):
    """``λ_e``: label an edge by the destination's cache-hit vector, compared lexicographically.

    Comparing hit vectors lexicographically first compares ``hits_1``, then
    ``hits_2`` and so on — i.e. small cache sizes dominate the decision, which
    is what produces the ties analysed in Section V-B.1.
    """

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The full hit vector of ``tau``, compared lexicographically."""
        return tuple(int(x) for x in cache_hit_vector(tau))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "MissRatioLabeling()"


class RankedMissRatioLabeling(EdgeLabeling):
    """``λ_ψ``: the hit vector permuted by ``ψ`` before lexicographic comparison.

    Parameters
    ----------
    psi:
        A permutation of ``{0, ..., m-1}`` (0-indexed cache-size ranks).  Entry
        ``psi(k)`` selects which cache size is compared ``k``-th:
        ``label_k = hits_{psi(k) + 1}``.  ``psi = identity`` recovers ``λ_e``.
    """

    def __init__(self, psi: Permutation | Sequence[int]):
        self.psi = psi if isinstance(psi, Permutation) else Permutation(psi)

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The hit vector of ``tau`` permuted by ``psi`` before comparison."""
        vec = cache_hit_vector(tau)
        if vec.size != self.psi.size:
            raise ValueError(f"psi acts on {self.psi.size} cache sizes but the trace has {vec.size}")
        return tuple(int(vec[self.psi(k)]) for k in range(self.psi.size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankedMissRatioLabeling(psi={list(self.psi.one_line)})"


class TransposedLabeling(EdgeLabeling):
    """Label an edge by the (sorted) pair of *values* exchanged along it.

    This is the standard Coxeter/EL-style labeling of the symmetric group by
    reflections, mentioned in Section V-B.1 as a deterministic tiebreaker.  It
    is a good labeling (edges out of a node get distinct labels) because a
    cover is determined by the value pair it swaps.
    """

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The sorted pair of values exchanged along the edge."""
        diff = [i for i in range(sigma.size) if sigma[i] != tau[i]]
        if len(diff) != 2:
            raise ValueError("edge does not correspond to a single transposition")
        i, j = diff
        a, b = sorted((sigma[i], sigma[j]))
        # negate so that the lexicographically *largest* label corresponds to
        # swapping the smallest value pair, matching the convention that
        # ChainFind picks max(E); any fixed injective convention works.
        return (-a, -b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TransposedLabeling()"


class RandomTiebreakLabeling(EdgeLabeling):
    """Wrap another labeling and append a random component to break ties.

    The random component is drawn once per (sigma, tau) query from the
    caller-supplied generator, so repeated runs with the same seed reproduce
    the same chain.
    """

    def __init__(self, base: EdgeLabeling, rng=None):
        self.base = base
        self._rng = ensure_rng(rng)

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The base label with a seeded random tiebreak component appended."""
        return tuple(self.base.label(sigma, tau)) + (float(self._rng.random()),)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomTiebreakLabeling({self.base!r})"


class CompositeLabeling(EdgeLabeling):
    """Compare by a primary labeling, breaking ties with a secondary one.

    E.g. ``CompositeLabeling(MissRatioLabeling(), TransposedLabeling())`` is
    the deterministic-tiebreaker variant discussed in Section V-B.1.
    """

    def __init__(self, primary: EdgeLabeling, secondary: EdgeLabeling):
        self.primary = primary
        self.secondary = secondary

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """The primary label, with the secondary label as a tiebreak."""
        return (
            tuple(self.primary.label(sigma, tau)),
            tuple(self.secondary.label(sigma, tau)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeLabeling({self.primary!r}, {self.secondary!r})"


# --------------------------------------------------------------------------- #
# Labeling diagnostics (Definitions 21 & 22)
# --------------------------------------------------------------------------- #
def is_good_labeling(labeling: EdgeLabeling, nodes: Sequence[Permutation]) -> bool:
    """Check Definition 22 on the given nodes: outgoing edge labels are distinct.

    A *good labeling* assigns different labels to the different covers of
    every node, which is exactly the condition for ChainFind to never face an
    arbitrary choice.
    """
    for sigma in nodes:
        ups = covers(sigma)
        labels = [labeling.label(sigma, tau) for tau in ups]
        if len(set(labels)) != len(labels):
            return False
    return True


def chain_labels_nondecreasing(labeling: EdgeLabeling, chain: Sequence[Permutation]) -> bool:
    """Whether the labels along a saturated chain are non-decreasing."""
    labels = [labeling.label(chain[k], chain[k + 1]) for k in range(len(chain) - 1)]
    return all(labels[k] <= labels[k + 1] for k in range(len(labels) - 1))


def count_nondecreasing_chains(labeling: EdgeLabeling, start: Permutation, end: Permutation) -> int:
    """Count saturated chains from ``start`` to ``end`` whose labels never decrease.

    An EL-labeling requires this count to be exactly one for every interval.
    The search is exponential in the interval length; keep intervals small.
    """
    from .bruhat import bruhat_leq

    if not bruhat_leq(start, end):
        return 0
    if start == end:
        return 1

    def rec(node: Permutation, prev_label: tuple | None) -> int:
        """Count saturated chains from ``node`` whose labels stay increasing."""
        if node == end:
            return 1
        total = 0
        for nxt in covers(node):
            if not bruhat_leq(nxt, end):
                continue
            lbl = labeling.label(node, nxt)
            if prev_label is not None and lbl < prev_label:
                continue
            total += rec(nxt, lbl)
        return total

    return rec(start, None)


def is_el_labeling(
    labeling: EdgeLabeling,
    nodes: Sequence[Permutation],
    *,
    max_interval_length: int = 4,
) -> bool:
    """Check the EL-labeling property (Definition 21) on all short intervals among ``nodes``.

    For every comparable pair ``x < y`` with rank difference at most
    ``max_interval_length`` the number of label-non-decreasing saturated chains
    from ``x`` to ``y`` must be exactly one.  (The full property quantifies
    over all intervals; the bound keeps the diagnostic tractable and is enough
    to *refute* EL-ness, which is how the paper uses it.)
    """
    from .bruhat import bruhat_less

    by_rank = sorted(nodes, key=lambda p: p.inversions())
    for x in by_rank:
        for y in by_rank:
            gap = y.inversions() - x.inversions()
            if gap < 1 or gap > max_interval_length:
                continue
            if not bruhat_less(x, y):
                continue
            if count_nondecreasing_chains(labeling, x, y) != 1:
                return False
    return True
