"""The ``--metrics`` flag, the ``metrics`` subcommand, and output-path handling.

Three contracts of the observability surface:

1. every engine subcommand accepts ``--metrics PATH`` and writes a valid
   JSONL file — manifest first, then typed metric records;
2. recording is purely additive — the printed output and any ``--csv``
   artifact are **bit-identical** with metrics on or off (the engine-level
   twin of this assertion lives in ``tests/test_differential.py``);
3. ``--csv`` and ``--metrics`` targets create missing parent directories
   instead of raising ``FileNotFoundError``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import load_perf, read_jsonl, record_perf

#: Typed record kinds a metrics JSONL line may carry.
_RECORD_TYPES = {"manifest", "counter", "gauge", "histogram", "span", "series"}


def _validate_jsonl(path):
    """Schema-check one metrics file; returns the records."""
    assert path.exists(), f"--metrics did not write {path}"
    records = read_jsonl(path)
    assert records, "metrics file is empty"
    assert records[0]["type"] == "manifest"
    manifest = records[0]
    for key in ("command", "argv", "seed", "git", "python", "numpy", "platform", "timestamp"):
        assert key in manifest
    for record in records[1:]:
        assert record["type"] in _RECORD_TYPES
        assert "name" in record
        if record["type"] == "counter":
            assert record["value"] >= 0
        if record["type"] == "histogram":
            assert len(record["counts"]) == len(record["edges"]) + 1
            assert sum(record["counts"]) == record["count"]
        if record["type"] == "span":
            assert record["count"] >= 1
            assert record["total"] >= 0.0
        if record["type"] == "series":
            assert isinstance(record["row"], dict)
    return records


@pytest.fixture(scope="module")
def zipf_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("metrics_cli") / "zipf.trace"
    assert main(["generate", "zipf", "--length", "8000", "--items", "512", "-o", str(path)]) == 0
    return path


class TestMetricsFlag:
    def test_profile_writes_metrics(self, zipf_file, tmp_path, capsys):
        metrics = tmp_path / "profile.jsonl"
        assert main(["profile", str(zipf_file), "--mode", "shards", "--rate", "0.1", "--metrics", str(metrics)]) == 0
        records = _validate_jsonl(metrics)
        assert records[0]["command"] == "profile"
        names = {r["name"] for r in records[1:]}
        assert "profiling.job" in names
        assert "profiling.accesses" in names
        assert "wrote metrics to" in capsys.readouterr().out

    def test_sweep_writes_metrics(self, zipf_file, tmp_path, capsys):
        metrics = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", str(zipf_file), "--policies", "lru,fifo", "--capacities", "16,64,256", "--metrics", str(metrics)]
        )
        assert code == 0
        records = _validate_jsonl(metrics)
        names = {r["name"] for r in records[1:]}
        assert {"sweep.kernel", "sweep.lane_refs", "sweep.footprint"} <= names
        lane_refs = [r for r in records if r.get("name") == "sweep.lane_refs"]
        # 3 capacities × 8000 accesses per policy
        assert {r["value"] for r in lane_refs} == {24000}
        capsys.readouterr()

    def test_partition_writes_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "partition.jsonl"
        code = main(
            ["partition", "--tenants", "sawtooth:items=256,stream:n=200", "--budget", "256",
             "--metrics", str(metrics)]
        )
        assert code == 0
        records = _validate_jsonl(metrics)
        names = {r["name"] for r in records[1:]}
        assert {"partition.profile", "partition.allocate", "partition.tenants", "profiling.job"} <= names
        capsys.readouterr()

    def test_online_writes_metrics_with_epoch_series(self, tmp_path, capsys):
        metrics = tmp_path / "online.jsonl"
        code = main(
            ["online", "--length", "2000", "--budget", "256", "--window", "2000", "--epoch", "1000",
             "--metrics", str(metrics)]
        )
        assert code == 0
        records = _validate_jsonl(metrics)
        names = {r["name"] for r in records[1:]}
        assert {"online.events", "online.epochs", "online.replay", "online.profiles", "replay.lane_refs"} <= names
        series = [r for r in records if r["type"] == "series" and r["name"] == "online.epochs"]
        assert series, "online run recorded no per-epoch series"
        for row in (r["row"] for r in series):
            for key in ("epoch", "static", "adaptive", "oracle", "phase_change", "reallocated",
                        "moved_blocks", "allocation", "sketch_sampled", "gain", "penalty"):
                assert key in row
        # the three lanes each replay every composed event
        events = next(r["value"] for r in records if r.get("name") == "online.events")
        lane_refs = next(r["value"] for r in records if r.get("name") == "replay.lane_refs")
        assert lane_refs == 3 * events
        capsys.readouterr()


class TestMetricsNeverChangeResults:
    @pytest.mark.parametrize(
        "command",
        [
            ["profile", "{trace}", "--mode", "shards", "--rate", "0.1", "--csv", "{csv}"],
            ["sweep", "{trace}", "--policies", "lru,random", "--capacities", "16,128", "--csv", "{csv}"],
            [
                "partition", "--tenants", "sawtooth:items=128,cyclic:items=64", "--budget", "128",
                "--csv", "{csv}",
            ],
            ["online", "--length", "1500", "--budget", "200", "--window", "1500", "--epoch", "750",
             "--csv", "{csv}"],
        ],
        ids=["profile", "sweep", "partition", "online"],
    )
    def test_csv_bit_identical_with_metrics_on_vs_off(self, command, zipf_file, tmp_path, capsys):
        def run(tag, with_metrics):
            csv_path = tmp_path / f"{tag}.csv"
            argv = [arg.format(trace=zipf_file, csv=csv_path) for arg in command]
            if with_metrics:
                argv += ["--metrics", str(tmp_path / f"{tag}.jsonl")]
            assert main(argv) == 0
            capsys.readouterr()
            return csv_path.read_bytes()

        plain = run("off", with_metrics=False)
        recorded = run("on", with_metrics=True)
        assert plain == recorded

    def test_online_printed_output_identical(self, capsys, tmp_path):
        argv = ["online", "--length", "1200", "--budget", "150", "--window", "1200", "--epoch", "600"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--metrics", str(tmp_path / "m.jsonl")]) == 0
        recorded = capsys.readouterr().out
        assert recorded.startswith(plain)
        extra = recorded[len(plain):]
        assert extra.startswith("wrote metrics to ")


class TestOutputPathHandling:
    def test_csv_target_creates_missing_parents(self, zipf_file, tmp_path, capsys):
        csv_path = tmp_path / "does" / "not" / "exist" / "curve.csv"
        assert main(["mrc", str(zipf_file), "--csv", str(csv_path), "--max-size", "8"]) == 0
        assert csv_path.exists()
        capsys.readouterr()

    def test_empty_rows_csv_still_creates_parents(self, tmp_path):
        from repro.analysis.reporting import write_csv

        target = tmp_path / "missing" / "dir" / "empty.csv"
        assert write_csv(target, []) == target
        assert target.read_text() == ""

    def test_metrics_target_creates_missing_parents(self, zipf_file, tmp_path, capsys):
        metrics = tmp_path / "a" / "b" / "m.jsonl"
        assert main(["profile", str(zipf_file), "--mode", "reuse", "--metrics", str(metrics)]) == 0
        assert metrics.exists()
        capsys.readouterr()


class TestMetricsSubcommand:
    def test_scoreboard_of_a_recorded_run(self, zipf_file, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main(["profile", str(zipf_file), "--mode", "shards", "--metrics", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "run: profile" in out
        assert "counters:" in out
        assert "spans:" in out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such metrics file" in capsys.readouterr().err

    def test_perf_trajectory_scoreboard_and_baseline(self, tmp_path, capsys):
        trajectory = tmp_path / "perf.jsonl"
        record_perf(trajectory, "bench_replay", "speedup", 12.0, unit="x")
        record_perf(trajectory, "bench_sweep", "speedup", 40.0, unit="x")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [
                    {"benchmark": "bench_replay", "metric": "speedup", "value": 11.0},
                    {"benchmark": "bench_sweep", "metric": "speedup", "value": 39.0},
                ]
            )
        )
        assert main(["metrics", str(trajectory), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory" in out
        assert "within ±30% of baseline (2 metrics compared)" in out

    def test_baseline_regression_warns_but_exits_zero(self, tmp_path, capsys):
        trajectory = tmp_path / "perf.jsonl"
        record_perf(trajectory, "bench_replay", "speedup", 2.0, unit="x")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([{"benchmark": "bench_replay", "metric": "speedup", "value": 20.0}]))
        assert main(["metrics", str(trajectory), "--baseline", str(baseline)]) == 0
        assert "PERF REGRESSION" in capsys.readouterr().out
        # sanity: the loader agrees the current value regressed
        assert load_perf(trajectory)[0].value == 2.0
