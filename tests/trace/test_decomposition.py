"""Unit tests for phase decomposition of general traces (Section VI-D bridge)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.core import Permutation, random_permutation
from repro.trace import (
    PeriodicTrace,
    Trace,
    phase_decomposition,
    predicted_hits,
    prediction_error,
    repeated_traversals,
    retraversal_permutations,
    zipfian_trace,
)


class TestPhaseDecomposition:
    def test_periodic_trace_gives_two_phases(self):
        sigma = Permutation([2, 0, 3, 1])
        decomposition = phase_decomposition(PeriodicTrace(sigma).to_trace())
        assert decomposition.decomposable
        assert decomposition.num_phases == 2
        assert decomposition.footprint == 4
        assert decomposition.phases[0].tolist() == [0, 1, 2, 3]
        assert decomposition.phases[1].tolist() == [2, 0, 3, 1]

    def test_multi_pass_schedule(self):
        schedule = [Permutation.identity(5), Permutation.reverse(5), Permutation.identity(5)]
        decomposition = phase_decomposition(repeated_traversals(schedule))
        assert decomposition.decomposable
        assert decomposition.num_phases == 3

    def test_non_decomposable_trace(self):
        decomposition = phase_decomposition(Trace([0, 1, 0, 1, 2]))
        assert not decomposition.decomposable

    def test_remainder_reported(self):
        decomposition = phase_decomposition(Trace([0, 1, 2, 2, 1, 0, 0]))
        assert not decomposition.decomposable
        assert decomposition.num_phases == 2
        assert decomposition.remainder.tolist() == [0]

    def test_empty_trace(self):
        decomposition = phase_decomposition(Trace([]))
        assert decomposition.decomposable
        assert decomposition.num_phases == 0

    def test_single_phase(self):
        decomposition = phase_decomposition(Trace([3, 1, 2, 0]))
        assert decomposition.decomposable
        assert decomposition.num_phases == 1

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            phase_decomposition(np.zeros((2, 2), dtype=int))


class TestRetraversalPermutations:
    def test_identity_and_reverse_phases(self):
        schedule = [Permutation.identity(4), Permutation.identity(4), Permutation.reverse(4)]
        decomposition = phase_decomposition(repeated_traversals(schedule))
        sigmas = retraversal_permutations(decomposition)
        assert len(sigmas) == 2
        assert sigmas[0].is_identity()
        assert sigmas[1].is_reverse()

    def test_relabelling_relative_to_previous_phase(self):
        # phases: 0 1 2 | 2 1 0 | 0 1 2 ; relative permutations are both the reverse
        trace = Trace([0, 1, 2, 2, 1, 0, 0, 1, 2])
        sigmas = retraversal_permutations(phase_decomposition(trace))
        assert all(s.is_reverse() for s in sigmas)

    def test_arbitrary_items_relabelled(self):
        trace = Trace([10, 30, 20, 20, 10, 30])
        decomposition = phase_decomposition(trace)
        (sigma,) = retraversal_permutations(decomposition)
        # phase 1 order: 10,30,20 -> positions 0,1,2 ; phase 2 accesses 20,10,30 -> (2,0,1)
        assert sigma.one_line == (2, 0, 1)


class TestPrediction:
    def test_prediction_exact_for_decomposable_traces(self, rng):
        m, passes = 16, 4
        schedule = [random_permutation(m, rng) for _ in range(passes)]
        schedule[0] = Permutation.identity(m)
        trace = repeated_traversals(schedule)
        decomposition = phase_decomposition(trace)
        assert decomposition.decomposable
        for cache_size in (2, 5, 8, 16):
            predicted = predicted_hits(decomposition, cache_size)
            measured = LRUCache(cache_size).run(trace).hits
            assert predicted == measured

    def test_prediction_error_report_decomposable(self):
        trace = PeriodicTrace.sawtooth(8).to_trace()
        report = prediction_error(trace, 4)
        assert report["decomposable"]
        assert report["absolute_error"] == 0
        assert report["measured_hits"] == 4

    def test_prediction_error_general_trace(self, rng):
        trace = zipfian_trace(200, 20, rng=rng)
        report = prediction_error(trace, 10)
        assert not report["decomposable"]
        assert report["measured_hits"] >= 0
        assert report["absolute_error"] >= 0

    def test_predicted_hits_validation(self):
        decomposition = phase_decomposition(PeriodicTrace.cyclic(4).to_trace())
        with pytest.raises(ValueError):
            predicted_hits(decomposition, 0)
