"""Optimal re-ordering and repeated-traversal scheduling (Theorem 4, Section VI-A2).

The unconstrained answer to Problem 2 is simple: the sawtooth (reverse)
permutation maximises the inversion number and therefore the locality of a
single re-traversal.  The interesting content is

* **Theorem 4** — if ``σ`` is the best re-ordering of ``A`` then the best
  schedule for traversing the data ``k`` times is the alternation
  ``A σ(A) A σ(A) …``: permute on every other traversal and return to the
  original order in between.  :func:`alternating_schedule` builds that
  schedule, :func:`schedule_trace` materialises its access trace, and
  :func:`schedule_total_reuse` evaluates it.
* the **matrix traversal comparison** of Section VI-A2 —
  :func:`matrix_traversal_costs` reproduces the ``(nm)²`` vs ``nm(nm+1)/2``
  total-reuse comparison between cyclic and sawtooth re-traversal of an
  ``n × m`` weight matrix.
* **constrained optimality** — when only a subset of permutations is feasible
  the best re-ordering is the feasible permutation of maximal inversion
  number; see :mod:`repro.core.feasibility` for the search and
  :func:`best_reordering` here for the dispatch.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from .._util import check_positive_int
from .hits import total_reuse
from .permutation import Permutation

__all__ = [
    "optimal_reordering",
    "best_reordering",
    "alternating_schedule",
    "schedule_trace",
    "schedule_total_reuse",
    "naive_schedule_total_reuse",
    "matrix_traversal_costs",
]


def optimal_reordering(m: int) -> Permutation:
    """The unconstrained optimal re-ordering of ``m`` items: the sawtooth permutation."""
    m = check_positive_int(m, "m")
    return Permutation.reverse(m)


def best_reordering(
    m: int,
    *,
    feasible: Iterable[Permutation] | None = None,
    feasibility: Callable[[Permutation], bool] | None = None,
) -> Permutation:
    """The feasible re-ordering with the largest inversion number.

    Parameters
    ----------
    m:
        Number of data items.
    feasible:
        Explicit collection of feasible permutations to choose from.  When
        given, the best of these is returned.
    feasibility:
        Alternatively, a predicate; the unconstrained optimum (sawtooth) is
        returned when it is feasible, otherwise the caller should use
        :func:`repro.core.feasibility.best_feasible_extension`, which searches
        dependency-constrained spaces efficiently.

    Raises
    ------
    ValueError
        If no feasible permutation is supplied or found.
    """
    if feasible is not None:
        candidates = list(feasible)
        if not candidates:
            raise ValueError("no feasible permutations supplied")
        return max(candidates, key=lambda p: p.inversions())
    sawtooth = optimal_reordering(m)
    if feasibility is None or feasibility(sawtooth):
        return sawtooth
    raise ValueError(
        "sawtooth is infeasible; use repro.core.feasibility.best_feasible_extension "
        "to search a dependency-constrained space"
    )


def alternating_schedule(sigma: Permutation, traversals: int) -> list[Permutation]:
    """The Theorem-4 schedule for ``traversals`` passes over the data.

    Returns the permutation applied on each traversal: the identity on pass 0,
    ``σ`` on pass 1, identity on pass 2, and so on.  By Theorem 4 this
    alternation is optimal when ``σ`` is the optimal single re-ordering,
    because reuse distance is symmetric under reversal of the trace — the
    locality of ``σ(A) A`` equals that of ``A σ(A)``.
    """
    traversals = check_positive_int(traversals, "traversals")
    identity = Permutation.identity(sigma.size)
    return [identity if k % 2 == 0 else sigma for k in range(traversals)]


def schedule_trace(schedule: Sequence[Permutation], *, items: Sequence[int] | None = None) -> np.ndarray:
    """Materialise the access trace of a multi-traversal schedule.

    Each traversal accesses every item once, in the order given by that
    traversal's permutation applied to the canonical order ``0..m-1`` (or to
    the supplied ``items`` labels).
    """
    if not schedule:
        return np.zeros(0, dtype=np.intp)
    m = schedule[0].size
    if any(p.size != m for p in schedule):
        raise ValueError("all schedule entries must act on the same number of items")
    base = np.arange(m, dtype=np.intp) if items is None else np.asarray(items, dtype=np.intp)
    if base.size != m:
        raise ValueError(f"items has length {base.size}, expected {m}")
    parts = [base[np.asarray(p.one_line, dtype=np.intp)] for p in schedule]
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.intp)


def schedule_total_reuse(schedule: Sequence[Permutation]) -> int:
    """Total reuse (sum of stack distances) across consecutive traversal pairs.

    Between traversal ``k`` (ordered by ``π_k``) and traversal ``k+1`` (ordered
    by ``π_{k+1}``) the relative re-traversal permutation is
    ``π_{k+1} ∘ π_k^{-1}`` after relabelling, so the pair contributes
    ``total_reuse(π_{k+1} π_k^{-1})``.  The first traversal is cold and
    contributes ``m`` compulsory misses, not counted here.
    """
    total = 0
    for prev, nxt in zip(schedule, schedule[1:]):
        relative = nxt * prev.inverse()
        total += total_reuse(relative)
    return total


def naive_schedule_total_reuse(m: int, traversals: int) -> int:
    """Total reuse of the naive cyclic schedule (identity on every traversal)."""
    m = check_positive_int(m, "m")
    traversals = check_positive_int(traversals, "traversals")
    return (traversals - 1) * m * m


def matrix_traversal_costs(n: int, m: int) -> dict[str, int]:
    """Reproduce the Section VI-A2 matrix-access comparison.

    An ``n × m`` weight matrix (e.g. an MLP linear layer) of ``nm`` elements is
    traversed twice.  The cyclic order gives every element a stack distance of
    ``nm`` for a total reuse of ``(nm)²``; the sawtooth order gives stack
    distances ``1, 2, ..., nm`` for a total of ``nm(nm+1)/2`` — the leading
    term is halved.

    Returns
    -------
    dict with keys ``elements``, ``cyclic``, ``sawtooth``, ``savings_ratio``.
    """
    n = check_positive_int(n, "n")
    m = check_positive_int(m, "m")
    elements = n * m
    cyclic = total_reuse(Permutation.identity(elements))
    sawtooth = total_reuse(Permutation.reverse(elements))
    assert cyclic == elements * elements
    assert sawtooth == elements * (elements + 1) // 2
    return {
        "elements": elements,
        "cyclic": cyclic,
        "sawtooth": sawtooth,
        "savings_ratio": cyclic / sawtooth,
    }
