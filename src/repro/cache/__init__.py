"""Cache simulators and trace-level locality measurement.

The paper's reference model is a fully-associative LRU cache
(:class:`LRUCache`); the other policies and organisations exist for the
sensitivity ablations, and the stack-distance / miss-ratio-curve functions
measure arbitrary traces (not just periodic re-traversals).

Examples
--------
>>> from repro.cache import LRUCache, mrc_from_trace
>>> stats = LRUCache(2).run([0, 1, 0, 2, 0, 1])
>>> stats.hits, stats.misses
(2, 4)
>>> curve = mrc_from_trace([0, 1, 0, 2, 0, 1])
>>> round(curve[2], 4)  # same trace, same capacity, from one stack-distance pass
0.6667
"""

from .base import CacheModel, CacheStats, simulate_trace
from .belady import BeladyCache, simulate_opt
from .fifo import FIFOCache
from .footprint import (
    data_movement_distance,
    footprint,
    footprint_curve,
    miss_ratio_from_footprint,
)
from .hierarchy import CacheHierarchy, HierarchyLevelResult
from .lru import LRUCache
from .mrc import MissRatioCurve, average_curves, mrc_by_simulation, mrc_from_trace
from .random_policy import RandomCache
from .set_associative import SetAssociativeCache
from .stack_distance import (
    COLD,
    StackDistanceStream,
    hit_counts,
    reuse_intervals,
    stack_distance_histogram,
    stack_distances,
    stack_distances_naive,
    stack_distances_vectorized,
    stack_distances_with_previous,
)

__all__ = [
    "CacheModel",
    "CacheStats",
    "simulate_trace",
    "BeladyCache",
    "simulate_opt",
    "FIFOCache",
    "data_movement_distance",
    "footprint",
    "footprint_curve",
    "miss_ratio_from_footprint",
    "CacheHierarchy",
    "HierarchyLevelResult",
    "LRUCache",
    "MissRatioCurve",
    "average_curves",
    "mrc_by_simulation",
    "mrc_from_trace",
    "RandomCache",
    "SetAssociativeCache",
    "COLD",
    "StackDistanceStream",
    "hit_counts",
    "reuse_intervals",
    "stack_distance_histogram",
    "stack_distances",
    "stack_distances_naive",
    "stack_distances_vectorized",
    "stack_distances_with_previous",
]
