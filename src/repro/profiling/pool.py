"""Deprecated alias of :mod:`repro.engine.runner` (the engine's pool runner).

The shared multiprocessing utilities that used to live here were folded into
the experiment engine's worker-pool runner when ``repro.engine`` became the
single execution substrate.  Importing names through this module keeps
working but emits a :class:`DeprecationWarning`; new code should import from
:mod:`repro.engine` (or :mod:`repro.engine.runner`) directly.
"""

from __future__ import annotations

import warnings

from ..engine import runner as _runner

__all__ = ["check_workers", "fork_available", "fork_pool", "pool_map"]


def __getattr__(name: str):
    """Forward attribute access to the engine runner with a deprecation warning."""
    if name.startswith("_") or not hasattr(_runner, name):
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.profiling.pool.{name} moved to repro.engine.runner.{name}; "
        "the repro.profiling.pool alias will be removed in a future release",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(_runner, name)
