"""Policy-sweep engine vs. naive per-capacity replay — the multi-scenario axis.

The sweep engine's acceptance claim: deriving the *entire* LRU capacity grid
from one vectorised stack-distance pass beats replaying the trace through a
fresh ``LRUCache`` per capacity by at least 10x at 64 capacities on a
10^5-reference Zipfian trace, while staying bit-identical.  The lane-vectorised
FIFO kernel is recorded alongside (single pass over the trace for all
capacities vs. one pure-Python replay each).  The recorded CSV backs the
acceptance bar; cross-validation against the cache models at every grid point
lives in ``tests/sim/``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table, write_csv
from repro.obs import record_perf
from repro.sim import compact_trace, fifo_sweep_hits, lru_sweep_hits, naive_sweep_hits
from repro.trace import zipfian_trace

TRACE_LENGTH = 100_000
FOOTPRINT = 8192
EXPONENT = 0.8
SEED = 7
NUM_CAPACITIES = 64


def test_lru_single_pass_sweep_speedup(benchmark, results_dir, perf_trajectory):
    trace = zipfian_trace(TRACE_LENGTH, FOOTPRINT, exponent=EXPONENT, rng=SEED).accesses
    capacities = np.arange(1, NUM_CAPACITIES + 1) * (FOOTPRINT // NUM_CAPACITIES)
    assert capacities.size == NUM_CAPACITIES

    start = time.perf_counter()
    sweep = lru_sweep_hits(trace, capacities)
    sweep_seconds = time.perf_counter() - start

    start = time.perf_counter()
    naive = naive_sweep_hits(trace, capacities, policy="lru")
    naive_seconds = time.perf_counter() - start

    assert np.array_equal(sweep, naive), "single-pass sweep must be bit-identical to replay"
    speedup = naive_seconds / max(sweep_seconds, 1e-9)
    assert speedup >= 10.0, (
        f"single-pass LRU sweep must beat naive replay by >= 10x at "
        f"{NUM_CAPACITIES} capacities, got {speedup:.1f}x"
    )

    rows = [
        {
            "method": "single_pass_sweep",
            "policy": "lru",
            "capacities": NUM_CAPACITIES,
            "accesses": TRACE_LENGTH,
            "seconds": sweep_seconds,
            "speedup": speedup,
            "identical": True,
        },
        {
            "method": "naive_replay",
            "policy": "lru",
            "capacities": NUM_CAPACITIES,
            "accesses": TRACE_LENGTH,
            "seconds": naive_seconds,
            "speedup": 1.0,
            "identical": True,
        },
    ]

    dense, distinct = compact_trace(trace)
    start = time.perf_counter()
    fifo_kernel = fifo_sweep_hits(dense, capacities, distinct=distinct)
    fifo_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fifo_naive = naive_sweep_hits(dense, capacities, policy="fifo")
    fifo_naive_seconds = time.perf_counter() - start
    assert np.array_equal(fifo_kernel, fifo_naive)
    rows.append(
        {
            "method": "lane_vectorised_kernel",
            "policy": "fifo",
            "capacities": NUM_CAPACITIES,
            "accesses": TRACE_LENGTH,
            "seconds": fifo_seconds,
            "speedup": fifo_naive_seconds / max(fifo_seconds, 1e-9),
            "identical": True,
        }
    )
    rows.append(
        {
            "method": "naive_replay",
            "policy": "fifo",
            "capacities": NUM_CAPACITIES,
            "accesses": TRACE_LENGTH,
            "seconds": fifo_naive_seconds,
            "speedup": 1.0,
            "identical": True,
        }
    )

    print()
    print(
        format_table(
            rows,
            title=(
                f"Policy sweep vs. naive replay — zipf(s={EXPONENT}), "
                f"{TRACE_LENGTH} refs, {NUM_CAPACITIES} capacities"
            ),
        )
    )
    write_csv(results_dir / "sweep_speedup.csv", rows)
    record_perf(perf_trajectory, "bench_sweep", "speedup", speedup, unit="x", policy="lru")

    benchmark(lru_sweep_hits, trace, capacities)
