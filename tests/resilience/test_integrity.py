"""Trace-integrity chaos tests: damaged memmap traces fail loudly and early.

Every kind of on-disk damage — truncation, bit-flips, a missing column, a
dtype swap — must surface as a :class:`~repro.resilience.TraceIntegrityError`
naming the file and the expected vs. found values at *open* time, instead of
an unrelated numpy error deep inside a replay.
"""

from __future__ import annotations

import json

import pytest

import numpy as np

from repro.resilience import TraceIntegrityError
from repro.resilience.faults import corrupt_trace_column, truncate_trace_column
from repro.trace.streaming import (
    create_memmap_trace,
    open_memmap_trace,
    verify_memmap_trace,
    write_trace_manifest,
)

LENGTH = 256


@pytest.fixture
def stem(tmp_path):
    """A healthy flushed memmap trace (columns + integrity sidecar)."""
    stem = tmp_path / "trace"
    trace = create_memmap_trace(stem, LENGTH)
    rng = np.random.default_rng(1)
    trace.fill(0, rng.integers(0, 500, LENGTH), rng.integers(0, 3, LENGTH))
    trace.flush()
    return stem


class TestHealthyTrace:
    def test_flush_writes_the_sidecar_manifest(self, stem):
        manifest = json.loads(stem.with_name("trace.manifest.json").read_text(encoding="utf-8"))
        assert manifest["schema"] == 1
        assert set(manifest["columns"]) == {"items", "tenants"}
        for column in manifest["columns"].values():
            assert column["length"] == LENGTH
            assert column["dtype"] == "int64"
            assert isinstance(column["crc32"], int)

    def test_verified_open_round_trips(self, stem):
        trace = open_memmap_trace(stem)
        assert len(trace) == LENGTH
        verify_memmap_trace(stem)  # idempotent and quiet

    def test_legacy_trace_without_manifest_still_opens(self, stem):
        stem.with_name("trace.manifest.json").unlink()
        trace = open_memmap_trace(stem)  # structural checks only
        assert len(trace) == LENGTH


class TestDamage:
    def test_corruption_fails_the_crc(self, stem):
        corrupt_trace_column(stem, "items", seed=2)
        with pytest.raises(TraceIntegrityError) as excinfo:
            open_memmap_trace(stem)
        message = str(excinfo.value)
        assert "trace.items.npy" in message
        assert "expected" in message and "found" in message
        assert excinfo.value.expected != excinfo.value.found

    def test_truncation_is_caught(self, stem):
        truncate_trace_column(stem, "tenants", drop=3)
        with pytest.raises(TraceIntegrityError, match="trace.tenants.npy"):
            open_memmap_trace(stem)

    def test_missing_column_is_named(self, stem):
        stem.with_name("trace.items.npy").unlink()
        with pytest.raises(TraceIntegrityError, match="missing"):
            open_memmap_trace(stem)

    def test_verify_false_skips_the_checks(self, stem):
        corrupt_trace_column(stem, "items", seed=2)
        trace = open_memmap_trace(stem, verify=False)  # escape hatch for salvage
        assert len(trace) == LENGTH

    def test_stale_manifest_after_silent_rewrite(self, stem):
        # Rewrite a column without flushing through StreamingTrace: the
        # sidecar no longer matches and the next open must refuse.
        file = stem.with_name("trace.items.npy")
        column = np.lib.format.open_memmap(file, mode="r+")
        column[0] += 1
        column.flush()
        del column
        with pytest.raises(TraceIntegrityError):
            open_memmap_trace(stem)
        # re-blessing the data refreshes the sidecar and the trace opens again
        write_trace_manifest(stem)
        assert len(open_memmap_trace(stem)) == LENGTH

    def test_manifest_schema_mismatch(self, stem):
        manifest_path = stem.with_name("trace.manifest.json")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["schema"] = 42
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(TraceIntegrityError, match="schema"):
            open_memmap_trace(stem)

    def test_column_length_disagreement(self, tmp_path):
        stem = tmp_path / "trace"
        trace = create_memmap_trace(stem, 32)
        trace.fill(0, np.arange(32), np.zeros(32, dtype=np.int64))
        trace.flush()
        # grow one column behind the manifest's back
        np.save(stem.with_name("trace.items.npy"), np.arange(40))
        with pytest.raises(TraceIntegrityError):
            open_memmap_trace(stem)


class TestFillBounds:
    def test_fill_past_the_end_names_the_backing_file(self, stem):
        trace = open_memmap_trace(stem)
        with pytest.raises(ValueError) as excinfo:
            trace.fill(LENGTH - 2, np.arange(5), np.zeros(5, dtype=np.int64))
        message = str(excinfo.value)
        assert f"does not fit a {LENGTH}-reference trace" in message
        assert "trace.items.npy" in message

    def test_fill_negative_start(self, stem):
        trace = open_memmap_trace(stem)
        with pytest.raises(ValueError, match="does not fit"):
            trace.fill(-1, np.arange(2), np.zeros(2, dtype=np.int64))
