"""Online adaptive re-partitioning: windowed profiles, phase detection, control.

The offline stack (:mod:`repro.profiling` → :mod:`repro.alloc`) decides a
cache partition once from whole-trace profiles; this subpackage closes the
loop for *changing* traffic:

:mod:`repro.online.windowed`
    Incremental windowed/decayed SHARDS sketches — the MRC of the traffic in
    the last ``window`` references, refreshed as events stream in.
:mod:`repro.online.phases`
    Hysteresis-filtered regime-shift detection from the distance between
    successive windowed curves.
:mod:`repro.online.controller`
    Move-cost-aware re-allocation: re-run an allocator on the fresh profiles
    and apply the proposal only when the predicted gain beats the warm-up
    cost of moving blocks between tenants.
:mod:`repro.online.replay`
    The streaming driver: one event loop replaying a drifting multi-tenant
    trace (:mod:`repro.trace.drift`) under static, adaptive and
    oracle-per-phase partitioning at once.

Examples
--------
>>> from repro.online import WindowedShardsSketch
>>> sketch = WindowedShardsSketch(window=6, rate=1.0)
>>> sketch.update([0, 1, 2, 0, 1, 2, 0, 1, 2])
>>> sketch.curve()[3]  # window [0,1,2,0,1,2]: 3 cold misses, 3 hits at size 3
0.5
"""

from .controller import ReallocationController, ReallocationDecision
from .phases import PhaseChangeDetector, PhaseObservation
from .replay import EpochStats, OnlineJob, PartitionedLRU, ReplayResult, run_replay
from .windowed import WindowedShardsSketch, WindowSnapshot, curve_of_snapshot, pooled_curve

__all__ = [
    "WindowedShardsSketch",
    "WindowSnapshot",
    "curve_of_snapshot",
    "pooled_curve",
    "PhaseChangeDetector",
    "PhaseObservation",
    "ReallocationController",
    "ReallocationDecision",
    "OnlineJob",
    "EpochStats",
    "PartitionedLRU",
    "ReplayResult",
    "run_replay",
]
