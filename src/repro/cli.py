"""Command-line interface.

Installed as ``python -m repro`` (or the ``repro`` console script); ten
subcommands cover the common workflows:

``analyze``
    Reuse statistics, locality score and sampled miss ratios of a trace file.
``mrc``
    Full LRU miss-ratio curve of a trace file, printed or written to CSV.
``profile``
    Exact or *approximate* miss-ratio curve of one or more trace files via
    the :mod:`repro.profiling` engine: ``--mode exact`` replays the exact
    pipeline, ``--mode shards`` samples spatially at ``--rate`` (or with a
    fixed item budget ``--smax``), ``--mode reuse`` streams a one-pass
    reuse-time profile through the AET model.  ``--workers`` fans a batch of
    traces — or the chunks of one long trace in ``reuse`` mode — across
    processes, and ``--compare-exact`` reports the error and speedup against
    the exact curve.
``sweep``
    Evaluate many cache configurations over one trace via the
    :mod:`repro.sim` policy-sweep engine: ``--policies`` crossed with a
    ``--capacities`` grid in one (or few) passes — the whole LRU grid from a
    single stack-distance pass, FIFO/random lane-vectorised, set-associative
    fanned per capacity — with ``--workers`` spreading kernel tasks across
    processes without changing any result.  ``--checkpoint DIR`` memoizes
    finished tasks to disk and ``--resume`` continues an interrupted sweep.
``partition``
    Divide a shared cache among co-running tenants via the
    :mod:`repro.alloc` optimizer: ``--tenants`` names the workloads (inline
    generator specs or trace files), per-tenant miss-ratio curves are
    profiled (``--mode exact|shards|reuse``, fanned across ``--workers``),
    ``--method greedy|dp|hull`` allocates the ``--budget``, and the shared
    cache is simulated both partitioned and unpartitioned to report the
    predicted vs. simulated miss ratios and the partitioning win.
``online``
    Replay a seeded drifting multi-tenant workload through the
    :mod:`repro.online` adaptive re-partitioning engine: windowed/decayed
    SHARDS profiles (``--window``, ``--decay``, ``--rate``) refreshed every
    ``--epoch`` events, phase-change detection, and move-cost-gated
    re-allocation (``--method``, ``--move-cost``), reporting the per-epoch
    miss-ratio series of static vs. adaptive vs. oracle-per-phase
    partitioning.  ``--checkpoint DIR`` snapshots the replay state at epoch
    boundaries and ``--resume`` continues a killed replay bit-identically.
``chain``
    Run ChainFind on ``S_m`` with a chosen labeling and print the tie
    statistics (the Figure 2 measurement for a single size).
``experiment``
    Re-run one of the paper-reproduction experiment drivers and print its
    table (the same code paths the benchmark harness asserts against).
``generate``
    Write a synthetic trace file (re-traversals, STREAM, Zipfian) for use with
    ``analyze``/``mrc``/``profile`` or external tools.
``metrics``
    Summarize a metrics JSONL file (written by ``--metrics`` on the
    ``profile``/``sweep``/``partition``/``online`` subcommands, or by the
    benchmark suite's perf trajectory) into a scoreboard; ``--baseline``
    additionally compares recorded perf metrics against a committed baseline
    and warns on >30% regressions.

The four engine subcommands accept ``--metrics PATH``: the run records
counters, span timings, histograms and per-epoch series into a
:class:`repro.obs.MetricsRegistry` and exports them (with a
:class:`repro.obs.RunManifest` provenance line) as JSON Lines.  Metrics
never change any result — rows, summaries and allocations are bit-identical
with metrics on or off.

Examples
--------
::

    python -m repro generate sawtooth --items 64 --output saw.trace
    python -m repro analyze saw.trace
    python -m repro mrc saw.trace --csv saw_mrc.csv
    python -m repro generate zipf --length 1000000 --items 65536 -o big.trace
    python -m repro profile big.trace --mode shards --rate 0.01
    python -m repro profile big.trace --mode reuse --workers 4 --csv big_mrc.csv
    python -m repro sweep big.trace --policies lru,fifo,random --capacities pow2
    python -m repro sweep big.trace --policies lru --capacities 64:4096:64 --csv sweep.csv
    python -m repro partition --tenants zipf,sawtooth:items=4000,stream:n=2000 --budget 2048 --method hull
    python -m repro online --length 6000 --budget 1150 --window 6000 --epoch 2000 --rate 0.5
    python -m repro chain 8 --labeling miss-ratio
    python -m repro experiment fig1
    python -m repro experiment sampling
    python -m repro online --length 6000 --budget 1150 --window 6000 --epoch 2000 --metrics m/online.jsonl
    python -m repro metrics m/online.jsonl
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .cache.mrc import mrc_from_trace
    from .trace.io import read_text
    from .trace.stats import locality_score, summarize

    trace = read_text(args.trace_file)
    stats = summarize(trace)
    print(format_table([stats.__dict__], title=f"Trace statistics — {trace.name}"))
    print(f"locality score (0 = cyclic, 1 = sawtooth): {locality_score(trace):.4f}")
    curve = mrc_from_trace(trace.accesses)
    samples = sorted({max(1, trace.footprint // 8), max(1, trace.footprint // 2), trace.footprint})
    rows = [{"cache_size": c, "miss_ratio": curve[c]} for c in samples]
    print(format_table(rows, title="LRU miss ratio at sampled cache sizes"))
    return 0


def _cmd_mrc(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table, write_csv
    from .cache.mrc import mrc_from_trace
    from .trace.io import read_text

    trace = read_text(args.trace_file)
    curve = mrc_from_trace(trace.accesses, max_cache_size=args.max_size)
    rows = [{"cache_size": c + 1, "miss_ratio": ratio} for c, ratio in enumerate(curve.ratios)]
    if args.csv:
        path = write_csv(args.csv, rows)
        print(f"wrote {len(rows)} rows to {path}")
    else:
        print(format_table(rows, title=f"Miss-ratio curve — {trace.name}"))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from . import api
    from .analysis.reporting import format_table
    from .cache.mrc import mrc_from_trace
    from .obs import span
    from .profiling.accuracy import compare_curves
    from .profiling.engine import ProfileJob
    from .trace.io import read_text

    if args.csv and len(args.trace_files) != 1:
        print("--csv requires exactly one trace file", file=sys.stderr)
        return 2

    # Without --compare-exact each worker loads its own file; only the exact
    # comparison needs the access arrays in this process.
    jobs = []
    for path in args.trace_files:
        common = dict(
            mode=args.mode,
            rate=args.rate,
            smax=args.smax,
            seed=args.seed,
            n_seeds=args.seeds,
            max_cache_size=args.max_size,
        )
        if args.compare_exact:
            trace = read_text(path)
            jobs.append(ProfileJob(trace=trace.accesses, name=trace.name, **common))
        else:
            jobs.append(ProfileJob(path=str(path), name=Path(path).stem, **common))

    results = api.profile(jobs, workers=args.workers)

    rows = []
    for job, result in zip(jobs, results):
        row = {
            "trace": result.name,
            "mode": result.mode,
            "accesses": result.accesses,
            "curve_points": result.curve.max_cache_size,
            "seconds": round(result.seconds, 4),
        }
        if args.compare_exact:
            with span("profiling.compare_exact") as timer:
                exact = mrc_from_trace(job.trace, max_cache_size=args.max_size)
            comparison = compare_curves(result.curve, exact)
            row["exact_seconds"] = round(timer.seconds, 4)
            row["speedup"] = round(timer.seconds / max(result.seconds, 1e-9), 1)
            row["mae"] = round(comparison.mean_absolute_error, 5)
            row["max_error"] = round(comparison.max_absolute_error, 5)
        rows.append(row)
    print(format_table(rows, title=f"profile --mode {args.mode}"))

    if args.csv:
        path, written = api.export_csv(results[0], args.csv)
        print(f"wrote {written} rows to {path}")
    return 0


def parse_capacities(spec: str, footprint: int) -> tuple[int, ...]:
    """Parse a ``--capacities`` grid specification.

    The spec is a comma-separated list of elements, each one of:

    * an integer — that single capacity;
    * ``lo:hi`` or ``lo:hi:step`` — an inclusive arithmetic range;
    * ``pow2`` — every power of two up to the trace footprint.

    The union is deduplicated and sorted.
    """
    capacities: set[int] = set()
    for element in spec.split(","):
        element = element.strip()
        if not element:
            continue
        if element == "pow2":
            size = 1
            while size <= max(footprint, 1):
                capacities.add(size)
                size *= 2
        elif ":" in element:
            parts = element.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(f"bad capacity range {element!r}; expected lo:hi or lo:hi:step")
            lo, hi = int(parts[0]), int(parts[1])
            step = int(parts[2]) if len(parts) == 3 else 1
            if step < 1:
                raise ValueError(f"capacity range step must be >= 1, got {step}")
            capacities.update(range(lo, hi + 1, step))
        else:
            capacities.add(int(element))
    if not capacities:
        raise ValueError(f"capacity spec {spec!r} produced an empty grid")
    return tuple(sorted(capacities))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from . import api
    from .analysis.reporting import format_table
    from .trace.io import read_text

    trace = read_text(args.trace_file)
    try:
        result = api.sweep(
            trace.accesses,
            name=trace.name,
            policies=tuple(p.strip() for p in args.policies.split(",") if p.strip()),
            capacities=parse_capacities(args.capacities, trace.footprint),
            ways=args.ways,
            seed=args.seed,
            workers=args.workers,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    rows = result.rows()
    if args.csv:
        path, written = api.export_csv(result, args.csv)
        print(f"wrote {written} rows to {path}")
    else:
        print(
            format_table(
                rows,
                title=f"policy sweep — {result.name} ({result.accesses} accesses, {result.footprint} items)",
            )
        )
    timing = [
        {"policy": sweep.policy, "capacities": len(sweep.capacities), "kernel_seconds": round(sweep.seconds, 4)}
        for sweep in result.sweeps
    ]
    print(format_table(timing, title="kernel compute time per policy"))
    return 0


#: Tenant generator kinds understood by ``--tenants`` and their defaults.
TENANT_KINDS = {
    "zipf": {"length": 30000, "items": 4096, "exponent": 0.9, "seed": 7},
    "sawtooth": {"items": 2048},
    "cyclic": {"items": 2048},
    "stream": {"n": 1024, "repetitions": 2},
    "random": {"length": 20000, "items": 2048, "seed": 7},
    "file": {"path": None},
}


def _synthetic_trace(kind: str, options: dict):
    """Build one synthetic trace (the single dispatch shared by ``generate`` and ``--tenants``)."""
    from .trace.generators import random_retraversal, random_trace, zipfian_trace
    from .trace.trace import PeriodicTrace
    from .trace.workloads import stream_copy

    if kind == "cyclic":
        return PeriodicTrace.cyclic(options["items"]).to_trace()
    if kind == "sawtooth":
        return PeriodicTrace.sawtooth(options["items"]).to_trace()
    if kind == "random-retraversal":
        return random_retraversal(options["items"], options["seed"]).to_trace()
    if kind == "zipf":
        return zipfian_trace(options["length"], options["items"], exponent=options["exponent"], rng=options["seed"])
    if kind == "stream":
        return stream_copy(options["n"], repetitions=options["repetitions"])
    if kind == "random":
        return random_trace(options["length"], options["items"], rng=options["seed"])
    raise ValueError(f"unknown trace kind {kind!r}")


def parse_tenants(spec: str) -> list:
    """Parse a ``--tenants`` specification into :class:`~repro.trace.TenantSpec` list.

    The spec is a comma-separated list of tenants, each
    ``kind[:key=value[:key=value...]]`` with kinds ``zipf`` (length, items,
    exponent, seed), ``sawtooth``/``cyclic`` (items), ``stream`` (n,
    repetitions), ``random`` (length, items, seed) and ``file`` (path).  Every
    kind also accepts ``rate`` (interleaving weight, default 1.0) and ``name``
    (defaults to the kind; :func:`repro.trace.compose_tenants` suffixes
    repeated names with the tenant index).
    """
    from pathlib import Path

    from .trace.tenancy import TenantSpec

    tenants = []
    for element in (part for part in spec.split(",") if part.strip()):
        fields = element.strip().split(":")
        kind = fields[0].strip()
        if kind not in TENANT_KINDS:
            raise ValueError(f"unknown tenant kind {kind!r}; choose from {sorted(TENANT_KINDS)}")
        options = dict(TENANT_KINDS[kind])
        options.update({"rate": 1.0, "name": None})
        for field in fields[1:]:
            if "=" not in field:
                raise ValueError(f"bad tenant option {field!r} in {element!r}; expected key=value")
            key, value = field.split("=", 1)
            key = key.strip()
            if key not in options:
                raise ValueError(f"unknown option {key!r} for tenant kind {kind!r}")
            default = options[key]
            if key in ("name", "path"):
                options[key] = value
            elif isinstance(default, float):
                options[key] = float(value)
            else:
                options[key] = int(value)
        rate, name = options.pop("rate"), options.pop("name")
        if kind == "file":
            if not options["path"]:
                raise ValueError("tenant kind 'file' requires a path= option")
            from .trace.io import read_text

            trace = read_text(Path(options["path"]))
        else:
            trace = _synthetic_trace(kind, options)
        tenants.append(TenantSpec(trace, name=name or kind, rate=rate))
    if not tenants:
        raise ValueError(f"tenant spec {spec!r} produced no tenants")
    return tenants


def _cmd_partition(args: argparse.Namespace) -> int:
    from . import api
    from .analysis.reporting import format_table

    try:
        result = api.partition(
            parse_tenants(args.tenants),
            args.budget,
            method=args.method,
            mode=args.mode,
            rate=args.rate,
            smax=args.smax,
            profile_seed=args.profile_seed,
            unit=args.unit,
            seed=args.seed,
            workers=args.workers,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    tenant_rows = result.rows()
    summary = result.summary()
    if args.csv:
        path, written = api.export_csv(result, args.csv)
        print(f"wrote {written} rows to {path}")
    else:
        print(
            format_table(
                tenant_rows,
                title=f"partition --method {result.method} — {result.accesses} accesses, budget {result.budget}",
            )
        )
    print(
        format_table(
            [
                {
                    "predicted": summary["predicted"],
                    "simulated": summary["simulated"],
                    "error": summary["error"],
                    "unpartitioned": summary["unpartitioned"],
                    "proportional": summary["proportional"],
                    "win_vs_unpartitioned": summary["win_vs_unpartitioned"],
                    "win_vs_proportional": summary["win_vs_proportional"],
                    "profile_seconds": round(result.profile_seconds, 4),
                }
            ],
            title="shared-cache miss ratios (partitioned vs unpartitioned)",
        )
    )
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from . import api
    from .analysis.reporting import format_table

    try:
        result = api.online(
            args.workload,
            args.budget,
            args.window,
            args.epoch,
            length=args.length,
            seed=args.seed,
            method=args.method,
            decay=args.decay,
            rate=args.rate,
            move_cost=args.move_cost,
            threshold=args.threshold,
            hysteresis=args.hysteresis,
            realloc_epochs=args.realloc_epochs,
            unit=args.unit,
            profile_seed=args.profile_seed,
            workers=args.workers,
            engine=args.engine,
            checkpoint_dir=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    rows = result.rows()
    summary = result.summary()
    if args.csv:
        path, written = api.export_csv(result, args.csv)
        print(f"wrote {written} rows to {path}")
    else:
        print(
            format_table(
                rows,
                title=(
                    f"online --method {args.method} — {result.accesses} accesses, "
                    f"budget {result.budget}, tenants {'/'.join(result.tenants)}"
                ),
            )
        )
    print(
        format_table(
            [
                {
                    "static": summary["static"],
                    "adaptive": summary["adaptive"],
                    "oracle": summary["oracle"],
                    "win_vs_static": summary["win_vs_static"],
                    "regret_vs_oracle": summary["regret_vs_oracle"],
                    "reallocations": summary["reallocations"],
                    "phase_changes": summary["phase_changes"],
                    "profiled_references": summary["profiled_references"],
                }
            ],
            title="overall miss ratios (static vs adaptive vs oracle-per-phase)",
        )
    )
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_table
    from .core.chainfind import chain_find
    from .core.labelings import MissRatioLabeling, RankedMissRatioLabeling, TransposedLabeling
    from .core.permutation import Permutation
    from .core.timescale import DataMovementLabeling, TimescaleLabeling

    m = args.m
    labelings = {
        "miss-ratio": MissRatioLabeling(),
        "ranked": RankedMissRatioLabeling(
            Permutation([m - 2] + list(range(m - 2)) + [m - 1]) if m >= 2 else Permutation.identity(m)
        ),
        "transposition": TransposedLabeling(),
        "timescale": TimescaleLabeling(),
        "data-movement": DataMovementLabeling(),
    }
    labeling = labelings[args.labeling]
    result = chain_find(Permutation.identity(m), labeling, moves=args.moves)
    rows = [
        {
            "m": m,
            "labeling": args.labeling,
            "moves": args.moves,
            "chain_length": result.length,
            "arbitrary_choices": result.arbitrary_choice_count,
            "chain_multiplicity": result.chain_multiplicity,
            "reaches_sawtooth": result.end.is_reverse(),
        }
    ]
    print(format_table(rows, title="ChainFind result"))
    if args.show_chain:
        chain_rows = [
            {"step": k, "sigma (1-indexed)": str(sigma.one_indexed()), "inversions": sigma.inversions()}
            for k, sigma in enumerate(result.chain)
        ]
        print(format_table(chain_rows, title="Chain"))
    return 0


_EXPERIMENTS = {
    "fig1": ("run_fig1_mrc_by_inversion", {}),
    "fig2": ("run_fig2_chainfind_ties", {}),
    "s11": ("run_s11_ranked_labeling", {}),
    "sawtooth-cyclic": ("run_sawtooth_cyclic", {}),
    "matrix-reuse": ("run_matrix_reuse", {}),
    "theorem2": ("run_theorem2_random", {}),
    "mahonian": ("run_mahonian_partitions", {}),
    "miss-integral": ("run_miss_integral", {}),
    "policy-ablation": ("run_policy_ablation", {}),
    "policy-sweep": ("run_policy_sweep", {}),
    "feasibility": ("run_feasibility_ablation", {}),
    "ml-schedule": ("run_ml_schedule", {}),
    "sampling": ("run_sampling_ablation", {}),
    "partition": ("run_partition_comparison", {}),
    "online-adaptation": ("run_online_adaptation", {}),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import analysis
    from .analysis.reporting import format_table

    driver_name, kwargs = _EXPERIMENTS[args.name]
    driver = getattr(analysis, driver_name)
    result = driver(**kwargs)

    if isinstance(result, list):
        print(format_table(result, title=f"experiment: {args.name}"))
    elif isinstance(result, dict) and "rows" in result:
        print(format_table(result["rows"], title=f"experiment: {args.name}"))
    elif isinstance(result, dict) and "curves" in result:
        curves = {f"ell={ell}": result["curves"][ell] for ell in result["levels"]}
        rows = [
            {"cache_size": c, **{name: series[i] for name, series in curves.items()}}
            for i, c in enumerate(result["cache_sizes"])
        ]
        print(format_table(rows, title=f"experiment: {args.name}"))
    elif isinstance(result, dict) and "levels" in result:
        print(format_table(result["levels"], title=f"experiment: {args.name}"))
    else:
        print(result)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import compare_to_baseline, load_perf, read_jsonl, summarize_records

    path = Path(args.metrics_file)
    if not path.exists():
        print(f"error: no such metrics file: {path}", file=sys.stderr)
        return 2
    records = read_jsonl(path)
    typed = [r for r in records if "type" in r]
    perf = [r for r in records if "type" not in r and "benchmark" in r]
    if typed:
        print(summarize_records(typed))
    if perf:
        from .analysis.reporting import format_table

        rows = [
            {
                "benchmark": r["benchmark"],
                "metric": r["metric"],
                "value": r["value"],
                "unit": r.get("unit", ""),
                "quick": r.get("quick", False),
            }
            for r in sorted(perf, key=lambda r: (str(r["benchmark"]), str(r["metric"])))
        ]
        print(format_table(rows, title="perf trajectory"))
    if not typed and not perf:
        print("(no records)")

    if args.baseline:
        current = load_perf(path)
        baseline = load_perf(args.baseline)
        if not baseline:
            print(f"warning: no baseline records in {args.baseline}", file=sys.stderr)
        warnings = compare_to_baseline(current, baseline, tolerance=args.tolerance)
        for warning in warnings:
            print(warning)
        if not warnings:
            matched = {r.key() for r in current} & {r.key() for r in baseline}
            print(f"perf trajectory within ±{args.tolerance:.0%} of baseline ({len(matched)} metrics compared)")
        # Warn-only by default (quick-mode numbers are noisy); --strict turns
        # the warnings into a failing exit code for gating CI steps.
        if warnings and args.strict:
            return 1
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .trace.io import write_text

    trace = _synthetic_trace(
        args.kind,
        {
            "items": args.items,
            "n": args.items,  # stream sizes its arrays from --items
            "length": args.length,
            "exponent": args.exponent,
            "repetitions": args.repetitions,
            "seed": args.seed,
        },
    )
    path = write_text(trace, args.output)
    print(f"wrote {len(trace)} accesses over {trace.footprint} items to {path}")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _engine_flags(*, seed_default: int, seed_help: str, workers_help: str, csv_help: str) -> argparse.ArgumentParser:
    """Parent parser carrying the flags every engine subcommand shares.

    One definition keeps the names, types and defaults of ``--seed`` /
    ``--workers`` / ``--csv`` / ``--metrics`` aligned across the
    profile/sweep/partition/online subcommands (the per-subcommand help
    strings stay specific), mirroring the unified keyword names of
    :mod:`repro.api`.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=seed_default, help=seed_help)
    parent.add_argument("--workers", type=int, default=1, help=workers_help)
    parent.add_argument("--csv", default=None, help=csv_help)
    parent.add_argument("--metrics", default=None, help="record run metrics to this JSONL file")
    return parent


def _checkpoint_flags() -> argparse.ArgumentParser:
    """Parent parser with the crash-safety flags sweep and online share."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="snapshot progress into this directory (atomic, checksummed; see repro.resilience)",
    )
    parent.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="snapshot cadence: every N completed epochs (online) or tasks (sweep)",
    )
    parent.add_argument(
        "--resume",
        action="store_true",
        help="continue from the latest snapshot in --checkpoint (bit-identical; a fresh store runs from the start)",
    )
    return parent


def _alloc_flags() -> argparse.ArgumentParser:
    """Parent parser with the allocator flags partition and online share."""
    from .engine.job import ALLOC_METHODS

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--method",
        choices=list(ALLOC_METHODS),
        default="hull",
        help="allocator: marginal-gain greedy, exact DP, or Talus-style convex hull",
    )
    parent.add_argument("--unit", type=int, default=1, help="allocation granularity in blocks")
    parent.add_argument("--profile-seed", type=int, default=0, help="base hash seed for SHARDS sampling")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    from .engine.job import PROFILE_MODES
    from .engine.lanes import LANE_ENGINES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symmetric locality toolkit: analyse traces, run ChainFind, reproduce the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="summarise a trace file")
    analyze.add_argument("trace_file", help="text trace file (one item label per line)")
    analyze.set_defaults(func=_cmd_analyze)

    mrc = subparsers.add_parser("mrc", help="miss-ratio curve of a trace file")
    mrc.add_argument("trace_file")
    mrc.add_argument("--max-size", type=int, default=None, help="largest cache size to report")
    mrc.add_argument("--csv", default=None, help="write the curve to this CSV file instead of printing")
    mrc.set_defaults(func=_cmd_mrc)

    profile = subparsers.add_parser(
        "profile",
        help="exact or approximate miss-ratio curve via the profiling engine",
        parents=[
            _engine_flags(
                seed_default=0,
                seed_help="base hash seed for sampling",
                workers_help="process pool size (batch of traces, or chunks of one trace in reuse mode)",
                csv_help="write the curve to this CSV file (single trace only)",
            )
        ],
    )
    profile.add_argument("trace_files", nargs="+", help="text trace file(s)")
    profile.add_argument(
        "--mode",
        choices=list(PROFILE_MODES),
        default="shards",
        help="exact pipeline, SHARDS sampling, or one-pass reuse-time (AET) model",
    )
    profile.add_argument("--rate", type=float, default=0.01, help="SHARDS sampling rate R")
    profile.add_argument("--smax", type=int, default=None, help="fixed-size SHARDS: max distinct sampled items")
    profile.add_argument("--seeds", type=int, default=2, help="number of pooled SHARDS hash functions")
    profile.add_argument("--max-size", type=int, default=None, help="largest cache size to report")
    profile.add_argument(
        "--compare-exact",
        action="store_true",
        help="also compute the exact curve and report error and speedup",
    )
    profile.set_defaults(func=_cmd_profile)

    sweep = subparsers.add_parser(
        "sweep",
        help="miss ratios of many policies x capacities via the sweep engine",
        parents=[
            _engine_flags(
                seed_default=0,
                seed_help="seed of the random-replacement policy",
                workers_help="process pool size (never changes the results)",
                csv_help="write the sweep rows to this CSV file",
            ),
            _checkpoint_flags(),
        ],
    )
    sweep.add_argument("trace_file", help="text trace file (one item label per line)")
    sweep.add_argument(
        "--policies",
        default="lru,fifo",
        help="comma-separated replacement policies: lru, fifo, random, set-associative",
    )
    sweep.add_argument(
        "--capacities",
        default="pow2",
        help="capacity grid: comma list of ints, lo:hi[:step] ranges, or pow2 (default)",
    )
    sweep.add_argument("--ways", type=int, default=4, help="associativity of the set-associative policy")
    sweep.set_defaults(func=_cmd_sweep)

    partition = subparsers.add_parser(
        "partition",
        help="divide a shared cache among tenants via MRC allocation",
        parents=[
            _engine_flags(
                seed_default=0,
                seed_help="seed of the tenant interleaving",
                workers_help="process pool size for per-tenant profiling",
                csv_help="write per-tenant rows plus a TOTAL row to this CSV file",
            ),
            _alloc_flags(),
        ],
    )
    partition.add_argument(
        "--tenants",
        required=True,
        help=(
            "comma-separated tenant specs kind[:key=value...]; kinds: zipf, sawtooth, "
            "cyclic, stream, random, file (every kind also takes rate= and name=)"
        ),
    )
    partition.add_argument("--budget", type=int, required=True, help="shared cache capacity in blocks")
    partition.add_argument(
        "--mode",
        choices=list(PROFILE_MODES),
        default="exact",
        help="per-tenant MRC profiling mode (see the profile subcommand)",
    )
    partition.add_argument("--rate", type=float, default=0.01, help="SHARDS sampling rate R (mode shards)")
    partition.add_argument("--smax", type=int, default=None, help="fixed-size SHARDS: max distinct sampled items")
    partition.set_defaults(func=_cmd_partition)

    online = subparsers.add_parser(
        "online",
        help="adaptive re-partitioning on a drifting multi-tenant workload",
        parents=[
            _engine_flags(
                seed_default=7,
                seed_help="seed of the drifting workload",
                workers_help="process pool size (never changes the results)",
                csv_help="write per-epoch rows plus a TOTAL row to this CSV file",
            ),
            _alloc_flags(),
            _checkpoint_flags(),
        ],
    )
    online.add_argument(
        "--workload",
        choices=["three-phase", "churn"],
        default="three-phase",
        help="drifting workload preset: 3-phase working-set seesaw, or tenant arrival/departure churn",
    )
    online.add_argument(
        "--length",
        type=int,
        default=6000,
        help="per-tenant references per phase (a composed phase spans ~2x this with both preset tenants active)",
    )
    online.add_argument("--budget", type=int, required=True, help="shared cache capacity in blocks")
    online.add_argument("--window", type=int, required=True, help="windowed-profiler span in composed events")
    online.add_argument("--epoch", type=int, required=True, help="re-profiling period in composed events")
    online.add_argument("--decay", type=float, default=0.0, help="exponential decay rate of the windowed profiles")
    online.add_argument("--rate", type=float, default=1.0, help="SHARDS sampling rate of the windowed profiles")
    online.add_argument("--move-cost", type=float, default=1.0, help="warm-up misses charged per moved block")
    online.add_argument("--threshold", type=float, default=0.03, help="phase-detector curve-distance threshold")
    online.add_argument("--hysteresis", type=int, default=1, help="consecutive off-reference windows before a flag")
    online.add_argument(
        "--realloc-epochs",
        type=int,
        default=4,
        help="fixed re-allocation cadence; between these epochs only a phase-change flag consults the controller",
    )
    online.add_argument(
        "--engine",
        choices=list(LANE_ENGINES),
        default="batch",
        help="replay data plane: vectorised batch kernels or the per-event reference (bit-identical)",
    )
    online.set_defaults(func=_cmd_online)

    chain = subparsers.add_parser("chain", help="run ChainFind on S_m")
    chain.add_argument("m", type=int, help="number of data items")
    chain.add_argument(
        "--labeling",
        choices=["miss-ratio", "ranked", "transposition", "timescale", "data-movement"],
        default="miss-ratio",
    )
    chain.add_argument("--moves", choices=["bruhat", "weak"], default="bruhat")
    chain.add_argument("--show-chain", action="store_true", help="print every permutation along the chain")
    chain.set_defaults(func=_cmd_chain)

    experiment = subparsers.add_parser("experiment", help="re-run a paper-reproduction experiment")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.set_defaults(func=_cmd_experiment)

    metrics = subparsers.add_parser("metrics", help="summarize a metrics JSONL file into a scoreboard")
    metrics.add_argument("metrics_file", help="JSONL file written by --metrics or the benchmark perf trajectory")
    metrics.add_argument(
        "--baseline",
        default=None,
        help="committed perf baseline (JSON array or JSONL) to compare recorded perf metrics against",
    )
    metrics.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="fractional regression tolerance of the baseline comparison (default 0.30)",
    )
    metrics.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the baseline comparison reports regressions (for CI gating)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    generate = subparsers.add_parser("generate", help="write a synthetic trace file")
    generate.add_argument("kind", choices=["cyclic", "sawtooth", "random-retraversal", "zipf", "stream"])
    generate.add_argument("--items", type=int, default=64, help="number of distinct items")
    generate.add_argument("--length", type=int, default=4096, help="trace length (zipf only)")
    generate.add_argument("--exponent", type=float, default=1.0, help="zipf exponent")
    generate.add_argument("--repetitions", type=int, default=2, help="stream repetitions")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", "-o", required=True, help="output trace file")
    generate.set_defaults(func=_cmd_generate)

    return parser


def _run_with_metrics(args: argparse.Namespace, argv: Sequence[str] | None) -> int:
    """Run one subcommand inside a recording registry and export the JSONL.

    The registry is write-only for the engines — recording never changes a
    result — so the exit code and every printed row are identical to a run
    without ``--metrics`` (asserted in ``tests/test_differential.py``).
    """
    from .obs import MetricsRegistry, RunManifest, recording, write_jsonl

    registry = MetricsRegistry()
    with recording(registry):
        code = args.func(args)
    manifest = RunManifest.collect(
        args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=getattr(args, "seed", None),
    )
    path = write_jsonl(args.metrics, registry, manifest)
    print(f"wrote metrics to {path}")
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "metrics", None):
            return _run_with_metrics(args, argv)
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piping into `head`); exit quietly like
        # other well-behaved unix filters.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
