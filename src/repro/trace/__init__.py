"""Trace substrate: containers, generators, synthetic workloads, file I/O, statistics.

Examples
--------
>>> from repro.trace import sawtooth_retraversal, zipfian_trace
>>> trace = sawtooth_retraversal(4).to_trace()
>>> [int(x) for x in trace.accesses]
[0, 1, 2, 3, 3, 2, 1, 0]
>>> zipfian_trace(1000, 64, exponent=1.0, rng=7).footprint <= 64
True
"""

from .trace import PeriodicTrace, Trace
from .generators import (
    blocked_traversal,
    column_major_matrix,
    cyclic_retraversal,
    fixed_inversion_retraversal,
    random_retraversal,
    random_trace,
    repeated_traversals,
    row_major_matrix,
    sawtooth_retraversal,
    strided_traversal,
    tiled_matrix,
    zipfian_stream,
    zipfian_trace,
)
from .workloads import (
    attention_parameter_trace,
    gnn_neighbor_trace,
    matrix_multiply_blocked,
    matrix_multiply_ijk,
    mlp_parameter_trace,
    stencil_sweeps,
    stream_copy,
    stream_triad,
)
from .decomposition import (
    PhaseDecomposition,
    phase_decomposition,
    predicted_hits,
    prediction_error,
    retraversal_permutations,
)
from .drift import (
    DriftingWorkload,
    PhasedTrace,
    compose_phases,
    tenant_churn,
    three_phase_pair,
    working_set_migration,
    zipf_alpha_drift,
)
from .io import read_npz, read_text, write_npz, write_text
from .stats import TraceStats, locality_score, summarize
from .streaming import (
    DEFAULT_SEGMENT,
    StreamingTrace,
    as_streaming,
    create_memmap_trace,
    open_memmap_trace,
)
from .tenancy import MultiTenantTrace, TenantSpec, compose_tenants

__all__ = [
    "PeriodicTrace",
    "Trace",
    "blocked_traversal",
    "column_major_matrix",
    "cyclic_retraversal",
    "fixed_inversion_retraversal",
    "random_retraversal",
    "random_trace",
    "repeated_traversals",
    "row_major_matrix",
    "sawtooth_retraversal",
    "strided_traversal",
    "tiled_matrix",
    "zipfian_stream",
    "zipfian_trace",
    "attention_parameter_trace",
    "gnn_neighbor_trace",
    "matrix_multiply_blocked",
    "matrix_multiply_ijk",
    "mlp_parameter_trace",
    "stencil_sweeps",
    "stream_copy",
    "stream_triad",
    "PhaseDecomposition",
    "phase_decomposition",
    "predicted_hits",
    "prediction_error",
    "retraversal_permutations",
    "read_npz",
    "read_text",
    "write_npz",
    "write_text",
    "TraceStats",
    "locality_score",
    "summarize",
    "DEFAULT_SEGMENT",
    "StreamingTrace",
    "as_streaming",
    "create_memmap_trace",
    "open_memmap_trace",
    "MultiTenantTrace",
    "TenantSpec",
    "compose_tenants",
    "DriftingWorkload",
    "PhasedTrace",
    "compose_phases",
    "tenant_churn",
    "three_phase_pair",
    "working_set_migration",
    "zipf_alpha_drift",
]
