"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Permutation, all_permutations


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def s3() -> list[Permutation]:
    """Every permutation of S_3."""
    return list(all_permutations(3))


@pytest.fixture(scope="session")
def s4() -> list[Permutation]:
    """Every permutation of S_4."""
    return list(all_permutations(4))


@pytest.fixture(scope="session")
def s5() -> list[Permutation]:
    """Every permutation of S_5."""
    return list(all_permutations(5))
