"""Reuse-interval and LRU stack-distance algorithms for arbitrary traces.

The closed-form results of :mod:`repro.core.hits` apply to periodic traces
``A σ(A)``; general program traces reuse data arbitrarily often (the
limitation discussed in Section VI-D/E).  This module provides the classic
trace-processing algorithms so that arbitrary traces can be analysed and the
periodic special case can be cross-validated:

* :func:`reuse_intervals` — the time (access count) between consecutive uses
  of the same item (Definition 4).
* :func:`stack_distances_naive` — Mattson's original stack simulation,
  ``O(N·M)``; the readable oracle.
* :func:`stack_distances` — the Olken/Bennett–Kruskal algorithm: a Fenwick
  tree over access times marks the *last* access of every item, so the number
  of distinct items touched since the previous access of the current item is a
  suffix sum — ``O(N log N)`` overall.
* :func:`stack_distances_vectorized` — the same exact distances without a
  per-access Python loop: each reuse pair becomes an *arc* ``(j, next(j))``,
  the distance is ``next(j) - j`` minus the number of arcs strictly nested
  inside, and nested-arc counting is "count smaller elements to the right"
  of the arc-end sequence — computed by a level-by-level vectorised merge
  sort (``O(N log^2 N)`` NumPy work, no Python-level per-access steps).  This
  is the fast path behind :func:`stack_distance_histogram` and the
  single-pass LRU capacity sweep in :mod:`repro.sim`.
* :func:`stack_distance_histogram` and :func:`hit_counts` — aggregate forms
  used by the miss-ratio-curve construction in :mod:`repro.cache.mrc`.
* :class:`StackDistanceStream` — the *chunked* form of the vectorised
  algorithm: exact distances for a trace delivered in segments, carrying
  ``O(footprint)`` state between segments so arbitrarily long (for example
  ``numpy.memmap``-backed) traces are processed in bounded memory.  This is
  the distance source of the batch partitioned-LRU replay data plane in
  :mod:`repro.sim.partitioned`.

Distances use the same convention as the rest of the library: the *stack
distance* of an access is ``1 +`` the number of distinct items referenced since
the previous access to the same item; first-ever accesses (cold misses) have
no finite distance and are reported as ``0`` sentinel in the histogram's
overflow slot or ``numpy.iinfo(np.int64).max`` in per-access arrays.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.inversions import FenwickTree

__all__ = [
    "COLD",
    "reuse_intervals",
    "stack_distances_naive",
    "stack_distances",
    "stack_distances_vectorized",
    "stack_distances_with_previous",
    "stack_distance_histogram",
    "hit_counts",
    "StackDistanceStream",
]

#: Sentinel distance assigned to cold (first-ever) accesses.
COLD: int = int(np.iinfo(np.int64).max)


def _as_trace(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(trace)
    if arr.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"trace items must be integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def reuse_intervals(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reuse interval of each access: accesses since the previous use of the same item.

    The first access of an item has no previous use and is reported as
    :data:`COLD`.  (The paper's Definition 4 assigns the interval to the
    *earlier* access of the pair; assigning it to the later access, as done
    here, is the standard trace-processing convention and carries the same
    multiset of finite values.)
    """
    arr = _as_trace(trace)
    out = np.full(arr.size, COLD, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for pos in range(arr.size):
        item = int(arr[pos])
        if item in last_seen:
            out[pos] = pos - last_seen[item] - 1
        last_seen[item] = pos
    return out


def stack_distances_naive(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances by direct stack simulation (``O(N·M)`` oracle).

    Maintains the explicit LRU stack; the distance of an access is the depth
    (1-based) of the item in the stack, or :data:`COLD` if absent.
    """
    arr = _as_trace(trace)
    stack: list[int] = []  # most recently used at the end
    out = np.full(arr.size, COLD, dtype=np.int64)
    for pos in range(arr.size):
        item = int(arr[pos])
        try:
            depth_from_top = len(stack) - stack.index(item)
            out[pos] = depth_from_top
            stack.remove(item)
        except ValueError:
            pass
        stack.append(item)
    return out


def stack_distances(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances via the Olken / Bennett–Kruskal Fenwick-tree algorithm.

    For each access the algorithm needs the number of *distinct* items touched
    since the previous access to the same item.  Keeping a Fenwick tree with a
    1 at the position of every item's most recent access, that count is the
    sum of the tree over positions after the item's previous access.  Each
    access does O(log N) work.
    """
    arr = _as_trace(trace)
    n = arr.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last_pos: dict[int, int] = {}
    for pos in range(n):
        item = int(arr[pos])
        prev = last_pos.get(item)
        if prev is not None:
            distinct_between = tree.range_sum(prev + 1, pos - 1)
            out[pos] = distinct_between + 1
            tree.add(prev, -1)
        tree.add(pos, 1)
        last_pos[item] = pos
    return out


def _count_smaller_right(values: np.ndarray) -> np.ndarray:
    """For each element, the number of *strictly smaller* elements to its right.

    Merge-sort decomposition without the merge: every pair ``(i, j)`` with
    ``i < j`` lands at exactly one level in sibling halves of one block, so
    the count splits into per-level contributions "smaller elements in my
    block's right half" — and the levels are mutually independent, each
    reading the *original* array.  The smallest levels (blocks up to 32
    elements) collapse into one brute-force pairwise pass; every wider level
    is one row-wise :func:`numpy.sort` of the right halves plus a single
    flat :func:`numpy.searchsorted` (block rows are made globally monotone
    with per-block offsets, so one call ranks every left-half element at
    once, and the queries need no sorting at all).  Requires distinct values
    (callers pass last-access positions, which are unique); the array is
    padded to a power of two with sentinels that sort last.
    """
    n = values.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    size = 1
    while size < n:
        size *= 2
    # Normalise to small non-negative ints so the per-block offsets below
    # cannot overflow: offsets reach (blocks - 1) * stride < n * (span + 1).
    low = np.int64(values.min())
    span = np.int64(values.max()) - low + np.int64(2)  # one sentinel slot past the largest value
    vals = np.full(size, span - 1, dtype=np.int64)
    vals[:n] = values - low

    # Base case: all pairs inside 32-element blocks at once.  Sentinels never
    # count as smaller (they are the maximum), and counts at padded positions
    # are discarded by the final [:n].
    base = min(size, 32)
    rows = vals.reshape(-1, base)
    to_the_right = np.triu(np.ones((base, base), dtype=bool), 1)[None, :, :]  # [i, j]: j > i
    larger = rows[:, :, None] > rows[:, None, :]  # [b, i, j]: v_i > v_j
    counts = (larger & to_the_right).sum(axis=2).reshape(-1).astype(np.int64)
    width = base
    while width < size:
        pair = 2 * width
        blocks = size // pair
        rows = vals.reshape(blocks, pair)
        offsets = np.arange(blocks, dtype=np.int64) * span
        right = np.sort(rows[:, width:], axis=1) + offsets[:, None]
        queries = rows[:, :width] + offsets[:, None]
        ranks = np.searchsorted(right.reshape(-1), queries.reshape(-1)).astype(np.int64).reshape(blocks, width)
        ranks -= np.arange(blocks, dtype=np.int64)[:, None] * width  # drop earlier blocks' right halves
        counts.reshape(blocks, pair)[:, :width] += ranks
        width = pair
    return counts[:n]


def _reuse_arcs(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Reuse arcs ``(start, end)`` of a trace, sorted by start position.

    Adjacent equal items after a stable sort are consecutive accesses of the
    same item; each such pair is one arc.
    """
    order = np.argsort(arr, kind="stable")
    sorted_items = arr[order]
    same = sorted_items[1:] == sorted_items[:-1]
    starts = order[:-1][same]
    ends = order[1:][same]
    by_start = np.argsort(starts)
    return starts[by_start], ends[by_start]


def stack_distances_vectorized(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Exact LRU stack distances with no per-access Python loop.

    Identity: write each reuse as an *arc* from a position to the next access
    of the same item.  For the access closing arc ``(p, t)`` the stack
    distance is ``1 +`` the number of distinct items in ``(p, t)``; a position
    ``j`` in that window contributes a distinct item iff its own next access
    falls at or after ``t``, so the non-contributing positions are exactly the
    arcs strictly nested inside ``(p, t)`` and

    ``distance(t) = t - p - #{arcs (j, next(j)) : p < j, next(j) < t}``.

    Arc starts are increasing, so the nested count per arc is "count smaller
    elements to the right" over the arc-end sequence.  Bit-identical to
    :func:`stack_distances` (cross-validated in the test-suite).
    """
    return stack_distances_with_previous(trace)[0]


def stack_distances_with_previous(trace: Sequence[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stack distances plus each access's previous-access position.

    Returns ``(distances, previous)`` where ``previous[t]`` is the position
    of the preceding access to the same item (``-1`` for a first-ever
    access).  The pair is what makes whole-stream distances reusable for
    *subtrace* analyses: an access whose previous access falls inside a
    suffix ``[s, ...)`` has the same stack distance in that suffix as in the
    whole stream (the distinct items between the two accesses all lie inside
    it), and an access with ``previous < s`` is simply cold there — the
    identity behind the free per-phase oracle profiles in
    :mod:`repro.online.replay`.
    """
    arr = _as_trace(trace)
    n = arr.size
    out = np.full(n, COLD, dtype=np.int64)
    previous = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out, previous
    arc_start, arc_end = _reuse_arcs(arr)
    if arc_start.size == 0:
        return out, previous
    nested = _count_smaller_right(arc_end)
    out[arc_end] = arc_end - arc_start - nested
    previous[arc_end] = arc_start
    return out, previous


def _count_larger_left(values: np.ndarray) -> np.ndarray:
    """For each element, the number of *strictly larger* elements to its left.

    Reduction to :func:`_count_smaller_right`: negating flips the order and
    reversing flips left/right, so larger-to-the-left of ``a`` is
    smaller-to-the-right of ``-a`` reversed (same distinct-values
    requirement; callers pass last-access positions, which are unique).
    """
    return _count_smaller_right(-values[::-1])[::-1]


class StackDistanceStream:
    """Exact LRU stack distances for a trace consumed chunk by chunk.

    :meth:`feed` returns the stack distances of a chunk's accesses measured
    over the *whole* stream consumed so far — bit-identical to running
    :func:`stack_distances_vectorized` over the concatenation of every chunk
    — while carrying only ``O(footprint)`` state between chunks.  Long
    (``numpy.memmap``-backed) traces therefore stream through in bounded
    memory: per chunk the cost is one vectorised in-chunk distance pass plus
    ``O((footprint + chunk) log)`` NumPy work for the cross-chunk reuses.

    The cross-chunk correction uses the same arc identity as the one-shot
    algorithm.  An access at chunk position ``t`` whose previous access ``p``
    lies in an earlier chunk has distance ``1 + |{items last accessed in
    (p, t)}|``, split into (a) items with an in-chunk access before ``t``
    (the rank of ``t`` among in-chunk first occurrences), plus (b) carried
    items whose pre-chunk last access exceeds ``p`` (a sorted-array rank),
    minus (c) carried items counted by both — an offline dominance count over
    the cross-chunk reuses themselves (:func:`_count_larger_left`).

    Examples
    --------
    >>> stream = StackDistanceStream()
    >>> stream.feed([1, 2]).tolist() == [COLD, COLD]
    True
    >>> stream.feed([2, 3, 2, 1]).tolist()  # == stack_distances([1,2,2,3,2,1])[2:]
    [1, 9223372036854775807, 2, 3]
    """

    def __init__(self) -> None:
        self._labels = np.zeros(0, dtype=np.int64)  # distinct items, sorted
        self._positions = np.zeros(0, dtype=np.int64)  # last global access position, aligned to _labels
        self._clock = 0

    @property
    def clock(self) -> int:
        """Number of accesses consumed so far."""
        return self._clock

    @property
    def footprint(self) -> int:
        """Number of distinct items seen so far."""
        return int(self._labels.size)

    def state_dict(self) -> dict:
        """Picklable snapshot of the carried state (for checkpoint/resume).

        The whole carried state is the sorted distinct labels, their aligned
        last-access positions, and the clock — restoring it and continuing to
        :meth:`feed` is bit-identical to never having stopped.
        """
        return {
            "labels": self._labels.copy(),
            "positions": self._positions.copy(),
            "clock": int(self._clock),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore carried state captured by :meth:`state_dict`."""
        self._labels = np.asarray(state["labels"], dtype=np.int64).copy()
        self._positions = np.asarray(state["positions"], dtype=np.int64).copy()
        self._clock = int(state["clock"])

    def feed(self, chunk: Sequence[int] | np.ndarray) -> np.ndarray:
        """Consume one chunk; return its whole-stream stack distances.

        Cold accesses (first-ever across *all* chunks) report :data:`COLD`.
        """
        arr = _as_trace(chunk)
        n = int(arr.size)
        out = stack_distances_vectorized(arr)
        if n == 0:
            return out
        start = self._clock
        uniq, first_idx = np.unique(arr, return_index=True)

        # Previous (pre-chunk) global position of every distinct chunk item.
        if self._labels.size:
            loc = np.minimum(np.searchsorted(self._labels, uniq), self._labels.size - 1)
            found = self._labels[loc] == uniq
            prev = np.where(found, self._positions[loc], np.int64(-1))
        else:
            loc = np.zeros(uniq.size, dtype=np.intp)
            found = np.zeros(uniq.size, dtype=bool)
            prev = np.full(uniq.size, -1, dtype=np.int64)

        reused = prev >= 0
        if reused.any():
            active = np.sort(self._positions)  # one last position per carried item
            order = np.argsort(first_idx[reused])  # cross-chunk reuses in chunk order
            q_first = first_idx[reused][order]
            q_prev = prev[reused][order]
            distinct_before = np.searchsorted(np.sort(first_idx), q_first)
            carried_above = active.size - np.searchsorted(active, q_prev, side="right")
            dominated = _count_larger_left(q_prev)
            out[q_first] = 1 + distinct_before + carried_above - dominated

        # Advance the carried state to this chunk's last occurrences.
        last_global = start + (n - 1) - np.unique(arr[::-1], return_index=True)[1]
        if found.any():
            self._positions[loc[found]] = last_global[found]
        new = ~found
        if new.any():
            labels = np.concatenate([self._labels, uniq[new]])
            positions = np.concatenate([self._positions, last_global[new]])
            merge = np.argsort(labels, kind="stable")
            self._labels = labels[merge]
            self._positions = positions[merge]
        self._clock = start + n
        return out


def stack_distance_histogram(
    trace: Sequence[int] | np.ndarray, *, max_distance: int | None = None
) -> tuple[np.ndarray, int]:
    """Histogram of finite stack distances plus the count of cold accesses.

    Returns ``(hist, cold)`` where ``hist[d - 1]`` counts accesses at stack
    distance ``d`` (1-based, up to ``max_distance`` or the number of distinct
    items) and ``cold`` counts first-ever accesses.  Uses the vectorised
    distance pass, so histogram construction never loops per access.
    """
    arr = _as_trace(trace)
    distances = stack_distances_vectorized(arr)
    finite = distances[distances != COLD]
    cold = int(arr.size - finite.size)
    limit = int(max_distance) if max_distance is not None else (int(finite.max()) if finite.size else 0)
    hist = np.zeros(max(limit, 0), dtype=np.int64)
    if finite.size:
        clipped = finite[finite <= limit] if limit else finite[:0]
        np.add.at(hist, clipped - 1, 1)
    return hist, cold


def hit_counts(trace: Sequence[int] | np.ndarray, *, max_cache_size: int | None = None) -> np.ndarray:
    """``hits_c`` for ``c = 1 .. max_cache_size`` on an arbitrary trace.

    An access hits in a fully-associative LRU cache of size ``c`` exactly when
    its stack distance is ≤ ``c``; the hit-count vector is therefore the
    cumulative sum of the stack-distance histogram.  The default cache-size
    range extends to the number of distinct items in the trace.
    """
    arr = _as_trace(trace)
    distinct = int(np.unique(arr).size) if arr.size else 0
    limit = int(max_cache_size) if max_cache_size is not None else distinct
    hist, _cold = stack_distance_histogram(arr, max_distance=limit)
    if hist.size < limit:
        hist = np.concatenate([hist, np.zeros(limit - hist.size, dtype=np.int64)])
    return np.cumsum(hist)
