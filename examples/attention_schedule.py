#!/usr/bin/env python
"""Transformer example: head-order scheduling for multi-head attention.

The paper singles out the key/value/projection matrices of attention as
candidates for symmetric-locality scheduling: heads commute (the output sums
over heads), so the order in which their parameter blocks are traversed is
free.  This example

1. builds a NumPy multi-head attention block and verifies numerically that the
   head processing order does not change its output,
2. compares the cyclic head order against the Theorem-4 alternation (natural
   order on even passes, reversed on odd passes) across repeated passes,
3. also evaluates a graph-reordering scenario (Section VI-C): message passing
   over a random graph before and after a locality-improving relabelling.

Run with:  python examples/attention_schedule.py
"""

from __future__ import annotations

import numpy as np

from repro import Permutation
from repro.analysis import format_table
from repro.cache import LRUCache, mrc_from_trace
from repro.ml import (
    RandomGraph,
    TracedAttention,
    bfs_order,
    degree_order,
    message_passing_trace,
    reverse_cuthill_mckee_order,
)
from repro.trace import locality_score


def attention_part() -> None:
    attention = TracedAttention(d_model=256, num_heads=8, granularity=64, rng=0)
    x = np.random.default_rng(1).standard_normal((32, 256))

    out_natural = attention.forward(x)
    out_reversed = attention.forward(x, head_order=Permutation.reverse(8))
    print(f"Attention output difference between head orders: "
          f"{np.abs(out_natural - out_reversed).max():.2e}  (heads commute)\n")

    passes = 6
    naive = attention.access_trace(passes)
    alternating = attention.access_trace(
        passes, head_schedule=[None if p % 2 == 0 else Permutation.reverse(8) for p in range(passes)]
    )
    rows = []
    for fraction in (0.25, 0.5, 0.75):
        capacity = max(1, int(fraction * attention.num_weight_items))
        rows.append(
            {
                "cache / weights": f"{fraction:.2f}",
                "cyclic head order": LRUCache(capacity).run(naive).miss_ratio,
                "alternating head order": LRUCache(capacity).run(alternating).miss_ratio,
            }
        )
    print(format_table(rows, title=f"Attention parameter traversal, {passes} passes, 8 heads, d_model=256"))
    print()


def graph_part() -> None:
    graph = RandomGraph(200, avg_degree=8, rng=3)
    orderings = {
        "original labels": None,
        "degree order": degree_order(graph),
        "BFS order": bfs_order(graph),
        "reverse Cuthill-McKee": reverse_cuthill_mckee_order(graph),
    }
    rows = []
    for name, order in orderings.items():
        relabelled = graph if order is None else graph.relabelled(order)
        trace = message_passing_trace(relabelled, rounds=2)
        curve = mrc_from_trace(trace.accesses)
        rows.append(
            {
                "node ordering": name,
                "locality score": locality_score(trace),
                "mr @ 10% of nodes": curve[max(1, graph.num_nodes // 10)],
                "mr @ 25% of nodes": curve[max(1, graph.num_nodes // 4)],
            }
        )
    print(format_table(rows, title="GNN message passing (200 nodes, avg degree 8): node reordering effect"))


def main() -> None:
    attention_part()
    graph_part()


if __name__ == "__main__":
    main()
