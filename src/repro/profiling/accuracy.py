"""Error metrics between approximate and exact miss-ratio curves.

The approximate profilers trade accuracy for cost; this module quantifies the
trade so tests and benchmarks can assert bounds on it.  Curves of different
lengths are compared under the same convention as
:meth:`repro.cache.mrc.MissRatioCurve.__getitem__`: cache sizes beyond a
curve's last point reuse its final value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.mrc import MissRatioCurve

__all__ = [
    "CurveComparison",
    "curve_values",
    "mean_absolute_error",
    "compare_curves",
]


def curve_values(curve: MissRatioCurve, max_cache_size: int) -> np.ndarray:
    """The curve evaluated at every cache size ``1 .. max_cache_size``.

    Sizes beyond the curve's length clamp to the final ratio, matching
    ``curve[c]`` indexing.
    """
    if max_cache_size < 1:
        raise ValueError(f"max_cache_size must be >= 1, got {max_cache_size}")
    ratios = curve.as_array()
    if ratios.size >= max_cache_size:
        return ratios[:max_cache_size]
    return np.concatenate([ratios, np.full(max_cache_size - ratios.size, ratios[-1])])


@dataclass(frozen=True)
class CurveComparison:
    """Summary of the difference between two miss-ratio curves."""

    mean_absolute_error: float
    max_absolute_error: float
    cache_sizes: int


def compare_curves(
    approx: MissRatioCurve,
    exact: MissRatioCurve,
    *,
    max_cache_size: int | None = None,
) -> CurveComparison:
    """Compare an approximate curve against a reference curve.

    By default the comparison spans ``1 .. max(len(approx), len(exact))`` so
    neither curve's tail escapes measurement.
    """
    limit = int(max_cache_size) if max_cache_size is not None else max(approx.max_cache_size, exact.max_cache_size)
    a = curve_values(approx, limit)
    b = curve_values(exact, limit)
    diff = np.abs(a - b)
    return CurveComparison(
        mean_absolute_error=float(diff.mean()),
        max_absolute_error=float(diff.max()),
        cache_sizes=limit,
    )


def mean_absolute_error(
    approx: MissRatioCurve,
    exact: MissRatioCurve,
    *,
    max_cache_size: int | None = None,
) -> float:
    """Mean absolute miss-ratio difference over the compared cache sizes."""
    return compare_curves(approx, exact, max_cache_size=max_cache_size).mean_absolute_error
