"""Figure 1 — average miss-ratio curve by inversion number (S_5).

Paper: Section IV-E, Figure 1.  The averaged curves separate cleanly by
inversion number, with the identity (cyclic) on top and the sawtooth at the
bottom, and the separation loses convexity near the maximum level.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    fig1_monotone_violations,
    format_curve_family,
    run_fig1_mrc_by_inversion,
    write_csv,
)


def _assert_fig1_shape(result: dict) -> None:
    # Clean separation: no level crosses a lower level anywhere.
    assert fig1_monotone_violations(result) == 0
    levels = result["levels"]
    curves = result["curves"]
    # identity level is flat at 1.0 before the full-footprint cache size
    assert curves[0][:-1] == [1.0] * (len(result["cache_sizes"]) - 1)
    # sawtooth level decreases linearly to the compulsory-miss floor of 0.5
    top = levels[-1]
    diffs = np.diff(curves[top])
    assert np.allclose(diffs, diffs[0])
    assert curves[top][-1] == 0.5


def test_fig1_average_mrc_by_inversion_s5(benchmark, results_dir):
    result = benchmark(run_fig1_mrc_by_inversion, 5)
    _assert_fig1_shape(result)

    curves = {f"ell={ell}": result["curves"][ell] for ell in result["levels"]}
    print()
    print(
        format_curve_family(
            "cache_size",
            result["cache_sizes"],
            curves,
            title="Figure 1 — average miss ratio by inversion number (S_5, full-trace convention)",
        )
    )
    rows = [
        {"cache_size": c, **{name: series[i] for name, series in curves.items()}}
        for i, c in enumerate(result["cache_sizes"])
    ]
    write_csv(results_dir / "fig1_s5.csv", rows)


def test_fig1_average_mrc_by_inversion_s6(benchmark, results_dir):
    # the paper notes the trend continues for larger groups
    result = benchmark(run_fig1_mrc_by_inversion, 6)
    _assert_fig1_shape(result)
    rows = [
        {"cache_size": c, **{f"ell={ell}": result["curves"][ell][i] for ell in result["levels"]}}
        for i, c in enumerate(result["cache_sizes"])
    ]
    write_csv(results_dir / "fig1_s6.csv", rows)
