"""Unit tests for traversal scheduling and graph reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Permutation
from repro.ml import (
    RandomGraph,
    ScheduleEvaluation,
    bfs_order,
    build_schedule,
    compare_schedules,
    degree_order,
    evaluate_schedule,
    message_passing_trace,
    reverse_cuthill_mckee_order,
)


class TestBuildSchedule:
    def test_cyclic(self):
        schedule = build_schedule("cyclic", 8, 3)
        assert len(schedule) == 3
        assert all(p.is_identity() for p in schedule)

    def test_sawtooth_alternation(self):
        schedule = build_schedule("sawtooth", 8, 4)
        assert [p.is_identity() for p in schedule] == [True, False, True, False]
        assert schedule[1].is_reverse()

    def test_reverse_every_pass(self):
        schedule = build_schedule("reverse-every-pass", 8, 3)
        assert schedule[0].is_identity()
        assert schedule[1].is_reverse() and schedule[2].is_reverse()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_schedule("zigzag", 8, 3)


class TestEvaluateSchedule:
    def test_metrics_present(self):
        evaluation = evaluate_schedule(build_schedule("sawtooth", 16, 4), hierarchy_levels=[4, 8])
        assert isinstance(evaluation, ScheduleEvaluation)
        assert evaluation.passes == 4
        assert evaluation.items == 16
        assert evaluation.total_reuse > 0
        assert evaluation.amat is not None
        assert 0.0 <= evaluation.miss_ratio(8) <= 1.0

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            evaluate_schedule([])

    def test_total_reuse_matches_theorem4_formula(self):
        m, passes = 32, 5
        sawtooth_eval = evaluate_schedule(build_schedule("sawtooth", m, passes))
        cyclic_eval = evaluate_schedule(build_schedule("cyclic", m, passes))
        assert cyclic_eval.total_reuse == (passes - 1) * m * m
        assert sawtooth_eval.total_reuse == (passes - 1) * m * (m + 1) // 2

    def test_compare_schedules_ordering(self):
        results = compare_schedules(64, 6, max_cache_size=64)
        assert results["sawtooth"].total_reuse < results["reverse-every-pass"].total_reuse
        assert results["reverse-every-pass"].total_reuse < results["cyclic"].total_reuse
        # at half the footprint the sawtooth alternation hits, cyclic does not
        assert results["sawtooth"].miss_ratio(32) < results["cyclic"].miss_ratio(32)

    def test_amat_follows_total_reuse(self):
        results = compare_schedules(64, 4, hierarchy_levels=[8, 32])
        assert results["sawtooth"].amat < results["cyclic"].amat


class TestGraphReordering:
    def test_random_graph_structure(self, rng):
        graph = RandomGraph(40, 6, rng=rng)
        assert graph.num_nodes == 40
        degrees = [graph.degree(u) for u in range(40)]
        assert 2 < np.mean(degrees) < 12
        # adjacency is symmetric
        for u in range(40):
            for v in graph.neighbors[u]:
                assert u in graph.neighbors[int(v)]

    def test_graph_validation(self, rng):
        with pytest.raises(ValueError):
            RandomGraph(10, 0, rng=rng)

    def test_orders_are_permutations(self, rng):
        graph = RandomGraph(25, 4, rng=rng)
        for order in (degree_order(graph), bfs_order(graph), reverse_cuthill_mckee_order(graph)):
            assert sorted(order.one_line) == list(range(25))

    def test_degree_order_descending(self, rng):
        graph = RandomGraph(30, 5, rng=rng)
        order = degree_order(graph)
        degrees = [graph.degree(order(i)) for i in range(30)]
        assert all(a >= b for a, b in zip(degrees, degrees[1:]))

    def test_bfs_order_start_validation(self, rng):
        graph = RandomGraph(10, 3, rng=rng)
        with pytest.raises(ValueError):
            bfs_order(graph, start=99)

    def test_relabelled_graph_preserves_degrees(self, rng):
        graph = RandomGraph(20, 4, rng=rng)
        order = reverse_cuthill_mckee_order(graph)
        relabelled = graph.relabelled(order)
        original_degrees = sorted(graph.degree(u) for u in range(20))
        new_degrees = sorted(relabelled.degree(u) for u in range(20))
        assert original_degrees == new_degrees

    def test_message_passing_trace_items(self, rng):
        graph = RandomGraph(30, 4, rng=rng)
        trace = message_passing_trace(graph, rounds=2)
        assert trace.accesses.max() < 30
        # every node's own feature is read each round
        assert len(trace) >= 2 * 30

    def test_message_passing_node_order_validation(self, rng):
        graph = RandomGraph(10, 3, rng=rng)
        with pytest.raises(ValueError):
            message_passing_trace(graph, node_order=Permutation.identity(5))

    def test_rcm_not_worse_than_label_order(self):
        from repro.cache import LRUCache

        graph = RandomGraph(80, 6, rng=3)
        cache_size = 20
        base = message_passing_trace(graph, rounds=2)
        rcm_graph = graph.relabelled(reverse_cuthill_mckee_order(graph))
        improved = message_passing_trace(rcm_graph, rounds=2)
        base_mr = LRUCache(cache_size).run(base).miss_ratio
        improved_mr = LRUCache(cache_size).run(improved).miss_ratio
        assert improved_mr <= base_mr * 1.05
