"""Metrics registry: counters, gauges, fixed-bucket histograms, spans, series.

One :class:`MetricsRegistry` holds every measurement of one run.  The design
contract, enforced across the engines by ``tests/test_differential.py``, is
that instrumentation is **purely additive**: recording never feeds back into
any computation, so results are bit-identical with metrics enabled or
disabled, and the disabled path is a handful of no-op singletons
(``benchmarks/test_bench_obs.py`` holds the disabled-mode overhead of the
instrumented 72k-reference online replay under 2%).

Instrumented code never takes a registry parameter.  It asks for the
*active* registry (:func:`get_registry`), which is the one installed by the
innermost :func:`recording` context — or a shared disabled registry whose
metric factories return no-op singletons when nothing is recording:

* :class:`Counter` — monotonically accumulating event counts,
* :class:`Gauge` — last-written values (pool sizes, trace lengths),
* :class:`Histogram` — fixed, caller-supplied bucket edges (values land in
  the first bucket whose upper edge is ``>= value``, with one overflow
  bucket past the last edge),
* :func:`span` / :class:`Span` — wall-clock timing context managers whose
  durations aggregate per name into :class:`SpanStats`; externally measured
  durations (forked pool workers) merge in deterministically via
  :meth:`MetricsRegistry.record_span`,
* :class:`EpochSeriesRecorder` — append-only per-epoch rows (the online
  engine's refs/s, hit ratios, realloc decisions, sketch sizes).

Registries **merge** (:meth:`MetricsRegistry.merge`): counters add, gauges
take the right operand when it was written, histograms with identical edges
add bucketwise, spans combine count/total/min/max, series concatenate.  The
merge is associative (hypothesis-asserted in ``tests/obs/test_registry.py``),
so sharded partials fold in any grouping.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from types import TracebackType

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanStats",
    "EpochSeriesRecorder",
    "MetricsRegistry",
    "get_registry",
    "recording",
    "span",
]

#: Label sets are normalised to sorted key/value tuples so the same labels in
#: any keyword order address the same metric.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0

    def add(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only ever go up)."""
        if amount < 0:
            raise ValueError(f"counters are monotone; cannot add {amount} to {self.name!r}")
        self.value += amount

    def inc(self) -> None:
        """Add one."""
        self.value += 1


class Gauge:
    """A last-written value (``None`` until first :meth:`set`)."""

    __slots__ = ("name", "labels", "value", "updated")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.value: float | None = None
        self.updated = False

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value
        self.updated = True


class Histogram:
    """A fixed-bucket histogram.

    ``edges`` are the strictly increasing, finite upper bucket bounds; a
    value lands in the first bucket whose edge is ``>= value`` and anything
    beyond the last edge lands in the implicit overflow bucket, so
    ``counts`` has ``len(edges) + 1`` entries and always sums to ``count``.
    """

    __slots__ = ("name", "labels", "edges", "counts", "total", "count")

    def __init__(self, name: str, edges: Iterable[float], labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.edges = tuple(float(e) for e in edges)
        if not self.edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(f"histogram {name!r} edges must be strictly increasing, got {self.edges}")
        if any(e != e or e in (float("inf"), float("-inf")) for e in self.edges):
            raise ValueError(f"histogram {name!r} edges must be finite (the overflow bucket is implicit)")
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls into (``len(edges)`` = overflow)."""
        return bisect_left(self.edges, float(value))

    def observe(self, value: float) -> None:
        """Record one value."""
        self.counts[self.bucket_index(value)] += 1
        self.total += float(value)
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of values."""
        for value in values:
            self.observe(value)


class SpanStats:
    """Aggregated wall-clock durations of one span name."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Fold one measured duration into the aggregate."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)


class Span:
    """A timing context manager.

    The span always measures (``.seconds`` is valid after exit, so result
    fields like ``ProfileResult.seconds`` stay real measurements whether or
    not metrics are on); the *recording* into a registry is what the
    disabled fast path skips — a span created against a disabled registry
    carries ``None`` and its exit is two clock reads and a subtraction.
    """

    __slots__ = ("name", "labels", "seconds", "_registry", "_start")

    def __init__(self, registry: "MetricsRegistry | None", name: str, labels: dict[str, object] | None = None):
        self.name = name
        self.labels = labels or {}
        self.seconds = 0.0
        self._registry = registry
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.seconds = time.perf_counter() - self._start
        if self._registry is not None:
            self._registry.record_span(self.name, self.seconds, **self.labels)
        return False


class EpochSeriesRecorder:
    """An append-only sequence of per-epoch measurement rows."""

    __slots__ = ("name", "rows")

    def __init__(self, name: str):
        self.name = name
        self.rows: list[dict[str, object]] = []

    def record(self, **values: object) -> None:
        """Append one row (keyword order is preserved in the export)."""
        self.rows.append(dict(values))

    def __len__(self) -> int:
        return len(self.rows)


class _NullCounter:
    """Shared no-op counter returned by disabled registries."""

    __slots__ = ()
    value = 0

    def add(self, amount: int | float = 1) -> None:  # noqa: D102 - no-op twin of Counter.add
        pass

    def inc(self) -> None:  # noqa: D102 - no-op twin of Counter.inc
        pass


class _NullGauge:
    """Shared no-op gauge returned by disabled registries."""

    __slots__ = ()
    value = None
    updated = False

    def set(self, value: float) -> None:  # noqa: D102 - no-op twin of Gauge.set
        pass


class _NullHistogram:
    """Shared no-op histogram returned by disabled registries."""

    __slots__ = ()
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:  # noqa: D102 - no-op twin of Histogram.observe
        pass

    def observe_many(self, values: Iterable[float]) -> None:  # noqa: D102 - no-op twin
        pass


class _NullSeries:
    """Shared no-op series recorder returned by disabled registries."""

    __slots__ = ()
    rows: tuple = ()

    def record(self, **values: object) -> None:  # noqa: D102 - no-op twin of EpochSeriesRecorder.record
        pass

    def __len__(self) -> int:
        return 0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SERIES = _NullSeries()


class MetricsRegistry:
    """The container for one run's metrics.

    ``enabled=False`` builds the shared no-op twin used when nothing is
    recording: every factory returns a null singleton and spans skip the
    record step, so instrumented hot paths cost (almost) nothing.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        self._spans: dict[tuple[str, _LabelKey], SpanStats] = {}
        self._series: dict[str, EpochSeriesRecorder] = {}

    # -- metric factories (instrumentation surface) ------------------------- #
    def counter(self, name: str, **labels: object) -> Counter | _NullCounter:
        """Get or create the counter ``name`` with these labels."""
        if not self.enabled:
            return _NULL_COUNTER
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter(name, {str(k): str(v) for k, v in labels.items()})
        return found

    def gauge(self, name: str, **labels: object) -> Gauge | _NullGauge:
        """Get or create the gauge ``name`` with these labels."""
        if not self.enabled:
            return _NULL_GAUGE
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge(name, {str(k): str(v) for k, v in labels.items()})
        return found

    def histogram(self, name: str, edges: Iterable[float], **labels: object) -> Histogram | _NullHistogram:
        """Get or create the fixed-bucket histogram ``name`` with these edges.

        Re-requesting an existing histogram with different edges is an error
        — bucket layouts are part of the metric's identity.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(name, edges, {str(k): str(v) for k, v in labels.items()})
        elif found.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name!r} already exists with edges {found.edges}, requested {tuple(edges)}")
        return found

    def series(self, name: str) -> EpochSeriesRecorder | _NullSeries:
        """Get or create the per-epoch series recorder ``name``."""
        if not self.enabled:
            return _NULL_SERIES
        found = self._series.get(name)
        if found is None:
            found = self._series[name] = EpochSeriesRecorder(name)
        return found

    def span(self, name: str, **labels: object) -> Span:
        """A timing span recording into this registry (measuring either way)."""
        return Span(self if self.enabled else None, name, labels)

    def record_span(self, name: str, seconds: float, **labels: object) -> None:
        """Fold an externally measured duration into the span aggregates.

        This is how forked pool workers' chunk timings land in the parent
        registry: the parent records them *in task order*, so the aggregate
        is deterministic regardless of completion order.
        """
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        found = self._spans.get(key)
        if found is None:
            found = self._spans[key] = SpanStats(name, {str(k): str(v) for k, v in labels.items()})
        found.record(seconds)

    # -- aggregation -------------------------------------------------------- #
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s measurements into this registry (returns ``self``).

        Counters add; gauges take ``other``'s value when it was written;
        histograms must share edges and add bucketwise; spans combine
        count/total/min/max; series rows concatenate in order.  The operation
        is associative, so sharded partials fold in any grouping.
        """
        for (name, key), counter in other._counters.items():
            mine = self._counters.get((name, key))
            if mine is None:
                mine = self._counters[(name, key)] = Counter(name, dict(counter.labels))
            mine.value += counter.value
        for (name, key), gauge in other._gauges.items():
            mine = self._gauges.get((name, key))
            if mine is None:
                mine = self._gauges[(name, key)] = Gauge(name, dict(gauge.labels))
            if gauge.updated:
                mine.value = gauge.value
                mine.updated = True
        for (name, key), histogram in other._histograms.items():
            mine = self._histograms.get((name, key))
            if mine is None:
                mine = self._histograms[(name, key)] = Histogram(name, histogram.edges, dict(histogram.labels))
            elif mine.edges != histogram.edges:
                raise ValueError(f"cannot merge histogram {name!r}: edges {mine.edges} vs {histogram.edges}")
            mine.counts = [a + b for a, b in zip(mine.counts, histogram.counts)]
            mine.total += histogram.total
            mine.count += histogram.count
        for (name, key), stats in other._spans.items():
            mine = self._spans.get((name, key))
            if mine is None:
                mine = self._spans[(name, key)] = SpanStats(name, dict(stats.labels))
            mine.count += stats.count
            mine.total += stats.total
            mine.min = min(mine.min, stats.min)
            mine.max = max(mine.max, stats.max)
        for name, series in other._series.items():
            mine_series = self._series.get(name)
            if mine_series is None:
                mine_series = self._series[name] = EpochSeriesRecorder(name)
            mine_series.rows.extend(dict(row) for row in series.rows)
        return self

    def snapshot(self) -> dict[tuple[str, str, _LabelKey], object]:
        """An order-independent, comparable view of every recorded value.

        Keys are ``(kind, name, labels)``; values are plain comparable
        payloads.  Two registries with the same measurements — however they
        were grouped or merged — have equal snapshots (the associativity
        property tests compare these).
        """
        out: dict[tuple[str, str, _LabelKey], object] = {}
        for (name, key), counter in self._counters.items():
            out[("counter", name, key)] = counter.value
        for (name, key), gauge in self._gauges.items():
            out[("gauge", name, key)] = (gauge.value, gauge.updated)
        for (name, key), histogram in self._histograms.items():
            out[("histogram", name, key)] = (histogram.edges, tuple(histogram.counts), histogram.total)
        for (name, key), stats in self._spans.items():
            out[("span", name, key)] = (stats.count, stats.total, stats.min, stats.max)
        for name, series in self._series.items():
            out[("series", name, ())] = tuple(tuple(row.items()) for row in series.rows)
        return out

    def records(self) -> list[dict[str, object]]:
        """Flat JSON-serialisable records of everything recorded (export format).

        One record per metric — and one per series *row* — each carrying a
        ``type`` tag; this is the line schema of the JSONL exporter.
        """
        out: list[dict[str, object]] = []
        for counter in self._counters.values():
            out.append({"type": "counter", "name": counter.name, "labels": counter.labels, "value": counter.value})
        for gauge in self._gauges.values():
            out.append({"type": "gauge", "name": gauge.name, "labels": gauge.labels, "value": gauge.value})
        for histogram in self._histograms.values():
            out.append(
                {
                    "type": "histogram",
                    "name": histogram.name,
                    "labels": histogram.labels,
                    "edges": list(histogram.edges),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "count": histogram.count,
                }
            )
        for stats in self._spans.values():
            out.append(
                {
                    "type": "span",
                    "name": stats.name,
                    "labels": stats.labels,
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.min if stats.count else 0.0,
                    "max": stats.max,
                }
            )
        for series in self._series.values():
            for index, row in enumerate(series.rows):
                out.append({"type": "series", "name": series.name, "index": index, "row": dict(row)})
        return out


#: The shared disabled registry handed out when nothing is recording.
_NULL_REGISTRY = MetricsRegistry(enabled=False)

#: Stack of installed registries (innermost :func:`recording` wins).
_ACTIVE: list[MetricsRegistry] = []


def get_registry() -> MetricsRegistry:
    """The innermost recording registry, or the shared disabled one."""
    return _ACTIVE[-1] if _ACTIVE else _NULL_REGISTRY


@contextmanager
def recording(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the active recording target for the block."""
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()


def span(name: str, **labels: object) -> Span:
    """A timing span against the active registry.

    The span's ``.seconds`` is a real measurement either way; when nothing
    is recording the exit skips the aggregation entirely (the fast path).
    """
    registry = _ACTIVE[-1] if _ACTIVE else None
    return Span(registry if registry is not None and registry.enabled else None, name, labels)
