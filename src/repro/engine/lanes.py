"""Lane simulators: many capacity schedules measured over one data plane.

A *lane* is one partitioned-LRU cache configuration measured while a trace
streams by — the online replay runs three at once (static, adaptive,
oracle-per-phase), and a fleet or policy experiment can run any number.
:class:`LaneSet` holds the lanes of one replay behind a single
advance/resize surface, driven by either of two interchangeable data planes:

``batch``
    The vectorised plane: one stack-distance pass per tenant
    (:class:`~repro.engine.columnar.PrecomputedTenantDistances`) shared by
    *all* lanes, with per-segment occupancy kernels
    (:class:`~repro.sim.partitioned.BatchPartitionedLRU`) instead of
    per-event dictionary bookkeeping.
``reference``
    The per-event :class:`PartitionedLRU` loop — the slow, readable oracle.
    Both planes produce bit-identical per-epoch series (asserted in the
    differential suite).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from .columnar import PrecomputedTenantDistances

__all__ = ["LANE_ENGINES", "LaneSet", "PartitionedLRU"]

#: The selectable lane data planes (see :class:`LaneSet`).
LANE_ENGINES: tuple[str, ...] = ("batch", "reference")


class PartitionedLRU:
    """Per-tenant LRU partitions of one shared cache, resizable online.

    Each tenant owns an isolated LRU partition of ``capacities[t]`` blocks.
    :meth:`resize` applies a new split immediately: a shrunk partition evicts
    from its least-recently-used end (so the move's warm-up cost surfaces as
    ordinary misses on the next accesses), a grown one simply gains headroom.
    A capacity of 0 bypasses the cache entirely (every access misses).

    This per-event simulator is the *slow-path reference*: the engine drives
    its lanes through the batch kernels of
    :class:`repro.sim.partitioned.BatchPartitionedLRU` by default, and the
    differential suite holds the two bit-identical on every schedule of
    accesses and resizes.
    """

    def __init__(self, capacities: Sequence[int]):
        self._capacities = [int(c) for c in capacities]
        if any(c < 0 for c in self._capacities):
            raise ValueError("partition capacities must be >= 0")
        self._entries: list[OrderedDict[int, None]] = [OrderedDict() for _ in self._capacities]
        self.hits = 0
        self.misses = 0

    @property
    def capacities(self) -> tuple[int, ...]:
        """Current per-tenant partition sizes in blocks."""
        return tuple(self._capacities)

    @property
    def occupancies(self) -> tuple[int, ...]:
        """Resident blocks per tenant (what a shrink eviction truncates)."""
        return tuple(len(entries) for entries in self._entries)

    def access(self, tenant: int, item: int) -> bool:
        """Access ``item`` in tenant ``tenant``'s partition; ``True`` on a hit."""
        capacity = self._capacities[tenant]
        entries = self._entries[tenant]
        if item in entries:
            entries.move_to_end(item)
            self.hits += 1
            return True
        self.misses += 1
        if capacity == 0:
            return False
        if len(entries) >= capacity:
            entries.popitem(last=False)
        entries[item] = None
        return False

    def resize(self, capacities: Sequence[int]) -> None:
        """Apply a new split; shrunk partitions evict their LRU blocks now."""
        capacities = [int(c) for c in capacities]
        if len(capacities) != len(self._capacities):
            raise ValueError(f"got {len(capacities)} capacities for {len(self._capacities)} partitions")
        if any(c < 0 for c in capacities):
            raise ValueError("partition capacities must be >= 0")
        for entries, capacity in zip(self._entries, capacities):
            while len(entries) > capacity:
                entries.popitem(last=False)
        self._capacities = capacities

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over everything accessed so far (0 when nothing was)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def state_dict(self) -> dict:
        """Picklable snapshot: capacities, per-tenant recency stacks, totals."""
        return {
            "capacities": list(self._capacities),
            "entries": [list(entries) for entries in self._entries],
            "hits": int(self.hits),
            "misses": int(self.misses),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (order-preserving)."""
        capacities = [int(c) for c in state["capacities"]]
        entries = state["entries"]
        if len(entries) != len(capacities):
            raise ValueError(f"state holds {len(entries)} partitions for {len(capacities)} capacities")
        self._capacities = capacities
        self._entries = [OrderedDict((int(item), None) for item in items) for items in entries]
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])


class LaneSet:
    """Named lane simulators behind one data plane.

    ``batch`` shares one distance pass per tenant across every lane
    (distances are a property of the tenant stream alone, so one
    :class:`~repro.engine.columnar.PrecomputedTenantDistances` serves any
    number of capacity schedules); ``reference`` steps one per-event
    :class:`PartitionedLRU` per lane.  Both expose the same advance/resize
    surface so replay control loops above them are engine-agnostic.
    """

    def __init__(
        self,
        engine: str,
        distance_arrays: Sequence[np.ndarray] | None,
        allocations: dict[str, Sequence[int]],
    ):
        if engine not in LANE_ENGINES:
            raise ValueError(f"engine must be one of {LANE_ENGINES}, got {engine!r}")
        if engine == "reference":
            self._distances = None
            self._sims = {name: PartitionedLRU(capacities) for name, capacities in allocations.items()}
        else:
            from ..sim.partitioned import BatchPartitionedLRU

            # The per-tenant distance pass already ran (it produced the static
            # and oracle profiles); chunks slice the same arrays for free.
            self._distances = PrecomputedTenantDistances.from_arrays(distance_arrays)
            self._sims = {name: BatchPartitionedLRU(capacities) for name, capacities in allocations.items()}

    def advance(self, chunk_items: np.ndarray, chunk_ids: np.ndarray, counters: dict[str, list[int]]) -> None:
        """Feed one chunk to every lane, folding hit/miss deltas into ``counters``."""
        if self._distances is None:
            # The per-event loop is the reference plane's hot path; plain
            # Python ints (one tolist() per chunk) hash and compare much
            # faster in the OrderedDict partitions than per-event numpy
            # scalar unboxing.
            event_pairs = list(zip(chunk_ids.tolist(), chunk_items.tolist()))
            for key, sim in self._sims.items():
                hits_before, misses_before = sim.hits, sim.misses
                access = sim.access
                for tenant, item in event_pairs:
                    access(tenant, item)
                counters[key][0] += sim.hits - hits_before
                counters[key][1] += sim.misses - misses_before
        else:
            # One distance pass per tenant serves every capacity schedule:
            # distances are a property of the tenant stream alone.
            distances = self._distances.feed(chunk_items, chunk_ids)
            for key, sim in self._sims.items():
                hits, misses = sim.run_segment(distances)
                counters[key][0] += hits
                counters[key][1] += misses

    def resize(self, lane: str, capacities: Sequence[int]) -> None:
        """Apply a new split to one lane (shrink evictions included)."""
        self._sims[lane].resize(capacities)

    def capacities(self, lane: str) -> tuple[int, ...]:
        """Current per-tenant split of one lane."""
        return self._sims[lane].capacities

    def miss_ratio(self, lane: str) -> float:
        """Overall miss ratio of one lane so far."""
        return self._sims[lane].miss_ratio

    def state_dict(self) -> dict:
        """Picklable snapshot of every lane plus the distance-provider cursors.

        The distance *arrays* are not carried — they are a deterministic
        function of the trace, recomputed on resume — only the per-tenant
        cursors needed to seek the shared provider back to the checkpoint.
        """
        state = {"lanes": {name: sim.state_dict() for name, sim in self._sims.items()}}
        if self._distances is not None:
            state["distances"] = self._distances.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore lane and cursor state captured by :meth:`state_dict`."""
        lanes = state["lanes"]
        if set(lanes) != set(self._sims):
            raise ValueError(f"state holds lanes {sorted(lanes)}, this set has {sorted(self._sims)}")
        for name, sim in self._sims.items():
            sim.load_state_dict(lanes[name])
        if self._distances is not None:
            self._distances.load_state_dict(state["distances"])
