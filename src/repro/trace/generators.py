"""Re-traversal and access-pattern generators.

These produce the traces used throughout the examples, tests and benchmarks:
the two canonical re-traversals (cyclic and sawtooth), random and
fixed-inversion re-traversals, repeated multi-pass traversals, and the
classic array access patterns (strided, blocked/tiled, row/column-major
matrix walks) whose re-traversal structure the paper's applications section
appeals to.

All generators return either a :class:`~repro.trace.trace.PeriodicTrace`
(when the object is inherently a single re-traversal) or a
:class:`~repro.trace.trace.Trace` (for longer access sequences).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from .._util import check_nonnegative_int, check_positive_int, ensure_rng
from ..core.mahonian import random_permutation_with_inversions
from ..core.permutation import Permutation, random_permutation
from .trace import PeriodicTrace, Trace

__all__ = [
    "cyclic_retraversal",
    "sawtooth_retraversal",
    "random_retraversal",
    "fixed_inversion_retraversal",
    "repeated_traversals",
    "strided_traversal",
    "blocked_traversal",
    "row_major_matrix",
    "column_major_matrix",
    "tiled_matrix",
    "zipfian_trace",
    "zipfian_stream",
    "random_trace",
]


# --------------------------------------------------------------------------- #
# Re-traversals (periodic traces)
# --------------------------------------------------------------------------- #
def cyclic_retraversal(m: int) -> PeriodicTrace:
    """The cyclic (streaming) re-traversal of ``m`` items."""
    return PeriodicTrace.cyclic(check_positive_int(m, "m"))


def sawtooth_retraversal(m: int) -> PeriodicTrace:
    """The sawtooth re-traversal of ``m`` items."""
    return PeriodicTrace.sawtooth(check_positive_int(m, "m"))


def random_retraversal(m: int, rng: np.random.Generator | int | None = None) -> PeriodicTrace:
    """A uniformly random re-traversal of ``m`` items."""
    return PeriodicTrace(random_permutation(check_positive_int(m, "m"), rng))


def fixed_inversion_retraversal(m: int, inversions: int, rng: np.random.Generator | int | None = None) -> PeriodicTrace:
    """A random re-traversal with a prescribed inversion number (locality level)."""
    sigma = random_permutation_with_inversions(m, inversions, rng)
    return PeriodicTrace(sigma)


def repeated_traversals(schedule: Sequence[Permutation]) -> Trace:
    """Concatenate full traversals, each ordered by the corresponding permutation.

    ``repeated_traversals([e, σ, e, σ])`` is the Theorem-4 alternating schedule
    trace; ``repeated_traversals([e] * k)`` is ``k`` streaming passes.
    """
    if not schedule:
        raise ValueError("schedule must contain at least one traversal")
    m = schedule[0].size
    if any(p.size != m for p in schedule):
        raise ValueError("all traversals must cover the same number of items")
    parts = [np.asarray(p.one_line, dtype=np.intp) for p in schedule]
    return Trace(np.concatenate(parts), name=f"repeated(k={len(schedule)}, m={m})")


# --------------------------------------------------------------------------- #
# Array / matrix walks
# --------------------------------------------------------------------------- #
def strided_traversal(m: int, stride: int) -> Permutation:
    """The permutation visiting ``m`` items with a fixed stride (wrapping around).

    The stride must be coprime with ``m`` so every item is visited exactly
    once; the result can be used as a re-traversal order directly.
    """
    m = check_positive_int(m, "m")
    stride = check_positive_int(stride, "stride")
    if np.gcd(m, stride) != 1:
        raise ValueError(f"stride {stride} must be coprime with m={m} to visit every item once")
    return Permutation([(i * stride) % m for i in range(m)])


def blocked_traversal(m: int, block: int) -> Permutation:
    """Visit items block by block, reversing the order *of the blocks*.

    A simple model of loop tiling applied to a re-traversal: locality inside a
    block is preserved while blocks are revisited nearest-first.  ``block``
    need not divide ``m``; the final partial block is handled naturally.
    """
    m = check_positive_int(m, "m")
    block = check_positive_int(block, "block")
    blocks = [list(range(start, min(start + block, m))) for start in range(0, m, block)]
    order: list[int] = []
    for blk in reversed(blocks):
        order.extend(blk)
    return Permutation(order)


def row_major_matrix(rows: int, cols: int) -> Permutation:
    """Row-major visit order of an ``rows × cols`` matrix whose elements are numbered row-major.

    This is the identity permutation — included for readability of the ML
    examples, which compare traversals of the same weight matrix.
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    return Permutation.identity(rows * cols)


def column_major_matrix(rows: int, cols: int) -> Permutation:
    """Column-major visit order of a row-major-numbered ``rows × cols`` matrix."""
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    order = [r * cols + c for c in range(cols) for r in range(rows)]
    return Permutation(order)


def tiled_matrix(rows: int, cols: int, tile_rows: int, tile_cols: int) -> Permutation:
    """Tile-by-tile visit order of a row-major-numbered matrix.

    Within a tile elements are visited row-major; tiles are visited row-major
    over the tile grid.  Partial tiles at the right/bottom edges are allowed.
    """
    rows = check_positive_int(rows, "rows")
    cols = check_positive_int(cols, "cols")
    tile_rows = check_positive_int(tile_rows, "tile_rows")
    tile_cols = check_positive_int(tile_cols, "tile_cols")
    order: list[int] = []
    for tr in range(0, rows, tile_rows):
        for tc in range(0, cols, tile_cols):
            for r in range(tr, min(tr + tile_rows, rows)):
                for c in range(tc, min(tc + tile_cols, cols)):
                    order.append(r * cols + c)
    return Permutation(order)


# --------------------------------------------------------------------------- #
# Generic synthetic traces
# --------------------------------------------------------------------------- #
def random_trace(length: int, footprint: int, rng: np.random.Generator | int | None = None) -> Trace:
    """A uniformly random trace of ``length`` accesses over ``footprint`` items."""
    length = check_nonnegative_int(length, "length")
    footprint = check_positive_int(footprint, "footprint")
    generator = ensure_rng(rng)
    return Trace(generator.integers(0, footprint, size=length), name="uniform")


def _zipf_probabilities(footprint: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity of items ``0 .. footprint-1`` (shared by the
    materialised and streaming generators so their distributions cannot drift)."""
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    weights = 1.0 / np.arange(1, footprint + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def zipfian_trace(
    length: int,
    footprint: int,
    exponent: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """A trace whose item popularity follows a Zipf-like power law.

    Hot items model the skewed reuse of real workloads; the trace-level MRC
    tools are exercised on it in the integration tests (the periodic-trace
    theory does not apply to it, which is the Section VI-D limitation).
    """
    length = check_nonnegative_int(length, "length")
    footprint = check_positive_int(footprint, "footprint")
    generator = ensure_rng(rng)
    probabilities = _zipf_probabilities(footprint, exponent)
    items = generator.choice(footprint, size=length, p=probabilities)
    return Trace(items, name=f"zipf(s={exponent})")


def zipfian_stream(
    length: int,
    footprint: int,
    exponent: float = 1.0,
    rng: np.random.Generator | int | None = None,
    *,
    chunk_size: int = 65536,
) -> Iterator[int]:
    """A lazily generated Zipfian reference stream (never materialised).

    Yields the same kind of accesses as :func:`zipfian_trace` but one item at
    a time, drawing ``chunk_size`` references per RNG call, so traces far
    longer than memory can feed the one-pass profiler
    (:func:`repro.profiling.reuse_mrc`) directly.
    """
    length = check_nonnegative_int(length, "length")
    footprint = check_positive_int(footprint, "footprint")
    chunk_size = check_positive_int(chunk_size, "chunk_size")
    generator = ensure_rng(rng)
    probabilities = _zipf_probabilities(footprint, exponent)
    remaining = length
    while remaining > 0:
        batch = generator.choice(footprint, size=min(chunk_size, remaining), p=probabilities)
        remaining -= batch.size
        yield from (int(x) for x in batch)
