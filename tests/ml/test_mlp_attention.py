"""Unit tests for the traced MLP and attention models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.core import Permutation, alternating_schedule, random_permutation
from repro.ml import TracedAttention, TracedMLP


class TestTracedMLP:
    def test_construction_and_item_count(self):
        mlp = TracedMLP([8, 16, 4], granularity=8, rng=0)
        # blocks(8*16, 8) + blocks(16*4, 8) = 16 + 8
        assert mlp.num_weight_items == 24

    def test_requires_two_layers(self):
        with pytest.raises(ValueError):
            TracedMLP([4])

    def test_forward_output_shape(self, rng):
        mlp = TracedMLP([6, 10, 3], rng=0)
        record = mlp.forward(rng.standard_normal((5, 6)))
        assert record.kind == "forward"
        assert record.output.shape == (5, 3)
        assert record.items.tolist() == list(range(mlp.num_weight_items))

    def test_forward_with_block_order(self, rng):
        mlp = TracedMLP([6, 10, 3], granularity=4, rng=0)
        order = Permutation.reverse(mlp.num_weight_items)
        record = mlp.forward(rng.standard_normal((2, 6)), block_order=order)
        assert record.items.tolist() == list(range(mlp.num_weight_items))[::-1]

    def test_block_order_size_mismatch(self, rng):
        mlp = TracedMLP([6, 10, 3], rng=0)
        with pytest.raises(ValueError):
            mlp.forward(rng.standard_normal((2, 6)), block_order=Permutation.identity(3))

    def test_block_order_does_not_change_output(self, rng):
        mlp = TracedMLP([6, 10, 3], rng=0)
        x = rng.standard_normal((4, 6))
        out_a = mlp.forward(x).output
        out_b = mlp.forward(x, block_order=Permutation.reverse(mlp.num_weight_items)).output
        assert np.allclose(out_a, out_b)

    def test_backward_loss_decreases_with_training(self, rng):
        mlp = TracedMLP([5, 12, 2], rng=0)
        x = rng.standard_normal((20, 5))
        target = rng.standard_normal((20, 2))
        first = mlp.backward(x, target, learning_rate=0.05).loss
        for _ in range(30):
            last = mlp.backward(x, target, learning_rate=0.05).loss
        assert last < first

    def test_backward_target_shape_validation(self, rng):
        mlp = TracedMLP([5, 6, 2], rng=0)
        with pytest.raises(ValueError):
            mlp.backward(rng.standard_normal((4, 5)), rng.standard_normal((4, 3)))

    def test_permute_hidden_units_preserves_function(self, rng):
        mlp = TracedMLP([7, 11, 3], rng=0)
        x = rng.standard_normal((6, 7))
        before = mlp.forward(x).output.copy()
        mlp.permute_hidden_units(0, random_permutation(11, rng))
        after = mlp.forward(x).output
        assert np.allclose(before, after)

    def test_permute_hidden_units_validation(self):
        mlp = TracedMLP([4, 6, 2], rng=0)
        with pytest.raises(ValueError):
            mlp.permute_hidden_units(1, Permutation.identity(2))  # output layer
        with pytest.raises(ValueError):
            mlp.permute_hidden_units(0, Permutation.identity(5))  # wrong size

    def test_training_trace_lengths(self, rng):
        mlp = TracedMLP([4, 8, 2], granularity=4, rng=0)
        x = rng.standard_normal((3, 4))
        y = rng.standard_normal((3, 2))
        trace = mlp.training_trace(x, y, steps=3)
        assert len(trace) == 6 * mlp.num_weight_items

    def test_training_trace_schedule_validation(self, rng):
        mlp = TracedMLP([4, 8, 2], rng=0)
        x = rng.standard_normal((3, 4))
        y = rng.standard_normal((3, 2))
        with pytest.raises(ValueError):
            mlp.training_trace(x, y, steps=2, schedule=[Permutation.identity(mlp.num_weight_items)])

    def test_theorem4_schedule_improves_mlp_miss_ratio(self, rng):
        mlp = TracedMLP([16, 32, 8], granularity=4, rng=0)
        x = rng.standard_normal((4, 16))
        y = rng.standard_normal((4, 8))
        m = mlp.num_weight_items
        steps = 3
        naive = mlp.training_trace(x, y, steps=steps)
        schedule = alternating_schedule(Permutation.reverse(m), 2 * steps)
        optimised = mlp.training_trace(x, y, steps=steps, schedule=schedule)
        cache = LRUCache(m // 2)
        naive_mr = cache.run(naive).miss_ratio
        cache = LRUCache(m // 2)
        optimised_mr = cache.run(optimised).miss_ratio
        assert optimised_mr < naive_mr


class TestTracedAttention:
    def test_item_counts(self):
        attention = TracedAttention(64, 8, granularity=64, rng=0)
        assert attention.num_weight_items == 8 * 4 * (64 * 8 // 64)
        assert attention.head_items(0).size == attention.num_weight_items // 8

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            TracedAttention(30, 4)

    def test_forward_shape_and_head_order_invariance(self, rng):
        attention = TracedAttention(32, 4, rng=0)
        x = rng.standard_normal((10, 32))
        out_default = attention.forward(x)
        out_permuted = attention.forward(x, head_order=Permutation.reverse(4))
        out_listed = attention.forward(x, head_order=[2, 0, 3, 1])
        assert out_default.shape == (10, 32)
        assert np.allclose(out_default, out_permuted)
        assert np.allclose(out_default, out_listed)

    def test_forward_input_validation(self, rng):
        attention = TracedAttention(16, 2, rng=0)
        with pytest.raises(ValueError):
            attention.forward(rng.standard_normal((5, 8)))
        with pytest.raises(ValueError):
            attention.forward(rng.standard_normal((5, 16)), head_order=[0, 0])
        with pytest.raises(ValueError):
            attention.forward(rng.standard_normal((5, 16)), head_order=Permutation.identity(3))

    def test_access_trace_lengths_and_schedule(self):
        attention = TracedAttention(32, 4, granularity=32, rng=0)
        trace = attention.access_trace(3)
        assert len(trace) == 3 * attention.num_weight_items
        schedule = [None, Permutation.reverse(4), None]
        alternating = attention.access_trace(3, head_schedule=schedule)
        assert len(alternating) == len(trace)
        with pytest.raises(ValueError):
            attention.access_trace(2, head_schedule=[None])

    def test_head_alternation_improves_locality(self):
        attention = TracedAttention(64, 8, granularity=16, rng=0)
        passes = 4
        naive = attention.access_trace(passes)
        schedule = [None if p % 2 == 0 else Permutation.reverse(8) for p in range(passes)]
        optimised = attention.access_trace(passes, head_schedule=schedule)
        capacity = attention.num_weight_items // 2
        naive_mr = LRUCache(capacity).run(naive).miss_ratio
        optimised_mr = LRUCache(capacity).run(optimised).miss_ratio
        assert optimised_mr < naive_mr
