"""Multi-tenant workload composition: seeded interleaving of per-tenant traces.

A shared cache serves several co-running workloads at once; to study it at the
trace level the per-tenant reference streams must be merged into one
interleaved trace.  :func:`compose_tenants` does this with a seeded
arrival-time model: every access of tenant ``t`` is assigned a virtual
arrival time drawn as the cumulative sum of exponential gaps with mean
``1 / rate_t``, and the merged trace is the stable sort of all accesses by
arrival time.  The model has three properties the partitioning optimizer in
:mod:`repro.alloc` relies on:

* **order preservation** — each tenant's accesses appear in their original
  order, so per-tenant locality is untouched by the merge;
* **rate control** — a tenant with twice the rate issues accesses twice as
  densely in the interleaved trace;
* **determinism** — the same ``seed`` always produces the same interleaving,
  so composed workloads are reproducible across runs and worker counts.

Tenant item namespaces are made disjoint by offsetting each tenant's labels
past the previous tenants' label ranges, so an interleaved trace never aliases
two tenants onto one cache block.  :meth:`MultiTenantTrace.tenant_trace`
returns the offset per-tenant stream, which is what the per-tenant profilers
consume.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._util import ensure_rng
from .trace import Trace

__all__ = ["TenantSpec", "MultiTenantTrace", "compose_tenants"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a composed multi-tenant workload.

    Parameters
    ----------
    trace:
        The tenant's private reference stream (a :class:`~repro.trace.trace.Trace`
        or integer array), in the tenant's own item namespace.
    name:
        Display name used in reports and CSV rows.
    rate:
        Relative access rate; a tenant with rate ``2.0`` interleaves twice as
        densely as one with rate ``1.0``.  Must be positive.
    """

    trace: Trace | np.ndarray | Sequence[int]
    name: str = "tenant"
    rate: float = 1.0

    def __post_init__(self):
        if float(self.rate) <= 0:
            raise ValueError(f"tenant rate must be positive, got {self.rate}")

    @property
    def accesses(self) -> np.ndarray:
        """The tenant's reference stream as an integer array."""
        if isinstance(self.trace, Trace):
            return self.trace.accesses
        return np.asarray(self.trace)


@dataclass(frozen=True)
class MultiTenantTrace:
    """A composed multi-tenant trace plus the bookkeeping to take it apart again.

    Attributes
    ----------
    trace:
        The interleaved shared reference stream (disjoint item namespaces).
    names:
        Tenant display names, in spec order.
    rates:
        Tenant interleaving rates, in spec order.
    offsets:
        Label offset applied to each tenant (tenant ``t``'s original label
        ``x`` appears as ``x + offsets[t]`` in the composed trace).
    tenant_ids:
        Per-access tenant index of the composed trace (same length as
        ``trace``), so the interleaving can be decomposed exactly.
    """

    trace: Trace
    names: tuple[str, ...]
    rates: tuple[float, ...]
    offsets: tuple[int, ...]
    tenant_ids: np.ndarray

    @property
    def num_tenants(self) -> int:
        """Number of composed tenants."""
        return len(self.names)

    def tenant_trace(self, index: int) -> np.ndarray:
        """Tenant ``index``'s accesses in composed (offset) labels, in order.

        This is exactly the subsequence of the composed trace issued by the
        tenant, which is what an isolated cache partition serves.
        """
        return self.trace.accesses[self.tenant_ids == index]

    def tenant_share(self, index: int) -> float:
        """Fraction of the composed trace's accesses issued by tenant ``index``."""
        return float(np.count_nonzero(self.tenant_ids == index)) / max(len(self.trace), 1)


def compose_tenants(
    tenants: Sequence[TenantSpec],
    *,
    seed: int | np.random.Generator | None = 0,
    name: str = "multi-tenant",
) -> MultiTenantTrace:
    """Interleave tenant reference streams into one shared-cache trace.

    Each access of tenant ``t`` receives a virtual arrival time drawn as the
    running sum of ``Exponential(1 / rate_t)`` gaps; the composed trace is all
    accesses sorted by arrival time (a seeded Poisson-like merge).  Tenant
    namespaces are offset to be disjoint.  The result is deterministic in
    ``seed`` and independent of how the per-tenant traces were produced.

    Tenant names are disambiguated on repeats (a duplicate of ``name`` gets
    ``name-<spec index>``), so downstream name-keyed reports — e.g.
    :meth:`repro.alloc.PartitionResult.allocation` — never collapse two
    tenants into one entry.

    Examples
    --------
    >>> from repro.trace import Trace
    >>> a = TenantSpec(Trace([0, 1, 0, 1]), name="a", rate=1.0)
    >>> b = TenantSpec(Trace([0, 0]), name="b", rate=1.0)
    >>> composed = compose_tenants([a, b], seed=0)
    >>> len(composed.trace)
    6
    >>> [int(x) for x in composed.tenant_trace(0)]  # tenant order is preserved
    [0, 1, 0, 1]
    >>> sorted(set(int(x) for x in composed.tenant_trace(1)))  # offset past tenant a
    [2]
    """
    if not tenants:
        raise ValueError("need at least one tenant to compose")
    rng = ensure_rng(seed)
    arrays = [spec.accesses for spec in tenants]
    if any(arr.size == 0 for arr in arrays):
        raise ValueError("every tenant trace must be non-empty")
    # Raw-array tenants bypass Trace's label validation; a negative label
    # would silently break the disjoint-offset scheme below.
    if any(int(arr.min()) < 0 for arr in arrays):
        raise ValueError("tenant item labels must be non-negative")

    offsets: list[int] = []
    base = 0
    shifted: list[np.ndarray] = []
    for arr in arrays:
        offsets.append(base)
        shifted.append(arr.astype(np.int64) + base)
        base += int(arr.max()) + 1

    # Virtual arrival times: per-tenant cumulative exponential gaps.  Tenants
    # are processed in spec order so the draw sequence (hence the interleave)
    # is a pure function of the seed.
    times = [np.cumsum(rng.exponential(1.0 / float(spec.rate), size=arr.size)) for spec, arr in zip(tenants, arrays)]
    all_items = np.concatenate(shifted)
    all_times = np.concatenate(times)
    all_ids = np.concatenate([np.full(arr.size, t, dtype=np.int64) for t, arr in enumerate(arrays)])
    order = np.argsort(all_times, kind="stable")
    names: list[str] = []
    for index, spec in enumerate(tenants):
        names.append(spec.name if spec.name not in names else f"{spec.name}-{index}")
    return MultiTenantTrace(
        trace=Trace(all_items[order], name=name),
        names=tuple(names),
        rates=tuple(float(spec.rate) for spec in tenants),
        offsets=tuple(offsets),
        tenant_ids=all_ids[order],
    )
