"""Section V-B.2 numeric example — ranked miss-ratio labeling on S_11.

The paper slides the ``hits_10`` component to the front of the comparison
order (ψ = (1 10 9 8 7 6 5 4 3 2)) and observes that the ranked labeling does
not eliminate arbitrary choices.  We reproduce the chain construction for both
labelings and report the tie statistics.  (The paper's reported chain length
of 66 is inconsistent with S_11, whose saturated chains have 55 steps; see the
discrepancy list in DESIGN.md.)
"""

from __future__ import annotations

from repro.analysis import format_table, run_s11_ranked_labeling, write_csv
from repro.core import max_inversions


def test_s11_ranked_vs_plain_labeling(benchmark, results_dir):
    result = benchmark(run_s11_ranked_labeling, 11)

    assert result["chain_length"] == max_inversions(11) == 55
    assert result["lambda_e"]["reaches_top"]
    assert result["lambda_psi"]["reaches_top"]
    # the paper's point: neither labeling removes the arbitrary choices
    assert result["lambda_e"]["arbitrary_choices"] > 0
    assert result["lambda_psi"]["arbitrary_choices"] > 0

    rows = [
        {"labeling": "lambda_e", **result["lambda_e"]},
        {"labeling": "lambda_psi", **{k: v for k, v in result["lambda_psi"].items() if k != "psi"}},
    ]
    print()
    print(format_table(rows, title=f"S_11 chain (length {result['chain_length']}) — tie statistics"))
    print(f"psi (1-indexed comparison order) = {result['lambda_psi']['psi']}")
    write_csv(results_dir / "s11_ranked_labeling.csv", rows)
