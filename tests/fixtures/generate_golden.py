"""Regenerate the cross-engine golden fixtures (``tests/fixtures/golden/``).

The fixtures pin the *observable outputs* of the four experiment paths —
profile curves, sweep rows, partition rows/summary/allocation, online replay
rows/summary — so refactors of the execution substrate can be held to
bit-identical results.  They were first recorded from the pre-engine code
(before ``src/repro/engine/`` existed); ``tests/engine/test_golden.py``
asserts the engine-backed paths still reproduce them exactly, across
``engine='reference'`` and batch modes and across worker counts.

Run from the repository root to regenerate after a *reviewed* behaviour
change::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

Regenerating is an explicit act: a diff in these files means results moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: One shared synthetic trace seed set, small enough for the test suite.
PROFILE_TRACE = dict(length=4000, items=256, exponent=0.9, rng=3)
SWEEP_CAPACITIES = (4, 16, 33, 64, 128)
PARTITION_BUDGET = 300
ONLINE = dict(length=1500, seed=7, budget=320, window=1500, epoch=500, rate=0.5)


def _jsonable(value):
    """Convert numpy scalars/arrays (and containers of them) to plain JSON types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _dump(name: str, payload: dict) -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    path = GOLDEN_DIR / f"{name}.json"
    path.write_text(json.dumps(_jsonable(payload), indent=1, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def sweep_trace() -> np.ndarray:
    from repro.trace.generators import zipfian_trace

    return zipfian_trace(
        PROFILE_TRACE["length"],
        PROFILE_TRACE["items"],
        exponent=PROFILE_TRACE["exponent"],
        rng=PROFILE_TRACE["rng"],
    ).accesses


def partition_tenants():
    from repro.trace.generators import zipfian_trace
    from repro.trace.tenancy import TenantSpec
    from repro.trace.trace import PeriodicTrace
    from repro.trace.workloads import stream_copy

    return (
        TenantSpec(zipfian_trace(3000, 400, exponent=0.9, rng=5), name="zipf"),
        TenantSpec(PeriodicTrace.sawtooth(200).to_trace(), name="saw"),
        TenantSpec(stream_copy(150, repetitions=3), name="stream"),
    )


def golden_profile() -> dict:
    from repro.profiling.engine import ProfileJob, run_jobs

    trace = sweep_trace()
    curves = {}
    for mode, extra in (("exact", {}), ("shards", {"rate": 0.1}), ("reuse", {})):
        job = ProfileJob(trace=trace, name="golden", mode=mode, seed=0, **extra)
        result = run_jobs([job], workers=1)[0]
        curves[mode] = {
            "accesses": result.accesses,
            "ratios": list(result.curve.ratios),
        }
    return {"trace": PROFILE_TRACE, "curves": curves}


def golden_sweep() -> dict:
    from repro.sim.sweep import SweepJob, run_sweep

    job = SweepJob(
        trace=sweep_trace(),
        name="golden",
        policies=("lru", "fifo", "random", "set-associative"),
        capacities=SWEEP_CAPACITIES,
        ways=4,
        seed=0,
    )
    result = run_sweep(job, workers=1)
    rows = [{k: v for k, v in row.items()} for row in result.rows()]
    return {"capacities": SWEEP_CAPACITIES, "rows": rows}


def golden_partition() -> dict:
    from repro.alloc.partition import PartitionJob, run_partition

    out = {}
    for method in ("greedy", "dp", "hull"):
        job = PartitionJob(
            tenants=partition_tenants(),
            budget=PARTITION_BUDGET,
            method=method,
            mode="exact",
            unit=4,
            seed=0,
            name="golden",
        )
        result = run_partition(job, workers=1)
        out[method] = {
            "rows": result.rows(),
            "summary": result.summary(),
            "allocation": result.allocation(),
        }
    return {"budget": PARTITION_BUDGET, "methods": out}


def golden_online() -> dict:
    from repro.online.replay import OnlineJob, run_replay
    from repro.trace.drift import three_phase_pair

    workload = three_phase_pair(ONLINE["length"], seed=ONLINE["seed"])
    job = OnlineJob(
        budget=ONLINE["budget"],
        window=ONLINE["window"],
        epoch=ONLINE["epoch"],
        rate=ONLINE["rate"],
        name="golden",
    )
    result = run_replay(workload, job, workers=1, engine="batch")
    return {
        "job": ONLINE,
        "rows": result.rows(),
        "summary": result.summary(),
        "static_allocation": list(result.static_allocation),
        "final_allocation": list(result.final_allocation),
        "oracle_allocations": [list(a) for a in result.oracle_allocations],
    }


def main() -> None:
    _dump("profile", golden_profile())
    _dump("sweep", golden_sweep())
    _dump("partition", golden_partition())
    _dump("online", golden_online())


if __name__ == "__main__":
    main()
