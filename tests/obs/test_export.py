"""Exporters, run manifests, and the perf trajectory."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    PerfRecord,
    RunManifest,
    compare_to_baseline,
    load_perf,
    prometheus_text,
    read_jsonl,
    record_perf,
    summarize_records,
    write_jsonl,
    write_metrics_csv,
    write_prometheus,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("events", source="demo").add(5)
    r.gauge("workers").set(4)
    r.histogram("moved", edges=(1, 4, 16)).observe_many([2, 3, 20])
    r.record_span("work", 0.5, stage="x")
    r.series("epochs").record(epoch=0, hits=1)
    r.series("epochs").record(epoch=1, hits=2)
    return r


class TestJsonl:
    def test_round_trip_with_manifest(self, tmp_path, registry):
        manifest = RunManifest.collect("demo", argv=["--x"], seed=42)
        path = write_jsonl(tmp_path / "m.jsonl", registry, manifest)
        records = read_jsonl(path)
        assert records[0]["type"] == "manifest"
        assert records[0]["command"] == "demo"
        assert records[0]["seed"] == 42
        kinds = {r["type"] for r in records[1:]}
        assert kinds == {"counter", "gauge", "histogram", "span", "series"}
        series = [r for r in records if r["type"] == "series"]
        assert [r["row"]["epoch"] for r in series] == [0, 1]

    def test_creates_missing_parent_directories(self, tmp_path, registry):
        path = write_jsonl(tmp_path / "deep" / "nested" / "m.jsonl", registry)
        assert path.exists()

    def test_every_line_is_valid_json(self, tmp_path, registry):
        path = write_jsonl(tmp_path / "m.jsonl", registry, RunManifest.collect("demo"))
        for line in path.read_text().splitlines():
            json.loads(line)


class TestCsvAndPrometheus:
    def test_csv_has_header_and_all_kinds(self, tmp_path, registry):
        path = write_metrics_csv(tmp_path / "sub" / "m.csv", registry)
        lines = path.read_text().splitlines()
        assert lines[0] == "type,name,labels,field,value"
        kinds = {line.split(",", 1)[0] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "histogram", "span", "series"}

    def test_prometheus_conventions(self, tmp_path, registry):
        text = prometheus_text(registry)
        assert '# TYPE events_total counter' in text
        assert 'events_total{source="demo"} 5' in text
        assert "workers 4" in text
        # cumulative le buckets plus +Inf, _sum and _count
        assert 'moved_bucket{le="1.0"} 0' in text
        assert 'moved_bucket{le="4.0"} 2' in text
        assert 'moved_bucket{le="16.0"} 2' in text
        assert 'moved_bucket{le="+Inf"} 3' in text
        assert "moved_sum 25.0" in text
        assert "moved_count 3" in text
        assert 'work_seconds_sum{stage="x"} 0.5' in text
        path = write_prometheus(tmp_path / "sub" / "m.prom", registry)
        assert path.read_text() == text


class TestScoreboard:
    def test_summarize_covers_every_kind(self, tmp_path, registry):
        path = write_jsonl(tmp_path / "m.jsonl", registry, RunManifest.collect("demo", seed=3))
        text = summarize_records(read_jsonl(path))
        assert "run: demo" in text and "seed=3" in text
        assert "events{source=demo} = 5" in text
        assert "workers = 4" in text
        assert "work{stage=x}: count=1" in text
        assert "moved: count=3" in text
        assert "epochs: 2 rows" in text

    def test_empty_records(self):
        assert summarize_records([]) == "(no records)"


class TestManifest:
    def test_collect_captures_environment(self):
        import numpy as np

        manifest = RunManifest.collect("cmd", argv=["a", "b"], seed=1, extra_key="v")
        assert manifest.python and manifest.numpy == np.__version__
        assert manifest.timestamp.endswith("+00:00")
        record = manifest.to_record()
        assert record["type"] == "manifest"
        assert record["argv"] == ["a", "b"]
        assert record["extra"] == {"extra_key": "v"}


class TestTrajectory:
    def test_record_perf_replaces_by_key(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        record_perf(path, "bench", "speedup", 10.0, unit="x")
        record_perf(path, "bench", "speedup", 12.0, unit="x")
        record_perf(path, "bench", "other", 1.0)
        records = load_perf(path)
        assert len(records) == 2
        by_metric = {r.metric: r.value for r in records}
        assert by_metric == {"speedup": 12.0, "other": 1.0}

    def test_record_perf_creates_parent_dirs(self, tmp_path):
        record_perf(tmp_path / "results" / "perf.jsonl", "bench", "m", 1.0)
        assert (tmp_path / "results" / "perf.jsonl").exists()

    def test_load_perf_accepts_json_array_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"benchmark": "b", "metric": "m", "value": 2.0}]))
        records = load_perf(path)
        assert records == [PerfRecord("b", "m", 2.0)]

    def test_load_perf_skips_non_perf_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"type": "counter", "name": "x", "value": 1})
            + "\n"
            + json.dumps({"benchmark": "b", "metric": "m", "value": 3.0})
            + "\n"
        )
        assert load_perf(path) == [PerfRecord("b", "m", 3.0)]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_perf(tmp_path / "nope.jsonl") == []

    def test_compare_direction_aware(self):
        baseline = [
            PerfRecord("b", "throughput", 100.0, direction="higher_is_better"),
            PerfRecord("b", "latency", 1.0, direction="lower_is_better"),
        ]
        fine = [PerfRecord("b", "throughput", 80.0), PerfRecord("b", "latency", 1.2, direction="lower_is_better")]
        assert compare_to_baseline(fine, baseline) == []
        regressed = [
            PerfRecord("b", "throughput", 50.0),
            PerfRecord("b", "latency", 2.0, direction="lower_is_better"),
        ]
        warnings = compare_to_baseline(regressed, baseline)
        assert len(warnings) == 2
        assert all("PERF REGRESSION" in w for w in warnings)

    def test_improvements_and_missing_metrics_never_flagged(self):
        baseline = [PerfRecord("b", "speedup", 10.0), PerfRecord("gone", "m", 5.0)]
        current = [PerfRecord("b", "speedup", 100.0)]
        assert compare_to_baseline(current, baseline) == []

    def test_bad_direction_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="direction"):
            record_perf(tmp_path / "p.jsonl", "b", "m", 1.0, direction="sideways")
