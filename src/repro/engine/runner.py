"""The engine's worker-pool runner: one fan-out idiom for every experiment.

Every experiment path — profiling batches, sweep kernel tasks, per-tenant
partition profiling, online replay's up-front profile extraction — fans
independent tasks across a process pool through :func:`pool_map`.  The
conventions are fixed here once:

* **fork first** — the ``fork`` start method lets workers inherit large trace
  arrays copy-on-write instead of pickling them; platforms without ``fork``
  fall back to the default start method.
* **inline when trivial** — ``pool_map`` runs the tasks in the current process
  when a pool would not help (one worker or at most one task), which keeps
  single-process runs deterministic, debuggable and free of pool overhead.
  ``workers=1`` is therefore the *bit-identical single-process reference
  mode* of the engine: every pooled run must produce exactly the same result
  (asserted by the golden cross-engine suite in ``tests/engine/``).
* **publish, don't pickle** — :func:`published_arrays` exposes large arrays
  to forked workers through module globals (inherited copy-on-write), so
  task tuples stay a few bytes instead of shipping the trace once per task.

``workers`` is always validated the same way: any integer below 1 is an error
rather than a silent serial fallback.

Passing a :class:`repro.resilience.RetryPolicy` turns :func:`pool_map` into
the *resilient* pool: per-task timeouts (a worker killed mid-task — e.g. by
the OOM killer — previously hung the run or surfaced as a bare
``MaybeEncodingError``), bounded retries with exponential backoff and
*seeded* jitter, and a graceful degradation ladder — retry in the pool,
re-run still-failing tasks inline in the parent, and only then fail with a
structured :class:`repro.resilience.PoolFailureError` naming every task, its
attempt count and its cause.  Results are always assembled in task order,
so the bit-identical merge contract of the golden suite holds no matter
which attempt finally succeeded.

When a metrics registry is recording (:func:`repro.obs.get_registry`),
``pool_map`` additionally times every task.  Workers cannot record into the
parent's registry (they are separate processes), so each task is wrapped to
*return* its wall-clock seconds alongside its result and the parent folds
the durations into the ``pool.task`` span aggregate in task order — the
same order ``pool.map`` returns results in — making the recorded aggregate
deterministic regardless of completion order.  With nothing recording, the
bare code path runs unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Mapping, Sequence
from contextlib import contextmanager
from functools import partial
from typing import Any

import numpy as np

from ..obs import get_registry
from ..resilience.errors import PoolFailureError, TaskFailure
from ..resilience.faults import fire as _fire_fault
from ..resilience.policy import RetryPolicy

__all__ = [
    "check_workers",
    "fork_available",
    "fork_pool",
    "pool_map",
    "published_arrays",
    "resolve_array",
]


def fork_available() -> bool:
    """Whether the ``fork`` start method (copy-on-write globals) exists here."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return False
    return True


def check_workers(workers: int) -> int:
    """Validate a worker count (must be a positive integer)."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def fork_pool(workers: int):
    """A ``multiprocessing`` pool using the ``fork`` start method when available."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return context.Pool(processes=check_workers(workers))


def _timed_call(function: Callable[[Any], Any], task: Any) -> tuple[Any, float]:
    """Run one task, returning ``(result, seconds)`` so timings survive the pool."""
    start = time.perf_counter()
    result = function(task)
    return result, time.perf_counter() - start


def _guarded_call(function: Callable[[Any], Any], index: int, attempt: int, task: Any) -> tuple[Any, float]:
    """One resilient-pool attempt: fire the chaos hook, run the task, time it.

    Runs inside the worker (or inline, for the degradation ladder's last
    rung).  The ``pool.task`` fault site lets the chaos suite raise, stall or
    ``SIGKILL`` exactly this task on exactly this attempt.
    """
    _fire_fault("pool.task", index, attempt)
    start = time.perf_counter()
    result = function(task)
    return result, time.perf_counter() - start


def _abbreviate(task: Any, limit: int = 80) -> str:
    text = repr(task)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _resilient_map(
    function: Callable[[Any], Any], tasks: list[Any], *, workers: int, policy: RetryPolicy
) -> list[Any]:
    """The resilient fan-out behind ``pool_map(..., policy=...)``.

    Pooled rounds give every still-pending task one attempt each (seeded
    backoff between rounds); a task whose result does not arrive within
    ``policy.timeout`` is declared lost — the one observable signature of a
    worker killed mid-task, whose result will otherwise never arrive.  The
    pool is ``terminate``\\ d between rounds so a stalled or dead worker
    cannot hold a slot (or the shutdown) hostage.  Tasks that exhaust their
    pooled attempts are re-run inline in the parent when
    ``policy.inline_fallback`` allows; anything still failing raises a
    :class:`~repro.resilience.errors.PoolFailureError` naming every task,
    its attempt count and its cause.  Results merge in task order, whatever
    attempt produced them.
    """
    name = getattr(function, "__name__", repr(function))
    n = len(tasks)
    results: list[Any] = [None] * n
    done = [False] * n
    attempts = [0] * n
    causes: list[tuple[str, str]] = [("error", "never attempted")] * n
    degraded: list[int] = []
    pending = list(range(n))

    while pending and workers > 1:
        runnable = [i for i in pending if attempts[i] < policy.attempts]
        if not runnable:
            break
        delay = max((policy.delay(i, attempts[i]) for i in runnable if attempts[i] > 0), default=0.0)
        if delay > 0.0:
            time.sleep(delay)
        pool = fork_pool(min(workers, len(runnable)))
        try:
            handles = [
                (i, pool.apply_async(_guarded_call, (function, i, attempts[i] + 1, tasks[i]))) for i in runnable
            ]
            for i, handle in handles:
                attempts[i] += 1
                try:
                    results[i] = handle.get(policy.timeout)
                except multiprocessing.TimeoutError:
                    causes[i] = (
                        "timeout",
                        f"no result within {policy.timeout}s (stalled task or dead/lost worker)",
                    )
                except Exception as error:  # the task raised (or its result failed to pickle)
                    causes[i] = ("error", repr(error))
                else:
                    done[i] = True
        finally:
            # terminate, not close: close/join would block on stalled or dead workers
            pool.terminate()
            pool.join()
        pending = [i for i in pending if not done[i]]

    for i in pending:
        if workers > 1:
            if not policy.inline_fallback:
                continue
            degraded.append(i)
            inline_attempts = 1
        else:
            inline_attempts = policy.attempts
        for _ in range(inline_attempts):
            if attempts[i] > 0:
                time.sleep(policy.delay(i, attempts[i]))
            attempts[i] += 1
            try:
                results[i] = _guarded_call(function, i, attempts[i], tasks[i])
            except Exception as error:
                causes[i] = ("error", repr(error))
            else:
                done[i] = True
                break
    pending = [i for i in pending if not done[i]]

    failures = tuple(
        TaskFailure(index=i, kind=causes[i][0], attempts=attempts[i], cause=causes[i][1], task=_abbreviate(tasks[i]))
        for i in pending
    )
    registry = get_registry()
    if registry.enabled:
        registry.counter("pool.tasks", function=name).add(n)
        registry.gauge("pool.workers", function=name).set(min(workers, max(n, 1)))
        retries = sum(max(count - 1, 0) for count in attempts)
        if retries:
            registry.counter("pool.retries", function=name).add(retries)
        if degraded:
            registry.counter("pool.degraded_inline", function=name).add(len(degraded))
        if failures:
            registry.counter("pool.task_failures", function=name).add(len(failures))
        for index in range(n):  # task order, not completion order: deterministic
            if done[index]:
                registry.record_span("pool.task", results[index][1], function=name)
    if failures:
        raise PoolFailureError(failures)
    return [result for result, _ in results]


def pool_map(
    function: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
) -> list[Any]:
    """Map ``function`` over ``tasks``, preserving task order.

    Runs inline (no pool) when ``workers == 1`` or there is at most one task;
    otherwise fans out over ``min(workers, len(tasks))`` forked processes.
    ``function`` and every task must be picklable in the pooled case.

    With a :class:`~repro.resilience.policy.RetryPolicy`, the resilient path
    runs instead: per-task timeouts, bounded retries with seeded backoff,
    dead/lost-worker detection and an inline degradation rung — still
    merging results in task order, so a pooled run with retries stays
    bit-identical to the ``workers=1`` reference.
    """
    workers = check_workers(workers)
    tasks = list(tasks)
    if policy is not None:
        return _resilient_map(function, tasks, workers=workers, policy=policy)
    registry = get_registry()
    if registry.enabled:
        name = getattr(function, "__name__", repr(function))
        timed = partial(_timed_call, function)
        if workers == 1 or len(tasks) <= 1:
            outcomes = [timed(task) for task in tasks]
        else:
            with fork_pool(min(workers, len(tasks))) as pool:
                outcomes = pool.map(timed, tasks)
        registry.counter("pool.tasks", function=name).add(len(outcomes))
        registry.gauge("pool.workers", function=name).set(min(workers, max(len(tasks), 1)))
        for _, seconds in outcomes:  # task order == pool.map order: deterministic
            registry.record_span("pool.task", seconds, function=name)
        return [result for result, _ in outcomes]
    if workers == 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    with fork_pool(min(workers, len(tasks))) as pool:
        return pool.map(function, tasks)


#: Arrays published for forked pool workers.  :func:`published_arrays` fills
#: this immediately before a pool is created (children inherit it
#: copy-on-write) and clears it afterwards, so task tuples can carry a small
#: string key instead of pickling a whole trace through the task queue once
#: per task.
_PUBLISHED: dict[str, np.ndarray] = {}


@contextmanager
def published_arrays(arrays: Mapping[str, np.ndarray]):
    """Publish ``arrays`` to forked workers for the duration of the block.

    Inside the ``with`` block, a task may reference any published array by
    its key; :func:`resolve_array` looks the key up in the worker (or in the
    current process for inline runs).  Publication is only a win when the
    pool *forks* — spawn-based pools re-import the module and see an empty
    table — so callers gate on :func:`fork_available` and fall back to
    embedding the array in the task tuple otherwise.
    """
    _PUBLISHED.update(arrays)
    try:
        yield
    finally:
        for key in arrays:
            _PUBLISHED.pop(key, None)


def resolve_array(payload: str | np.ndarray) -> np.ndarray:
    """Resolve one task payload: a published-array key, or the array itself."""
    if isinstance(payload, str):
        try:
            return _PUBLISHED[payload]
        except KeyError:
            raise KeyError(
                f"no published array named {payload!r} (published: {sorted(_PUBLISHED) or 'none'}); "
                "wrap the pool in published_arrays({...}) and keep it open while tasks run — "
                "only fork-started workers inherit the table copy-on-write, and it is cleared "
                "when the context exits"
            ) from None
    return payload
