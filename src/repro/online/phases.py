"""Phase-change detection from successive windowed miss-ratio curves.

Real workloads are piecewise-stationary: long regimes with a stable MRC
separated by abrupt shifts (working-set migration, popularity drift, tenant
churn).  :class:`PhaseChangeDetector` turns a stream of windowed curves (from
:mod:`repro.online.windowed`) into a stream of *regime shift* flags: it keeps
the curve observed at the start of the current regime as the reference,
measures the mean absolute miss-ratio distance of every new curve against it
(:func:`repro.profiling.accuracy.compare_curves`), and declares a phase
change only after the distance has exceeded the threshold for ``hysteresis``
consecutive observations — one noisy window cannot trigger a re-partition,
but a persistent shift is flagged within ``hysteresis`` epochs.

On a flagged change the detector re-anchors: the current curve becomes the
new reference and the counter resets, so consecutive distinct regimes each
produce exactly one flag.  The detector is deterministic and carries no
clock; callers decide how often to feed it (typically once per epoch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.mrc import MissRatioCurve
from ..profiling.accuracy import compare_curves

__all__ = ["PhaseObservation", "PhaseChangeDetector"]


@dataclass(frozen=True)
class PhaseObservation:
    """Outcome of feeding one windowed curve to the detector."""

    distance: float
    exceeded: bool
    changed: bool


class PhaseChangeDetector:
    """Hysteresis-filtered regime-shift detector over windowed MRCs.

    Parameters
    ----------
    threshold:
        Mean-absolute-error distance (in miss-ratio units) above which a
        window is considered *off-reference*.
    hysteresis:
        Number of consecutive off-reference windows required before a phase
        change is declared.  ``1`` flags on the first excursion.

    Examples
    --------
    >>> from repro.cache.mrc import MissRatioCurve
    >>> flat = MissRatioCurve(ratios=(0.5, 0.5), accesses=10)
    >>> steep = MissRatioCurve(ratios=(0.9, 0.8), accesses=10)
    >>> detector = PhaseChangeDetector(threshold=0.1, hysteresis=2)
    >>> detector.observe(flat).changed      # first curve anchors the reference
    False
    >>> detector.observe(steep).changed     # 1st excursion: armed, not flagged
    False
    >>> detector.observe(steep).changed     # 2nd consecutive excursion: flagged
    True
    >>> detector.observe(steep).changed     # re-anchored on the new regime
    False
    """

    def __init__(self, *, threshold: float = 0.05, hysteresis: int = 2):
        if float(threshold) <= 0.0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if int(hysteresis) < 1:
            raise ValueError(f"hysteresis must be >= 1, got {hysteresis}")
        self.threshold = float(threshold)
        self.hysteresis = int(hysteresis)
        self._reference: MissRatioCurve | None = None
        self._streak = 0
        self.changes = 0

    @property
    def reference(self) -> MissRatioCurve | None:
        """The curve anchoring the current regime (``None`` before the first observation)."""
        return self._reference

    def state_dict(self) -> dict:
        """Picklable snapshot of the detector's regime state (for checkpoint/resume)."""
        return {"reference": self._reference, "streak": int(self._streak), "changes": int(self.changes)}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._reference = state["reference"]
        self._streak = int(state["streak"])
        self.changes = int(state["changes"])

    def observe(self, curve: MissRatioCurve) -> PhaseObservation:
        """Feed one windowed curve; report its distance and whether a change fired."""
        if self._reference is None:
            self._reference = curve
            return PhaseObservation(distance=0.0, exceeded=False, changed=False)
        distance = compare_curves(curve, self._reference).mean_absolute_error
        exceeded = distance > self.threshold
        self._streak = self._streak + 1 if exceeded else 0
        if self._streak >= self.hysteresis:
            self._reference = curve
            self._streak = 0
            self.changes += 1
            return PhaseObservation(distance=distance, exceeded=True, changed=True)
        return PhaseObservation(distance=distance, exceeded=exceeded, changed=False)
