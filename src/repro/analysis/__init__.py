"""Experiment drivers, poset statistics and reporting utilities.

Examples
--------
>>> from repro.analysis import run_sawtooth_cyclic
>>> row = run_sawtooth_cyclic()[0]
>>> row["m"], row["sawtooth_hits_first4"], row["cyclic_hits_below_m"]
(4, [1, 2, 3, 4], 0)
"""

from .experiments import (
    fig1_monotone_violations,
    run_feasibility_ablation,
    run_fig1_mrc_by_inversion,
    run_fig2_chainfind_ties,
    run_mahonian_partitions,
    run_matrix_reuse,
    run_miss_integral,
    run_ml_schedule,
    run_online_adaptation,
    run_partition_comparison,
    run_policy_ablation,
    run_policy_sweep,
    run_s11_ranked_labeling,
    run_sampling_ablation,
    run_sawtooth_cyclic,
    run_theorem2_random,
)
from .poset_stats import (
    cover_degree_by_rank,
    expected_cover_degree,
    rank_generating_function,
    saturated_chain_count_identity_to_top,
    whitney_numbers,
)
from .reporting import format_curve_family, format_series, format_table, write_csv

__all__ = [
    "fig1_monotone_violations",
    "run_feasibility_ablation",
    "run_fig1_mrc_by_inversion",
    "run_fig2_chainfind_ties",
    "run_mahonian_partitions",
    "run_matrix_reuse",
    "run_miss_integral",
    "run_ml_schedule",
    "run_online_adaptation",
    "run_partition_comparison",
    "run_policy_ablation",
    "run_policy_sweep",
    "run_s11_ranked_labeling",
    "run_sampling_ablation",
    "run_sawtooth_cyclic",
    "run_theorem2_random",
    "cover_degree_by_rank",
    "expected_cover_degree",
    "rank_generating_function",
    "saturated_chain_count_identity_to_top",
    "whitney_numbers",
    "format_curve_family",
    "format_series",
    "format_table",
    "write_csv",
]
