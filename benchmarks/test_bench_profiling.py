"""Approximate vs. exact MRC profiling — the accuracy/cost frontier.

The profiling subsystem's pitch is a predictable dial between exactness and
speed.  This benchmark quantifies it on a Zipfian trace: the exact
stack-distance pipeline vs. SHARDS sampling at ``R = 0.1`` and ``R = 0.01``
vs. the one-pass streaming reuse-time (AET) model, recording wall-time
speedups and mean/max absolute curve error.  The recorded series backs the
subsystem's acceptance claim (>= 10x at ``R = 0.01`` with small error); the
strict error bound itself is asserted on a pinned million-reference trace in
``tests/profiling/test_shards.py``.
"""

from __future__ import annotations

import time

from repro.analysis import format_table, run_sampling_ablation, write_csv
from repro.obs import record_perf
from repro.profiling import parallel_reuse_histogram, shards_mrc
from repro.trace import zipfian_trace

TRACE_LENGTH = 300_000
FOOTPRINT = 16_384
EXPONENT = 0.8
SEED = 7


def test_profiling_accuracy_cost_frontier(benchmark, results_dir, perf_trajectory):
    trace = zipfian_trace(TRACE_LENGTH, FOOTPRINT, exponent=EXPONENT, rng=SEED).accesses
    # Best-of-3 timings: the asserted speedups are ratios of two wall clocks,
    # and a single shot of either side is at the mercy of machine load.
    rows = run_sampling_ablation(TRACE_LENGTH, FOOTPRINT, exponent=EXPONENT, rates=(0.1, 0.01), rng=SEED, repeats=3)

    by_mode_rate = {(r["mode"], r["rate"]): r for r in rows}
    shards_coarse = by_mode_rate[("shards", 0.01)]
    shards_fine = by_mode_rate[("shards", 0.1)]
    streamed = by_mode_rate[("reuse", 1.0)]

    # The acceptance-bar shape: coarse sampling is at least 10x faster than
    # exact with modest error; finer sampling and the AET model are tighter.
    # The hard floors sit well under the typical ratios (the AET model
    # measures ~4.5-5.5x here) — regressions tighter than that are caught by
    # the perf_baseline comparison, not a gate that flakes at the boundary.
    assert shards_coarse["speedup"] >= 10.0
    assert shards_coarse["mae"] <= 0.08
    assert shards_fine["mae"] <= 0.03
    assert streamed["mae"] <= 0.05
    assert streamed["speedup"] >= 3.0

    print()
    print(
        format_table(
            rows,
            title=(f"Approximate MRC profiling on zipf(s={EXPONENT}) " f"({TRACE_LENGTH} refs, {FOOTPRINT} items)"),
        )
    )
    write_csv(results_dir / "profiling_frontier.csv", rows)
    record_perf(perf_trajectory, "bench_profiling", "shards_speedup", shards_coarse["speedup"], unit="x", rate=0.01)
    record_perf(perf_trajectory, "bench_profiling", "streamed_speedup", streamed["speedup"], unit="x")

    # Time the cheap kernel under pytest-benchmark for regression tracking.
    benchmark(shards_mrc, trace, 0.01)


def test_parallel_chunked_histogram_scaling(benchmark, results_dir):
    """Chunk-partial computation dominates merge: sharding a long trace keeps
    the merged histogram bit-identical while spreading the heavy phase."""
    trace = zipfian_trace(TRACE_LENGTH, FOOTPRINT, exponent=EXPONENT, rng=SEED).accesses
    single = parallel_reuse_histogram(trace, workers=1)
    rows = []
    for chunks in (1, 4, 16):
        start = time.perf_counter()
        sharded = parallel_reuse_histogram(trace, workers=1, chunks=chunks)
        seconds = time.perf_counter() - start
        assert sharded == single
        rows.append({"chunks": chunks, "seconds": seconds, "identical": True})
    print()
    print(format_table(rows, title="Sharded reuse-time histogram (single process)"))
    write_csv(results_dir / "profiling_chunked.csv", rows)
    benchmark(parallel_reuse_histogram, trace, workers=1, chunks=4)
