"""Unit tests for the batch partitioned-LRU replay data plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.stack_distance import COLD, StackDistanceStream, stack_distances_vectorized
from repro.engine import PartitionedLRU, PrecomputedTenantDistances, TenantDistanceStreams
from repro.sim.partitioned import BatchPartitionedLRU, partitioned_lru_segment, replay_partitioned
from repro.trace import as_streaming


class TestPartitionedLRUSegment:
    def test_full_partition_is_threshold_count(self):
        distances = np.asarray([1, 2, 3, COLD, 2], dtype=np.int64)
        misses, occupancy = partitioned_lru_segment(distances, capacity=2, occupancy=2)
        assert (misses, occupancy) == (2, 2)  # d=3 and COLD miss

    def test_cold_start_warmup_matches_reference(self):
        trace = [5, 6, 5, 7, 6, 5, 8, 7]
        distances = stack_distances_vectorized(trace)
        reference = PartitionedLRU([2])
        for item in trace:
            reference.access(0, item)
        misses, occupancy = partitioned_lru_segment(distances, capacity=2, occupancy=0)
        assert misses == reference.misses
        assert occupancy == reference.occupancies[0]

    def test_zero_capacity_misses_everything(self):
        distances = stack_distances_vectorized([1, 1, 1])
        assert partitioned_lru_segment(distances, capacity=0, occupancy=0) == (3, 0)

    def test_empty_segment_is_a_no_op(self):
        assert partitioned_lru_segment(np.zeros(0, dtype=np.int64), capacity=4, occupancy=2) == (0, 2)

    def test_partition_that_never_fills_reports_final_occupancy(self):
        distances = stack_distances_vectorized([1, 2, 1, 2])  # 2 cold misses, then hits
        misses, occupancy = partitioned_lru_segment(distances, capacity=10, occupancy=0)
        assert (misses, occupancy) == (2, 2)

    def test_validation(self):
        distances = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            partitioned_lru_segment(distances, capacity=-1)
        with pytest.raises(ValueError):
            partitioned_lru_segment(distances, capacity=2, occupancy=3)
        with pytest.raises(ValueError):
            partitioned_lru_segment(distances, capacity=2, occupancy=-1)


class TestBatchPartitionedLRU:
    def test_matches_reference_on_fixed_split(self):
        rng = np.random.default_rng(0)
        items = rng.integers(0, 20, size=400)
        ids = rng.integers(0, 2, size=400)
        reference = PartitionedLRU([5, 3])
        for tenant, item in zip(ids.tolist(), items.tolist()):
            reference.access(tenant, item)
        batch = BatchPartitionedLRU([5, 3])
        batch.run_segment(TenantDistanceStreams(2).feed(items, ids))
        assert (batch.hits, batch.misses) == (reference.hits, reference.misses)
        assert batch.occupancies == reference.occupancies
        assert batch.miss_ratio == reference.miss_ratio

    def test_shrink_resize_clamps_occupancy_like_reference_evictions(self):
        reference = PartitionedLRU([4])
        batch = BatchPartitionedLRU([4])
        streams = TenantDistanceStreams(1)
        items = np.asarray([1, 2, 3, 4], dtype=np.int64)
        ids = np.zeros(4, dtype=np.int64)
        for item in items.tolist():
            reference.access(0, item)
        batch.run_segment(streams.feed(items, ids))
        reference.resize([2])
        batch.resize([2])
        assert batch.occupancies == reference.occupancies == (2,)
        # the survivors are the most-recent blocks: 4 hits, 3 misses again
        tail = np.asarray([4, 3, 2, 1], dtype=np.int64)
        for item in tail.tolist():
            reference.access(0, item)
        batch.run_segment(streams.feed(tail, np.zeros(4, dtype=np.int64)))
        assert (batch.hits, batch.misses) == (reference.hits, reference.misses)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPartitionedLRU([-1])
        batch = BatchPartitionedLRU([2, 2])
        with pytest.raises(ValueError):
            batch.resize([2])
        with pytest.raises(ValueError):
            batch.resize([2, -1])
        with pytest.raises(ValueError):
            batch.run_segment([np.zeros(0, dtype=np.int64)])


class TestDistanceProviders:
    def test_streams_and_precomputed_agree(self):
        rng = np.random.default_rng(1)
        items = rng.integers(0, 30, size=500)
        ids = rng.integers(0, 3, size=500)
        streams = TenantDistanceStreams(3)
        precomputed = PrecomputedTenantDistances(items, ids, 3)
        for start in range(0, 500, 120):
            chunk_items = items[start : start + 120]
            chunk_ids = ids[start : start + 120]
            streamed = streams.feed(chunk_items, chunk_ids)
            sliced = precomputed.feed(chunk_items, chunk_ids)
            for a, b in zip(streamed, sliced):
                assert np.array_equal(a, b)

    def test_precomputed_rejects_overrun(self):
        items = np.asarray([1, 2, 3], dtype=np.int64)
        ids = np.zeros(3, dtype=np.int64)
        provider = PrecomputedTenantDistances(items, ids, 1)
        provider.feed(items, ids)
        with pytest.raises(ValueError):
            provider.feed(items, ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantDistanceStreams(0)
        with pytest.raises(ValueError):
            PrecomputedTenantDistances(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            PrecomputedTenantDistances.from_arrays([])
        with pytest.raises(ValueError):
            TenantDistanceStreams(1).feed(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64))

    def test_out_of_range_tenant_ids_raise_instead_of_dropping_events(self):
        """A tenant id beyond the configured count must fail loudly — a
        boolean-mask split would silently drop those events and report wrong
        totals where the per-event reference raises."""
        items = np.arange(6, dtype=np.int64)
        bad_ids = np.asarray([0, 1, 2, 0, 1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            TenantDistanceStreams(2).feed(items, bad_ids)
        with pytest.raises(ValueError):
            PrecomputedTenantDistances(items, bad_ids, 2)
        provider = PrecomputedTenantDistances(items, np.zeros(6, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            provider.feed(items, np.asarray([0, 0, 0, 0, 0, -1], dtype=np.int64))


class TestReplayPartitioned:
    def test_streaming_replay_matches_reference(self):
        rng = np.random.default_rng(2)
        items = rng.integers(0, 40, size=1000)
        ids = rng.integers(0, 2, size=1000)
        reference = PartitionedLRU([8, 6])
        for tenant, item in zip(ids.tolist(), items.tolist()):
            reference.access(tenant, item)
        streamed = replay_partitioned(as_streaming(items, tenant_ids=ids, segment=77).segments(), [8, 6])
        assert (streamed.hits, streamed.misses) == (reference.hits, reference.misses)
        assert streamed.occupancies == reference.occupancies

    def test_single_tenant_wrap(self):
        trace = np.asarray([1, 2, 1, 3, 1], dtype=np.int64)
        result = replay_partitioned(as_streaming(trace, segment=2).segments(), [2])
        reference = PartitionedLRU([2])
        for item in trace.tolist():
            reference.access(0, item)
        assert (result.hits, result.misses) == (reference.hits, reference.misses)


class TestStackDistanceStreamProvider:
    def test_chunked_equals_whole_array(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 25, size=600)
        stream = StackDistanceStream()
        parts = [stream.feed(trace[s : s + 97]) for s in range(0, 600, 97)]
        assert np.array_equal(np.concatenate(parts), stack_distances_vectorized(trace))
        assert stream.clock == 600
        assert stream.footprint == np.unique(trace).size
