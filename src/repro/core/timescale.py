"""Alternative locality orderings: timescale (footprint) and data-movement labelings.

Problem 3 of the paper asks whether an EL-labeling "dependent precisely on
locality" exists, and reports that the authors experimented with labelings
built from *timescale locality* (the relational theory of locality, reference
[1]) and *data movement complexity* (reference [10]).  This module provides
those candidate labelings so the experiment can be reproduced and extended:

``TimescaleLabeling``
    Labels an edge by the (negated, truncated) footprint curve of the
    destination re-traversal — permutations whose windows touch fewer distinct
    items compare higher.
``DataMovementLabeling``
    Labels an edge by the negated data-movement distance of the destination
    re-traversal (√-of-stack-distance cost model).
``TotalReuseLabeling``
    The simplest aggregate: the negated total reuse (sum of stack distances).
    By Theorem 2 this is equivalent to comparing inversion numbers, so along a
    covering edge it is constant +1 — a deliberately *useless* labeling that
    demonstrates why aggregate measures cannot be good labelings.

``compare_labelings`` runs ChainFind under a set of labelings and reports the
tie statistics of each, which is the experiment behind the paper's conclusion
that none of the attempted orderings yields a good labeling.

The cache-level metrics are imported lazily inside the methods to keep the
package dependency direction (``repro.cache`` builds on ``repro.core``)
acyclic at import time.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from .chainfind import chain_find
from .labelings import EdgeLabeling, MissRatioLabeling, RankedMissRatioLabeling
from .permutation import Permutation

__all__ = [
    "TimescaleLabeling",
    "DataMovementLabeling",
    "TotalReuseLabeling",
    "compare_labelings",
]


def _periodic_trace_array(sigma: Permutation) -> np.ndarray:
    m = sigma.size
    first = np.arange(m, dtype=np.intp)
    return np.concatenate([first, first[np.asarray(sigma.one_line, dtype=np.intp)]])


class TimescaleLabeling(EdgeLabeling):
    """Label edges by the footprint curve of the destination's periodic trace.

    The footprint curve is sampled at ``num_windows`` window lengths spread
    over the trace; smaller footprints (fewer distinct items per window, i.e.
    more reuse within the window) compare *higher*, so the values are negated
    before lexicographic comparison.
    """

    def __init__(self, num_windows: int = 8):
        if num_windows < 1:
            raise ValueError(f"num_windows must be >= 1, got {num_windows}")
        self.num_windows = int(num_windows)

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """Negated footprint curve of ``tau`` sampled at the tracked windows."""
        from ..cache.footprint import footprint_curve

        trace = _periodic_trace_array(tau)
        curve = footprint_curve(trace)
        windows = np.linspace(1, curve.size - 1, num=min(self.num_windows, curve.size - 1), dtype=int)
        return tuple(-float(curve[w]) for w in windows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimescaleLabeling(num_windows={self.num_windows})"


class DataMovementLabeling(EdgeLabeling):
    """Label edges by the negated data-movement distance of the destination."""

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """Negated data-movement distance of ``tau``."""
        from ..cache.footprint import data_movement_distance

        return (-float(data_movement_distance(_periodic_trace_array(tau))),)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "DataMovementLabeling()"


class TotalReuseLabeling(EdgeLabeling):
    """Label edges by the negated total reuse of the destination.

    Along any Bruhat covering edge the total reuse decreases by exactly one
    (Theorem 2), so every cover of a node receives the same label — the
    extreme case of a labeling that can never break a tie.  Useful as the
    control in labeling comparisons.
    """

    def label(self, sigma: Permutation, tau: Permutation) -> tuple:
        """Negated total reuse of ``tau`` (constant across covers, by Theorem 2)."""
        from .hits import total_reuse

        return (-int(total_reuse(tau)),)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TotalReuseLabeling()"


def compare_labelings(
    m: int,
    labelings: Mapping[str, EdgeLabeling] | None = None,
    *,
    start: Permutation | None = None,
    moves: str = "bruhat",
) -> list[dict]:
    """Run ChainFind under several labelings and report their tie statistics.

    The default set reproduces the paper's Problem-3 exploration: the
    miss-ratio labeling λ_e, a ranked variant, the timescale (footprint)
    labeling, the data-movement labeling and the total-reuse control.
    Returns one row per labeling with the chain length, the number of
    arbitrary choices and the number of distinct chains the greedy rule
    admits.
    """
    if labelings is None:
        psi = Permutation([m - 2] + list(range(m - 2)) + [m - 1]) if m >= 2 else Permutation.identity(m)
        labelings = {
            "miss_ratio (λ_e)": MissRatioLabeling(),
            "ranked (λ_ψ)": RankedMissRatioLabeling(psi),
            "timescale (footprint)": TimescaleLabeling(),
            "data_movement": DataMovementLabeling(),
            "total_reuse (control)": TotalReuseLabeling(),
        }
    start = start if start is not None else Permutation.identity(m)
    rows = []
    for name, labeling in labelings.items():
        result = chain_find(start, labeling, moves=moves)
        rows.append(
            {
                "labeling": name,
                "chain_length": result.length,
                "arbitrary_choices": result.arbitrary_choice_count,
                "chain_multiplicity": result.chain_multiplicity,
                "reaches_top": result.end.is_reverse(),
            }
        )
    return rows
