"""Vectorized replay data plane vs. the seed per-event replay.

The acceptance claims of the batch data plane (``repro.sim.partitioned``),
asserted on the canonical 72k-reference 3-phase two-tenant seesaw:

1. **Bit-identical** — the ``batch`` and ``reference`` engines of
   :func:`repro.online.run_replay` produce identical per-epoch miss-ratio
   series for all three lanes (static, adaptive, oracle), identical
   scoreboards, and identical results across ``--workers``.
2. **≥10x** — replaying the three lanes through the batch kernels is at
   least 10x faster than the seed per-event ``OrderedDict`` replay of the
   very same capacity schedules.  The per-tenant stack-distance pass the
   kernels consume is *shared* with profile extraction — the engine computes
   it once and derives the static and per-phase oracle profiles from the
   same arrays — so the timed comparison charges it to profiling, exactly as
   the engine runs it; the from-scratch pass is reported alongside.
3. **Bounded memory** — a ``10^7``-reference memmap-backed trace replays
   through the streaming kernels while allocating only a small fraction of
   the trace's on-disk size.

Every measurement lands in ``benchmarks/results/bench_replay.json`` as a
machine-readable perf-trajectory record (speedups, refs/sec) so future PRs
can track regressions, plus the usual CSV epoch series.  Set
``REPRO_BENCH_QUICK=1`` (the CI bench-smoke job does) to shrink the memmap
trace; the headline 72k comparison always runs in full.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import numpy as np

from repro.analysis import format_table, write_csv
from repro.cache.stack_distance import stack_distances_with_previous
from repro.obs import record_perf
from repro.online import OnlineJob, run_replay
from repro.online.replay import PartitionedLRU, _initial_split
from repro.sim.partitioned import (
    BatchPartitionedLRU,
    PrecomputedTenantDistances,
    replay_partitioned,
)
from repro.trace import create_memmap_trace, open_memmap_trace
from repro.trace.drift import three_phase_pair

LENGTH_PER_PHASE = 12_000
SEED = 7
JOB = OnlineJob(
    budget=1150,
    window=6000,
    epoch=2000,
    method="hull",
    rate=0.5,
    move_cost=1.0,
    name="bench-replay",
)
LANES = ("static", "adaptive", "oracle")

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
MEMMAP_REFS = 2_000_000 if QUICK else 10_000_000
MEMMAP_FOOTPRINT = 50_000
MEMMAP_SEGMENT = 1 << 18


def _record(results_dir, section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench_replay.json record."""
    path = results_dir / "bench_replay.json"
    record = json.loads(path.read_text()) if path.exists() else {"benchmark": "replay"}
    record["quick"] = QUICK  # always relabel: a committed full-run record must not mislabel a quick run
    record[section] = payload
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _lane_schedule(workload, result):
    """The chunk stops and per-lane resize schedules one replay actually ran."""
    n = result.accesses
    epoch_ends = set(range(JOB.epoch, n, JOB.epoch)) | {n}
    boundaries = {b for b in workload.boundaries if b > 0}
    stops = sorted(epoch_ends | boundaries)
    adaptive_at = {epoch.end: epoch.adaptive_allocation for epoch in result.epochs}
    oracle_at = {int(workload.boundaries[p]): result.oracle_allocations[p] for p in range(1, workload.num_phases)}
    return stops, epoch_ends, adaptive_at, oracle_at


def _drive(simulators, advance, stops, epoch_ends, adaptive_at, oracle_at):
    """Run one data plane over the recorded schedule; per-epoch misses per lane."""
    series = {lane: [] for lane in LANES}
    epoch_misses = {lane: 0 for lane in LANES}
    position = 0
    for stop in stops:
        deltas = advance(position, stop)
        for lane in LANES:
            epoch_misses[lane] += deltas[lane]
        position = stop
        if position in oracle_at:
            simulators["oracle"].resize(oracle_at[position])
        if position in epoch_ends:
            if position in adaptive_at:
                simulators["adaptive"].resize(adaptive_at[position])
            for lane in LANES:
                series[lane].append(epoch_misses[lane])
                epoch_misses[lane] = 0
    return series


def test_batch_data_plane_beats_per_event_replay_10x(results_dir, perf_trajectory):
    workload = three_phase_pair(LENGTH_PER_PHASE, seed=SEED)
    composed = workload.composed
    items, ids = composed.trace.accesses, composed.tenant_ids
    num_tenants = composed.num_tenants

    # --- end-to-end: both engines, bit-identical results ------------------ #
    start = time.perf_counter()
    result = run_replay(workload, JOB)
    batch_end_to_end = time.perf_counter() - start
    start = time.perf_counter()
    reference_result = run_replay(workload, JOB, engine="reference")
    reference_end_to_end = time.perf_counter() - start
    assert reference_result.rows() == result.rows(), "per-epoch series must be bit-identical across engines"
    assert reference_result.summary() == result.summary()
    parallel = run_replay(workload, JOB, workers=4)
    assert parallel.rows() == result.rows(), "workers must never change results"
    assert parallel.summary() == result.summary()

    # --- data plane: the same three lane schedules, both planes ----------- #
    stops, epoch_ends, adaptive_at, oracle_at = _lane_schedule(workload, result)
    initial = _initial_split(num_tenants, JOB.budget, JOB.unit)
    allocations = {"static": result.static_allocation, "adaptive": initial, "oracle": result.oracle_allocations[0]}

    def run_per_event():
        sims = {lane: PartitionedLRU(allocations[lane]) for lane in LANES}

        def advance(start, stop):
            pairs = list(zip(ids[start:stop].tolist(), items[start:stop].tolist()))
            deltas = {}
            for lane in LANES:
                sim = sims[lane]
                before = sim.misses
                access = sim.access
                for tenant, item in pairs:
                    access(tenant, item)
                deltas[lane] = sim.misses - before
            return deltas

        return _drive(sims, advance, stops, epoch_ends, adaptive_at, oracle_at)

    # The distance pass is charged to profiling: run_replay computes it once
    # and derives the static and oracle profiles from the same arrays, so the
    # lanes genuinely consume a by-product.  Timed separately below.
    start = time.perf_counter()
    shared_distances = [stack_distances_with_previous(items[ids == t])[0] for t in range(num_tenants)]
    distance_pass_seconds = time.perf_counter() - start

    def run_batch():
        provider = PrecomputedTenantDistances.from_arrays(shared_distances)
        sims = {lane: BatchPartitionedLRU(allocations[lane]) for lane in LANES}

        def advance(start, stop):
            distances = provider.feed(items[start:stop], ids[start:stop])
            return {lane: sims[lane].run_segment(distances)[1] for lane in LANES}

        return _drive(sims, advance, stops, epoch_ends, adaptive_at, oracle_at)

    per_event_series = run_per_event()
    batch_series = run_batch()
    assert per_event_series == batch_series, "lane miss series must be bit-identical"
    # ... and both must reproduce the replay's recorded per-epoch ratios.
    lengths = [epoch.end - epoch.start for epoch in result.epochs]
    for lane in LANES:
        recorded = [getattr(epoch, f"{lane}_miss_ratio") for epoch in result.epochs]
        assert [m / n for m, n in zip(batch_series[lane], lengths)] == recorded

    per_event_seconds = min(_timed(run_per_event) for _ in range(3))
    batch_seconds = min(_timed(run_batch) for _ in range(5))
    speedup = per_event_seconds / batch_seconds
    lane_refs = 3 * int(items.size)
    assert speedup >= 10.0, (
        f"batch data plane must beat the seed per-event replay 10x, got {speedup:.1f}x "
        f"({per_event_seconds * 1e3:.1f}ms vs {batch_seconds * 1e3:.1f}ms for {lane_refs} lane-references)"
    )

    table = [
        {
            "plane": "per-event (seed)",
            "seconds": per_event_seconds,
            "lane_refs_per_sec": lane_refs / per_event_seconds,
            "speedup": 1.0,
        },
        {
            "plane": "batch kernels",
            "seconds": batch_seconds,
            "lane_refs_per_sec": lane_refs / batch_seconds,
            "speedup": speedup,
        },
    ]
    print()
    print(
        format_table(
            table,
            title=(
                f"replay data plane — {items.size} refs x 3 lanes, {len(stops)} segments, "
                f"budget {JOB.budget}, epoch {JOB.epoch} (distance pass {distance_pass_seconds * 1e3:.1f}ms, "
                f"shared with profile extraction)"
            ),
        )
    )
    write_csv(results_dir / "replay_data_plane.csv", table)
    _record(
        results_dir,
        "data_plane",
        {
            "references": int(items.size),
            "lanes": len(LANES),
            "per_event_seconds": per_event_seconds,
            "batch_seconds": batch_seconds,
            "speedup": speedup,
            "batch_lane_refs_per_sec": lane_refs / batch_seconds,
            "distance_pass_seconds": distance_pass_seconds,
            "end_to_end_reference_seconds": reference_end_to_end,
            "end_to_end_batch_seconds": batch_end_to_end,
            "end_to_end_speedup": reference_end_to_end / batch_end_to_end,
        },
    )
    record_perf(perf_trajectory, "bench_replay", "speedup", speedup, unit="x", quick=QUICK)
    record_perf(
        perf_trajectory,
        "bench_replay",
        "batch_lane_refs_per_sec",
        lane_refs / batch_seconds,
        unit="refs/s",
        quick=QUICK,
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_memmap_trace_replays_in_bounded_memory(results_dir, perf_trajectory, tmp_path):
    rng = np.random.default_rng(SEED)
    writable = create_memmap_trace(tmp_path / "big", length=MEMMAP_REFS, segment=MEMMAP_SEGMENT)
    position = 0
    while position < MEMMAP_REFS:
        count = min(MEMMAP_SEGMENT, MEMMAP_REFS - position)
        position = writable.fill(
            position,
            rng.integers(0, MEMMAP_FOOTPRINT, size=count),
            rng.integers(0, 2, size=count),
        )
    writable.flush()
    del writable

    trace = open_memmap_trace(tmp_path / "big", segment=MEMMAP_SEGMENT)
    trace_bytes = trace.items.nbytes + trace.tenant_ids.nbytes
    tracemalloc.start()
    start = time.perf_counter()
    simulator = replay_partitioned(trace.segments(), [MEMMAP_FOOTPRINT // 4, MEMMAP_FOOTPRINT // 4])
    seconds = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert simulator.hits + simulator.misses == MEMMAP_REFS
    assert simulator.hits > 0 and simulator.misses > 0
    # Bounded memory: far below materialising the trace, despite exact
    # (bit-identical) partitioned-LRU semantics over 10^7+ references.
    assert peak < trace_bytes / 2, (
        f"streaming replay allocated {peak / 1e6:.0f}MB against a {trace_bytes / 1e6:.0f}MB trace"
    )

    row = {
        "references": MEMMAP_REFS,
        "trace_mb": trace_bytes / 1e6,
        "peak_rss_mb": peak / 1e6,
        "seconds": seconds,
        "refs_per_sec": MEMMAP_REFS / seconds,
        "miss_ratio": simulator.miss_ratio,
    }
    print()
    print(format_table([row], title="memmap streaming replay (bounded memory)"))
    write_csv(results_dir / "replay_memmap.csv", [row])
    _record(results_dir, "memmap", row)
    record_perf(
        perf_trajectory, "bench_replay", "memmap_refs_per_sec", MEMMAP_REFS / seconds, unit="refs/s", quick=QUICK
    )
