"""Shared fixtures and hypothesis profiles for the test-suite.

Two hypothesis profiles are registered and selected via the
``HYPOTHESIS_PROFILE`` environment variable (the CI ``tests`` job sets
``ci``; the local default is ``dev``):

``ci``
    More examples per property (300) — the thorough differential sweep the
    acceptance criteria are stated against.
``dev``
    Fewer examples (25) for a fast local loop.

Both print the failure reproduction blob (``print_blob``) so a failing
example's seed lands in the log and the run can be replayed exactly with
``@reproduce_failure``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core import Permutation, all_permutations

settings.register_profile("ci", max_examples=300, print_blob=True, deadline=None)
settings.register_profile("dev", max_examples=25, print_blob=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def s3() -> list[Permutation]:
    """Every permutation of S_3."""
    return list(all_permutations(3))


@pytest.fixture(scope="session")
def s4() -> list[Permutation]:
    """Every permutation of S_4."""
    return list(all_permutations(4))


@pytest.fixture(scope="session")
def s5() -> list[Permutation]:
    """Every permutation of S_5."""
    return list(all_permutations(5))
