"""End-to-end tests of the partitioning pipeline (compose → profile → allocate → validate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc import METHODS, PartitionJob, run_partition
from repro.trace import TenantSpec, zipfian_trace
from repro.trace.trace import PeriodicTrace
from repro.trace.workloads import stream_copy


@pytest.fixture(scope="module")
def acceptance_tenants():
    """The acceptance workload: Zipf + sawtooth + STREAM co-running tenants."""
    return (
        TenantSpec(zipfian_trace(15000, 2048, exponent=0.9, rng=7), name="zipf"),
        TenantSpec(PeriodicTrace.sawtooth(2000).to_trace(), name="sawtooth"),
        TenantSpec(stream_copy(1000, repetitions=3), name="stream"),
    )


class TestRunPartition:
    @pytest.mark.parametrize("method", METHODS)
    def test_exact_profiles_predict_exactly(self, acceptance_tenants, method):
        result = run_partition(PartitionJob(tenants=acceptance_tenants, budget=1024, method=method))
        assert result.prediction_error <= 1e-12
        assert sum(result.allocation().values()) <= 1024

    def test_hull_and_dp_beat_proportional_and_unpartitioned(self, acceptance_tenants):
        for method in ("hull", "dp"):
            result = run_partition(PartitionJob(tenants=acceptance_tenants, budget=1024, method=method))
            assert result.win_vs_proportional > 0.0
            assert result.win_vs_unpartitioned > 0.0

    def test_dp_never_loses_to_greedy_or_hull(self, acceptance_tenants):
        simulated = {
            method: run_partition(
                PartitionJob(tenants=acceptance_tenants, budget=1024, method=method)
            ).simulated_miss_ratio
            for method in METHODS
        }
        assert simulated["dp"] <= simulated["greedy"] + 1e-12
        assert simulated["dp"] <= simulated["hull"] + 1e-12

    def test_workers_never_change_the_result(self, acceptance_tenants):
        job = PartitionJob(tenants=acceptance_tenants, budget=1024, method="hull")
        serial = run_partition(job, workers=1)
        pooled = run_partition(job, workers=3)
        assert serial.tenants == pooled.tenants  # allocations and both miss ratios
        assert serial.predicted_miss_ratio == pooled.predicted_miss_ratio
        assert serial.simulated_miss_ratio == pooled.simulated_miss_ratio
        assert serial.unpartitioned_miss_ratio == pooled.unpartitioned_miss_ratio
        assert serial.proportional_miss_ratio == pooled.proportional_miss_ratio

    def test_shards_profiles_stay_within_acceptance_error(self, acceptance_tenants):
        result = run_partition(
            PartitionJob(tenants=acceptance_tenants, budget=1024, method="hull", mode="shards", rate=0.1)
        )
        assert result.prediction_error <= 0.02

    def test_unit_granularity_produces_multiples(self, acceptance_tenants):
        result = run_partition(PartitionJob(tenants=acceptance_tenants, budget=1024, method="dp", unit=64))
        assert all(capacity % 64 == 0 for capacity in result.allocation().values())
        assert sum(result.allocation().values()) <= 1024

    def test_single_tenant_gets_the_whole_useful_budget(self):
        tenant = TenantSpec(zipfian_trace(4000, 256, exponent=1.0, rng=1), name="solo")
        result = run_partition(PartitionJob(tenants=(tenant,), budget=512, method="hull"))
        # Alone, partitioning cannot beat the shared cache; it must tie.
        assert result.simulated_miss_ratio == pytest.approx(result.unpartitioned_miss_ratio, abs=1e-12)

    def test_default_tenant_names_stay_distinct_in_allocation(self):
        tenants = (
            TenantSpec(zipfian_trace(2000, 128, rng=1)),
            TenantSpec(zipfian_trace(2000, 128, rng=2)),
        )
        result = run_partition(PartitionJob(tenants=tenants, budget=64, method="dp"))
        assert len(result.allocation()) == 2
        assert sum(result.allocation().values()) == sum(t.capacity for t in result.tenants)

    def test_precomputed_profiles_and_baselines_match_inline(self, acceptance_tenants):
        from repro.alloc import partition_composed, profile_tenants, simulate_baselines
        from repro.trace import compose_tenants

        job = PartitionJob(tenants=acceptance_tenants, budget=1024, method="hull")
        composed = compose_tenants(acceptance_tenants, seed=job.seed, name=job.name)
        inline = partition_composed(job, composed)
        reused = partition_composed(
            job,
            composed,
            profiles=profile_tenants(job, composed),
            baselines=simulate_baselines(composed, job.budget),
        )
        assert inline.tenants == reused.tenants
        assert inline.summary() == reused.summary()
        with pytest.raises(ValueError):
            partition_composed(job, composed, baselines=simulate_baselines(composed, 512))

    def test_rows_and_summary_schema(self, acceptance_tenants):
        result = run_partition(PartitionJob(tenants=acceptance_tenants, budget=512, method="greedy"))
        rows = result.rows()
        assert len(rows) == 3
        assert {"tenant", "capacity", "predicted_miss_ratio", "simulated_miss_ratio"} <= set(rows[0])
        summary = result.summary()
        assert {"predicted", "simulated", "error", "unpartitioned", "proportional"} <= set(summary)

    def test_job_validation(self, acceptance_tenants):
        with pytest.raises(ValueError):
            PartitionJob(tenants=(), budget=64)
        with pytest.raises(ValueError):
            PartitionJob(tenants=acceptance_tenants, budget=0)
        with pytest.raises(ValueError):
            PartitionJob(tenants=acceptance_tenants, budget=64, method="magic")
        with pytest.raises(ValueError):
            PartitionJob(tenants=acceptance_tenants, budget=64, unit=128)
        with pytest.raises(ValueError):
            run_partition(PartitionJob(tenants=acceptance_tenants, budget=64), workers=0)
