"""Section VI-A2 — cyclic vs. sawtooth total reuse of an n × m weight matrix.

The paper's claim: cyclic traversal of the ``nm`` matrix elements costs
``(nm)²`` total reuse while sawtooth costs ``nm(nm+1)/2`` — the leading term
is halved.  We verify the formulas exactly and report the savings ratio.
"""

from __future__ import annotations

from repro.analysis import format_table, run_matrix_reuse, write_csv

SHAPES = ((4, 8), (16, 16), (32, 64), (128, 128), (256, 512))


def test_matrix_reuse_cyclic_vs_sawtooth(benchmark, results_dir):
    rows = benchmark(run_matrix_reuse, SHAPES)

    for row in rows:
        nm = row["elements"]
        assert row["cyclic_total_reuse"] == nm * nm == row["paper_cyclic_formula"]
        assert row["sawtooth_total_reuse"] == nm * (nm + 1) // 2 == row["paper_sawtooth_formula"]
        # the savings ratio approaches 2 from below as nm grows
        assert 1.0 < row["savings_ratio"] < 2.0
    ratios = [row["savings_ratio"] for row in rows]
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))

    print()
    print(format_table(rows, title="Matrix re-traversal total reuse (Section VI-A2)"))
    write_csv(results_dir / "matrix_reuse.csv", rows)
