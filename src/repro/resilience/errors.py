"""Structured failure types of the fault-tolerant execution layer.

Every recovery path in :mod:`repro.resilience` ends in one of three places:
the work succeeded (possibly after retries), the work was re-run inline, or
the run fails with a *structured* error that names what broke — the task and
its attempt count, the trace file and its expected vs. found shape/checksum,
or the checkpoint and why it cannot be trusted.  Opaque tracebacks
(``MaybeEncodingError``, bare ``KeyError``, downstream numpy shape errors)
are exactly what this module replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CheckpointError",
    "CheckpointIntegrityError",
    "PoolFailureError",
    "TaskFailure",
    "TraceIntegrityError",
]


@dataclass(frozen=True)
class TaskFailure:
    """One task the resilient pool could not complete.

    Attributes
    ----------
    index:
        Position of the task in the submitted sequence (the merge order).
    kind:
        How the final attempt failed: ``"error"`` (the task raised),
        ``"timeout"`` (no result within the per-task timeout — a stalled
        task or a dead/lost worker, e.g. one killed by the OOM killer).
    attempts:
        Total attempts made, pooled and inline together.
    cause:
        ``repr`` of the final exception, or a timeout description.
    task:
        Abbreviated ``repr`` of the task payload itself.
    """

    index: int
    kind: str
    attempts: int
    cause: str
    task: str = ""

    def describe(self) -> str:
        """One human-readable line naming the task, attempts and cause."""
        suffix = f" task={self.task}" if self.task else ""
        return f"task {self.index} failed after {self.attempts} attempt(s) [{self.kind}]: {self.cause}{suffix}"


class PoolFailureError(RuntimeError):
    """Raised when the degradation ladder is exhausted for at least one task.

    The resilient pool retries a failing task in the pool, then re-runs it
    inline in the parent process; only when the inline attempt also fails
    does the run abort — with every unrecovered task's :class:`TaskFailure`
    attached as :attr:`failures` instead of whichever worker traceback
    happened to surface first.
    """

    def __init__(self, failures: list[TaskFailure] | tuple[TaskFailure, ...]):
        self.failures: tuple[TaskFailure, ...] = tuple(failures)
        lines = "; ".join(failure.describe() for failure in self.failures)
        super().__init__(f"{len(self.failures)} task(s) failed permanently: {lines}")


class TraceIntegrityError(RuntimeError):
    """A memmap trace column is missing, truncated, mismatched or corrupt.

    Carries the offending ``file`` plus the ``expected`` and ``found``
    values (shape, dtype or checksum) so the error message is actionable —
    the alternative is an unrelated numpy shape/broadcast error long after
    the corrupt column was opened.
    """

    def __init__(self, file: str, *, reason: str, expected: object = None, found: object = None):
        self.file = str(file)
        self.expected = expected
        self.found = found
        message = f"trace integrity violation in {self.file}: {reason}"
        if expected is not None or found is not None:
            message += f" (expected {expected!r}, found {found!r})"
        super().__init__(message)


class CheckpointError(RuntimeError):
    """A checkpoint directory/manifest cannot be used (missing, wrong run, wrong schema)."""


@dataclass(frozen=True)
class _IntegrityDetail:
    """Expected-vs-found detail attached to checkpoint integrity failures."""

    path: str
    expected: object = None
    found: object = None
    extra: dict = field(default_factory=dict)


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint file exists but fails its checksum or schema validation."""

    def __init__(self, path: str, *, reason: str, expected: object = None, found: object = None):
        self.detail = _IntegrityDetail(path=str(path), expected=expected, found=found)
        message = f"checkpoint integrity violation in {path}: {reason}"
        if expected is not None or found is not None:
            message += f" (expected {expected!r}, found {found!r})"
        super().__init__(message)
