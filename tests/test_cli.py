"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    """A small sawtooth trace file generated through the CLI itself."""
    path = tmp_path / "saw.trace"
    assert main(["generate", "sawtooth", "--items", "16", "-o", str(path)]) == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "does-not-exist"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "cyclic"])


class TestGenerate:
    @pytest.mark.parametrize("kind", ["cyclic", "sawtooth", "random-retraversal", "zipf", "stream"])
    def test_generate_all_kinds(self, tmp_path, kind, capsys):
        path = tmp_path / f"{kind}.trace"
        code = main(["generate", kind, "--items", "8", "--length", "64", "-o", str(path)])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "wrote" in out


class TestAnalyzeAndMrc:
    def test_analyze_prints_statistics(self, trace_file, capsys):
        assert main(["analyze", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Trace statistics" in out
        assert "locality score" in out
        assert "1.0000" in out  # sawtooth has perfect locality score

    def test_mrc_prints_curve(self, trace_file, capsys):
        assert main(["mrc", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Miss-ratio curve" in out
        assert "cache_size" in out

    def test_mrc_writes_csv(self, trace_file, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        assert main(["mrc", str(trace_file), "--csv", str(csv_path), "--max-size", "8"]) == 0
        content = csv_path.read_text().splitlines()
        assert content[0] == "cache_size,miss_ratio"
        assert len(content) == 9


class TestChain:
    def test_chain_default_labeling(self, capsys):
        assert main(["chain", "5"]) == 0
        out = capsys.readouterr().out
        assert "ChainFind result" in out
        assert "True" in out  # reaches the sawtooth

    def test_chain_show_chain_weak_moves(self, capsys):
        assert main(["chain", "4", "--moves", "weak", "--show-chain", "--labeling", "transposition"]) == 0
        out = capsys.readouterr().out
        assert "Chain" in out
        assert "(4, 3, 2, 1)" in out  # the sawtooth in 1-indexed notation

    @pytest.mark.parametrize("labeling", ["miss-ratio", "ranked", "timescale", "data-movement"])
    def test_chain_all_labelings(self, labeling, capsys):
        assert main(["chain", "5", "--labeling", labeling]) == 0
        assert "chain_length" in capsys.readouterr().out


class TestExperiment:
    @pytest.mark.parametrize("name", ["fig2", "sawtooth-cyclic", "matrix-reuse", "miss-integral"])
    def test_experiment_subcommands_run(self, name, capsys):
        assert main(["experiment", name]) == 0
        out = capsys.readouterr().out
        assert f"experiment: {name}" in out

    def test_experiment_fig1_prints_curve_table(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "ell=0" in out and "ell=10" in out
