"""Cache-partitioning jobs: profile tenants, allocate a shared budget, validate.

:func:`run_partition` is the top of the multi-tenant stack.  Given a
:class:`PartitionJob` — tenant reference streams, a shared cache budget and an
allocation method — it

1. **composes** the tenants into one interleaved shared-cache trace
   (:func:`repro.trace.tenancy.compose_tenants`, seeded and deterministic),
2. **profiles** each tenant's miss-ratio curve, fanning one
   :class:`~repro.profiling.engine.ProfileJob` per tenant across the shared
   process pool (``workers`` never changes any result — profiling jobs are
   deterministic and collected in tenant order),
3. **allocates** the budget with the chosen method (``greedy`` | ``dp`` |
   ``hull``, see :mod:`repro.alloc.allocators`), and
4. **validates** by simulating the shared cache both *partitioned* (each
   tenant's stream through its own isolated LRU partition — item namespaces
   are disjoint, so this is exact, done with one single-capacity
   stack-distance pass per tenant) and *unpartitioned* (the interleaved trace
   through one shared LRU cache of the full budget), plus the naive
   proportional-split baseline.

The returned :class:`PartitionResult` reports predicted vs. simulated miss
ratios (the prediction error is the profiling error — with ``mode="exact"``
it is zero by construction) and the partitioning win over the unpartitioned
shared cache and over the proportional split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.job import ALLOC_METHODS, check_choice, check_positive, check_unit
from ..engine.columnar import split_by_tenant
from ..engine.runner import check_workers
from ..obs import get_registry, span
from ..profiling.engine import ProfileJob, run_jobs
from ..sim.kernels import lru_sweep_hits
from ..trace.tenancy import MultiTenantTrace, TenantSpec, compose_tenants
from .allocators import dp_allocate, greedy_allocate, hull_allocate, proportional_split
from .curves import discretize_curve

__all__ = [
    "METHODS",
    "PartitionJob",
    "TenantAllocation",
    "PartitionResult",
    "PartitionBaselines",
    "run_partition",
    "partition_composed",
    "profile_tenants",
    "simulate_baselines",
]

#: Allocation methods the partition engine understands (the engine-wide set).
METHODS = ALLOC_METHODS


@dataclass(frozen=True)
class PartitionJob:
    """Specification of one partitioning task (picklable, pool-dispatchable).

    Parameters
    ----------
    tenants:
        The co-running workloads (:class:`~repro.trace.tenancy.TenantSpec`).
    budget:
        Shared cache capacity (in blocks) to divide among the tenants.
    method:
        Allocation strategy: ``greedy`` (marginal gain), ``dp`` (exact
        dynamic program) or ``hull`` (Talus-style convex hull).
    mode, rate, smax, profile_seed:
        Per-tenant MRC profiling knobs, forwarded to
        :class:`~repro.profiling.engine.ProfileJob` (``exact`` replays the
        exact stack-distance pipeline; ``shards``/``reuse`` trade a small,
        measured amount of accuracy for far less profiling work).
    unit:
        Allocation granularity in blocks; allocators hand out whole units.
    seed:
        Seed of the tenant interleaving (see
        :func:`~repro.trace.tenancy.compose_tenants`).
    """

    tenants: tuple[TenantSpec, ...]
    budget: int
    method: str = "hull"
    mode: str = "exact"
    rate: float = 0.01
    smax: int | None = None
    profile_seed: int = 0
    unit: int = 1
    seed: int = 0
    name: str = "partition"

    def __post_init__(self):
        tenants = tuple(self.tenants)
        if not tenants:
            raise ValueError("need at least one tenant to partition")
        check_choice("method", self.method, METHODS)
        check_positive("budget", self.budget)
        check_unit(self.unit, self.budget)
        object.__setattr__(self, "tenants", tenants)
        object.__setattr__(self, "budget", int(self.budget))
        object.__setattr__(self, "unit", int(self.unit))


@dataclass(frozen=True)
class TenantAllocation:
    """One tenant's share of the partitioned cache and its measured behaviour."""

    name: str
    rate: float
    accesses: int
    footprint: int
    capacity: int
    predicted_miss_ratio: float
    simulated_miss_ratio: float

    @property
    def share(self) -> float:
        """Allocated capacity as a fraction of the tenant's footprint."""
        return self.capacity / self.footprint


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one :class:`PartitionJob`.

    Aggregate miss ratios are access-weighted over the composed trace:
    ``predicted`` comes from the (possibly approximate) per-tenant profiles at
    the chosen allocation, ``simulated`` from exact per-partition simulation,
    ``unpartitioned`` from the shared LRU cache of the whole budget on the
    interleaved trace, and ``proportional`` from simulating the naive
    footprint-proportional split.
    """

    name: str
    method: str
    mode: str
    budget: int
    unit: int
    accesses: int
    tenants: tuple[TenantAllocation, ...]
    predicted_miss_ratio: float
    simulated_miss_ratio: float
    unpartitioned_miss_ratio: float
    proportional_miss_ratio: float
    profile_seconds: float

    @property
    def prediction_error(self) -> float:
        """Absolute predicted-vs-simulated gap of the partitioned miss ratio."""
        return abs(self.predicted_miss_ratio - self.simulated_miss_ratio)

    @property
    def win_vs_unpartitioned(self) -> float:
        """Miss-ratio reduction vs. the unpartitioned shared cache (positive = win)."""
        return self.unpartitioned_miss_ratio - self.simulated_miss_ratio

    @property
    def win_vs_proportional(self) -> float:
        """Miss-ratio reduction vs. the proportional split (positive = win)."""
        return self.proportional_miss_ratio - self.simulated_miss_ratio

    def allocation(self) -> dict[str, int]:
        """Tenant name to allocated capacity (blocks)."""
        return {tenant.name: tenant.capacity for tenant in self.tenants}

    def rows(self) -> list[dict]:
        """Flat per-tenant rows for tables and CSV export."""
        return [
            {
                "job": self.name,
                "method": self.method,
                "mode": self.mode,
                "budget": self.budget,
                "tenant": tenant.name,
                "rate": tenant.rate,
                "accesses": tenant.accesses,
                "footprint": tenant.footprint,
                "capacity": tenant.capacity,
                "predicted_miss_ratio": tenant.predicted_miss_ratio,
                "simulated_miss_ratio": tenant.simulated_miss_ratio,
            }
            for tenant in self.tenants
        ]

    def summary(self) -> dict:
        """One aggregate row (the partitioning scoreboard)."""
        return {
            "job": self.name,
            "method": self.method,
            "mode": self.mode,
            "budget": self.budget,
            "accesses": self.accesses,
            "predicted": self.predicted_miss_ratio,
            "simulated": self.simulated_miss_ratio,
            "error": self.prediction_error,
            "unpartitioned": self.unpartitioned_miss_ratio,
            "proportional": self.proportional_miss_ratio,
            "win_vs_unpartitioned": self.win_vs_unpartitioned,
            "win_vs_proportional": self.win_vs_proportional,
        }


_ALLOCATORS = {"greedy": greedy_allocate, "dp": dp_allocate, "hull": hull_allocate}


def _simulated_miss_ratio(trace: np.ndarray, capacity: int) -> float:
    """Exact LRU miss ratio of one stream at one capacity (single-capacity sweep)."""
    if capacity < 1:
        return 1.0
    hits = lru_sweep_hits(trace, np.asarray([capacity], dtype=np.int64))
    return 1.0 - float(hits[0]) / trace.size


@dataclass(frozen=True)
class PartitionBaselines:
    """Method-independent validator inputs of one (composed trace, budget) pair.

    Everything here depends only on the composed trace and the budget — not
    on the allocation method — so method comparisons compute it once via
    :func:`simulate_baselines` and pass it to every
    :func:`partition_composed` call.
    """

    budget: int
    footprints: tuple[int, ...]
    unpartitioned_miss_ratio: float
    proportional_allocation: tuple[int, ...]
    proportional_miss_ratio: float


def simulate_baselines(composed: MultiTenantTrace, budget: int) -> PartitionBaselines:
    """Simulate the unpartitioned shared cache and the proportional split."""
    tenant_traces = split_by_tenant(composed.trace.accesses, composed.tenant_ids, composed.num_tenants)
    footprints = [int(np.unique(stream).size) for stream in tenant_traces]
    proportional = proportional_split(footprints, int(budget))
    total = len(composed.trace)
    proportional_misses = sum(
        _simulated_miss_ratio(stream, int(capacity)) * stream.size
        for stream, capacity in zip(tenant_traces, proportional)
    )
    return PartitionBaselines(
        budget=int(budget),
        footprints=tuple(footprints),
        unpartitioned_miss_ratio=_simulated_miss_ratio(composed.trace.accesses, int(budget)),
        proportional_allocation=tuple(int(c) for c in proportional),
        proportional_miss_ratio=proportional_misses / total,
    )


def run_partition(job: PartitionJob, *, workers: int = 1) -> PartitionResult:
    """Execute one partitioning job end to end.

    ``workers`` fans the per-tenant profiling jobs across forked processes;
    the result is bit-identical for every worker count (asserted in
    ``tests/alloc/test_partition.py``).
    """
    workers = check_workers(workers)
    composed = compose_tenants(job.tenants, seed=job.seed, name=job.name)
    return partition_composed(job, composed, workers=workers)


def profile_tenants(job: PartitionJob, composed: MultiTenantTrace, *, workers: int = 1) -> list:
    """Per-tenant miss-ratio profiles of a composed trace, fanned over the pool.

    Profiling depends only on the job's ``mode``/``rate``/``smax``/
    ``profile_seed`` knobs — not on the allocation method — so callers
    comparing methods (the ``partition`` experiment) profile once and pass
    the result to :func:`partition_composed` for each method.
    """
    profile_jobs = [
        ProfileJob(
            trace=composed.tenant_trace(t),
            name=composed.names[t],
            mode=job.mode,
            rate=job.rate,
            smax=job.smax,
            seed=job.profile_seed,
            max_cache_size=job.budget,
        )
        for t in range(composed.num_tenants)
    ]
    return run_jobs(profile_jobs, workers=check_workers(workers))


def partition_composed(
    job: PartitionJob,
    composed: MultiTenantTrace,
    *,
    workers: int = 1,
    profiles: list | None = None,
    baselines: PartitionBaselines | None = None,
) -> PartitionResult:
    """Run the profile → allocate → validate pipeline on an already-composed trace.

    Split out of :func:`run_partition` so callers that build the composed
    trace themselves (benchmarks, the ``partition`` experiment) do not pay
    for — or depend on — re-composition.  ``profiles`` and ``baselines``
    optionally supply precomputed :func:`profile_tenants` /
    :func:`simulate_baselines` results, both method-independent, so method
    comparisons reuse them (``profile_seconds`` is reported as 0 when
    profiles are supplied).
    """
    workers = check_workers(workers)
    tenant_traces = split_by_tenant(composed.trace.accesses, composed.tenant_ids, composed.num_tenants)

    if profiles is None:
        with span("partition.profile", mode=job.mode) as timer:
            profiles = profile_tenants(job, composed, workers=workers)
        profile_seconds = timer.seconds
    else:
        if len(profiles) != composed.num_tenants:
            raise ValueError(f"got {len(profiles)} profiles for {composed.num_tenants} tenants")
        profile_seconds = 0.0
    if baselines is None:
        baselines = simulate_baselines(composed, job.budget)
    elif baselines.budget != job.budget:
        raise ValueError(f"baselines were simulated for budget {baselines.budget}, job has {job.budget}")

    budget_units = job.budget // job.unit
    with span("partition.allocate", method=job.method):
        curves = [discretize_curve(profile.curve, job.budget, unit=job.unit) for profile in profiles]
        units = _ALLOCATORS[job.method](curves, budget_units)
        capacities = [int(u) * job.unit for u in units]
    get_registry().counter("partition.tenants", method=job.method).add(composed.num_tenants)

    total = len(composed.trace)
    tenants: list[TenantAllocation] = []
    predicted_misses = 0.0
    simulated_misses = 0.0
    for t, (stream, curve, capacity) in enumerate(zip(tenant_traces, curves, capacities)):
        predicted = curve.miss_ratio_at(capacity // job.unit)
        simulated = _simulated_miss_ratio(stream, capacity)
        predicted_misses += predicted * stream.size
        simulated_misses += simulated * stream.size
        tenants.append(
            TenantAllocation(
                name=composed.names[t],
                rate=composed.rates[t],
                accesses=int(stream.size),
                footprint=baselines.footprints[t],
                capacity=capacity,
                predicted_miss_ratio=predicted,
                simulated_miss_ratio=simulated,
            )
        )

    return PartitionResult(
        name=job.name,
        method=job.method,
        mode=job.mode,
        budget=job.budget,
        unit=job.unit,
        accesses=total,
        tenants=tuple(tenants),
        predicted_miss_ratio=predicted_misses / total,
        simulated_miss_ratio=simulated_misses / total,
        unpartitioned_miss_ratio=baselines.unpartitioned_miss_ratio,
        proportional_miss_ratio=baselines.proportional_miss_ratio,
        profile_seconds=profile_seconds,
    )
