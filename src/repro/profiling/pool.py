"""Shared multiprocessing utilities for the profiling and sweep engines.

Both :mod:`repro.profiling.engine` and :mod:`repro.sim.sweep` fan independent
tasks across a process pool.  The helpers here centralise the two conventions
those engines share:

* **fork first** — the ``fork`` start method lets workers inherit large trace
  arrays copy-on-write instead of pickling them; platforms without ``fork``
  fall back to the default start method.
* **inline when trivial** — ``pool_map`` runs the tasks in the current process
  when a pool would not help (one worker or at most one task), which keeps
  single-process runs deterministic, debuggable and free of pool overhead.

``workers`` is always validated the same way: any integer below 1 is an error
rather than a silent serial fallback.

When a metrics registry is recording (:func:`repro.obs.get_registry`),
``pool_map`` additionally times every task.  Workers cannot record into the
parent's registry (they are separate processes), so each task is wrapped to
*return* its wall-clock seconds alongside its result and the parent folds
the durations into the ``pool.task`` span aggregate in task order — the
same order ``pool.map`` returns results in — making the recorded aggregate
deterministic regardless of completion order.  With nothing recording, the
seed code path runs unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from functools import partial
from typing import Any

from ..obs import get_registry

__all__ = ["check_workers", "fork_available", "fork_pool", "pool_map"]


def fork_available() -> bool:
    """Whether the ``fork`` start method (copy-on-write globals) exists here."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return False
    return True


def check_workers(workers: int) -> int:
    """Validate a worker count (must be a positive integer)."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def fork_pool(workers: int):
    """A ``multiprocessing`` pool using the ``fork`` start method when available."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return context.Pool(processes=check_workers(workers))


def _timed_call(function: Callable[[Any], Any], task: Any) -> tuple[Any, float]:
    """Run one task, returning ``(result, seconds)`` so timings survive the pool."""
    start = time.perf_counter()
    result = function(task)
    return result, time.perf_counter() - start


def pool_map(function: Callable[[Any], Any], tasks: Sequence[Any], *, workers: int = 1) -> list[Any]:
    """Map ``function`` over ``tasks``, preserving task order.

    Runs inline (no pool) when ``workers == 1`` or there is at most one task;
    otherwise fans out over ``min(workers, len(tasks))`` forked processes.
    ``function`` and every task must be picklable in the pooled case.
    """
    workers = check_workers(workers)
    tasks = list(tasks)
    registry = get_registry()
    if registry.enabled:
        name = getattr(function, "__name__", repr(function))
        timed = partial(_timed_call, function)
        if workers == 1 or len(tasks) <= 1:
            outcomes = [timed(task) for task in tasks]
        else:
            with fork_pool(min(workers, len(tasks))) as pool:
                outcomes = pool.map(timed, tasks)
        registry.counter("pool.tasks", function=name).add(len(outcomes))
        registry.gauge("pool.workers", function=name).set(min(workers, max(len(tasks), 1)))
        for _, seconds in outcomes:  # task order == pool.map order: deterministic
            registry.record_span("pool.task", seconds, function=name)
        return [result for result, _ in outcomes]
    if workers == 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    with fork_pool(min(workers, len(tasks))) as pool:
        return pool.map(function, tasks)
