"""Partitioning with sampled profiles vs. exact profiles — the decision-quality axis.

The partitioning engine's acceptance claim: on a 3-tenant 10^5-reference
composed Zipf/sawtooth/STREAM workload, the allocator driven by SHARDS
profiles at rate 0.01 lands within 1% (absolute miss ratio) of the
allocation driven by exact MRCs, while the profiler touches at least 10x
fewer references.  The recorded CSV backs the acceptance bar; the
functional properties (hull/DP beat the proportional split and the
unpartitioned cache, |predicted - simulated| bounds) live in
``tests/alloc/``.
"""

from __future__ import annotations

import numpy as np

from repro.alloc import PartitionJob, partition_composed
from repro.analysis import format_table, write_csv
from repro.obs import record_perf
from repro.profiling.shards import sample_trace
from repro.trace import TenantSpec, compose_tenants, stream_copy, zipfian_trace
from repro.trace.trace import PeriodicTrace

RATE = 0.01
N_SEEDS = 2  # ProfileJob default: two pooled SHARDS hash functions
BUDGET = 8192
SEED = 7


def build_workload():
    """Three canonical tenants totalling 1e5 references (60k + 20k + 20k)."""
    tenants = (
        TenantSpec(zipfian_trace(60_000, 8192, exponent=0.8, rng=SEED), name="zipf"),
        TenantSpec(PeriodicTrace.sawtooth(10_000).to_trace(), name="sawtooth"),
        TenantSpec(stream_copy(5_000, repetitions=2), name="stream"),
    )
    composed = compose_tenants(tenants, seed=SEED, name="bench-3-tenant")
    assert len(composed.trace) == 100_000
    return tenants, composed


def test_shards_allocation_matches_exact_at_a_fraction_of_the_work(benchmark, results_dir, perf_trajectory):
    tenants, composed = build_workload()

    exact_job = PartitionJob(tenants=tenants, budget=BUDGET, method="hull", mode="exact", seed=SEED)
    exact = partition_composed(exact_job, composed)

    shards_job = PartitionJob(tenants=tenants, budget=BUDGET, method="hull", mode="shards", rate=RATE, seed=SEED)
    sampled = partition_composed(shards_job, composed)

    # Profiling work: references the profiler actually processes.  Exact
    # stack distances touch every reference of every tenant; SHARDS only the
    # spatially-sampled subset (per pooled hash seed).
    exact_work = len(composed.trace)
    shards_work = 0
    for t in range(composed.num_tenants):
        stream = composed.tenant_trace(t)
        for seed in range(N_SEEDS):
            shards_work += int(sample_trace(stream, RATE, seed=seed)[0].size)
    work_ratio = exact_work / max(shards_work, 1)
    assert work_ratio >= 10.0, (
        f"SHARDS profiling at R={RATE} must process >= 10x fewer references "
        f"than exact profiling, got {work_ratio:.1f}x"
    )

    # Decision quality: simulating the *chosen* allocations, the sampled
    # profiles must land within 1% absolute miss ratio of the exact ones.
    delta = abs(sampled.simulated_miss_ratio - exact.simulated_miss_ratio)
    assert delta <= 0.01, (
        f"SHARDS-driven allocation must stay within 1% miss ratio of the "
        f"exact-MRC allocation, got {delta:.4f} "
        f"(exact {exact.allocation()}, shards {sampled.allocation()})"
    )

    # Both must still beat the naive baselines (the reason partitioning runs).
    assert exact.win_vs_proportional > 0.0
    assert sampled.win_vs_proportional > 0.0
    record_perf(perf_trajectory, "bench_partition", "work_ratio", work_ratio, unit="x", rate=RATE)

    rows = []
    for label, result, work in (("exact", exact, exact_work), ("shards", sampled, shards_work)):
        rows.append(
            {
                "profiles": label,
                "rate": 1.0 if label == "exact" else RATE,
                "refs_processed": work,
                "work_ratio": exact_work / work,
                "profile_seconds": result.profile_seconds,
                "allocation": "/".join(str(c) for c in result.allocation().values()),
                "simulated_miss_ratio": result.simulated_miss_ratio,
                "delta_vs_exact": abs(result.simulated_miss_ratio - exact.simulated_miss_ratio),
                "unpartitioned": result.unpartitioned_miss_ratio,
                "proportional": result.proportional_miss_ratio,
            }
        )

    print()
    print(
        format_table(
            rows,
            title=(
                f"Partitioning from sampled vs exact profiles — 3 tenants, "
                f"{len(composed.trace)} refs, budget {BUDGET}, hull allocation"
            ),
        )
    )
    write_csv(results_dir / "partition_sampled_vs_exact.csv", rows)

    benchmark(partition_composed, shards_job, composed)


def test_partition_beats_unpartitioned_shared_cache(results_dir):
    """The headline win: MRC-guided partitioning vs. one shared LRU cache."""
    tenants, composed = build_workload()
    rows = []
    for method in ("greedy", "dp", "hull"):
        job = PartitionJob(tenants=tenants, budget=BUDGET, method=method, seed=SEED)
        result = partition_composed(job, composed)
        rows.append(
            {
                "method": method,
                "allocation": "/".join(str(c) for c in result.allocation().values()),
                "simulated": result.simulated_miss_ratio,
                "unpartitioned": result.unpartitioned_miss_ratio,
                "proportional": result.proportional_miss_ratio,
                "win_vs_unpartitioned": result.win_vs_unpartitioned,
                "win_vs_proportional": result.win_vs_proportional,
            }
        )
    by_method = {row["method"]: row for row in rows}
    for method in ("dp", "hull"):
        assert by_method[method]["win_vs_proportional"] > 0.0
        assert by_method[method]["win_vs_unpartitioned"] > 0.0
    # The exact DP can never lose to the other allocators.
    assert by_method["dp"]["simulated"] <= min(by_method["greedy"]["simulated"], by_method["hull"]["simulated"]) + 1e-12

    print()
    print(format_table(rows, title=f"Partitioning win by method — budget {BUDGET}, {len(composed.trace)} refs"))
    write_csv(results_dir / "partition_win_by_method.csv", rows)
    assert np.isfinite([row["simulated"] for row in rows]).all()
