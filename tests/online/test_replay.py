"""End-to-end tests of the streaming re-partitioning replay."""

from __future__ import annotations

import pytest

from repro.online import OnlineJob, PartitionedLRU, run_replay
from repro.trace.drift import tenant_churn, three_phase_pair

# One moderate workload shared by the expensive end-to-end assertions.  The
# phases span only ~6 epochs here, so the detector runs with hysteresis 1
# (a flag one epoch earlier matters when the regime is short); the benchmark
# exercises the default knobs on the full-length workload.
LENGTH_PER_PHASE = 6000
JOB = OnlineJob(budget=1150, window=6000, epoch=2000, method="hull", rate=0.5, move_cost=1.0, hysteresis=1)


@pytest.fixture(scope="module")
def workload():
    return three_phase_pair(LENGTH_PER_PHASE, seed=7)


@pytest.fixture(scope="module")
def result(workload):
    return run_replay(workload, JOB)


class TestPartitionedLRU:
    def test_basic_hit_miss_accounting(self):
        sim = PartitionedLRU([2, 1])
        assert not sim.access(0, 10)
        assert not sim.access(0, 11)
        assert sim.access(0, 10)
        assert not sim.access(1, 10)  # namespaces are per-tenant partitions
        assert sim.hits == 1 and sim.misses == 3

    def test_zero_capacity_partition_always_misses(self):
        sim = PartitionedLRU([0])
        assert not sim.access(0, 1)
        assert not sim.access(0, 1)
        assert sim.miss_ratio == 1.0

    def test_shrink_evicts_lru_blocks_grow_adds_headroom(self):
        sim = PartitionedLRU([3])
        for item in (1, 2, 3):
            sim.access(0, item)
        sim.resize([1])
        assert sim.access(0, 3)  # most recent survived
        assert not sim.access(0, 1)  # LRU end was evicted; 1 displaces 3
        sim.resize([3])
        assert not sim.access(0, 2)  # grown partition warms up through misses
        assert sim.access(0, 1)  # resident block survived the growth

    def test_resize_validation(self):
        sim = PartitionedLRU([2, 2])
        with pytest.raises(ValueError):
            sim.resize([2])
        with pytest.raises(ValueError):
            sim.resize([2, -1])
        with pytest.raises(ValueError):
            PartitionedLRU([-1])


class TestReplayEndToEnd:
    def test_adaptive_strictly_beats_static_on_drifting_trace(self, result):
        assert result.adaptive_miss_ratio < result.static_miss_ratio
        assert result.win_vs_static > 0.0

    def test_oracle_bounds_both_systems(self, result):
        assert result.oracle_miss_ratio <= result.adaptive_miss_ratio
        assert result.oracle_miss_ratio <= result.static_miss_ratio

    def test_engine_actually_adapted(self, result):
        assert result.reallocations >= 1
        assert result.phase_changes >= 1
        assert result.final_allocation != result.epochs[0].adaptive_allocation or result.reallocations == 0

    def test_profiling_work_bounded_by_twice_the_trace(self, result):
        assert result.profiled_references <= 2 * result.accesses

    def test_epoch_series_is_consistent(self, result):
        assert result.epochs[0].start == 0
        assert result.epochs[-1].end == result.accesses
        for earlier, later in zip(result.epochs, result.epochs[1:]):
            assert earlier.end == later.start
        for epoch in result.epochs:
            assert sum(epoch.adaptive_allocation) <= JOB.budget
            assert 0.0 <= epoch.adaptive_miss_ratio <= 1.0

    def test_rows_and_summary_are_export_ready(self, result):
        rows = result.rows()
        assert len(rows) == len(result.epochs)
        assert {"epoch", "static", "adaptive", "oracle", "allocation"} <= set(rows[0])
        summary = result.summary()
        assert summary["win_vs_static"] == pytest.approx(result.static_miss_ratio - result.adaptive_miss_ratio)

    def test_workers_never_change_results(self, workload, result):
        parallel = run_replay(workload, JOB, workers=3)
        assert parallel.summary() == result.summary()
        assert parallel.rows() == result.rows()

    def test_reference_engine_is_bit_identical(self, workload, result):
        """The per-event OrderedDict data plane and the batch kernels must
        agree on every epoch of every lane (and across worker counts)."""
        reference = run_replay(workload, JOB, engine="reference", workers=2)
        assert reference.rows() == result.rows()
        assert reference.summary() == result.summary()
        assert reference.static_allocation == result.static_allocation
        assert reference.oracle_allocations == result.oracle_allocations

    def test_oracle_allocations_are_per_phase_and_respect_budget(self, workload, result):
        assert len(result.oracle_allocations) == workload.num_phases
        for allocation in result.oracle_allocations:
            assert sum(allocation) <= JOB.budget

    def test_unknown_engine_rejected_before_any_work(self, workload):
        with pytest.raises(ValueError):
            run_replay(workload, JOB, engine="turbo")


class TestTenantChurn:
    def test_visitor_gets_capacity_only_while_present(self):
        workload = tenant_churn(6000, seed=11)
        job = OnlineJob(budget=700, window=4000, epoch=1500, rate=0.5)
        result = run_replay(workload, job)
        boundaries = workload.boundaries
        before = [e for e in result.epochs if e.end <= boundaries[1]]
        during = [e for e in result.epochs if boundaries[1] < e.end <= boundaries[2]]
        # while the visitor is absent at the start it owns nothing
        assert all(e.adaptive_allocation[1] == 0 for e in before)
        # once present (and detected) it is granted real capacity
        assert max(e.adaptive_allocation[1] for e in during) > 0
        # after departure the engine hands capacity back to the resident
        assert result.final_allocation[0] > result.final_allocation[1]


class TestDetectorGatesReallocation:
    def test_deaf_detector_and_sparse_cadence_suppress_churn(self, workload):
        """With an unreachable threshold and a cadence longer than the run,
        the controller is only ever consulted at epoch 0 — the detector knobs
        must actually gate re-allocation, not just annotate the rows."""
        deaf = OnlineJob(
            budget=JOB.budget, window=JOB.window, epoch=JOB.epoch, rate=JOB.rate,
            threshold=10.0, realloc_epochs=10_000,
        )
        result = run_replay(workload, deaf)
        assert result.phase_changes == 0
        assert result.reallocations <= 1  # at most the epoch-0 cadence point
        assert all(not e.reallocated for e in result.epochs[1:])

    def test_sensitive_detector_reallocates_more_than_deaf_one(self, workload):
        deaf = OnlineJob(
            budget=JOB.budget, window=JOB.window, epoch=JOB.epoch, rate=JOB.rate,
            threshold=10.0, realloc_epochs=10_000,
        )
        sensitive = OnlineJob(
            budget=JOB.budget, window=JOB.window, epoch=JOB.epoch, rate=JOB.rate,
            threshold=0.03, hysteresis=1, realloc_epochs=10_000,
        )
        assert run_replay(workload, sensitive).reallocations > run_replay(workload, deaf).reallocations


class TestJobValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            OnlineJob(budget=0, window=10, epoch=10)
        with pytest.raises(ValueError):
            OnlineJob(budget=10, window=0, epoch=10)
        with pytest.raises(ValueError):
            OnlineJob(budget=10, window=10, epoch=0)
        with pytest.raises(ValueError):
            OnlineJob(budget=10, window=10, epoch=10, unit=20)

    def test_rejects_bad_knobs_before_any_work_happens(self):
        """The config object fails fast — not deep inside run_replay after the
        expensive whole-trace profiling already ran."""
        good = dict(budget=10, window=10, epoch=10)
        with pytest.raises(ValueError):
            OnlineJob(**good, method="nope")
        with pytest.raises(ValueError):
            OnlineJob(**good, rate=0.0)
        with pytest.raises(ValueError):
            OnlineJob(**good, rate=2.0)
        with pytest.raises(ValueError):
            OnlineJob(**good, decay=-0.1)
        with pytest.raises(ValueError):
            OnlineJob(**good, move_cost=-1.0)
        with pytest.raises(ValueError):
            OnlineJob(**good, threshold=0.0)
        with pytest.raises(ValueError):
            OnlineJob(**good, hysteresis=0)
        with pytest.raises(ValueError):
            OnlineJob(**good, realloc_epochs=0)
