"""Multi-level (inclusive) cache hierarchy.

Section V-B.2 motivates the *ranked* miss-ratio labeling by the hierarchical
structure of real cache systems: the cost of a miss depends on which level it
falls through to.  :class:`CacheHierarchy` models an inclusive hierarchy of
independently sized levels — an access is tried at L1, then L2, … and a line
missing at level ``k`` is filled into every level ``<= k`` on its way back.

The aggregate :meth:`CacheHierarchy.amat` (average memory access time) gives a
single cost figure for a trace, which the ML scheduling example uses to show
the end-to-end effect of Theorem-4 re-ordering beyond raw miss counts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .base import CacheModel, CacheStats
from .lru import LRUCache

__all__ = ["HierarchyLevelResult", "CacheHierarchy"]


@dataclass(frozen=True)
class HierarchyLevelResult:
    """Per-level outcome of a hierarchy simulation."""

    name: str
    capacity: int
    accesses: int
    hits: int
    misses: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of this level's accesses that hit."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        """Fraction of this level's accesses that missed."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """An inclusive hierarchy of caches, closest (smallest) level first.

    Parameters
    ----------
    levels:
        The caches, ordered L1, L2, ...; any :class:`CacheModel` works, and
        capacities are expected (but not required) to grow with the level.
    hit_latencies:
        Access latency charged when a request hits at each level (same length
        as ``levels``).
    memory_latency:
        Latency charged when the request misses every level.
    """

    def __init__(
        self,
        levels: Sequence[CacheModel] | Sequence[int],
        *,
        hit_latencies: Sequence[float] | None = None,
        memory_latency: float = 100.0,
    ):
        if not levels:
            raise ValueError("a hierarchy needs at least one level")
        built: list[CacheModel] = []
        for level in levels:
            if isinstance(level, CacheModel):
                built.append(level)
            else:
                built.append(LRUCache(int(level)))
        self.levels = built
        if hit_latencies is None:
            hit_latencies = [float(4 ** k) for k in range(len(built))]
        if len(hit_latencies) != len(built):
            raise ValueError("hit_latencies must have one entry per level")
        self.hit_latencies = [float(x) for x in hit_latencies]
        self.memory_latency = float(memory_latency)
        self._total_latency = 0.0
        self._accesses = 0

    def reset(self) -> None:
        """Clear every level and the latency accumulator."""
        for level in self.levels:
            level.reset()
        self._total_latency = 0.0
        self._accesses = 0

    def access(self, item: int) -> int:
        """Access ``item``; return the level index that hit (``len(levels)`` = memory)."""
        item = int(item)
        hit_level = len(self.levels)
        for k, level in enumerate(self.levels):
            hit = level.access(item)
            level.stats.record(item, hit)
            if hit:
                hit_level = k
                break
        # Levels probed on the miss path already filled the line via access(),
        # so the hierarchy is inclusive without additional work here.
        self._accesses += 1
        if hit_level < len(self.levels):
            self._total_latency += self.hit_latencies[hit_level]
        else:
            self._total_latency += self.memory_latency
        return hit_level

    def run(self, trace: Iterable[int]) -> list[HierarchyLevelResult]:
        """Replay a trace and return the per-level results."""
        for item in trace:
            self.access(int(item))
        return self.results()

    def results(self) -> list[HierarchyLevelResult]:
        """Per-level hit/miss summary of everything replayed since the last reset."""
        out = []
        for level in self.levels:
            stats: CacheStats = level.stats
            out.append(
                HierarchyLevelResult(
                    name=level.name,
                    capacity=level.capacity,
                    accesses=stats.accesses,
                    hits=stats.hits,
                    misses=stats.misses,
                )
            )
        return out

    def amat(self) -> float:
        """Average memory access time over everything replayed since the last reset."""
        return self._total_latency / self._accesses if self._accesses else 0.0
