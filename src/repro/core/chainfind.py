"""ChainFind — the greedy chain-construction algorithm of Section V (Algorithm 2).

Starting from a permutation ``τ_0`` (by default the identity / cyclic order),
ChainFind repeatedly moves to a Bruhat cover of the current permutation whose
edge label is maximal, producing a saturated chain that ends at the reverse
permutation (the sawtooth order, which is the unique maximum of the Bruhat
order).  Every step improves the miss ratio at exactly one cache size
(Theorem 3), so the chain is a schedule of progressively better re-orderings.

Two practical aspects the paper studies are captured here:

* **Ties** — when several covers share the maximal label, the greedy choice is
  arbitrary.  :class:`ChainFindResult` records every tie event and the number
  of equally good options at each, from which Figure 2's "count of arbitrary
  choices" and the "factor of different chains" of the ``S_11`` example are
  both derived.
* **Feasibility** — a predicate ``Y(τ)`` (Definition 7) restricts the covers
  that may be chosen, modelling program-dependence constraints.  When the
  feasible region has no upward cover the chain simply stops early.

The number of covering steps from the identity to the reverse permutation is
``m (m - 1) / 2`` (the maximal inversion number).  The paper's pseudocode
writes the bound as ``m (m + 1) / 2``; we use the former, mathematically
consistent value and note the discrepancy in ``DESIGN.md``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from .._util import ensure_rng
from .bruhat import covers, weak_covers
from .hits import cache_hit_vector
from .inversions import max_inversions
from .labelings import EdgeLabeling, MissRatioLabeling
from .permutation import Permutation

__all__ = [
    "ChainFindResult",
    "chain_find",
    "chain_hit_matrix",
    "count_tie_events",
]

FeasibilityPredicate = Callable[[Permutation], bool]


@dataclass
class ChainFindResult:
    """Everything ChainFind produces for one run.

    Attributes
    ----------
    chain:
        The saturated chain, starting at ``tau_0``.  ``chain[k]`` has
        ``k + ℓ(tau_0)`` inversions.
    labels:
        The edge label chosen at each step (length ``len(chain) - 1``).
    tie_multiplicities:
        For each step, how many covers shared the maximal label (``1`` means
        the choice was forced).
    stopped_reason:
        ``"top"`` when the reverse permutation was reached, ``"no_feasible_cover"``
        when the feasibility predicate blocked every upward move, ``"max_steps"``
        when the step budget ran out.
    """

    chain: list[Permutation]
    labels: list[tuple]
    tie_multiplicities: list[int]
    stopped_reason: str
    labeling: EdgeLabeling = field(repr=False, default=None)

    @property
    def length(self) -> int:
        """Number of covering steps taken."""
        return len(self.chain) - 1

    @property
    def start(self) -> Permutation:
        """First permutation of the chain (the starting point)."""
        return self.chain[0]

    @property
    def end(self) -> Permutation:
        """Last permutation of the chain."""
        return self.chain[-1]

    @property
    def arbitrary_choice_count(self) -> int:
        """Number of steps where the greedy choice was not unique (Figure 2 metric)."""
        return sum(1 for k in self.tie_multiplicities if k > 1)

    @property
    def chain_multiplicity(self) -> int:
        """Product of tie multiplicities: how many distinct chains the greedy rule allows.

        The ``S_11`` example in Section V-B.2 reports this as the "factor of
        different chains that could be made".
        """
        out = 1
        for k in self.tie_multiplicities:
            out *= k
        return out

    def inversion_numbers(self) -> list[int]:
        """``ℓ`` along the chain (consecutive integers when the chain is saturated)."""
        return [sigma.inversions() for sigma in self.chain]

    def is_saturated(self) -> bool:
        """Whether each step increases the inversion number by exactly one."""
        ells = self.inversion_numbers()
        return all(b == a + 1 for a, b in zip(ells, ells[1:]))


def chain_find(
    start: Permutation,
    labeling: EdgeLabeling | None = None,
    *,
    feasibility: FeasibilityPredicate | None = None,
    max_steps: int | None = None,
    tie_break: str = "first",
    moves: str = "bruhat",
    rng: np.random.Generator | int | None = None,
) -> ChainFindResult:
    """Run Algorithm 2 from ``start`` and return the constructed chain.

    Parameters
    ----------
    start:
        The initial permutation ``τ_0`` (``Permutation.identity(m)`` for the
        cyclic order the paper starts from).
    labeling:
        The edge labeler ``λ``; defaults to the miss-ratio labeling ``λ_e``.
    feasibility:
        Optional predicate ``Y``; covers for which it returns ``False`` are
        never chosen.  ``None`` means every re-ordering is feasible
        (the paper's simplifying assumption for the theory sections).
    max_steps:
        Optional cap on the number of covering steps; defaults to the number
        of steps needed to reach the top, ``m(m-1)/2 - ℓ(start)``.
    tie_break:
        ``"first"`` picks the first maximal cover in enumeration order
        (deterministic), ``"random"`` picks uniformly among maximal covers
        using ``rng``.
    moves:
        ``"bruhat"`` (the paper's Algorithm 2) allows every covering
        transposition; ``"weak"`` restricts the moves to adjacent swaps
        (weak-order covers).  The weak restriction is the regime in which the
        pointwise miss-ratio dominance of Theorem 3 provably holds at every
        step (see ``theorem3_compare``), and it models schedulers that may
        only exchange *neighbouring* accesses.
    rng:
        Seed or generator for the random tie-break.

    Returns
    -------
    ChainFindResult
    """
    if labeling is None:
        labeling = MissRatioLabeling()
    if tie_break not in ("first", "random"):
        raise ValueError(f"tie_break must be 'first' or 'random', got {tie_break!r}")
    if moves not in ("bruhat", "weak"):
        raise ValueError(f"moves must be 'bruhat' or 'weak', got {moves!r}")
    generator = ensure_rng(rng) if tie_break == "random" else None

    m = start.size
    budget = max_inversions(m) - start.inversions()
    if max_steps is not None:
        budget = min(budget, int(max_steps))

    chain = [start]
    labels: list[tuple] = []
    multiplicities: list[int] = []
    reason = "top"

    step_candidates = covers if moves == "bruhat" else weak_covers

    current = start
    for _ in range(budget):
        candidates = step_candidates(current)
        if feasibility is not None:
            candidates = [tau for tau in candidates if feasibility(tau)]
        if not candidates:
            reason = "no_feasible_cover"
            break
        best, best_label = labeling.best_covers(current, candidates)
        multiplicities.append(len(best))
        labels.append(best_label)
        if tie_break == "random" and len(best) > 1:
            current = best[int(generator.integers(len(best)))]
        else:
            current = best[0]
        chain.append(current)
    else:
        reason = "top" if current.inversions() == max_inversions(m) else "max_steps"

    return ChainFindResult(
        chain=chain,
        labels=labels,
        tie_multiplicities=multiplicities,
        stopped_reason=reason,
        labeling=labeling,
    )


def chain_hit_matrix(result: ChainFindResult) -> np.ndarray:
    """Stack the cache-hit vectors of every permutation along a chain.

    Row ``k`` is ``hits_C(chain[k])``; Theorem 3 implies each row dominates the
    previous one entrywise and exceeds it by exactly one in a single column.
    Useful both for tests and for visualising the locality ramp of a chain.
    """
    return np.vstack([cache_hit_vector(sigma) for sigma in result.chain])


def count_tie_events(
    m: int,
    labeling: EdgeLabeling | None = None,
    *,
    start: Permutation | None = None,
) -> dict[str, int]:
    """Convenience driver for the Figure 2 experiment at a single group size.

    Runs ChainFind from ``start`` (default: identity of ``S_m``) with the given
    labeling and returns the tie statistics: the number of steps with an
    arbitrary choice, the product of tie multiplicities and the chain length.
    """
    start = start if start is not None else Permutation.identity(m)
    result = chain_find(start, labeling)
    return {
        "m": m,
        "chain_length": result.length,
        "arbitrary_choices": result.arbitrary_choice_count,
        "chain_multiplicity": result.chain_multiplicity,
    }
