"""Unit tests for the move-cost-aware re-allocation controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc import DiscretizedMRC
from repro.online import ReallocationController


def linear_curve(footprint: int, accesses: int = 1000) -> DiscretizedMRC:
    """Misses fall linearly until the footprint fits, then flatten at zero."""
    misses = np.maximum(footprint - np.arange(footprint + 1), 0) / footprint * accesses
    return DiscretizedMRC(misses=misses.astype(np.float64), unit=1, accesses=accesses)


def flat_curve(accesses: int = 1000) -> DiscretizedMRC:
    """No capacity helps (e.g. pure streaming): the allocator should starve it."""
    return DiscretizedMRC(misses=np.full(1, float(accesses)), unit=1, accesses=accesses)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReallocationController(budget=100, method="nope")
        with pytest.raises(ValueError):
            ReallocationController(budget=100, unit=200)
        with pytest.raises(ValueError):
            ReallocationController(budget=100, move_cost=-1.0)

    def test_decide_checks_tenant_count(self):
        controller = ReallocationController(budget=10)
        with pytest.raises(ValueError):
            controller.decide([linear_curve(5)], (5, 5), horizon=100)


class TestPropose:
    @pytest.mark.parametrize("method", ["greedy", "dp", "hull"])
    def test_full_budget_is_always_assigned(self, method):
        controller = ReallocationController(budget=100, method=method)
        proposal = controller.propose([linear_curve(30), flat_curve()])
        assert sum(proposal) == 100  # leftover topped up, not stranded

    def test_topup_splits_equally_when_nothing_was_allocated(self):
        controller = ReallocationController(budget=10, method="dp")
        proposal = controller.propose([flat_curve(), flat_curve()])
        assert proposal == (5, 5)

    def test_steeper_tenant_wins_the_contested_blocks(self):
        controller = ReallocationController(budget=60, method="dp")
        # same footprint, 4x the traffic: every block saves 4x the misses
        hot = linear_curve(50, accesses=4000)
        cold = linear_curve(50, accesses=1000)
        proposal = controller.propose([hot, cold])
        assert proposal[0] > proposal[1]

    def test_unit_granularity_respected(self):
        controller = ReallocationController(budget=64, method="hull", unit=16)
        proposal = controller.propose([linear_curve(40), linear_curve(40)])
        assert all(c % 16 == 0 for c in proposal)
        assert sum(proposal) == 64


class TestDecide:
    def test_applies_when_gain_beats_penalty(self):
        controller = ReallocationController(budget=100, method="dp", move_cost=1.0)
        curves = [linear_curve(90), flat_curve()]
        decision = controller.decide(curves, (50, 50), horizon=10_000)
        assert decision.applied
        assert decision.allocation == controller.propose(curves)
        assert decision.predicted_gain > decision.penalty

    def test_holds_when_move_cost_dominates(self):
        controller = ReallocationController(budget=100, method="dp", move_cost=1e6)
        decision = controller.decide([linear_curve(90), flat_curve()], (50, 50), horizon=100)
        assert not decision.applied
        assert decision.allocation == (50, 50)

    def test_identical_proposal_is_a_cheap_no_move(self):
        controller = ReallocationController(budget=100, method="dp", move_cost=1.0)
        curves = [linear_curve(90), flat_curve()]
        settled = controller.propose(curves)
        decision = controller.decide(curves, settled, horizon=10_000)
        assert not decision.applied
        assert decision.moved_blocks == 0 and decision.penalty == 0.0

    def test_zero_move_cost_applies_any_strict_improvement(self):
        controller = ReallocationController(budget=100, method="dp", move_cost=0.0)
        decision = controller.decide([linear_curve(90), flat_curve()], (50, 50), horizon=1)
        assert decision.applied

    def test_counters_track_evaluations_and_applications(self):
        controller = ReallocationController(budget=100, method="dp", move_cost=1.0)
        curves = [linear_curve(90), flat_curve()]
        controller.decide(curves, (50, 50), horizon=10_000)
        controller.decide(curves, controller.propose(curves), horizon=10_000)
        assert controller.evaluations == 2
        assert controller.applications == 1

    def test_moved_blocks_count_only_growth(self):
        """Moved blocks are the blocks that must warm up (positive deltas)."""
        controller = ReallocationController(budget=100, method="dp", move_cost=0.0)
        decision = controller.decide([linear_curve(90), flat_curve()], (20, 80), horizon=10_000)
        assert decision.applied
        grown = sum(max(new - old, 0) for new, old in zip(decision.allocation, (20, 80)))
        assert decision.moved_blocks == grown
