"""The public experiment API: one front door for the four experiment types.

Every experiment in this package is the same shape — a frozen *job*
(validated knobs), an engine-backed runner, and a frozen *result* that
renders ``rows()`` and ``summary()`` (the
:class:`repro.engine.ExperimentJob` / :class:`repro.engine.ExperimentResult`
protocols).  This module is the facade over that contract:

* :func:`profile` — exact or approximate miss-ratio curves of one trace or a
  batch (:class:`~repro.profiling.engine.ProfileJob`).
* :func:`sweep` — many policies × capacities over one trace
  (:class:`~repro.sim.sweep.SweepJob`).
* :func:`partition` — divide a shared cache budget among tenants
  (:class:`~repro.alloc.partition.PartitionJob`).
* :func:`online` — adaptive re-partitioning replay on a drifting workload
  (:class:`~repro.online.replay.OnlineJob`).
* :func:`run` — dispatch an already-built job of any of the four types.
* :func:`export_csv` — write any result's rows with the per-type CSV
  convention the CLI has always used (byte-identical files).

Every entry point takes the same cross-cutting keywords: ``workers`` (fan
independent tasks over the engine's process pool — never changes a result),
``csv_path`` (export rows after the run) and ``metrics_path`` (record
counters/spans/series into a JSONL file via :mod:`repro.obs`).  The CLI
subcommands are thin wrappers over these functions.

Examples
--------
>>> import numpy as np
>>> from repro import api
>>> result = api.sweep(np.array([1, 2, 1, 2, 3, 1]), capacities=(1, 2, 3), name="tiny")
>>> [round(r, 4) for r in result["lru"].miss_ratios]
[1.0, 0.6667, 0.5]
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .engine.job import ExperimentJob, ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - import-time typing only
    import numpy as np

    from .alloc.partition import PartitionJob, PartitionResult
    from .online.replay import OnlineJob, ReplayResult
    from .profiling.engine import ProfileJob, ProfileResult
    from .resilience.policy import RetryPolicy
    from .sim.sweep import SweepJob, SweepResult
    from .trace.drift import DriftingWorkload

__all__ = [
    "ExperimentJob",
    "ExperimentResult",
    "export_csv",
    "online",
    "partition",
    "profile",
    "run",
    "sweep",
]

#: The drifting-workload presets :func:`online` accepts by name.
WORKLOAD_PRESETS = ("three-phase", "churn")


def _jobs_module():
    """The four job types, imported lazily (keeps ``import repro.api`` light)."""
    from .alloc.partition import PartitionJob
    from .online.replay import OnlineJob
    from .profiling.engine import ProfileJob
    from .sim.sweep import SweepJob

    return ProfileJob, SweepJob, PartitionJob, OnlineJob


def _recorded(callable_, metrics_path: str | Path | None, command: str, seed: int | None):
    """Run ``callable_`` and, with ``metrics_path``, export its metrics JSONL."""
    if metrics_path is None:
        return callable_()
    from .obs import MetricsRegistry, RunManifest, recording, write_jsonl

    registry = MetricsRegistry()
    with recording(registry):
        result = callable_()
    manifest = RunManifest.collect(command, argv=[], seed=seed)
    write_jsonl(metrics_path, registry, manifest)
    return result


def export_csv(result: ExperimentResult, csv_path: str | Path) -> tuple[Path, int]:
    """Write one result's rows to ``csv_path``; returns ``(path, rows_written)``.

    The per-type conventions match the CLI's historical CSV output exactly:
    profile results write their curve rows; sweep results write the
    ``policy × capacity`` rows; partition results append a ``TOTAL`` row
    (the summary keyed as tenant ``TOTAL``); online results append a
    ``TOTAL`` row (the summary keyed as epoch ``TOTAL`` with the final
    allocation).
    """
    from .alloc.partition import PartitionResult
    from .analysis.reporting import write_csv
    from .online.replay import ReplayResult

    rows = result.rows()
    if isinstance(result, PartitionResult):
        total_row = dict(result.summary())
        total_row["tenant"] = "TOTAL"
        total_row["accesses"] = result.accesses
        rows = rows + [total_row]
    elif isinstance(result, ReplayResult):
        total_row = dict(result.summary())
        total_row["epoch"] = "TOTAL"
        total_row["allocation"] = "/".join(str(c) for c in result.final_allocation)
        rows = rows + [total_row]
    path = write_csv(csv_path, rows)
    return path, len(rows)


def run(
    job: ExperimentJob,
    *,
    workload: "DriftingWorkload | None" = None,
    workers: int = 1,
    engine: str = "batch",
    policy: "RetryPolicy | None" = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    csv_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
) -> ExperimentResult:
    """Execute one already-built experiment job on the engine substrate.

    Dispatches on the job type (:class:`~repro.profiling.engine.ProfileJob`,
    :class:`~repro.sim.sweep.SweepJob`,
    :class:`~repro.alloc.partition.PartitionJob` or
    :class:`~repro.online.replay.OnlineJob`).  ``workload`` is required for —
    and only accepted by — online jobs; ``engine`` selects the online replay
    data plane.  ``workers`` never changes any result.

    The fault-tolerance knobs apply to the job types that support them:
    ``policy`` (a :class:`repro.resilience.RetryPolicy`) hardens the process
    pool of online and sweep jobs, and ``checkpoint_dir`` /
    ``checkpoint_every`` / ``resume`` give those two crash-safe progress
    snapshots and bit-identical resumption (see :mod:`repro.resilience`).
    Passing any of them with a profile or partition job is an error.
    """
    ProfileJob, SweepJob, PartitionJob, OnlineJob = _jobs_module()
    resilient = policy is not None or checkpoint_dir is not None or resume
    if isinstance(job, OnlineJob):
        if workload is None:
            raise ValueError("online jobs need a workload= (a DriftingWorkload or preset)")
        from .online.replay import run_replay

        runner = lambda: run_replay(  # noqa: E731
            workload,
            job,
            workers=workers,
            engine=engine,
            policy=policy,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        command = "online"
    elif workload is not None:
        raise ValueError(f"workload= only applies to online jobs, got {type(job).__name__}")
    elif isinstance(job, SweepJob):
        from .sim.sweep import run_sweep

        runner = lambda: run_sweep(  # noqa: E731
            job,
            workers=workers,
            policy=policy,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
        command = "sweep"
    elif resilient:
        raise ValueError(
            f"policy=/checkpoint_dir=/resume= apply to online and sweep jobs only, got {type(job).__name__}"
        )
    elif isinstance(job, PartitionJob):
        from .alloc.partition import run_partition

        runner = lambda: run_partition(job, workers=workers)  # noqa: E731
        command = "partition"
    elif isinstance(job, ProfileJob):
        from .profiling.engine import run_jobs

        runner = lambda: run_jobs([job], workers=workers)[0]  # noqa: E731
        command = "profile"
    else:
        raise TypeError(f"unknown experiment job type {type(job).__name__}")
    result = _recorded(runner, metrics_path, command, getattr(job, "seed", None))
    if csv_path is not None:
        export_csv(result, csv_path)
    return result


def profile(
    traces: "np.ndarray | str | Path | ProfileJob | Sequence[Any]",
    *,
    mode: str = "shards",
    rate: float = 0.01,
    smax: int | None = None,
    seed: int = 0,
    n_seeds: int = 2,
    max_cache_size: int | None = None,
    name: str | None = None,
    workers: int = 1,
    csv_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
) -> "ProfileResult | list[ProfileResult]":
    """Miss-ratio curve(s) of one trace or a batch, via the profiling engine.

    ``traces`` is a trace array, a trace-file path, a prepared
    :class:`~repro.profiling.engine.ProfileJob`, or a list/tuple of any mix;
    a batch input returns a list of results in input order (fanned across
    ``workers``), a single input returns one result.  ``csv_path`` (single
    input only) writes the curve's ``cache_size, miss_ratio`` rows.
    """
    import numpy as np

    from .profiling.engine import ProfileJob, run_jobs

    single = not isinstance(traces, (list, tuple))
    specs = [traces] if single else list(traces)
    jobs = []
    for spec in specs:
        if isinstance(spec, ProfileJob):
            jobs.append(spec)
            continue
        common = dict(mode=mode, rate=rate, smax=smax, seed=seed, n_seeds=n_seeds, max_cache_size=max_cache_size)
        if isinstance(spec, (str, Path)):
            jobs.append(ProfileJob(path=str(spec), name=name or Path(spec).stem, **common))
        else:
            jobs.append(ProfileJob(trace=np.asarray(spec), name=name or "trace", **common))
    if csv_path is not None and len(jobs) != 1:
        raise ValueError("csv_path= requires exactly one trace")
    results = _recorded(
        lambda: run_jobs(jobs, workers=workers), metrics_path, "profile", int(jobs[0].seed) if jobs else None
    )
    if csv_path is not None:
        export_csv(results[0], csv_path)
    return results[0] if single else results


def sweep(
    trace: "np.ndarray | None" = None,
    *,
    path: str | Path | None = None,
    name: str = "trace",
    policies: Sequence[str] = ("lru",),
    capacities: Sequence[int] = (),
    ways: int = 4,
    seed: int = 0,
    workers: int = 1,
    policy: "RetryPolicy | None" = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    csv_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
) -> "SweepResult":
    """Evaluate many cache configurations over one trace in one (or few) passes.

    Exactly one of ``trace`` (integer array) or ``path`` (text trace file)
    selects the workload; the remaining knobs mirror
    :class:`~repro.sim.sweep.SweepJob`.  ``policy`` / ``checkpoint_dir`` /
    ``checkpoint_every`` / ``resume`` are the fault-tolerance knobs of
    :func:`repro.sim.sweep.run_sweep`.
    """
    from .sim.sweep import SweepJob

    job = SweepJob(
        trace=trace,
        path=str(path) if path is not None else None,
        name=name,
        policies=tuple(policies),
        capacities=tuple(capacities),
        ways=ways,
        seed=seed,
    )
    return run(
        job,
        workers=workers,
        policy=policy,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
        csv_path=csv_path,
        metrics_path=metrics_path,
    )


def partition(
    tenants: Sequence,
    budget: int,
    *,
    method: str = "hull",
    mode: str = "exact",
    rate: float = 0.01,
    smax: int | None = None,
    profile_seed: int = 0,
    unit: int = 1,
    seed: int = 0,
    name: str = "partition",
    workers: int = 1,
    csv_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
) -> "PartitionResult":
    """Divide a shared cache ``budget`` among ``tenants`` and validate the split.

    ``tenants`` is a sequence of :class:`~repro.trace.tenancy.TenantSpec`;
    the remaining knobs mirror :class:`~repro.alloc.partition.PartitionJob`.
    """
    from .alloc.partition import PartitionJob

    job = PartitionJob(
        tenants=tuple(tenants),
        budget=budget,
        method=method,
        mode=mode,
        rate=rate,
        smax=smax,
        profile_seed=profile_seed,
        unit=unit,
        seed=seed,
        name=name,
    )
    return run(job, workers=workers, csv_path=csv_path, metrics_path=metrics_path)


def online(
    workload: "DriftingWorkload | str",
    budget: int,
    window: int,
    epoch: int,
    *,
    length: int = 6000,
    seed: int = 7,
    method: str = "hull",
    decay: float = 0.0,
    rate: float = 1.0,
    move_cost: float = 1.0,
    horizon_epochs: int = 8,
    threshold: float = 0.03,
    hysteresis: int = 1,
    realloc_epochs: int = 4,
    unit: int = 1,
    profile_seed: int = 0,
    name: str | None = None,
    workers: int = 1,
    engine: str = "batch",
    policy: "RetryPolicy | None" = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 1,
    resume: bool = False,
    csv_path: str | Path | None = None,
    metrics_path: str | Path | None = None,
) -> "ReplayResult":
    """Replay a drifting workload under static vs. adaptive vs. oracle partitioning.

    ``workload`` is a :class:`~repro.trace.drift.DriftingWorkload` or one of
    the presets ``"three-phase"`` / ``"churn"`` (built with ``length`` and
    ``seed``; both are ignored for an already-built workload).  The remaining
    knobs mirror :class:`~repro.online.replay.OnlineJob`; ``engine`` selects
    the replay data plane (``batch`` | ``reference``, bit-identical);
    ``policy`` / ``checkpoint_dir`` / ``checkpoint_every`` / ``resume`` are
    the fault-tolerance knobs of :func:`repro.online.replay.run_replay`.
    """
    from .online.replay import OnlineJob

    if isinstance(workload, str):
        from .engine.job import check_choice
        from .trace.drift import tenant_churn, three_phase_pair

        check_choice("workload", workload, WORKLOAD_PRESETS)
        preset = workload
        builder = three_phase_pair if preset == "three-phase" else tenant_churn
        workload = builder(length, seed=seed)
        name = name or preset
    job = OnlineJob(
        budget=budget,
        window=window,
        epoch=epoch,
        method=method,
        decay=decay,
        rate=rate,
        move_cost=move_cost,
        horizon_epochs=horizon_epochs,
        threshold=threshold,
        hysteresis=hysteresis,
        realloc_epochs=realloc_epochs,
        unit=unit,
        profile_seed=profile_seed,
        name=name or "online",
    )
    return run(
        job,
        workload=workload,
        workers=workers,
        engine=engine,
        policy=policy,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        resume=resume,
        csv_path=csv_path,
        metrics_path=metrics_path,
    )
