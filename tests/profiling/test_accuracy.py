"""Tests for the curve-error metrics."""

from __future__ import annotations

import pytest

from repro.cache.mrc import MissRatioCurve
from repro.profiling import compare_curves, curve_values, mean_absolute_error


def curve(*ratios: float) -> MissRatioCurve:
    return MissRatioCurve(ratios=tuple(ratios), accesses=100)


class TestCurveValues:
    def test_crops_to_requested_length(self):
        values = curve_values(curve(1.0, 0.5, 0.25), 2)
        assert values.tolist() == [1.0, 0.5]

    def test_extends_with_final_value(self):
        values = curve_values(curve(1.0, 0.5), 4)
        assert values.tolist() == [1.0, 0.5, 0.5, 0.5]

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            curve_values(curve(1.0), 0)


class TestComparison:
    def test_identical_curves_have_zero_error(self):
        a = curve(1.0, 0.6, 0.2)
        result = compare_curves(a, a)
        assert result.mean_absolute_error == 0.0
        assert result.max_absolute_error == 0.0
        assert result.cache_sizes == 3

    def test_known_difference(self):
        a = curve(1.0, 0.5)
        b = curve(0.9, 0.7)
        result = compare_curves(a, b)
        assert result.mean_absolute_error == pytest.approx(0.15)
        assert result.max_absolute_error == pytest.approx(0.2)

    def test_unequal_lengths_clamp_shorter_curve(self):
        a = curve(1.0, 0.5)
        b = curve(1.0, 0.5, 0.5, 0.1)
        result = compare_curves(a, b)
        assert result.cache_sizes == 4
        # Only size 4 differs: clamped 0.5 vs 0.1.
        assert result.mean_absolute_error == pytest.approx(0.1)
        assert result.max_absolute_error == pytest.approx(0.4)

    def test_explicit_window(self):
        a = curve(1.0, 0.5)
        b = curve(1.0, 0.5, 0.5, 0.1)
        assert mean_absolute_error(a, b, max_cache_size=3) == 0.0

    def test_symmetry(self):
        a = curve(1.0, 0.4, 0.3)
        b = curve(0.8, 0.6, 0.1)
        assert mean_absolute_error(a, b) == mean_absolute_error(b, a)
