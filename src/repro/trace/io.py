"""Trace file input/output.

Reuse-distance tooling is usually driven from trace files; this module reads
and writes the two simple formats the examples use:

* **text** — one access per line, optionally with ``#`` comments; the format
  produced by most academic trace collectors after post-processing.
* **binary (npz)** — a compressed NumPy archive holding the access array plus
  a small metadata dictionary; compact and fast for long traces.

Both formats round-trip exactly and are covered by tests.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trace import Trace

__all__ = ["write_text", "read_text", "write_npz", "read_npz"]


def write_text(trace: Trace, path: str | Path, *, header: bool = True) -> Path:
    """Write a trace as one access label per line.

    A comment header records the trace name and footprint so the file is
    self-describing; pass ``header=False`` for the bare format.
    """
    path = Path(path)
    lines = []
    if header:
        lines.append(f"# name: {trace.name}")
        lines.append(f"# accesses: {len(trace)}")
        lines.append(f"# footprint: {trace.footprint}")
    lines.extend(str(int(x)) for x in trace.accesses)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_text(path: str | Path, *, name: str | None = None) -> Trace:
    """Read a text trace written by :func:`write_text` (or any one-label-per-line file)."""
    path = Path(path)
    accesses = []
    trace_name = name
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if trace_name is None and line[1:].strip().startswith("name:"):
                trace_name = line.split("name:", 1)[1].strip()
            continue
        accesses.append(int(line))
    return Trace(np.asarray(accesses, dtype=np.intp), name=trace_name or path.stem)


def write_npz(trace: Trace, path: str | Path, *, metadata: dict | None = None) -> Path:
    """Write a trace as a compressed ``.npz`` archive with optional JSON metadata."""
    path = Path(path)
    meta = {"name": trace.name, "accesses": len(trace), "footprint": trace.footprint}
    if metadata:
        meta.update(metadata)
    np.savez_compressed(
        path,
        accesses=trace.accesses.astype(np.int64),
        metadata=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def read_npz(path: str | Path) -> tuple[Trace, dict]:
    """Read a trace and its metadata from a ``.npz`` archive written by :func:`write_npz`."""
    path = Path(path)
    with np.load(path) as archive:
        accesses = archive["accesses"]
        meta_bytes = archive["metadata"].tobytes() if "metadata" in archive else b"{}"
    metadata = json.loads(meta_bytes.decode("utf-8")) if meta_bytes else {}
    return Trace(accesses, name=metadata.get("name", path.stem)), metadata
