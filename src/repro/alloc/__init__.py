"""Multi-tenant cache partitioning: divide a shared budget with MRC guidance.

The subsystems below this one answer "what is a workload's miss-ratio
curve?" (exactly in :mod:`repro.cache`, approximately in
:mod:`repro.profiling`, across whole configuration grids in
:mod:`repro.sim`).  This package answers the canonical downstream question:
*given several co-running workloads and one shared cache, how should the
capacity be divided?*

:mod:`repro.alloc.curves`
    Discretized per-tenant miss curves (absolute expected misses per
    allocation unit) and Talus-style lower convex hulls.
:mod:`repro.alloc.allocators`
    The allocation strategies — marginal-gain greedy, an exact dynamic
    program, convex-hull (Talus-style) water-filling — plus the naive
    footprint-proportional baseline.
:mod:`repro.alloc.partition`
    The :class:`PartitionJob` / :class:`PartitionResult` API and
    :func:`run_partition`: compose tenants into an interleaved shared trace,
    profile each tenant (fanning across the shared process pool), allocate,
    and validate by simulating the shared cache both partitioned and
    unpartitioned.

The CLI exposes the engine as ``python -m repro partition``; the
``partition`` experiment and ``benchmarks/test_bench_partition.py`` build
on it.

Examples
--------
>>> from repro.alloc import PartitionJob, run_partition
>>> from repro.trace import TenantSpec, zipfian_trace, sawtooth_retraversal
>>> tenants = (
...     TenantSpec(zipfian_trace(4000, 256, exponent=1.0, rng=7), name="zipf"),
...     TenantSpec(sawtooth_retraversal(128).to_trace(), name="saw"),
... )
>>> result = run_partition(PartitionJob(tenants=tenants, budget=128, method="dp"))
>>> sum(result.allocation().values()) <= 128
True
>>> result.prediction_error < 1e-12  # exact profiles predict exactly
True
"""

from .allocators import dp_allocate, greedy_allocate, hull_allocate, proportional_split, total_misses
from .curves import DiscretizedMRC, discretize_curve, lower_convex_hull
from .partition import (
    METHODS,
    PartitionBaselines,
    PartitionJob,
    PartitionResult,
    TenantAllocation,
    partition_composed,
    profile_tenants,
    run_partition,
    simulate_baselines,
)

__all__ = [
    "dp_allocate",
    "greedy_allocate",
    "hull_allocate",
    "proportional_split",
    "total_misses",
    "DiscretizedMRC",
    "discretize_curve",
    "lower_convex_hull",
    "METHODS",
    "PartitionBaselines",
    "PartitionJob",
    "PartitionResult",
    "TenantAllocation",
    "partition_composed",
    "profile_tenants",
    "run_partition",
    "simulate_baselines",
]
