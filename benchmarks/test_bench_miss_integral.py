"""Appendix VIII-F — integral of the normalised truncated miss vector.

The integral is constant within an inversion level and drops linearly from 1
(identity) to 0.5 (sawtooth) with slope ``1 / (m(m-1))`` per inversion.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, run_miss_integral, write_csv
from repro.core import random_permutation, truncated_miss_integral


def test_miss_integral_linear_drop(benchmark, results_dir):
    result = benchmark(run_miss_integral, 6)

    assert result["per_inversion_drop"] == pytest.approx(result["expected_drop"])
    rows = result["rows"]
    assert rows[0]["integral_mean"] == pytest.approx(1.0)
    assert rows[-1]["integral_mean"] == pytest.approx(0.5)
    for row in rows:
        assert row["integral_spread"] < 1e-9
        assert row["integral_mean"] == pytest.approx(row["closed_form"])

    print()
    print(format_table(rows, title="S_6 — integral of normalised truncated miss vector by inversion level"))
    print(f"drop per inversion: {result['per_inversion_drop']:.6f} (expected {result['expected_drop']:.6f})")
    write_csv(results_dir / "miss_integral_s6.csv", rows)


def test_miss_integral_closed_form_large_m(benchmark, results_dir):
    # spot-check the closed form on random permutations of a large group
    benchmark(truncated_miss_integral, random_permutation(1024, rng=0))
    rows = []
    for m in (64, 256, 1024):
        sigma = random_permutation(m, rng=m)
        measured = truncated_miss_integral(sigma)
        expected = 1.0 - sigma.inversions() / (m * (m - 1))
        assert measured == pytest.approx(expected)
        rows.append({"m": m, "inversions": sigma.inversions(), "integral": measured, "closed_form": expected})
    print()
    print(format_table(rows, title="Truncated-miss integral closed form at large m"))
    write_csv(results_dir / "miss_integral_large_m.csv", rows)
