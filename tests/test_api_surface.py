"""Snapshot test of the public API surface.

The committed snapshot (``tests/fixtures/api_surface.json``) enumerates
the :mod:`repro.api` facade and every package-level ``__all__``.  Any
addition, removal, or rename of a public name fails this test until the
snapshot is deliberately regenerated — making API changes an explicit,
reviewable act rather than an accident.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_api_surface.py --regenerate
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

SNAPSHOT = Path(__file__).resolve().parent / "fixtures" / "api_surface.json"

#: Every module whose ``__all__`` is part of the public contract.  The
#: facade comes first; the rest are the importable subpackages.
PUBLIC_MODULES = (
    "repro.api",
    "repro",
    "repro.alloc",
    "repro.analysis",
    "repro.cache",
    "repro.core",
    "repro.engine",
    "repro.ml",
    "repro.obs",
    "repro.online",
    "repro.profiling",
    "repro.resilience",
    "repro.sim",
    "repro.trace",
)


def current_surface() -> dict[str, list[str]]:
    """Enumerate the live public surface, sorted for stable diffs."""
    surface: dict[str, list[str]] = {}
    for name in PUBLIC_MODULES:
        module = importlib.import_module(name)
        surface[name] = sorted(module.__all__)
    return surface


def test_surface_matches_snapshot():
    recorded = json.loads(SNAPSHOT.read_text(encoding="utf-8"))
    live = current_surface()
    assert live == recorded, (
        "public API surface drifted from tests/fixtures/api_surface.json; "
        "if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_api_surface.py --regenerate`"
    )


def test_facade_names_resolve():
    api = importlib.import_module("repro.api")
    for name in api.__all__:
        assert getattr(api, name, None) is not None, f"repro.api.{name} listed but missing"


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        SNAPSHOT.write_text(json.dumps(current_surface(), indent=2) + "\n", encoding="utf-8")
        print(f"wrote {SNAPSHOT}")
    else:
        print(json.dumps(current_surface(), indent=2))
