"""Tests for the sharded profiling execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.mrc import mrc_from_trace
from repro.profiling import (
    ProfileJob,
    ReuseTimeProfiler,
    chunk_partial,
    merge_partials,
    parallel_reuse_histogram,
    parallel_reuse_mrc,
    reuse_mrc,
    run_job,
    run_jobs,
)
from repro.trace.generators import zipfian_trace
from repro.trace.io import write_text


class TestProfileJob:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            ProfileJob()
        with pytest.raises(ValueError):
            ProfileJob(trace=np.arange(4), path="x.trace")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ProfileJob(trace=np.arange(4), mode="belady")

    def test_path_backed_job(self, tmp_path):
        trace = zipfian_trace(2_000, 128, rng=0)
        path = tmp_path / "z.trace"
        write_text(trace, path)
        result = run_job(ProfileJob(path=str(path), mode="exact"))
        assert result.curve.ratios == mrc_from_trace(trace.accesses).ratios
        assert result.accesses == 2_000


class TestRunJobs:
    @pytest.fixture(scope="class")
    def jobs(self):
        traces = [zipfian_trace(8_000, 512, rng=seed).accesses for seed in range(4)]
        return [
            ProfileJob(trace=t, name=f"zipf{i}", mode=mode)
            for i, t in enumerate(traces)
            for mode in ("exact", "shards", "reuse")
        ]

    def test_pool_matches_inline(self, jobs):
        inline = run_jobs(jobs, workers=1)
        pooled = run_jobs(jobs, workers=3)
        assert len(inline) == len(pooled) == len(jobs)
        for a, b in zip(inline, pooled):
            assert a.name == b.name and a.mode == b.mode
            assert a.curve.ratios == b.curve.ratios

    def test_results_keep_job_order(self, jobs):
        results = run_jobs(jobs, workers=2)
        assert [r.name for r in results] == [j.name for j in jobs]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            run_jobs([], workers=0)


class TestChunkPartials:
    def test_single_chunk_matches_streaming_profiler(self):
        trace = zipfian_trace(20_000, 1_024, rng=1).accesses
        partial = chunk_partial(trace, 0)
        merged = merge_partials([partial])
        sequential = ReuseTimeProfiler().feed(int(x) for x in trace)
        assert merged == sequential.histogram

    @pytest.mark.parametrize("chunks", [2, 3, 7, 16])
    def test_merged_partials_bit_identical_to_sequential(self, chunks):
        """The acceptance property: sharded execution changes nothing."""
        trace = zipfian_trace(30_000, 2_048, rng=2).accesses
        sharded = parallel_reuse_histogram(trace, workers=1, chunks=chunks)
        sequential = ReuseTimeProfiler().feed(int(x) for x in trace)
        assert sharded == sequential.histogram

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_pool_bit_identical_to_single_process(self, workers):
        trace = zipfian_trace(40_000, 2_048, rng=3).accesses
        single = parallel_reuse_histogram(trace, workers=1, chunks=workers)
        pooled = parallel_reuse_histogram(trace, workers=workers)
        assert single == pooled
        assert np.array_equal(np.trim_zeros(single.counts, "b"), np.trim_zeros(pooled.counts, "b"))

    def test_uneven_chunk_sizes(self):
        trace = zipfian_trace(10_001, 512, rng=4).accesses
        sharded = parallel_reuse_histogram(trace, workers=1, chunks=7)
        sequential = ReuseTimeProfiler().feed(int(x) for x in trace)
        assert sharded == sequential.histogram

    def test_cross_chunk_reuses_resolved(self):
        """Items split across chunks contribute the same reuse times."""
        trace = np.array([1, 2, 3, 1, 2, 3, 1, 2, 3])
        sharded = parallel_reuse_histogram(trace, workers=1, chunks=4)
        assert sharded.cold == 3
        assert sharded.accesses == 9
        # Six reuses, all at reuse time 3.
        assert int(sharded.counts[2]) == 6

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            parallel_reuse_histogram(np.array([], dtype=np.int64))


class TestParallelCurve:
    def test_parallel_curve_matches_reuse_mrc(self):
        trace = zipfian_trace(15_000, 1_024, rng=5).accesses
        assert parallel_reuse_mrc(trace, workers=2).ratios == reuse_mrc(trace).ratios
