"""Retry policies: bounded, deterministic recovery schedules for pooled tasks.

A :class:`RetryPolicy` turns :func:`repro.engine.runner.pool_map` into the
resilient pool: per-task timeouts, bounded retries with exponential backoff,
and a final inline degradation step.  The backoff *jitter* is seeded — every
delay is a pure function of ``(seed, task index, attempt)`` — so a retried
run sleeps the same schedule every time instead of sampling wall-clock
entropy.  Results are always merged in task order, so retries never change
what a run computes, only whether it survives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient pool retries, times out and degrades.

    Parameters
    ----------
    retries:
        Extra *pooled* attempts per task beyond the first (``2`` means up to
        three tries in the pool before degrading inline).
    timeout:
        Per-task seconds the parent waits for a pooled result before
        declaring the task lost (a stalled task, or a worker killed
        mid-task — e.g. by the OOM killer — whose result will never
        arrive).  ``None`` waits forever, which re-creates the pre-policy
        hang; the default keeps dead workers detectable.  Inline attempts
        cannot be preempted and therefore ignore the timeout.
    backoff:
        Base delay in seconds before retry ``k`` (grows as
        ``backoff * multiplier**(k-1)``, capped at ``max_backoff``).
    multiplier, max_backoff:
        Exponential growth factor and cap of the backoff schedule.
    jitter:
        Fraction of the backoff added as seeded jitter (``0.5`` adds up to
        +50%); drawn from :attr:`seed`, never from wall-clock entropy.
    seed:
        Seed of the jitter stream; two runs with equal policies sleep
        identical schedules.
    inline_fallback:
        Whether tasks that exhaust their pooled retries are re-run inline in
        the parent (the last rung of the degradation ladder) before the run
        fails with a :class:`~repro.resilience.errors.PoolFailureError`.
    """

    retries: int = 2
    timeout: float | None = 30.0
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    inline_fallback: bool = True

    def __post_init__(self):
        if int(self.retries) < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and float(self.timeout) <= 0.0:
            raise ValueError(f"timeout must be positive (or None), got {self.timeout}")
        for name in ("backoff", "max_backoff"):
            if float(getattr(self, name)) < 0.0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if float(self.multiplier) < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= float(self.jitter) <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def attempts(self) -> int:
        """Total pooled attempts per task (first try plus retries)."""
        return int(self.retries) + 1

    def delay(self, index: int, attempt: int) -> float:
        """Seconds to sleep before retrying task ``index`` for the ``attempt``-th time.

        ``attempt`` counts from 1 (the first *retry*).  Deterministic: the
        jitter comes from a :class:`random.Random` keyed by ``(seed, index,
        attempt)``, so the whole schedule replays identically.
        """
        attempt = int(attempt)
        if attempt < 1:
            raise ValueError(f"attempt counts retries from 1, got {attempt}")
        base = min(float(self.backoff) * float(self.multiplier) ** (attempt - 1), float(self.max_backoff))
        jitter = random.Random(f"{int(self.seed)}:{int(index)}:{attempt}").random() * float(self.jitter)
        return base * (1.0 + jitter)
