"""Unit tests for reporting helpers and poset statistics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    cover_degree_by_rank,
    expected_cover_degree,
    format_curve_family,
    format_series,
    format_table,
    rank_generating_function,
    saturated_chain_count_identity_to_top,
    whitney_numbers,
    write_csv,
)
from repro.core import mahonian_row, max_inversions


class TestReporting:
    def test_format_table_dict_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.5000" in text and "10" in text

    def test_format_table_sequence_rows_requires_headers(self):
        with pytest.raises(ValueError):
            format_table([[1, 2]])
        text = format_table([[1, 2]], headers=["x", "y"])
        assert "x" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="nothing")

    def test_format_series(self):
        text = format_series("miss", [1, 2], [0.5, 0.25])
        assert "miss" in text and "0.2500" in text

    def test_format_curve_family(self):
        text = format_curve_family("c", [1, 2], {"low": [1.0, 0.9], "high": [0.5, 0.4]}, title="fam")
        assert "fam" in text and "low" in text and "high" in text

    def test_write_csv_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": 2}, {"x": 3, "y": 4, "z": 5}]
        path = write_csv(tmp_path / "out.csv", rows)
        content = path.read_text()
        assert content.splitlines()[0] == "x,y,z"
        assert "3,4,5" in content

    def test_write_csv_empty(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""


class TestPosetStats:
    def test_rank_generating_function_evaluations(self):
        poly = rank_generating_function(5)
        assert poly(1.0) == pytest.approx(math.factorial(5))
        assert list(poly.coef) == pytest.approx(list(mahonian_row(5)))

    def test_whitney_numbers(self):
        assert whitney_numbers(4) == list(mahonian_row(4))

    def test_cover_degree_by_rank(self):
        stats = cover_degree_by_rank(4)
        assert sorted(stats) == list(range(max_inversions(4) + 1))
        assert stats[0]["min"] == stats[0]["max"] == 3  # identity has m-1 covers
        assert stats[max_inversions(4)]["max"] == 0     # top has none
        assert sum(level["count"] for level in stats.values()) == 24

    def test_expected_cover_degree_positive(self):
        value = expected_cover_degree(10, samples=50, rng=0)
        assert 0 < value < 10 * 9 / 2

    def test_saturated_chain_count_s3_by_hand(self):
        # S_3 Bruhat order: identity is covered by both length-1 elements,
        # each of which is covered by both length-2 elements, which are both
        # covered by the top: 2 * 2 * 1 = 4 maximal chains.
        assert saturated_chain_count_identity_to_top(3) == 4

    def test_saturated_chain_count_matches_covering_graph_dp(self):
        from repro.core import Permutation, build_covering_graph, count_maximal_chains

        for m in (3, 4):
            graph = build_covering_graph(m)
            expected = count_maximal_chains(graph, Permutation.identity(m), Permutation.reverse(m))
            assert saturated_chain_count_identity_to_top(m) == expected

    def test_saturated_chain_count_limit(self):
        with pytest.raises(ValueError):
            saturated_chain_count_identity_to_top(8)
