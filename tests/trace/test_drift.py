"""Unit tests for the phase-shifting workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.mrc import mrc_from_trace
from repro.trace.drift import (
    DriftingWorkload,
    PhasedTrace,
    compose_phases,
    tenant_churn,
    three_phase_pair,
    working_set_migration,
    zipf_alpha_drift,
)


class TestPhasedTrace:
    def test_boundaries_validated(self):
        from repro.trace import Trace

        with pytest.raises(ValueError):
            PhasedTrace(trace=Trace([0, 1, 2]), boundaries=(1,))
        with pytest.raises(ValueError):
            PhasedTrace(trace=Trace([0, 1, 2]), boundaries=(0, 2, 2))
        with pytest.raises(ValueError):
            PhasedTrace(trace=Trace([0, 1, 2]), boundaries=(0, 3))

    def test_phase_slicing(self):
        phased = zipf_alpha_drift(50, 20, [0.5, 1.0, 1.5], seed=1)
        assert phased.num_phases == 3
        assert len(phased.trace) == 150
        assert sum(phase.size for phase in (phased.phase(0), phased.phase(1), phased.phase(2))) == 150


class TestZipfAlphaDrift:
    def test_deterministic_in_seed(self):
        a = zipf_alpha_drift(200, 64, [0.3, 1.2], seed=5)
        b = zipf_alpha_drift(200, 64, [0.3, 1.2], seed=5)
        assert np.array_equal(a.trace.accesses, b.trace.accesses)

    def test_skew_actually_drifts(self):
        """A hotter exponent concentrates mass: the MRC knee moves left."""
        phased = zipf_alpha_drift(5000, 500, [0.1, 1.4], seed=3)
        mild = mrc_from_trace(phased.phase(0))
        hot = mrc_from_trace(phased.phase(1))
        assert hot[50] < mild[50]

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            zipf_alpha_drift(100, 10, [])


class TestWorkingSetMigration:
    def test_phases_occupy_their_ranges(self):
        phased = working_set_migration(300, [(0, 50), (100, 80), (300, 20)], seed=2)
        assert int(phased.phase(0).max()) < 50
        assert 100 <= int(phased.phase(1).min()) and int(phased.phase(1).max()) < 180
        assert 300 <= int(phased.phase(2).min()) and int(phased.phase(2).max()) < 320

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            working_set_migration(100, [])
        with pytest.raises(ValueError):
            working_set_migration(100, [(-1, 10)])


class TestComposePhases:
    def test_phase_alignment_and_namespaces(self):
        streams = [
            [np.zeros(10, dtype=np.int64), np.ones(10, dtype=np.int64)],
            [np.full(5, 2, dtype=np.int64), np.full(5, 3, dtype=np.int64)],
        ]
        workload = compose_phases(streams, names=("a", "b"), seed=0)
        assert isinstance(workload, DriftingWorkload)
        assert workload.boundaries == (0, 15)
        composed = workload.composed
        # namespaces disjoint: tenant b's labels are offset past tenant a's
        assert set(composed.tenant_trace(0)) <= {0, 1}
        assert min(composed.tenant_trace(1)) >= 2
        # phase 0 holds exactly the phase-0 events of both tenants
        assert workload.tenant_phase_trace(0, 0).size == 10
        assert workload.tenant_phase_trace(1, 0).size == 5

    def test_inactive_phase_means_no_events(self):
        streams = [
            [np.zeros(10, dtype=np.int64), np.zeros(10, dtype=np.int64)],
            [None, np.full(8, 1, dtype=np.int64)],
        ]
        workload = compose_phases(streams, names=("a", "b"), seed=0)
        assert workload.tenant_phase_trace(1, 0).size == 0
        assert workload.tenant_phase_trace(1, 1).size == 8

    def test_order_preserved_within_tenant(self):
        streams = [[np.arange(20, dtype=np.int64), np.arange(20, dtype=np.int64)[::-1]]]
        workload = compose_phases(streams, names=("solo",), seed=3)
        expected = np.concatenate([np.arange(20), np.arange(20)[::-1]])
        assert np.array_equal(workload.composed.tenant_trace(0), expected)

    def test_validation(self):
        stream = [np.zeros(4, dtype=np.int64)]
        with pytest.raises(ValueError):
            compose_phases([], names=())
        with pytest.raises(ValueError):
            compose_phases([stream], names=("a", "b"))
        with pytest.raises(ValueError):
            compose_phases([stream, stream], names=("a", "a"))
        with pytest.raises(ValueError):
            compose_phases([stream], names=("a",), rates=[0.0])
        with pytest.raises(ValueError):
            compose_phases([[None]], names=("a",))
        with pytest.raises(ValueError):
            compose_phases([[np.array([-1])]], names=("a",))

    def test_deterministic_in_seed(self):
        streams = [
            [np.arange(30, dtype=np.int64), np.arange(30, dtype=np.int64)],
            [np.arange(30, dtype=np.int64), np.arange(30, dtype=np.int64)],
        ]
        a = compose_phases(streams, names=("x", "y"), seed=9)
        b = compose_phases(streams, names=("x", "y"), seed=9)
        c = compose_phases(streams, names=("x", "y"), seed=10)
        assert np.array_equal(a.composed.tenant_ids, b.composed.tenant_ids)
        assert not np.array_equal(a.composed.tenant_ids, c.composed.tenant_ids)


class TestCanonicalWorkloads:
    def test_three_phase_pair_is_a_seesaw(self):
        workload = three_phase_pair(900, large=90, small=25, seed=7)
        assert workload.num_phases == 3
        assert workload.composed.names == ("alpha", "beta")
        for phase, (alpha_fp, beta_fp) in enumerate([(90, 25), (25, 90), (90, 25)]):
            alpha = workload.tenant_phase_trace(0, phase)
            beta = workload.tenant_phase_trace(1, phase)
            assert np.unique(alpha).size <= alpha_fp
            assert np.unique(beta).size <= beta_fp
            # each phase's ranges are disjoint from the other phases'
            assert alpha.size > 0 and beta.size > 0

    def test_three_phase_ranges_disjoint_across_phases(self):
        workload = three_phase_pair(600, large=50, small=20, seed=1)
        for tenant in (0, 1):
            sets = [set(workload.tenant_phase_trace(tenant, p).tolist()) for p in range(3)]
            assert not (sets[0] & sets[1]) and not (sets[1] & sets[2]) and not (sets[0] & sets[2])

    def test_tenant_churn_visitor_absent_outside_middle_phase(self):
        workload = tenant_churn(600, resident_items=40, visitor_items=40, seed=4)
        assert workload.tenant_phase_trace(1, 0).size == 0
        assert workload.tenant_phase_trace(1, 1).size == 600
        assert workload.tenant_phase_trace(1, 2).size == 0
        assert workload.tenant_phase_trace(0, 0).size == 600
