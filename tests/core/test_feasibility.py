"""Unit tests for repro.core.feasibility."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    DependencyDAG,
    Permutation,
    best_feasible_extension,
    count_linear_extensions,
    feasibility_predicate,
    greedy_feasible_extension,
    is_feasible,
    max_inversions,
    random_linear_extension,
)


class TestDependencyDAG:
    def test_unconstrained(self):
        dag = DependencyDAG.unconstrained(5)
        assert dag.size == 5
        assert dag.edges == frozenset()

    def test_total_order(self):
        dag = DependencyDAG.total_order(4)
        assert len(dag.edges) == 3
        assert count_linear_extensions(dag) == 1

    def test_blocks(self):
        dag = DependencyDAG.blocks([2, 3])
        assert dag.size == 5
        assert (0, 1) in dag.edges and (2, 3) in dag.edges and (3, 4) in dag.edges
        assert (1, 2) not in dag.edges

    def test_layered(self):
        dag = DependencyDAG.layered([2, 2])
        assert dag.size == 4
        assert {(0, 2), (0, 3), (1, 2), (1, 3)} == set(dag.edges)
        assert count_linear_extensions(dag) == 4

    def test_random_respects_program_order(self, rng):
        dag = DependencyDAG.random(8, 0.5, rng)
        assert all(u < v for u, v in dag.edges)
        assert is_feasible(Permutation.identity(8), dag)

    def test_random_probability_extremes(self, rng):
        assert DependencyDAG.random(6, 0.0, rng).edges == frozenset()
        full = DependencyDAG.random(6, 1.0, rng)
        assert len(full.edges) == 15

    def test_random_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            DependencyDAG.random(4, 1.5, rng)

    def test_rejects_cycles(self):
        with pytest.raises(ValueError):
            DependencyDAG(3, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_self_edges_and_out_of_range(self):
        with pytest.raises(ValueError):
            DependencyDAG(3, [(1, 1)])
        with pytest.raises(ValueError):
            DependencyDAG(3, [(0, 5)])

    def test_predecessors_successors(self):
        dag = DependencyDAG(4, [(0, 2), (1, 2), (2, 3)])
        assert dag.predecessors()[2] == {0, 1}
        assert dag.successors()[2] == {3}
        assert dag.predecessor_masks()[2] == 0b11

    def test_to_networkx(self):
        graph = DependencyDAG(3, [(0, 1)]).to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.has_edge(0, 1)

    def test_equality_and_hash(self):
        a = DependencyDAG(3, [(0, 1)])
        b = DependencyDAG(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestFeasibility:
    def test_identity_always_feasible_for_forward_dags(self, rng):
        for _ in range(5):
            dag = DependencyDAG.random(7, 0.4, rng)
            assert is_feasible(Permutation.identity(7), dag)

    def test_total_order_only_identity(self):
        dag = DependencyDAG.total_order(4)
        assert is_feasible(Permutation.identity(4), dag)
        assert not is_feasible(Permutation.reverse(4), dag)
        assert not is_feasible(Permutation([0, 2, 1, 3]), dag)

    def test_unconstrained_everything_feasible(self, s4):
        dag = DependencyDAG.unconstrained(4)
        assert all(is_feasible(sigma, dag) for sigma in s4)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            is_feasible(Permutation.identity(3), DependencyDAG.unconstrained(4))

    def test_predicate_factory(self):
        dag = DependencyDAG.total_order(3)
        predicate = feasibility_predicate(dag)
        assert predicate(Permutation.identity(3))
        assert not predicate(Permutation.reverse(3))

    def test_feasible_count_definition(self, s4):
        dag = DependencyDAG(4, [(0, 1), (2, 3)])
        brute = sum(1 for sigma in s4 if is_feasible(sigma, dag))
        assert brute == count_linear_extensions(dag)


class TestOptimisation:
    def test_unconstrained_optimum_is_sawtooth(self):
        dag = DependencyDAG.unconstrained(6)
        sigma, ell = best_feasible_extension(dag)
        assert sigma.is_reverse()
        assert ell == max_inversions(6)
        assert greedy_feasible_extension(dag).is_reverse()

    def test_total_order_optimum_is_identity(self):
        dag = DependencyDAG.total_order(6)
        sigma, ell = best_feasible_extension(dag)
        assert sigma.is_identity()
        assert ell == 0

    def test_exact_matches_brute_force(self, rng, s4):
        for _ in range(10):
            dag = DependencyDAG.random(4, 0.4, rng)
            best_brute = max((sigma.inversions() for sigma in s4 if is_feasible(sigma, dag)), default=0)
            sigma, ell = best_feasible_extension(dag)
            assert ell == best_brute
            assert is_feasible(sigma, dag)
            assert sigma.inversions() == ell

    def test_greedy_feasible_and_bounded_by_exact(self, rng):
        for _ in range(10):
            dag = DependencyDAG.random(10, 0.3, rng)
            greedy = greedy_feasible_extension(dag)
            assert is_feasible(greedy, dag)
            _, exact = best_feasible_extension(dag)
            assert greedy.inversions() <= exact

    def test_exact_size_limit(self):
        with pytest.raises(ValueError):
            best_feasible_extension(DependencyDAG.unconstrained(30))
        with pytest.raises(ValueError):
            count_linear_extensions(DependencyDAG.unconstrained(30))

    def test_empty_dag(self):
        sigma, ell = best_feasible_extension(DependencyDAG.unconstrained(0))
        assert sigma.size == 0 and ell == 0
        assert count_linear_extensions(DependencyDAG.unconstrained(0)) == 1

    def test_count_unconstrained_is_factorial(self):
        assert count_linear_extensions(DependencyDAG.unconstrained(5)) == math.factorial(5)

    def test_blocks_optimum_keeps_blocks_in_order(self):
        dag = DependencyDAG.blocks([3, 3])
        sigma, ell = best_feasible_extension(dag)
        assert is_feasible(sigma, dag)
        # best order interleaves/reverses blocks but keeps internal order;
        # its inversion count is exactly block_a * block_b = 9
        assert ell == 9

    def test_random_linear_extension_feasible(self, rng):
        dag = DependencyDAG.random(12, 0.3, rng)
        for _ in range(5):
            sigma = random_linear_extension(dag, rng)
            assert is_feasible(sigma, dag)
