"""Unit tests for repro.core.labelings."""

from __future__ import annotations

import pytest

from repro.core import (
    CompositeLabeling,
    MissRatioLabeling,
    Permutation,
    RandomTiebreakLabeling,
    RankedMissRatioLabeling,
    TransposedLabeling,
    all_permutations,
    cache_hit_vector,
    chain_labels_nondecreasing,
    count_nondecreasing_chains,
    covers,
    is_el_labeling,
    is_good_labeling,
)


class TestMissRatioLabeling:
    def test_label_is_hit_vector(self):
        labeling = MissRatioLabeling()
        sigma = Permutation.identity(4)
        tau = covers(sigma)[0]
        assert labeling.label(sigma, tau) == tuple(int(x) for x in cache_hit_vector(tau))

    def test_ties_at_identity_counterexample(self):
        # Section V-B.1: every cover of the identity has the same hit vector,
        # so lambda_e cannot distinguish them.
        labeling = MissRatioLabeling()
        e = Permutation.identity(5)
        best, _ = labeling.best_covers(e, covers(e))
        assert len(best) == len(covers(e))

    def test_not_a_good_labeling(self, s4):
        assert not is_good_labeling(MissRatioLabeling(), s4)

    def test_best_covers_empty(self):
        best, label = MissRatioLabeling().best_covers(Permutation.identity(3), [])
        assert best == [] and label is None


class TestRankedLabeling:
    def test_identity_psi_equals_lambda_e(self, s4):
        ranked = RankedMissRatioLabeling(Permutation.identity(4))
        plain = MissRatioLabeling()
        for sigma in s4:
            for tau in covers(sigma):
                assert ranked.label(sigma, tau) == plain.label(sigma, tau)

    def test_psi_reorders_comparison(self):
        # prefer cache size m-1 first: the identity counterexample disappears
        m = 5
        psi = Permutation([m - 2] + list(range(m - 2)) + [m - 1])
        ranked = RankedMissRatioLabeling(psi)
        e = Permutation.identity(m)
        tau = covers(e)[0]
        label = ranked.label(e, tau)
        assert label[0] == int(cache_hit_vector(tau)[m - 2])

    def test_size_mismatch(self):
        ranked = RankedMissRatioLabeling(Permutation.identity(3))
        with pytest.raises(ValueError):
            ranked.label(Permutation.identity(4), covers(Permutation.identity(4))[0])


class TestTransposedLabeling:
    def test_is_good_labeling(self, s4):
        assert is_good_labeling(TransposedLabeling(), s4)

    def test_distinct_labels_out_of_identity(self):
        labeling = TransposedLabeling()
        e = Permutation.identity(5)
        labels = {labeling.label(e, tau) for tau in covers(e)}
        assert len(labels) == len(covers(e))

    def test_rejects_non_cover_edge(self):
        labeling = TransposedLabeling()
        with pytest.raises(ValueError):
            labeling.label(Permutation.identity(4), Permutation([1, 2, 0, 3]))


class TestCompositeAndRandom:
    def test_composite_breaks_ties(self, s4):
        composite = CompositeLabeling(MissRatioLabeling(), TransposedLabeling())
        assert is_good_labeling(composite, s4)

    def test_composite_primary_dominates(self):
        composite = CompositeLabeling(MissRatioLabeling(), TransposedLabeling())
        sigma = Permutation([1, 0, 2, 3])
        taus = covers(sigma)
        labels = [composite.label(sigma, t) for t in taus]
        primary = [MissRatioLabeling().label(sigma, t) for t in taus]
        best_primary = max(primary)
        best_composite = max(labels)
        assert best_composite[0] == tuple(best_primary)

    def test_random_tiebreak_preserves_base_ordering(self):
        base = MissRatioLabeling()
        wrapped = RandomTiebreakLabeling(base, rng=0)
        sigma = Permutation.identity(4)
        taus = covers(sigma)
        # base labels compare first; random component only matters on ties
        labels = [wrapped.label(sigma, t) for t in taus]
        assert all(len(lbl) == 5 for lbl in labels)
        assert len(set(labels)) == len(labels)


class TestELDiagnostics:
    def test_chain_labels_nondecreasing(self):
        labeling = TransposedLabeling()
        chain = [Permutation.identity(3), Permutation([1, 0, 2]), Permutation([1, 2, 0])]
        assert isinstance(chain_labels_nondecreasing(labeling, chain), bool)

    def test_count_nondecreasing_chains_trivial_cases(self):
        labeling = TransposedLabeling()
        e = Permutation.identity(3)
        assert count_nondecreasing_chains(labeling, e, e) == 1
        w0 = Permutation.reverse(3)
        assert count_nondecreasing_chains(labeling, w0, e) == 0

    def test_count_nondecreasing_chains_cover(self):
        labeling = MissRatioLabeling()
        e = Permutation.identity(3)
        tau = covers(e)[0]
        assert count_nondecreasing_chains(labeling, e, tau) == 1

    def test_miss_ratio_labeling_is_not_el(self):
        nodes = list(all_permutations(3))
        assert not is_el_labeling(MissRatioLabeling(), nodes, max_interval_length=3)

    def test_transposed_labeling_el_on_short_intervals_s3(self):
        # The reflection-based labeling restricted to S_3 behaves as an
        # EL-labeling on intervals of length <= 2 (a sanity check of the
        # diagnostic machinery, not a general theorem).
        nodes = list(all_permutations(3))
        result = is_el_labeling(TransposedLabeling(), nodes, max_interval_length=1)
        assert result is True
