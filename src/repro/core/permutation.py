"""Permutations of the symmetric group :math:`S_m`.

This module provides the :class:`Permutation` value type used throughout the
library.  A permutation is stored in 0-indexed *one-line notation*: the tuple
``sigma`` where ``sigma[i]`` is the image of position ``i``.  The paper's
examples use 1-indexed notation; the :meth:`Permutation.from_one_indexed` and
:meth:`Permutation.one_indexed` helpers convert between the two.

Design notes
------------
* Instances are immutable and hashable so they can be used as graph nodes in
  the Bruhat covering graph (:mod:`repro.core.covering_graph`).
* The heavy numeric kernels (inversion counting, applying a permutation to a
  long trace) are NumPy-vectorised; see :mod:`repro.core.inversions` for the
  algorithmic variants.
* Group-theoretic helpers (composition, inverse, conjugation, cycle type,
  Lehmer code, rank/unrank in lexicographic order) are provided because the
  ChainFind algorithm and the Mahonian analysis in the appendix rely on them.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from .._util import check_nonnegative_int, check_permutation_array, check_positive_int, ensure_rng

__all__ = [
    "Permutation",
    "all_permutations",
    "permutations_by_inversions",
    "random_permutation",
    "transposition",
    "adjacent_transposition",
]


class Permutation:
    """An element of the symmetric group :math:`S_m` in one-line notation.

    Parameters
    ----------
    mapping:
        Iterable of the images ``sigma(0), sigma(1), ..., sigma(m-1)`` — i.e.
        0-indexed one-line notation.  Must contain each of ``0..m-1`` exactly
        once.

    Examples
    --------
    >>> sigma = Permutation([1, 0, 2])
    >>> sigma(0)
    1
    >>> sigma.inversions()
    1
    >>> (sigma * sigma).is_identity()
    True
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Iterable[int]):
        arr = check_permutation_array(mapping, "mapping")
        self._map: tuple[int, ...] = tuple(int(x) for x in arr)
        self._hash: int | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, m: int) -> "Permutation":
        """The identity permutation of ``S_m`` (the *cyclic* re-traversal)."""
        m = check_nonnegative_int(m, "m")
        return cls(range(m))

    @classmethod
    def reverse(cls, m: int) -> "Permutation":
        """The reverse permutation ``m-1, ..., 1, 0`` (the *sawtooth* re-traversal).

        This is the maximal element of the Bruhat order with
        ``m * (m - 1) / 2`` inversions.
        """
        m = check_nonnegative_int(m, "m")
        return cls(range(m - 1, -1, -1))

    @classmethod
    def from_one_indexed(cls, mapping: Iterable[int]) -> "Permutation":
        """Build a permutation from 1-indexed one-line notation (as the paper writes it).

        >>> Permutation.from_one_indexed([2, 1, 3, 4]).one_indexed()
        (2, 1, 3, 4)
        """
        arr = np.asarray(list(mapping), dtype=np.intp)
        return cls(arr - 1)

    @classmethod
    def from_cycles(cls, m: int, cycles: Iterable[Sequence[int]], *, one_indexed: bool = False) -> "Permutation":
        """Build a permutation of ``S_m`` from disjoint (or composed) cycles.

        Cycles are applied right-to-left, matching the usual composition of
        functions, so ``from_cycles(3, [(0, 1), (1, 2)])`` equals
        ``from_cycles(3, [(0, 1)]) * from_cycles(3, [(1, 2)])``.

        Parameters
        ----------
        m:
            Size of the symmetric group.
        cycles:
            Iterable of cycles; each cycle is a sequence of distinct points.
        one_indexed:
            When ``True`` the cycle entries are interpreted 1-indexed, as in
            the paper's ``(13)`` style notation.
        """
        m = check_nonnegative_int(m, "m")
        result = list(range(m))
        cycle_list = [tuple(c) for c in cycles]
        for cycle in reversed(cycle_list):
            if one_indexed:
                cycle = tuple(x - 1 for x in cycle)
            if len(cycle) < 2:
                continue
            if len(set(cycle)) != len(cycle):
                raise ValueError(f"cycle {cycle} contains repeated points")
            for x in cycle:
                if not 0 <= x < m:
                    raise ValueError(f"cycle point {x} outside 0..{m - 1}")
            # Apply the cycle to the current one-line map: the permutation
            # built so far is composed on the left by the cycle.
            mapping = {cycle[i]: cycle[(i + 1) % len(cycle)] for i in range(len(cycle))}
            result = [mapping.get(v, v) for v in result]
        return cls(result)

    @classmethod
    def from_lehmer(cls, code: Sequence[int]) -> "Permutation":
        """Build a permutation from its Lehmer code (inversion table).

        ``code[i]`` is the number of positions ``j > i`` with
        ``sigma(j) < sigma(i)``; it must satisfy ``0 <= code[i] <= m - 1 - i``.
        """
        code = list(int(c) for c in code)
        m = len(code)
        available = list(range(m))
        out = []
        for i, c in enumerate(code):
            if not 0 <= c <= m - 1 - i:
                raise ValueError(f"Lehmer code entry {c} at index {i} out of range 0..{m - 1 - i}")
            out.append(available.pop(c))
        return cls(out)

    @classmethod
    def unrank(cls, m: int, rank: int) -> "Permutation":
        """Return the permutation of ``S_m`` with lexicographic rank ``rank``.

        Ranks run from ``0`` (identity) to ``m! - 1`` (reverse permutation).
        """
        m = check_nonnegative_int(m, "m")
        rank = check_nonnegative_int(rank, "rank")
        total = math.factorial(m)
        if rank >= total and m > 0:
            raise ValueError(f"rank {rank} out of range for S_{m} (m! = {total})")
        code = []
        for i in range(m):
            f = math.factorial(m - 1 - i)
            code.append(rank // f)
            rank %= f
        return cls.from_lehmer(code)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of points ``m`` the permutation acts on."""
        return len(self._map)

    @property
    def one_line(self) -> tuple[int, ...]:
        """0-indexed one-line notation as a tuple."""
        return self._map

    def one_indexed(self) -> tuple[int, ...]:
        """1-indexed one-line notation, matching the paper's examples."""
        return tuple(x + 1 for x in self._map)

    def to_array(self) -> np.ndarray:
        """One-line notation as a fresh ``np.intp`` array."""
        return np.asarray(self._map, dtype=np.intp)

    def __call__(self, i: int) -> int:
        """Image of point ``i`` under the permutation."""
        return self._map[i]

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self._map)

    def __iter__(self) -> Iterator[int]:
        return iter(self._map)

    def __getitem__(self, i: int) -> int:
        return self._map[i]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Permutation):
            return self._map == other._map
        if isinstance(other, (tuple, list)):
            return self._map == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._map)
        return self._hash

    def __repr__(self) -> str:
        return f"Permutation({list(self._map)})"

    def __str__(self) -> str:
        cycles = self.cycles(include_fixed_points=False)
        if not cycles:
            return f"e[{self.size}]"
        return "".join("(" + " ".join(str(x) for x in c) + ")" for c in cycles)

    # ------------------------------------------------------------------ #
    # Group operations
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "Permutation") -> "Permutation":
        """Composition ``self ∘ other``: ``(self * other)(i) == self(other(i))``."""
        if not isinstance(other, Permutation):
            return NotImplemented
        if self.size != other.size:
            raise ValueError(f"cannot compose permutations of different sizes ({self.size} vs {other.size})")
        return Permutation(tuple(self._map[other._map[i]] for i in range(self.size)))

    def inverse(self) -> "Permutation":
        """The group inverse ``sigma^{-1}``."""
        inv = [0] * self.size
        for i, v in enumerate(self._map):
            inv[v] = i
        return Permutation(inv)

    def conjugate(self, tau: "Permutation") -> "Permutation":
        """Return ``tau * self * tau^{-1}``."""
        return tau * self * tau.inverse()

    def power(self, k: int) -> "Permutation":
        """The ``k``-th power of the permutation (``k`` may be negative)."""
        if self.size == 0:
            return self
        base = self if k >= 0 else self.inverse()
        k = abs(int(k))
        result = Permutation.identity(self.size)
        while k:
            if k & 1:
                result = result * base
            base = base * base
            k >>= 1
        return result

    def is_identity(self) -> bool:
        """Whether this is the identity permutation (the cyclic re-traversal)."""
        return all(v == i for i, v in enumerate(self._map))

    def is_reverse(self) -> bool:
        """Whether this is the reverse permutation (the sawtooth re-traversal)."""
        m = self.size
        return all(v == m - 1 - i for i, v in enumerate(self._map))

    def is_involution(self) -> bool:
        """Whether ``sigma * sigma`` is the identity."""
        return all(self._map[self._map[i]] == i for i in range(self.size))

    def order(self) -> int:
        """The order of the permutation in the group (lcm of cycle lengths)."""
        result = 1
        for cycle in self.cycles(include_fixed_points=False):
            result = math.lcm(result, len(cycle))
        return result

    # ------------------------------------------------------------------ #
    # Structure: cycles, descents, inversions
    # ------------------------------------------------------------------ #
    def cycles(self, *, include_fixed_points: bool = False) -> list[tuple[int, ...]]:
        """The disjoint cycle decomposition (cycles of length ≥ 2 unless requested)."""
        seen = [False] * self.size
        out: list[tuple[int, ...]] = []
        for start in range(self.size):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            nxt = self._map[start]
            while nxt != start:
                cycle.append(nxt)
                seen[nxt] = True
                nxt = self._map[nxt]
            if len(cycle) > 1 or include_fixed_points:
                out.append(tuple(cycle))
        return out

    def cycle_type(self) -> tuple[int, ...]:
        """Cycle lengths (including fixed points) sorted in decreasing order."""
        lengths = sorted((len(c) for c in self.cycles(include_fixed_points=True)), reverse=True)
        return tuple(lengths)

    def descents(self) -> list[int]:
        """Positions ``i`` with ``sigma(i) > sigma(i + 1)`` (0-indexed)."""
        return [i for i in range(self.size - 1) if self._map[i] > self._map[i + 1]]

    def inversions(self) -> int:
        """The inversion number ``ℓ(sigma)`` — the Bruhat/Coxeter length.

        This counts pairs ``i < j`` with ``sigma(i) > sigma(j)``.  Theorem 2 of
        the paper identifies this quantity with the summed cache-hit vector of
        the re-traversal ``A sigma(A)``.
        """
        from .inversions import count_inversions

        return count_inversions(self._map)

    def inversion_pairs(self) -> list[tuple[int, int]]:
        """All pairs ``(i, j)`` with ``i < j`` and ``sigma(i) > sigma(j)``."""
        m = self.size
        return [(i, j) for i in range(m) for j in range(i + 1, m) if self._map[i] > self._map[j]]

    def lehmer_code(self) -> tuple[int, ...]:
        """The Lehmer code: ``code[i] = #{j > i : sigma(j) < sigma(i)}``."""
        m = self.size
        code = []
        for i in range(m):
            code.append(sum(1 for j in range(i + 1, m) if self._map[j] < self._map[i]))
        return tuple(code)

    def rank(self) -> int:
        """Lexicographic rank of the permutation in ``S_m`` (0-based)."""
        code = self.lehmer_code()
        m = self.size
        return sum(c * math.factorial(m - 1 - i) for i, c in enumerate(code))

    def parity(self) -> int:
        """``0`` for even permutations, ``1`` for odd (parity of the inversion number)."""
        return self.inversions() % 2

    def sign(self) -> int:
        """``+1`` for even permutations, ``-1`` for odd."""
        return 1 if self.parity() == 0 else -1

    # ------------------------------------------------------------------ #
    # Action on data
    # ------------------------------------------------------------------ #
    def apply(self, sequence: Sequence[Any] | np.ndarray) -> np.ndarray | list:
        """Rearrange ``sequence`` so that output position ``i`` holds ``sequence[sigma(i)]``.

        This is exactly the paper's construction of the re-traversal
        ``B = sigma(A)``: if ``A = (1, 2, ..., m)`` (1-indexed) then
        ``B[i] = sigma(A[i]) = sigma(i)``.

        NumPy arrays are returned as arrays (fancy indexing, no Python loop);
        other sequences are returned as lists.
        """
        if len(sequence) != self.size:
            raise ValueError(f"sequence length {len(sequence)} does not match permutation size {self.size}")
        if isinstance(sequence, np.ndarray):
            return sequence[np.asarray(self._map, dtype=np.intp)]
        return [sequence[v] for v in self._map]

    def swap_positions(self, i: int, j: int) -> "Permutation":
        """Return the permutation obtained by swapping the *values at positions* ``i`` and ``j``.

        In group terms this is ``self * (i j)`` — multiplication on the right
        by a transposition of positions, which is the move that generates the
        Bruhat covering relation used by ChainFind.
        """
        m = self.size
        if not (0 <= i < m and 0 <= j < m):
            raise ValueError(f"positions ({i}, {j}) out of range for S_{m}")
        new = list(self._map)
        new[i], new[j] = new[j], new[i]
        return Permutation(new)

    def shifted(self, offset: int) -> "Permutation":
        """Conjugate by a relabelling that adds ``offset`` cyclically (utility for tests)."""
        m = self.size
        offset %= max(m, 1)
        relabel = Permutation([(i + offset) % m for i in range(m)])
        return relabel * self * relabel.inverse()


# ---------------------------------------------------------------------- #
# Module-level constructors and enumerations
# ---------------------------------------------------------------------- #
def transposition(m: int, a: int, b: int) -> Permutation:
    """The transposition ``(a b)`` in ``S_m`` (0-indexed points)."""
    m = check_positive_int(m, "m")
    if a == b:
        raise ValueError("transposition requires two distinct points")
    if not (0 <= a < m and 0 <= b < m):
        raise ValueError(f"points ({a}, {b}) out of range for S_{m}")
    mapping = list(range(m))
    mapping[a], mapping[b] = mapping[b], mapping[a]
    return Permutation(mapping)


def adjacent_transposition(m: int, i: int) -> Permutation:
    """The adjacent transposition (simple reflection) ``s_i = (i, i+1)`` in ``S_m``."""
    if not 0 <= i < m - 1:
        raise ValueError(f"adjacent transposition index {i} out of range for S_{m}")
    return transposition(m, i, i + 1)


def all_permutations(m: int) -> Iterator[Permutation]:
    """Iterate over every permutation of ``S_m`` in lexicographic order.

    There are ``m!`` of them; callers enumerating beyond ``m ≈ 9`` should use
    sampling (:func:`random_permutation`) instead.
    """
    m = check_nonnegative_int(m, "m")
    for p in itertools.permutations(range(m)):
        yield Permutation(p)


def permutations_by_inversions(m: int) -> dict[int, list[Permutation]]:
    """Group every permutation of ``S_m`` by inversion number.

    Returns a dict mapping ``ℓ -> [permutations with that many inversions]``.
    The sizes of the groups are the Mahonian numbers ``M(m, ℓ)``
    (see :mod:`repro.core.mahonian`).
    """
    groups: dict[int, list[Permutation]] = {}
    for sigma in all_permutations(m):
        groups.setdefault(sigma.inversions(), []).append(sigma)
    return groups


def random_permutation(m: int, rng: np.random.Generator | int | None = None) -> Permutation:
    """Draw a uniformly random permutation of ``S_m``."""
    m = check_nonnegative_int(m, "m")
    generator = ensure_rng(rng)
    return Permutation(generator.permutation(m))
