"""Set-associative cache model.

Real hardware caches are set-associative: an item may only reside in the set
selected by its address, and replacement is applied within the set.  The paper
explicitly scopes its theory to fully-associative LRU (Section II); this model
is the substrate for measuring how far the Bruhat-order locality ranking
degrades under realistic associativity — one of the ablation benchmarks.

The per-set policy is pluggable (LRU by default, FIFO or random optionally) and
the index function can be the usual modulo mapping or a caller-supplied hash.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .._util import check_positive_int, ensure_rng
from .base import CacheModel
from .fifo import FIFOCache
from .lru import LRUCache
from .random_policy import RandomCache

__all__ = ["SetAssociativeCache"]

_POLICIES = {"lru": LRUCache, "fifo": FIFOCache, "random": RandomCache}


class SetAssociativeCache(CacheModel):
    """A cache of ``num_sets`` sets, each ``ways`` wide, with a per-set policy.

    Parameters
    ----------
    num_sets:
        Number of sets; the total capacity is ``num_sets * ways``.
    ways:
        Associativity (entries per set).  ``num_sets = 1`` recovers a
        fully-associative cache; ``ways = 1`` is a direct-mapped cache.
    policy:
        Replacement policy applied within each set: ``"lru"``, ``"fifo"`` or
        ``"random"``.
    index_function:
        Maps an item label to its set index; defaults to ``item % num_sets``.
    rng:
        Seed or generator (used only by the random policy).
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        *,
        policy: str = "lru",
        index_function: Callable[[int], int] | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        num_sets = check_positive_int(num_sets, "num_sets")
        ways = check_positive_int(ways, "ways")
        super().__init__(num_sets * ways)
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}")
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self._index_function = index_function or (lambda item: item % self.num_sets)
        self._rng = ensure_rng(rng)
        self._sets = self._make_sets()

    def _make_sets(self):
        cls = _POLICIES[self.policy]
        if self.policy == "random":
            return [cls(self.ways, rng=self._rng) for _ in range(self.num_sets)]
        return [cls(self.ways) for _ in range(self.num_sets)]

    @property
    def name(self) -> str:
        """Policy name used in reports."""
        return f"{self.ways}-way-{self.policy}"

    def access(self, item: int) -> bool:
        """Access one item; return ``True`` on a hit."""
        set_index = self._index_function(item) % self.num_sets
        bank = self._sets[set_index]
        hit = bank.access(item)
        if not hit:
            # propagate the bank's eviction count into the aggregate stats
            self.stats.evictions = sum(s.stats.evictions for s in self._sets)
        return hit

    def contents(self) -> set[int]:
        """The set of items currently cached (union of all sets)."""
        resident: set[int] = set()
        for bank in self._sets:
            resident |= bank.contents()
        return resident

    def _reset_state(self) -> None:
        self._sets = self._make_sets()
