"""Unit tests for miss-ratio-curve construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import MissRatioCurve, average_curves, mrc_by_simulation, mrc_from_trace
from repro.core import Permutation, miss_ratio_curve
from repro.trace import PeriodicTrace, zipfian_trace


class TestMissRatioCurve:
    def test_from_periodic_trace_matches_closed_form(self):
        sigma = Permutation([3, 1, 0, 2, 4])
        curve = mrc_from_trace(PeriodicTrace(sigma).to_trace().accesses)
        closed = miss_ratio_curve(sigma, convention="full")
        assert np.allclose(curve.as_array(), closed)

    def test_matches_per_size_simulation(self, rng):
        trace = zipfian_trace(300, 40, rng=rng).accesses
        curve = mrc_from_trace(trace)
        sim = mrc_by_simulation(trace, [1, 2, 5, 20, 40])
        for c, ratio in sim.items():
            assert curve[c] == pytest.approx(ratio)

    def test_monotone_nonincreasing(self, rng):
        trace = zipfian_trace(500, 60, rng=rng).accesses
        curve_array = mrc_from_trace(trace).as_array()
        assert np.all(np.diff(curve_array) <= 1e-12)

    def test_indexing_and_clamping(self):
        curve = MissRatioCurve(ratios=(1.0, 0.5, 0.25), accesses=8)
        assert curve[1] == 1.0
        assert curve[3] == 0.25
        assert curve[100] == 0.25
        with pytest.raises(ValueError):
            curve[0]

    def test_footprint_target(self):
        curve = MissRatioCurve(ratios=(0.9, 0.6, 0.2), accesses=10)
        assert curve.footprint(0.5) == 3
        assert curve.footprint(0.95) == 1
        assert curve.footprint(0.1) is None

    def test_boundary_capacity_zero_and_beyond_max_footprint(self):
        """Explicit boundary behaviour: size 0 is rejected, sizes past the
        curve clamp to the final (fully-fitting) value everywhere."""
        curve = MissRatioCurve(ratios=(1.0, 0.5, 0.25), accesses=8)
        with pytest.raises(ValueError):
            curve[0]
        with pytest.raises(ValueError):
            curve[-3]
        assert curve[curve.max_cache_size] == curve[curve.max_cache_size + 1] == curve[10**9] == 0.25

    def test_footprint_boundary_targets(self):
        curve = MissRatioCurve(ratios=(0.9, 0.6, 0.6, 0.2), accesses=10)
        # target exactly on a plateau: the *smallest* size on it wins
        assert curve.footprint(0.6) == 2
        # every curve satisfies a target of 1.0 at the smallest size
        assert curve.footprint(1.0) == 1
        # targets below the curve's floor (beyond max footprint) are unreachable
        assert curve.footprint(0.2) == 4
        assert curve.footprint(0.19) is None
        assert curve.footprint(-0.5) is None

    def test_single_point_and_empty_curves(self):
        single = MissRatioCurve(ratios=(0.75,), accesses=4)
        assert single[1] == single[100] == 0.75
        assert single.footprint(0.75) == 1
        assert single.footprint(0.5) is None
        with pytest.raises(ValueError):
            MissRatioCurve(ratios=(), accesses=4)

    def test_max_cache_size_argument(self, rng):
        trace = zipfian_trace(100, 30, rng=rng).accesses
        curve = mrc_from_trace(trace, max_cache_size=7)
        assert curve.max_cache_size == 7

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            mrc_from_trace([])


class TestAverageCurves:
    def test_average_of_identical_curves(self):
        curve = [1.0, 0.5, 0.0]
        assert np.allclose(average_curves([curve, curve]), curve)

    def test_elementwise_mean(self):
        result = average_curves([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose(result, [0.5, 0.5])

    def test_accepts_missratiocurve_objects(self):
        a = MissRatioCurve(ratios=(1.0, 0.0), accesses=2)
        b = MissRatioCurve(ratios=(0.0, 1.0), accesses=2)
        assert np.allclose(average_curves([a, b]), [0.5, 0.5])

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            average_curves([[1.0, 0.5], [1.0]])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            average_curves([])
