"""Canonical re-traversals — the sawtooth/cyclic hit vectors of Section III.

Reproduces ``hits_C(sawtooth4) = (1, 2, 3, 4)``, the zero hit vector of the
cyclic order below the full footprint, and their total-reuse formulas across a
range of sizes.
"""

from __future__ import annotations

from repro.analysis import format_table, run_sawtooth_cyclic, write_csv

SIZES = (4, 8, 16, 64, 256, 1024)


def test_sawtooth_and_cyclic_canonical_values(benchmark, results_dir):
    rows = benchmark(run_sawtooth_cyclic, SIZES)

    for row in rows:
        m = row["m"]
        assert row["sawtooth_hits_first4"] == [1, 2, 3, 4][: min(4, m)]
        assert row["cyclic_hits_below_m"] == 0
        assert row["sawtooth_total_reuse"] == m * (m + 1) // 2
        assert row["cyclic_total_reuse"] == m * m
        assert row["sawtooth_inversions"] == m * (m - 1) // 2

    print()
    print(format_table(rows, title="Sawtooth vs cyclic re-traversals (Section III example, scaled)"))
    write_csv(results_dir / "sawtooth_cyclic.csv", rows)
