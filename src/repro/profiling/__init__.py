"""Approximate MRC profiling: sampling, streaming models, sharded execution.

The exact miss-ratio-curve machinery in :mod:`repro.cache` processes every
reference of a materialised trace in one process.  This subsystem provides
the production-profiler counterparts, each trading a controlled amount of
accuracy for orders-of-magnitude cost reductions:

:mod:`repro.profiling.shards`
    SHARDS-style spatially-hashed sampling (fixed-rate and fixed-size) with
    distance rescaling and sample-size correction.
:mod:`repro.profiling.reuse`
    A one-pass, bounded-memory streaming reuse-time profiler and the
    average-eviction-time (AET) conversion to a miss-ratio curve; works on
    generator-backed traces that are never materialised.
:mod:`repro.profiling.engine`
    A sharded execution engine: ``ProfileJob`` specs fanned over a
    ``multiprocessing`` pool, plus mergeable chunk partials that parallelise
    one long trace with bit-identical results.
:mod:`repro.profiling.accuracy`
    Mean/max absolute-error comparison of approximate vs. exact curves, used
    by the tests and benchmarks to assert error bounds.
:mod:`repro.engine.runner` (re-exported here for compatibility)
    The shared fork-first process-pool helpers used by both this engine and
    the policy-sweep engine in :mod:`repro.sim`.

Examples
--------
>>> from repro.profiling import shards_mrc, mean_absolute_error
>>> from repro.cache import mrc_from_trace
>>> from repro.trace import zipfian_trace
>>> trace = zipfian_trace(20000, 512, exponent=0.8, rng=7).accesses
>>> approx = shards_mrc(trace, rate=0.1)      # ~10x less work than exact
>>> exact = mrc_from_trace(trace)
>>> mean_absolute_error(approx, exact) < 0.05
True
"""

from .accuracy import CurveComparison, compare_curves, curve_values, mean_absolute_error
from .engine import (
    ChunkPartial,
    ProfileJob,
    ProfileResult,
    chunk_partial,
    merge_partials,
    parallel_reuse_histogram,
    parallel_reuse_mrc,
    run_job,
    run_jobs,
)
from ..engine.runner import check_workers, fork_available, fork_pool, pool_map
from .reuse import ReuseTimeHistogram, ReuseTimeProfiler, reuse_mrc
from .shards import (
    HASH_SPACE,
    adaptive_rate,
    sample_trace,
    scaled_distance_histogram,
    shards_mrc,
    spatial_hash,
)

__all__ = [
    "CurveComparison",
    "compare_curves",
    "curve_values",
    "mean_absolute_error",
    "ChunkPartial",
    "ProfileJob",
    "ProfileResult",
    "chunk_partial",
    "merge_partials",
    "parallel_reuse_histogram",
    "parallel_reuse_mrc",
    "run_job",
    "run_jobs",
    "check_workers",
    "fork_available",
    "fork_pool",
    "pool_map",
    "ReuseTimeHistogram",
    "ReuseTimeProfiler",
    "reuse_mrc",
    "HASH_SPACE",
    "adaptive_rate",
    "sample_trace",
    "scaled_distance_histogram",
    "shards_mrc",
    "spatial_hash",
]
