"""Allocator correctness: greedy vs DP vs hull vs proportional.

The load-bearing properties:

* the DP is an exact optimum, so no other allocator can beat it on any
  curve set (hypothesis-checked on random monotone curves);
* greedy equals the DP whenever every curve is convex (hypothesis-checked on
  random convex curves);
* the convex hull rescues greedy on cliff curves;
* hull allocation never loses to the naive proportional split on the
  composed multi-tenant workloads the acceptance criteria name.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import (
    DiscretizedMRC,
    discretize_curve,
    dp_allocate,
    greedy_allocate,
    hull_allocate,
    lower_convex_hull,
    proportional_split,
    total_misses,
)
from repro.cache.mrc import mrc_from_trace
from repro.trace import TenantSpec, compose_tenants, zipfian_trace
from repro.trace.trace import PeriodicTrace
from repro.trace.workloads import stream_copy


def curve_from_misses(misses) -> DiscretizedMRC:
    values = np.asarray(misses, dtype=np.float64)
    return DiscretizedMRC(misses=values, unit=1, accesses=max(int(values[0]), 1))


@st.composite
def convex_curves(draw):
    """A list of tenants with convex (decreasing-gain) discretized miss curves."""
    num_tenants = draw(st.integers(min_value=1, max_value=4))
    curves = []
    for _ in range(num_tenants):
        length = draw(st.integers(min_value=1, max_value=12))
        gains = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=length,
                max_size=length,
            )
        )
        gains = sorted(gains, reverse=True)  # non-increasing gains == convex curve
        start = float(sum(gains)) + draw(st.floats(min_value=0.0, max_value=100.0))
        misses = [start]
        for gain in gains:
            misses.append(misses[-1] - gain)
        curves.append(curve_from_misses(misses))
    return curves


@st.composite
def monotone_curves(draw):
    """Arbitrary non-increasing (possibly wildly non-convex) miss curves."""
    num_tenants = draw(st.integers(min_value=1, max_value=4))
    curves = []
    for _ in range(num_tenants):
        length = draw(st.integers(min_value=1, max_value=12))
        gains = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=length,
                max_size=length,
            )
        )
        start = float(sum(gains)) + 1.0
        misses = [start]
        for gain in gains:
            misses.append(misses[-1] - gain)
        curves.append(curve_from_misses(misses))
    return curves


class TestGreedyEqualsDPOnConvex:
    @settings(max_examples=200, deadline=None)
    @given(curves=convex_curves(), budget=st.integers(min_value=0, max_value=40))
    def test_greedy_matches_dp_total_misses(self, curves, budget):
        greedy = greedy_allocate(curves, budget)
        exact = dp_allocate(curves, budget)
        assert total_misses(curves, greedy) == pytest.approx(total_misses(curves, exact), abs=1e-6)

    @settings(max_examples=200, deadline=None)
    @given(curves=convex_curves(), budget=st.integers(min_value=0, max_value=40))
    def test_hull_matches_dp_total_misses_on_convex(self, curves, budget):
        hull = hull_allocate(curves, budget)
        exact = dp_allocate(curves, budget)
        assert total_misses(curves, hull) == pytest.approx(total_misses(curves, exact), abs=1e-6)


class TestDPIsOptimal:
    @settings(max_examples=200, deadline=None)
    @given(curves=monotone_curves(), budget=st.integers(min_value=0, max_value=40))
    def test_dp_never_loses_to_any_other_allocator(self, curves, budget):
        exact = total_misses(curves, dp_allocate(curves, budget))
        for other in (greedy_allocate, hull_allocate):
            assert exact <= total_misses(curves, other(curves, budget)) + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(curves=monotone_curves(), budget=st.integers(min_value=0, max_value=40))
    def test_allocations_respect_the_budget(self, curves, budget):
        for allocator in (greedy_allocate, dp_allocate, hull_allocate):
            allocation = allocator(curves, budget)
            assert int(allocation.sum()) <= budget
            assert np.all(allocation >= 0)
            assert all(a <= c.max_units for a, c in zip(allocation, curves))


class TestCliffCurves:
    def test_hull_and_dp_climb_the_cliff_greedy_cannot(self):
        """One smooth tenant and one pure cliff: greedy starves the cliff even
        when climbing it is globally optimal; the hull and the DP see it."""
        smooth = curve_from_misses([100.0 - 2.0 * j for j in range(11)])  # gain 2/unit
        cliff = curve_from_misses([1000.0] * 10 + [0.0])  # 1000 misses at 10 units
        curves = [smooth, cliff]
        budget = 10
        greedy = greedy_allocate(curves, budget)
        hull = hull_allocate(curves, budget)
        exact = dp_allocate(curves, budget)
        assert greedy.tolist() == [10, 0]  # only sees the 2/unit gains
        assert hull.tolist() == [0, 10]  # hull slope of the cliff is 100/unit
        assert exact.tolist() == [0, 10]
        assert total_misses(curves, hull) < total_misses(curves, greedy)

    def test_hull_never_takes_a_partial_cliff(self):
        """With too little budget for the cliff, the hull skips it whole and
        spends the budget on the smooth tenant instead of stranding it."""
        smooth = curve_from_misses([100.0 - 2.0 * j for j in range(11)])
        cliff = curve_from_misses([1000.0] * 10 + [0.0])
        allocation = hull_allocate([smooth, cliff], 8)
        assert allocation.tolist() == [8, 0]

    def test_lower_convex_hull_of_convex_curve_is_identity(self):
        misses = np.array([10.0, 6.0, 3.0, 1.0, 0.0])
        vertices, values = lower_convex_hull(misses)
        np.testing.assert_array_equal(vertices, np.arange(5))
        np.testing.assert_array_equal(values, misses)


class TestHullVsProportionalOnComposedWorkloads:
    @pytest.mark.parametrize("budget", [256, 1024, 2048, 4096])
    def test_hull_never_loses_to_proportional_split(self, budget):
        tenants = [
            TenantSpec(zipfian_trace(12000, 2048, exponent=0.9, rng=11), name="zipf"),
            TenantSpec(PeriodicTrace.sawtooth(1500).to_trace(), name="saw"),
            TenantSpec(stream_copy(800, repetitions=3), name="stream"),
        ]
        composed = compose_tenants(tenants, seed=11)
        streams = [composed.tenant_trace(t) for t in range(composed.num_tenants)]
        curves = [discretize_curve(mrc_from_trace(s, max_cache_size=budget), budget) for s in streams]
        hull = hull_allocate(curves, budget)
        proportional = proportional_split([int(np.unique(s).size) for s in streams], budget)
        clamped = np.minimum(proportional, [c.max_units for c in curves])
        assert total_misses(curves, hull) <= total_misses(curves, clamped) + 1e-6


class TestProportionalSplit:
    def test_exact_proportions_when_divisible(self):
        assert proportional_split([100, 300], 8).tolist() == [2, 6]

    def test_total_never_exceeds_budget_or_footprints(self):
        allocation = proportional_split([7, 13, 5], 100)
        assert allocation.tolist() == [7, 13, 5]  # capped at footprints
        allocation = proportional_split([7, 13, 5], 10)
        assert int(allocation.sum()) == 10

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            proportional_split([], 10)
        with pytest.raises(ValueError):
            proportional_split([0, 5], 10)
        with pytest.raises(ValueError):
            proportional_split([5], -1)


class TestDiscretizeCurve:
    def test_capacity_zero_misses_every_access(self):
        curve = mrc_from_trace([0, 1, 0, 1, 0, 1])
        d = discretize_curve(curve, budget=4)
        assert d.misses[0] == 6.0
        assert d.miss_ratio_at(0) == 1.0

    def test_units_coarsen_the_grid(self):
        curve = mrc_from_trace(zipfian_trace(2000, 128, rng=0).accesses)
        fine = discretize_curve(curve, budget=64, unit=1)
        coarse = discretize_curve(curve, budget=64, unit=16)
        assert coarse.max_units == 4
        assert coarse.misses_at(1) == fine.misses_at(16)

    def test_monotone_even_for_noisy_curves(self):
        from repro.cache.mrc import MissRatioCurve

        noisy = MissRatioCurve(ratios=(0.9, 0.5, 0.6, 0.4), accesses=100)
        d = discretize_curve(noisy, budget=4)
        assert np.all(np.diff(d.misses) <= 0)

    def test_rejects_bad_budget_and_unit(self):
        curve = mrc_from_trace([0, 1, 0, 1])
        with pytest.raises(ValueError):
            discretize_curve(curve, budget=0)
        with pytest.raises(ValueError):
            discretize_curve(curve, budget=4, unit=0)


class TestDiscretizedMRCBoundaries:
    """Explicit boundary behaviour at capacity 0 and beyond the footprint."""

    def test_clamps_beyond_max_units(self):
        d = curve_from_misses([10.0, 4.0, 2.0])
        assert d.misses_at(d.max_units) == d.misses_at(d.max_units + 1) == d.misses_at(10**9) == 2.0
        assert d.miss_ratio_at(10**9) == pytest.approx(0.2)

    def test_capacity_zero_reads_the_empty_partition_point(self):
        d = curve_from_misses([10.0, 4.0, 2.0])
        assert d.misses_at(0) == 10.0
        assert d.miss_ratio_at(0) == 1.0

    def test_negative_units_are_rejected_not_wrapped(self):
        """Regression: a negative allocation used to wrap to the curve's *end*
        (Python negative indexing) and read as a fully-provisioned tenant."""
        d = curve_from_misses([10.0, 4.0, 2.0])
        with pytest.raises(ValueError):
            d.misses_at(-1)
        with pytest.raises(ValueError):
            d.miss_ratio_at(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DiscretizedMRC(misses=np.zeros(0), unit=1, accesses=1)
        with pytest.raises(ValueError):
            DiscretizedMRC(misses=np.zeros((2, 2)), unit=1, accesses=1)
        with pytest.raises(ValueError):
            DiscretizedMRC(misses=np.ones(2), unit=0, accesses=1)
        with pytest.raises(ValueError):
            DiscretizedMRC(misses=np.ones(2), unit=1, accesses=0)

    def test_single_point_curve_is_flat_everywhere(self):
        d = DiscretizedMRC(misses=np.asarray([7.0]), unit=1, accesses=7)
        assert d.max_units == 0
        assert d.misses_at(0) == d.misses_at(5) == 7.0
