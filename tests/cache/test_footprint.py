"""Unit tests for the footprint / timescale locality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    data_movement_distance,
    footprint,
    footprint_curve,
    miss_ratio_from_footprint,
    mrc_from_trace,
)
from repro.trace import PeriodicTrace, zipfian_trace


def brute_force_footprint(trace, window: int) -> float:
    trace = list(trace)
    n = len(trace)
    if window == 0:
        return 0.0
    values = [len(set(trace[i : i + window])) for i in range(n - window + 1)]
    return sum(values) / len(values)


class TestFootprintCurve:
    def test_matches_brute_force_on_random_traces(self, rng):
        for _ in range(8):
            n = int(rng.integers(1, 40))
            items = int(rng.integers(1, 8))
            trace = rng.integers(0, items, n)
            curve = footprint_curve(trace)
            for w in range(n + 1):
                assert curve[w] == pytest.approx(brute_force_footprint(trace, w))

    def test_boundary_values(self):
        trace = [0, 1, 2, 2, 1, 0]
        curve = footprint_curve(trace)
        assert curve[0] == 0.0
        assert curve[1] == 1.0
        assert curve[-1] == 3.0  # full-trace window sees the whole footprint

    def test_monotone_nondecreasing(self, rng):
        trace = zipfian_trace(300, 40, rng=rng).accesses
        curve = footprint_curve(trace)
        assert np.all(np.diff(curve) >= -1e-9)

    def test_single_item_trace(self):
        curve = footprint_curve([5, 5, 5, 5])
        assert np.allclose(curve[1:], 1.0)

    def test_empty_trace(self):
        assert footprint_curve([]).tolist() == [0.0]

    def test_footprint_scalar_accessor(self):
        trace = [0, 1, 0, 1]
        assert footprint(trace, 2) == pytest.approx(brute_force_footprint(trace, 2))
        assert footprint(trace, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            footprint(trace, -1)

    def test_cyclic_retraversal_footprint_is_linear(self):
        m = 16
        curve = footprint_curve(PeriodicTrace.cyclic(m).to_trace().accesses)
        # windows shorter than the period see w distinct items exactly
        for w in range(1, m + 1):
            assert curve[w] == pytest.approx(w, abs=1e-9) or curve[w] <= w


class TestMissRatioFromFootprint:
    def test_cache_size_validation(self):
        with pytest.raises(ValueError):
            miss_ratio_from_footprint([0, 1, 0], 0)

    def test_zero_when_cache_holds_everything(self):
        trace = PeriodicTrace.sawtooth(16).to_trace().accesses
        assert miss_ratio_from_footprint(trace, 16) == 0.0

    def test_roughly_tracks_exact_mrc_on_zipf_trace(self, rng):
        trace = zipfian_trace(4000, 128, exponent=1.0, rng=rng).accesses
        exact = mrc_from_trace(trace)
        for c in (8, 32, 64):
            estimate = miss_ratio_from_footprint(trace, c)
            assert 0.0 <= estimate <= 1.0
            assert abs(estimate - exact[c]) < 0.25  # Xiang conversion is approximate

    def test_ordering_cyclic_vs_sawtooth(self):
        m, c = 64, 32
        cyc = miss_ratio_from_footprint(PeriodicTrace.cyclic(m).to_trace().accesses, c)
        saw = miss_ratio_from_footprint(PeriodicTrace.sawtooth(m).to_trace().accesses, c)
        assert saw <= cyc


class TestDataMovementDistance:
    def test_empty_trace(self):
        assert data_movement_distance([]) == 0.0

    def test_sawtooth_cheaper_than_cyclic(self):
        for m in (8, 32, 128):
            cyc = data_movement_distance(PeriodicTrace.cyclic(m).to_trace().accesses)
            saw = data_movement_distance(PeriodicTrace.sawtooth(m).to_trace().accesses)
            assert saw < cyc

    def test_monotone_in_inversions_on_average(self, rng):
        from repro.trace import fixed_inversion_retraversal

        m = 32
        low = fixed_inversion_retraversal(m, 50, rng)
        high = fixed_inversion_retraversal(m, 400, rng)
        assert data_movement_distance(high.to_trace().accesses) < data_movement_distance(low.to_trace().accesses)

    def test_known_value_single_reuse(self):
        # trace 0 0: one cold access (footprint 1 -> cost 1) + one reuse at
        # stack distance 1 (cost 1)
        assert data_movement_distance([0, 0]) == pytest.approx(2.0)
