"""Unit tests for repro.core.bruhat."""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    Permutation,
    all_permutations,
    bruhat_leq,
    bruhat_less,
    cocovers,
    covering_transpositions,
    covers,
    interval,
    is_covering,
    max_inversions,
    weak_covers,
    weak_order_leq,
)


class TestBruhatComparison:
    def test_reflexive(self, s4):
        for sigma in s4:
            assert bruhat_leq(sigma, sigma)
            assert not bruhat_less(sigma, sigma)

    def test_identity_is_bottom(self, s4):
        e = Permutation.identity(4)
        for sigma in s4:
            assert bruhat_leq(e, sigma)

    def test_reverse_is_top(self, s4):
        w0 = Permutation.reverse(4)
        for sigma in s4:
            assert bruhat_leq(sigma, w0)

    def test_antisymmetric(self, s4):
        for sigma, tau in itertools.product(s4, repeat=2):
            if bruhat_leq(sigma, tau) and bruhat_leq(tau, sigma):
                assert sigma == tau

    def test_respects_length(self, s4):
        for sigma, tau in itertools.product(s4, repeat=2):
            if bruhat_less(sigma, tau):
                assert sigma.inversions() < tau.inversions()

    def test_transitive_sample(self, s3):
        for a, b, c in itertools.product(s3, repeat=3):
            if bruhat_leq(a, b) and bruhat_leq(b, c):
                assert bruhat_leq(a, c)

    def test_subword_property_example_from_paper(self):
        # sigma = (13), tau = (14)(13) in 1-indexed cycle notation: sigma <= tau
        sigma = Permutation.from_cycles(4, [(1, 3)], one_indexed=True)
        tau = Permutation.from_cycles(4, [(1, 4), (1, 3)], one_indexed=True)
        assert sigma.inversions() == 3
        assert tau.inversions() == 4
        assert bruhat_less(sigma, tau)
        assert is_covering(sigma, tau)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            bruhat_leq(Permutation.identity(3), Permutation.identity(4))

    def test_incomparable_pair_exists(self, s4):
        incomparable = [
            (s, t)
            for s, t in itertools.combinations(s4, 2)
            if not bruhat_leq(s, t) and not bruhat_leq(t, s)
        ]
        assert incomparable, "S_4 must contain incomparable pairs"


class TestCoveringRelation:
    def test_covers_add_exactly_one_inversion(self, s4):
        for sigma in s4:
            for tau in covers(sigma):
                assert tau.inversions() == sigma.inversions() + 1
                assert bruhat_less(sigma, tau)

    def test_is_covering_consistent_with_enumeration(self, s4):
        for sigma, tau in itertools.product(s4, repeat=2):
            expected = tau in covers(sigma)
            assert is_covering(sigma, tau) == expected

    def test_cover_is_transposition_of_two_positions(self, s4):
        for sigma in s4:
            for i, j in covering_transpositions(sigma):
                assert i < j
                tau = sigma.swap_positions(i, j)
                assert is_covering(sigma, tau)

    def test_identity_covers_are_adjacent_transpositions(self):
        e = Permutation.identity(5)
        ups = covers(e)
        assert len(ups) == 4
        for tau in ups:
            assert tau.inversions() == 1

    def test_top_has_no_covers(self):
        assert covers(Permutation.reverse(5)) == []

    def test_bottom_has_no_cocovers(self):
        assert cocovers(Permutation.identity(5)) == []

    def test_cocovers_inverse_of_covers(self, s4):
        for sigma in s4:
            for tau in covers(sigma):
                assert sigma in cocovers(tau)
            for rho in cocovers(sigma):
                assert sigma in covers(rho)

    def test_covering_count_matches_known_s3(self):
        # S_3 Bruhat covering graph has 8 edges
        edges = sum(len(covers(sigma)) for sigma in all_permutations(3))
        assert edges == 8

    def test_is_covering_rejects_non_transposition_pairs(self):
        a = Permutation.identity(4)
        b = Permutation([1, 2, 0, 3])  # 3-cycle, differs in 3 positions
        assert not is_covering(a, b)

    def test_is_covering_rejects_downward_swap(self):
        a = Permutation([1, 0, 2])
        b = Permutation.identity(3)
        assert not is_covering(a, b)


class TestWeakOrder:
    def test_weak_implies_bruhat(self, s4):
        for sigma, tau in itertools.product(s4, repeat=2):
            if weak_order_leq(sigma, tau):
                assert bruhat_leq(sigma, tau)

    def test_bruhat_not_always_weak(self, s4):
        strictly_weaker = [
            (s, t)
            for s, t in itertools.product(s4, repeat=2)
            if bruhat_leq(s, t) and not weak_order_leq(s, t)
        ]
        assert strictly_weaker, "the weak order must be strictly finer than Bruhat on S_4"

    def test_weak_covers_are_adjacent_swaps(self, s4):
        for sigma in s4:
            for tau in weak_covers(sigma):
                assert tau.inversions() == sigma.inversions() + 1
                diff = [i for i in range(4) if sigma[i] != tau[i]]
                assert len(diff) == 2 and diff[1] == diff[0] + 1

    def test_weak_order_chain_to_top(self):
        current = Permutation.identity(5)
        steps = 0
        while not current.is_reverse():
            ups = weak_covers(current)
            assert ups
            current = ups[0]
            steps += 1
        assert steps == max_inversions(5)


class TestInterval:
    def test_full_interval_is_whole_group(self, s3):
        full = interval(Permutation.identity(3), Permutation.reverse(3))
        assert len(full) == 6

    def test_empty_when_incomparable(self):
        sigma = Permutation([1, 0, 3, 2])
        tau = Permutation([0, 2, 1, 3])
        if not bruhat_leq(sigma, tau):
            assert interval(sigma, tau) == []

    def test_interval_endpoints_included(self, s4):
        sigma = Permutation.identity(4)
        tau = Permutation([1, 0, 3, 2])
        result = interval(sigma, tau)
        assert sigma in result and tau in result
        for x in result:
            assert bruhat_leq(sigma, x) and bruhat_leq(x, tau)

    def test_singleton_interval(self):
        sigma = Permutation([2, 0, 1])
        assert interval(sigma, sigma) == [sigma]
