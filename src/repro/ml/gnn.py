"""Graph reordering for message-passing locality (Section VI-C).

Graph neural networks repeatedly traverse node-feature arrays following the
graph's adjacency structure.  Relabelling the nodes changes the temporal
locality of those traversals; this module provides a small message-passing
model over NumPy features plus several classic reordering heuristics
(degree sort, BFS/RCM-style, and the symmetric-locality-guided order that
maximises inversions subject to the traversal's partial order), so the
examples and benchmarks can compare their effect on the measured miss ratio.
"""

from __future__ import annotations

from collections import deque
import numpy as np

from .._util import check_positive_int, ensure_rng
from ..core.permutation import Permutation
from ..trace.trace import Trace

__all__ = ["RandomGraph", "degree_order", "bfs_order", "reverse_cuthill_mckee_order", "message_passing_trace"]


class RandomGraph:
    """An undirected Erdős–Rényi-style random graph with NumPy adjacency lists.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    avg_degree:
        Expected number of neighbours per node.
    rng:
        Seed or generator.
    """

    def __init__(self, num_nodes: int, avg_degree: float, rng: np.random.Generator | int | None = None):
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        if avg_degree <= 0:
            raise ValueError(f"avg_degree must be positive, got {avg_degree}")
        generator = ensure_rng(rng)
        p = min(avg_degree / max(num_nodes - 1, 1), 1.0)
        upper = generator.random((num_nodes, num_nodes)) < p
        upper = np.triu(upper, k=1)
        adjacency_matrix = upper | upper.T
        self.neighbors: list[np.ndarray] = [
            np.nonzero(adjacency_matrix[u])[0].astype(np.intp) for u in range(num_nodes)
        ]

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return int(self.neighbors[node].size)

    def relabelled(self, order: Permutation) -> "RandomGraph":
        """A copy of the graph with nodes relabelled so that new label ``i`` is old node ``order(i)``."""
        if order.size != self.num_nodes:
            raise ValueError(f"order must act on {self.num_nodes} nodes")
        new = object.__new__(RandomGraph)
        new.num_nodes = self.num_nodes
        old_of_new = np.asarray(order.one_line, dtype=np.intp)
        new_of_old = np.empty_like(old_of_new)
        new_of_old[old_of_new] = np.arange(self.num_nodes, dtype=np.intp)
        new.neighbors = [np.sort(new_of_old[self.neighbors[old_of_new[i]]]) for i in range(self.num_nodes)]
        return new


def degree_order(graph: RandomGraph, *, descending: bool = True) -> Permutation:
    """Relabel nodes by degree (hubs first by default)."""
    degrees = np.asarray([graph.degree(u) for u in range(graph.num_nodes)])
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    return Permutation(order)


def bfs_order(graph: RandomGraph, *, start: int = 0) -> Permutation:
    """Breadth-first visit order from ``start`` (unreached nodes appended in label order)."""
    if not 0 <= start < graph.num_nodes:
        raise ValueError(f"start node {start} out of range")
    seen = np.zeros(graph.num_nodes, dtype=bool)
    order: list[int] = []
    for root in [start] + list(range(graph.num_nodes)):
        if seen[root]:
            continue
        queue = deque([root])
        seen[root] = True
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in graph.neighbors[u]:
                v = int(v)
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
    return Permutation(order)


def reverse_cuthill_mckee_order(graph: RandomGraph) -> Permutation:
    """Reverse Cuthill–McKee: BFS from a low-degree node, neighbours by increasing degree, reversed.

    The classic bandwidth-reduction ordering; a strong locality baseline for
    the graph-reordering comparison.
    """
    degrees = np.asarray([graph.degree(u) for u in range(graph.num_nodes)])
    seen = np.zeros(graph.num_nodes, dtype=bool)
    order: list[int] = []
    for root in np.argsort(degrees, kind="stable"):
        root = int(root)
        if seen[root]:
            continue
        queue = deque([root])
        seen[root] = True
        while queue:
            u = queue.popleft()
            order.append(u)
            nbrs = sorted((int(v) for v in graph.neighbors[u] if not seen[v]), key=lambda v: degrees[v])
            for v in nbrs:
                seen[v] = True
                queue.append(v)
    order.reverse()
    return Permutation(order)


def message_passing_trace(
    graph: RandomGraph,
    *,
    rounds: int = 2,
    node_order: Permutation | None = None,
) -> Trace:
    """Feature-access trace of ``rounds`` of neighbourhood aggregation.

    Each round visits every node in ``node_order`` (label order by default)
    and reads its neighbours' feature items followed by its own.  The item
    namespace is the node id, i.e. one feature block per node.
    """
    rounds = check_positive_int(rounds, "rounds")
    if node_order is not None and node_order.size != graph.num_nodes:
        raise ValueError(f"node_order must act on {graph.num_nodes} nodes")
    visit = node_order.one_line if node_order is not None else range(graph.num_nodes)
    accesses: list[int] = []
    for _ in range(rounds):
        for u in visit:
            accesses.extend(int(v) for v in graph.neighbors[u])
            accesses.append(int(u))
    return Trace(np.asarray(accesses, dtype=np.intp), name=f"message_passing(rounds={rounds})")
