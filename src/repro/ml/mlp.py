"""A small NumPy MLP that records its parameter-access trace.

Section VI-A2 proposes permuting the order in which a model's weights are
traversed on alternate passes (forward vs. backward, or consecutive training
steps) to exploit symmetric locality.  :class:`TracedMLP` makes that concrete:

* the forward and backward passes are real NumPy computations, so the
  numerical effect (none) of any weight-traversal re-ordering can be asserted,
* every pass also emits the sequence of weight-block items it touches, at a
  configurable block granularity, so the memory behaviour of traversal
  schedules can be measured with the cache substrate.

The weight blocks of each layer are visited in row-major order by default; a
per-pass permutation of the *global* block sequence can be supplied (e.g. the
sawtooth order from :func:`repro.core.optimal.alternating_schedule`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from .._util import check_positive_int, ensure_rng
from ..core.permutation import Permutation
from ..trace.trace import Trace
from .equivariance import relu
from .tensors import TensorLayout, TensorSpec

__all__ = ["TracedMLP", "MLPPassRecord"]


@dataclass(frozen=True)
class MLPPassRecord:
    """What one pass over the model produced: outputs/gradients plus the access trace."""

    kind: str  # "forward" or "backward"
    items: np.ndarray  # parameter item labels in access order
    output: np.ndarray | None = None
    loss: float | None = None


class TracedMLP:
    """A fully-connected network with explicit parameter-access tracing.

    Parameters
    ----------
    layer_sizes:
        Sizes of the input, hidden and output layers, e.g. ``[64, 128, 10]``.
    granularity:
        Number of consecutive weights grouped into one data item (a cache
        block).  Biases are small and ignored in the trace.
    activation:
        Element-wise activation applied after every layer but the last.
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        *,
        granularity: int = 16,
        activation: Callable[[np.ndarray], np.ndarray] = relu,
        rng: np.random.Generator | int | None = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least input and output sizes")
        self.layer_sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
        self.granularity = check_positive_int(granularity, "granularity")
        self.activation = activation
        generator = ensure_rng(rng)
        self.weights: list[np.ndarray] = []
        specs: list[TensorSpec] = []
        for index, (fan_in, fan_out) in enumerate(zip(self.layer_sizes, self.layer_sizes[1:])):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(generator.standard_normal((fan_in, fan_out)) * scale)
            specs.append(TensorSpec(f"w{index}", (fan_in, fan_out), granularity))
        self.layout = TensorLayout(specs)

    # ------------------------------------------------------------------ #
    @property
    def num_weight_items(self) -> int:
        """Total number of weight blocks (data items) across all layers."""
        return self.layout.total_items

    def _pass_items(self, block_order: Permutation | None) -> np.ndarray:
        base = self.layout.canonical_order()
        if block_order is None:
            return base
        if block_order.size != base.size:
            raise ValueError(f"block_order acts on {block_order.size} items, model has {base.size}")
        return base[np.asarray(block_order.one_line, dtype=np.intp)]

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, *, block_order: Permutation | None = None) -> MLPPassRecord:
        """Run the forward pass and record the weight blocks it reads.

        ``block_order`` changes only the *order* in which weight blocks are
        counted as touched (the computation itself is unchanged), which is the
        paper's model of a locality-aware parameter traversal.
        """
        h = np.asarray(x, dtype=np.float64)
        self._activations = [h]
        for k, w in enumerate(self.weights):
            h = h @ w
            if k < len(self.weights) - 1:
                h = self.activation(h)
            self._activations.append(h)
        items = self._pass_items(block_order)
        return MLPPassRecord(kind="forward", items=items, output=h)

    def backward(
        self,
        x: np.ndarray,
        target: np.ndarray,
        *,
        block_order: Permutation | None = None,
        learning_rate: float = 0.0,
    ) -> MLPPassRecord:
        """Run a (squared-error) backward pass and record the weight blocks it re-reads.

        Gradients are computed with explicit NumPy matrix products; when
        ``learning_rate`` is non-zero the weights are updated in place, which
        lets the multi-step training example exercise repeated re-traversals of
        a *changing* parameter set.
        """
        forward = self.forward(x)
        output = forward.output
        target = np.asarray(target, dtype=np.float64)
        if target.shape != output.shape:
            raise ValueError(f"target shape {target.shape} does not match output {output.shape}")
        diff = output - target
        loss = float(0.5 * np.mean(np.sum(diff * diff, axis=-1)))

        grad = diff / diff.shape[0]
        gradients: list[np.ndarray] = [None] * len(self.weights)
        for k in range(len(self.weights) - 1, -1, -1):
            a_prev = self._activations[k]
            gradients[k] = a_prev.T @ grad
            if k > 0:
                grad = grad @ self.weights[k].T
                # ReLU (or other activation) mask — recompute from the stored activation
                grad = grad * (self._activations[k] > 0)
        if learning_rate:
            for k, g in enumerate(gradients):
                self.weights[k] -= learning_rate * g
        items = self._pass_items(block_order)
        return MLPPassRecord(kind="backward", items=items, loss=loss)

    # ------------------------------------------------------------------ #
    def training_trace(
        self,
        x: np.ndarray,
        target: np.ndarray,
        *,
        steps: int,
        schedule: Sequence[Permutation] | None = None,
        learning_rate: float = 0.0,
    ) -> Trace:
        """Parameter-access trace of ``steps`` training steps (forward + backward each).

        ``schedule`` gives the block traversal order of each *pass*
        (``2 * steps`` entries); ``None`` means canonical order everywhere
        (the naive cyclic schedule).  Use
        :func:`repro.core.optimal.alternating_schedule` with the sawtooth
        permutation to build the Theorem-4 schedule.
        """
        steps = check_positive_int(steps, "steps")
        passes = 2 * steps
        if schedule is not None and len(schedule) != passes:
            raise ValueError(f"schedule must have {passes} entries (one per pass), got {len(schedule)}")
        chunks: list[np.ndarray] = []
        for step in range(steps):
            fwd_order = schedule[2 * step] if schedule is not None else None
            bwd_order = schedule[2 * step + 1] if schedule is not None else None
            fwd = self.forward(x, block_order=fwd_order)
            chunks.append(fwd.items)
            bwd = self.backward(x, target, block_order=bwd_order, learning_rate=learning_rate)
            chunks.append(bwd.items)
        return Trace(np.concatenate(chunks), name=f"mlp_training(steps={steps})")

    def permute_hidden_units(self, layer: int, sigma: Permutation) -> None:
        """Physically permute the hidden units of ``layer`` (columns of ``w[layer]``).

        The rows of the following weight matrix are permuted consistently, so
        the network function is unchanged (see
        :func:`repro.ml.equivariance.hidden_unit_permutation_invariant`).
        Only interior layers can be permuted.
        """
        if not 0 <= layer < len(self.weights) - 1:
            raise ValueError(f"layer must be an interior layer index in [0, {len(self.weights) - 2}], got {layer}")
        if sigma.size != self.weights[layer].shape[1]:
            raise ValueError(
                f"permutation size {sigma.size} does not match hidden width {self.weights[layer].shape[1]}"
            )
        perm = np.asarray(sigma.one_line, dtype=np.intp)
        self.weights[layer] = self.weights[layer][:, perm]
        self.weights[layer + 1] = self.weights[layer + 1][perm, :]
