"""The engine's worker-pool runner: one fan-out idiom for every experiment.

Every experiment path — profiling batches, sweep kernel tasks, per-tenant
partition profiling, online replay's up-front profile extraction — fans
independent tasks across a process pool through :func:`pool_map`.  The
conventions are fixed here once:

* **fork first** — the ``fork`` start method lets workers inherit large trace
  arrays copy-on-write instead of pickling them; platforms without ``fork``
  fall back to the default start method.
* **inline when trivial** — ``pool_map`` runs the tasks in the current process
  when a pool would not help (one worker or at most one task), which keeps
  single-process runs deterministic, debuggable and free of pool overhead.
  ``workers=1`` is therefore the *bit-identical single-process reference
  mode* of the engine: every pooled run must produce exactly the same result
  (asserted by the golden cross-engine suite in ``tests/engine/``).
* **publish, don't pickle** — :func:`published_arrays` exposes large arrays
  to forked workers through module globals (inherited copy-on-write), so
  task tuples stay a few bytes instead of shipping the trace once per task.

``workers`` is always validated the same way: any integer below 1 is an error
rather than a silent serial fallback.

When a metrics registry is recording (:func:`repro.obs.get_registry`),
``pool_map`` additionally times every task.  Workers cannot record into the
parent's registry (they are separate processes), so each task is wrapped to
*return* its wall-clock seconds alongside its result and the parent folds
the durations into the ``pool.task`` span aggregate in task order — the
same order ``pool.map`` returns results in — making the recorded aggregate
deterministic regardless of completion order.  With nothing recording, the
bare code path runs unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Mapping, Sequence
from contextlib import contextmanager
from functools import partial
from typing import Any

import numpy as np

from ..obs import get_registry

__all__ = [
    "check_workers",
    "fork_available",
    "fork_pool",
    "pool_map",
    "published_arrays",
    "resolve_array",
]


def fork_available() -> bool:
    """Whether the ``fork`` start method (copy-on-write globals) exists here."""
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return False
    return True


def check_workers(workers: int) -> int:
    """Validate a worker count (must be a positive integer)."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def fork_pool(workers: int):
    """A ``multiprocessing`` pool using the ``fork`` start method when available."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    return context.Pool(processes=check_workers(workers))


def _timed_call(function: Callable[[Any], Any], task: Any) -> tuple[Any, float]:
    """Run one task, returning ``(result, seconds)`` so timings survive the pool."""
    start = time.perf_counter()
    result = function(task)
    return result, time.perf_counter() - start


def pool_map(function: Callable[[Any], Any], tasks: Sequence[Any], *, workers: int = 1) -> list[Any]:
    """Map ``function`` over ``tasks``, preserving task order.

    Runs inline (no pool) when ``workers == 1`` or there is at most one task;
    otherwise fans out over ``min(workers, len(tasks))`` forked processes.
    ``function`` and every task must be picklable in the pooled case.
    """
    workers = check_workers(workers)
    tasks = list(tasks)
    registry = get_registry()
    if registry.enabled:
        name = getattr(function, "__name__", repr(function))
        timed = partial(_timed_call, function)
        if workers == 1 or len(tasks) <= 1:
            outcomes = [timed(task) for task in tasks]
        else:
            with fork_pool(min(workers, len(tasks))) as pool:
                outcomes = pool.map(timed, tasks)
        registry.counter("pool.tasks", function=name).add(len(outcomes))
        registry.gauge("pool.workers", function=name).set(min(workers, max(len(tasks), 1)))
        for _, seconds in outcomes:  # task order == pool.map order: deterministic
            registry.record_span("pool.task", seconds, function=name)
        return [result for result, _ in outcomes]
    if workers == 1 or len(tasks) <= 1:
        return [function(task) for task in tasks]
    with fork_pool(min(workers, len(tasks))) as pool:
        return pool.map(function, tasks)


#: Arrays published for forked pool workers.  :func:`published_arrays` fills
#: this immediately before a pool is created (children inherit it
#: copy-on-write) and clears it afterwards, so task tuples can carry a small
#: string key instead of pickling a whole trace through the task queue once
#: per task.
_PUBLISHED: dict[str, np.ndarray] = {}


@contextmanager
def published_arrays(arrays: Mapping[str, np.ndarray]):
    """Publish ``arrays`` to forked workers for the duration of the block.

    Inside the ``with`` block, a task may reference any published array by
    its key; :func:`resolve_array` looks the key up in the worker (or in the
    current process for inline runs).  Publication is only a win when the
    pool *forks* — spawn-based pools re-import the module and see an empty
    table — so callers gate on :func:`fork_available` and fall back to
    embedding the array in the task tuple otherwise.
    """
    _PUBLISHED.update(arrays)
    try:
        yield
    finally:
        for key in arrays:
            _PUBLISHED.pop(key, None)


def resolve_array(payload: str | np.ndarray) -> np.ndarray:
    """Resolve one task payload: a published-array key, or the array itself."""
    if isinstance(payload, str):
        return _PUBLISHED[payload]
    return payload
