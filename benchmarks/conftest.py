"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure, table or numeric claim of the paper
(see the experiment index in ``DESIGN.md``).  Each test

1. runs the corresponding experiment driver once, asserts the *qualitative
   shape* the paper reports (who wins, monotone separation, crossover
   positions), and prints the numeric series via the reporting helpers so the
   captured output documents the reproduced values, and
2. uses ``pytest-benchmark`` to time the computational kernel, so the harness
   doubles as a performance regression suite.

Run with ``pytest benchmarks/ --benchmark-only`` (timings) or additionally
``-s`` to see the reproduced series on stdout.  Each run also appends the
printed tables to ``benchmarks/results/`` as CSV for re-plotting.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmarks drop their CSV series."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def perf_trajectory(results_dir: Path) -> Path:
    """The unified perf-trajectory JSONL every bench records its headline
    numbers into (via :func:`repro.obs.record_perf`); CI compares it against
    the committed ``benchmarks/perf_baseline.json`` with
    ``repro metrics --baseline`` as a warn-only regression gate."""
    return results_dir / "perf_trajectory.jsonl"
