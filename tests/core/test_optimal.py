"""Unit tests for repro.core.optimal — Theorem 4 scheduling and matrix costs."""

from __future__ import annotations

import pytest

from repro.cache import LRUCache, stack_distances
from repro.cache.stack_distance import COLD
from repro.core import (
    Permutation,
    alternating_schedule,
    best_reordering,
    matrix_traversal_costs,
    naive_schedule_total_reuse,
    optimal_reordering,
    schedule_total_reuse,
    schedule_trace,
    total_reuse,
)


class TestOptimalReordering:
    def test_unconstrained_optimum_is_sawtooth(self):
        assert optimal_reordering(6).is_reverse()

    def test_best_reordering_from_candidates(self):
        candidates = [Permutation.identity(4), Permutation([1, 0, 2, 3]), Permutation.reverse(4)]
        assert best_reordering(4, feasible=candidates).is_reverse()

    def test_best_reordering_empty_candidates(self):
        with pytest.raises(ValueError):
            best_reordering(4, feasible=[])

    def test_best_reordering_with_predicate(self):
        assert best_reordering(5, feasibility=lambda p: True).is_reverse()
        with pytest.raises(ValueError):
            best_reordering(5, feasibility=lambda p: p.is_identity())


class TestAlternatingSchedule:
    def test_schedule_shape(self):
        sigma = Permutation.reverse(4)
        schedule = alternating_schedule(sigma, 5)
        assert len(schedule) == 5
        assert [p.is_identity() for p in schedule] == [True, False, True, False, True]
        assert schedule[1] == sigma

    def test_schedule_trace_materialisation(self):
        sigma = Permutation.reverse(3)
        trace = schedule_trace(alternating_schedule(sigma, 2))
        assert trace.tolist() == [0, 1, 2, 2, 1, 0]

    def test_schedule_trace_with_items(self):
        sigma = Permutation.reverse(2)
        trace = schedule_trace([Permutation.identity(2), sigma], items=[7, 9])
        assert trace.tolist() == [7, 9, 9, 7]

    def test_schedule_trace_validation(self):
        with pytest.raises(ValueError):
            schedule_trace([Permutation.identity(2), Permutation.identity(3)])
        with pytest.raises(ValueError):
            schedule_trace([Permutation.identity(2)], items=[1, 2, 3])
        assert schedule_trace([]).size == 0

    def test_theorem4_alternation_beats_naive(self):
        m, passes = 32, 6
        sawtooth = Permutation.reverse(m)
        alternating = schedule_total_reuse(alternating_schedule(sawtooth, passes))
        naive = naive_schedule_total_reuse(m, passes)
        assert alternating < naive
        # the alternation achieves the sawtooth cost on every one of the
        # passes - 1 adjacent pairs
        assert alternating == (passes - 1) * total_reuse(sawtooth)

    def test_reverse_every_pass_is_not_alternation(self):
        # applying the reverse permutation on every pass after the first makes
        # consecutive passes identical (cyclic relative order) — worse than
        # alternating.  This is why Theorem 4 prescribes returning to the
        # original order between permuted passes.
        m, passes = 16, 4
        reverse = Permutation.reverse(m)
        always_reversed = [Permutation.identity(m)] + [reverse] * (passes - 1)
        alternating = alternating_schedule(reverse, passes)
        assert schedule_total_reuse(alternating) < schedule_total_reuse(always_reversed)

    def test_schedule_total_reuse_matches_trace_measurement(self):
        m, passes = 12, 4
        schedule = alternating_schedule(Permutation.reverse(m), passes)
        closed = schedule_total_reuse(schedule)
        trace = schedule_trace(schedule)
        distances = stack_distances(trace)
        measured = int(distances[distances != COLD].sum())
        assert closed == measured

    def test_alternation_improves_lru_hits(self):
        m, passes, cache = 24, 6, 12
        sawtooth = Permutation.reverse(m)
        naive_trace = schedule_trace([Permutation.identity(m)] * passes)
        alt_trace = schedule_trace(alternating_schedule(sawtooth, passes))
        naive_hits = LRUCache(cache).run(naive_trace.tolist()).hits
        alt_hits = LRUCache(cache).run(alt_trace.tolist()).hits
        assert alt_hits > naive_hits


class TestMatrixTraversalCosts:
    def test_paper_formulas(self):
        for n, m in [(2, 3), (4, 4), (8, 16)]:
            costs = matrix_traversal_costs(n, m)
            nm = n * m
            assert costs["elements"] == nm
            assert costs["cyclic"] == nm * nm
            assert costs["sawtooth"] == nm * (nm + 1) // 2
            assert costs["savings_ratio"] == pytest.approx(costs["cyclic"] / costs["sawtooth"])

    def test_savings_approach_two(self):
        ratio = matrix_traversal_costs(64, 64)["savings_ratio"]
        assert 1.9 < ratio < 2.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            matrix_traversal_costs(0, 4)
        with pytest.raises(TypeError):
            matrix_traversal_costs(2.5, 4)
