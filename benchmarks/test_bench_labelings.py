"""Problem 3 exploration — candidate edge labelings and their tie behaviour.

The paper reports trying labelings derived from timescale locality and data
movement complexity while searching for an EL-labeling "dependent precisely on
locality", without success.  This benchmark reruns that exploration: ChainFind
under the miss-ratio labeling λ_e, the ranked variant λ_ψ, the footprint
(timescale) labeling, the data-movement labeling and the total-reuse control,
reporting the arbitrary choices each leaves open.  The qualitative outcome the
paper states — none of the locality-derived labelings is a good labeling —
must reproduce.
"""

from __future__ import annotations

from repro.analysis import format_table, write_csv
from repro.core import compare_labelings, max_inversions


def test_locality_derived_labelings_all_leave_ties(benchmark, results_dir):
    rows = benchmark(compare_labelings, 7)

    for row in rows:
        assert row["chain_length"] == max_inversions(7)
        assert row["reaches_top"]
        # the paper's conclusion: every locality-derived labeling leaves
        # arbitrary choices open
        assert row["arbitrary_choices"] > 0

    by_name = {row["labeling"]: row for row in rows}
    # the aggregate control is the worst offender — it can never break a tie
    control = by_name["total_reuse (control)"]
    assert all(control["arbitrary_choices"] >= row["arbitrary_choices"] for row in rows)

    print()
    print(format_table(rows, title="ChainFind tie statistics under candidate labelings (S_7, Bruhat moves)"))
    write_csv(results_dir / "labelings_s7.csv", rows)


def test_weak_move_restriction_preserves_ties(benchmark, results_dir):
    rows = benchmark(compare_labelings, 7, moves="weak")
    for row in rows:
        assert row["chain_length"] == max_inversions(7)
        assert row["reaches_top"]
    print()
    print(format_table(rows, title="Same comparison restricted to adjacent-swap (weak-order) moves"))
    write_csv(results_dir / "labelings_s7_weak.csv", rows)
