"""Unit tests for repro.ml.tensors."""

from __future__ import annotations

import pytest

from repro.ml import TensorLayout, TensorSpec


class TestTensorSpec:
    def test_elements_and_blocks(self):
        spec = TensorSpec("w", (4, 8), granularity=16)
        assert spec.elements == 32
        assert spec.blocks == 2

    def test_partial_block_rounds_up(self):
        assert TensorSpec("w", (5, 5), granularity=16).blocks == 2

    def test_default_granularity(self):
        assert TensorSpec("w", (3, 3)).blocks == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            TensorSpec("w", ())
        with pytest.raises(ValueError):
            TensorSpec("w", (0, 3))
        with pytest.raises(ValueError):
            TensorSpec("w", (2, 2), granularity=0)


class TestTensorLayout:
    def test_offsets_and_total(self):
        layout = TensorLayout([TensorSpec("a", (4, 8)), TensorSpec("b", (8, 2))])
        assert layout.total_items == 48
        assert layout.offset("a") == 0
        assert layout.offset("b") == 32
        assert layout.item("b", 0) == 32
        assert layout.item("a", 31) == 31

    def test_items_of(self):
        layout = TensorLayout([TensorSpec("a", (2, 2)), TensorSpec("b", (2, 3))])
        assert layout.items_of("b").tolist() == [4, 5, 6, 7, 8, 9]

    def test_owner(self):
        layout = TensorLayout([TensorSpec("a", (2, 2)), TensorSpec("b", (3,))])
        assert layout.owner(0) == ("a", 0)
        assert layout.owner(5) == ("b", 1)
        with pytest.raises(IndexError):
            layout.owner(7)

    def test_canonical_order(self):
        layout = TensorLayout([TensorSpec("a", (3,))])
        assert layout.canonical_order().tolist() == [0, 1, 2]

    def test_from_shapes(self):
        layout = TensorLayout.from_shapes({"x": (2, 4), "y": (4,)}, granularity=2)
        assert layout.total_items == 4 + 2
        assert layout.spec("y").granularity == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TensorLayout([])
        with pytest.raises(ValueError):
            TensorLayout([TensorSpec("a", (2,)), TensorSpec("a", (3,))])
        layout = TensorLayout([TensorSpec("a", (2,))])
        with pytest.raises(KeyError):
            layout.offset("missing")
        with pytest.raises(KeyError):
            layout.spec("missing")
        with pytest.raises(IndexError):
            layout.item("a", 5)
