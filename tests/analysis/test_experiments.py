"""Unit tests for the experiment drivers (figure/claim reproductions)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    fig1_monotone_violations,
    run_feasibility_ablation,
    run_fig1_mrc_by_inversion,
    run_fig2_chainfind_ties,
    run_mahonian_partitions,
    run_matrix_reuse,
    run_miss_integral,
    run_ml_schedule,
    run_policy_ablation,
    run_policy_sweep,
    run_s11_ranked_labeling,
    run_sawtooth_cyclic,
    run_theorem2_random,
)
from repro.core import mahonian_row, max_inversions


class TestFig1:
    def test_structure_and_counts(self):
        result = run_fig1_mrc_by_inversion(4)
        assert result["levels"] == list(range(max_inversions(4) + 1))
        assert [result["counts"][k] for k in result["levels"]] == list(mahonian_row(4))
        assert all(len(curve) == 4 for curve in result["curves"].values())

    def test_separation_by_inversion_number(self):
        result = run_fig1_mrc_by_inversion(5)
        assert fig1_monotone_violations(result) == 0

    def test_extreme_levels_have_known_curves(self):
        result = run_fig1_mrc_by_inversion(5)
        assert result["curves"][0] == pytest.approx([1.0, 1.0, 1.0, 1.0, 0.5])
        assert result["curves"][max_inversions(5)] == pytest.approx([0.9, 0.8, 0.7, 0.6, 0.5])

    def test_retraversal_convention(self):
        result = run_fig1_mrc_by_inversion(4, convention="retraversal")
        assert result["curves"][0][-1] == pytest.approx(0.0)
        assert result["curves"][0][0] == pytest.approx(1.0)

    def test_max_cache_size_truncation(self):
        result = run_fig1_mrc_by_inversion(5, max_cache_size=3)
        assert result["cache_sizes"] == [1, 2, 3]


class TestFig2AndS11:
    def test_tie_counts_structure(self):
        rows = run_fig2_chainfind_ties((3, 4, 5))
        assert [r["m"] for r in rows] == [3, 4, 5]
        assert all(r["chain_length"] == max_inversions(r["m"]) for r in rows)

    def test_ties_nondecreasing_with_m(self):
        rows = run_fig2_chainfind_ties((3, 4, 5, 6, 7))
        ties = [r["arbitrary_choices"] for r in rows]
        assert all(b >= a for a, b in zip(ties, ties[1:]))
        assert ties[-1] > ties[0]

    def test_s11_example(self):
        result = run_s11_ranked_labeling(8)  # smaller m for test speed; same structure
        assert result["chain_length"] == max_inversions(8)
        assert result["lambda_e"]["reaches_top"]
        assert result["lambda_psi"]["reaches_top"]
        # both labelings still face arbitrary choices (the paper's point)
        assert result["lambda_e"]["arbitrary_choices"] > 0
        assert result["lambda_psi"]["arbitrary_choices"] > 0


class TestCanonicalAndTheorem2:
    def test_sawtooth_cyclic_rows(self):
        rows = run_sawtooth_cyclic((4, 8))
        assert rows[0]["sawtooth_hits_first4"] == [1, 2, 3, 4]
        assert rows[0]["cyclic_hits_below_m"] == 0
        assert rows[0]["sawtooth_total_reuse"] == 10
        assert rows[1]["cyclic_total_reuse"] == 64

    def test_theorem2_random_has_zero_deviation(self):
        rows = run_theorem2_random((16, 64), trials=3, rng=1)
        assert all(row["max_deviation"] == 0 for row in rows)

    def test_matrix_reuse_matches_paper_formulas(self):
        rows = run_matrix_reuse(((4, 8), (16, 16)))
        for row in rows:
            assert row["cyclic_total_reuse"] == row["paper_cyclic_formula"]
            assert row["sawtooth_total_reuse"] == row["paper_sawtooth_formula"]
            assert 1.0 < row["savings_ratio"] <= 2.0


class TestAppendix:
    def test_mahonian_partitions(self):
        result = run_mahonian_partitions(5)
        assert result["mahonian_row"] == list(mahonian_row(5))
        for level in result["levels"]:
            assert level["permutations_enumerated"] == level["mahonian"]
            assert level["all_hit_vectors_are_partitions"]

    def test_miss_integral_slope(self):
        result = run_miss_integral(5)
        assert result["per_inversion_drop"] == pytest.approx(result["expected_drop"])
        for row in result["rows"]:
            assert row["integral_spread"] < 1e-9
            assert row["integral_mean"] == pytest.approx(row["closed_form"])


class TestAblations:
    def test_policy_ablation_lru_monotone(self):
        rows = run_policy_ablation(32, levels=(0.0, 0.5, 1.0), trials=2, rng=0)
        lru = [row["lru"] for row in rows]
        assert all(b <= a + 1e-9 for a, b in zip(lru, lru[1:]))
        # the extremes are the paper's closed forms (full-trace convention)
        assert lru[0] == pytest.approx(1.0)
        assert lru[-1] < 1.0

    def test_policy_ablation_opt_lower_bound(self):
        rows = run_policy_ablation(32, levels=(0.0, 1.0), trials=2, rng=0)
        for row in rows:
            assert row["opt"] <= row["lru"] + 1e-9

    def test_feasibility_ablation_bounds(self):
        rows = run_feasibility_ablation(10, edge_probabilities=(0.0, 0.5, 1.0), trials=2, rng=0)
        assert rows[0]["exact_norm_inversions"] == pytest.approx(1.0)
        assert rows[-1]["exact_norm_inversions"] == pytest.approx(0.0)
        for row in rows:
            assert row["greedy_norm_inversions"] <= row["exact_norm_inversions"] + 1e-9
            assert row["random_norm_inversions"] <= row["exact_norm_inversions"] + 1e-9

    def test_policy_sweep_matrix(self):
        result = run_policy_sweep(8000, 512, exponent=0.9, ways=4, rng=3)
        rows = result["rows"]
        assert [row["capacity"] for row in rows] == [4, 8, 16, 32, 64, 128, 256, 512]
        for row in rows:
            for policy in ("lru", "fifo", "random", "set_associative"):
                assert 0.0 <= row[policy] <= 1.0
        # LRU miss ratios fall monotonically with capacity (stack inclusion)
        lru = [row["lru"] for row in rows]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(lru, lru[1:]))
        # a fully-associative grid point can only beat its 4-way counterpart
        for row in rows:
            assert row["lru"] <= row["set_associative"] + 0.05
        assert set(result["kernel_seconds"]) == {"lru", "fifo", "random", "set-associative"}

    def test_ml_schedule_sawtooth_wins(self):
        result = run_ml_schedule(items=64, passes=4)
        by_name = {row["schedule"]: row for row in result["rows"]}
        assert by_name["sawtooth"]["total_reuse"] < by_name["cyclic"]["total_reuse"]
        assert by_name["sawtooth"]["amat"] < by_name["cyclic"]["amat"]
        assert by_name["sawtooth"]["miss_ratio@0.50m"] < by_name["cyclic"]["miss_ratio@0.50m"]
