"""Property-based tests (hypothesis) for the core invariants.

These exercise the central identities of the paper and the data structures of
the substrate on randomly generated inputs:

* Theorem 2 / Corollary 1 on arbitrary permutations,
* agreement between all inversion-counting implementations,
* agreement between the closed-form hit vector, the paper's Algorithm 1
  pseudocode, the generic Olken stack-distance algorithm and full LRU
  simulation,
* group axioms and Lehmer/rank round trips of :class:`Permutation`,
* monotonicity of miss-ratio curves and of the Bruhat/weak order machinery,
* Fenwick tree prefix sums against a NumPy oracle,
* feasibility-constrained optimisation bounds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache, hit_counts, stack_distances as trace_stack_distances
from repro.core import (
    FenwickTree,
    Permutation,
    algorithm1_paper,
    bruhat_leq,
    cache_hit_vector,
    corollary1_deficit,
    count_inversions_fenwick,
    count_inversions_mergesort,
    count_inversions_naive,
    count_inversions_numpy,
    covers,
    hit_vector_partition,
    is_covering,
    max_inversions,
    miss_ratio_curve,
    stack_distances,
    theorem2_deficit,
    total_reuse,
    truncated_miss_integral,
    weak_order_leq,
)
from repro.core.feasibility import (
    DependencyDAG,
    best_feasible_extension,
    greedy_feasible_extension,
    is_feasible,
)
from repro.trace import PeriodicTrace


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
permutations = st.integers(min_value=1, max_value=40).flatmap(lambda m: st.permutations(range(m))).map(Permutation)

small_permutations = st.integers(min_value=1, max_value=9).flatmap(lambda m: st.permutations(range(m))).map(Permutation)

int_sequences = st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=80)


# --------------------------------------------------------------------------- #
# Theorems
# --------------------------------------------------------------------------- #
@given(permutations)
def test_theorem2_holds_for_every_permutation(sigma):
    assert theorem2_deficit(sigma) == 0


@given(permutations)
def test_corollary1_holds_for_every_permutation(sigma):
    assert corollary1_deficit(sigma) == 0


@given(permutations)
def test_total_reuse_identity(sigma):
    # sum of stack distances = m^2 - ℓ(σ)
    assert total_reuse(sigma) == sigma.size ** 2 - sigma.inversions()
    assert total_reuse(sigma) == int(stack_distances(sigma).sum())


@given(permutations)
def test_hit_vector_monotone_and_bounded(sigma):
    vec = cache_hit_vector(sigma)
    assert np.all(np.diff(vec) >= 0)
    assert vec[-1] == sigma.size
    assert np.all(vec >= 0)


@given(permutations)
def test_miss_ratio_curve_monotone_nonincreasing(sigma):
    curve = miss_ratio_curve(sigma)
    assert np.all(np.diff(curve) <= 1e-12)
    assert curve[-1] == 0.5  # full-trace convention: only cold misses remain


@given(permutations)
def test_algorithm1_pseudocode_agrees_with_vectorised(sigma):
    rdh, chv = algorithm1_paper(sigma)
    assert np.array_equal(chv, cache_hit_vector(sigma))
    assert int(rdh.sum()) == sigma.size


@given(small_permutations, st.integers(min_value=1, max_value=9))
def test_closed_form_matches_lru_simulation(sigma, cache_size):
    cache_size = min(cache_size, sigma.size)
    trace = PeriodicTrace(sigma).to_trace()
    hits = LRUCache(cache_size).run(trace).hits
    assert hits == int(cache_hit_vector(sigma)[cache_size - 1])


@given(permutations)
def test_periodic_trace_stack_distances_match_generic_algorithm(sigma):
    trace = PeriodicTrace(sigma).to_trace().accesses
    measured = trace_stack_distances(trace)[sigma.size :]
    assert np.array_equal(measured, stack_distances(sigma))


@given(permutations)
def test_hit_vector_partition_sums_to_inversions(sigma):
    parts = hit_vector_partition(sigma)
    assert sum(parts) == sigma.inversions()
    assert all(1 <= p <= max(sigma.size - 1, 0) for p in parts)


@given(st.integers(min_value=2, max_value=40).flatmap(lambda m: st.permutations(range(m))).map(Permutation))
def test_truncated_miss_integral_closed_form(sigma):
    m = sigma.size
    expected = 1.0 - sigma.inversions() / (m * (m - 1))
    assert abs(truncated_miss_integral(sigma) - expected) < 1e-9


# --------------------------------------------------------------------------- #
# Inversion counting and permutation algebra
# --------------------------------------------------------------------------- #
@given(int_sequences)
def test_inversion_counters_agree(seq):
    expected = count_inversions_naive(seq)
    assert count_inversions_numpy(seq) == expected
    assert count_inversions_mergesort(seq) == expected
    assert count_inversions_fenwick(seq) == expected


@given(permutations)
def test_inverse_is_involution_and_preserves_length(sigma):
    assert sigma.inverse().inverse() == sigma
    assert sigma.inverse().inversions() == sigma.inversions()


@given(small_permutations, small_permutations)
def test_composition_inverse_antihomomorphism(sigma, tau):
    if sigma.size != tau.size:
        return
    assert (sigma * tau).inverse() == tau.inverse() * sigma.inverse()


@given(permutations)
def test_lehmer_code_round_trip(sigma):
    assert Permutation.from_lehmer(sigma.lehmer_code()) == sigma


@given(st.integers(min_value=1, max_value=8), st.data())
def test_rank_unrank_round_trip(m, data):
    import math

    rank = data.draw(st.integers(min_value=0, max_value=math.factorial(m) - 1))
    assert Permutation.unrank(m, rank).rank() == rank


@given(permutations)
def test_inversions_bounded_by_maximum(sigma):
    assert 0 <= sigma.inversions() <= max_inversions(sigma.size)


@given(small_permutations)
def test_covers_add_exactly_one_inversion(sigma):
    for tau in covers(sigma):
        assert tau.inversions() == sigma.inversions() + 1
        assert is_covering(sigma, tau)
        assert bruhat_leq(sigma, tau)


@given(small_permutations)
def test_weak_order_implies_bruhat_order(sigma):
    top = Permutation.reverse(sigma.size)
    assert weak_order_leq(sigma, top)
    assert bruhat_leq(sigma, top)


# --------------------------------------------------------------------------- #
# Substrate data structures
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=-5, max_value=5)), max_size=60))
def test_fenwick_tree_matches_numpy_prefix_sums(updates):
    tree = FenwickTree(64)
    oracle = np.zeros(64, dtype=np.int64)
    for index, delta in updates:
        tree.add(index, delta)
        oracle[index] += delta
    for probe in (0, 1, 7, 31, 63):
        assert tree.prefix_sum(probe) == int(oracle[: probe + 1].sum())
    assert tree.total == int(oracle.sum())


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=120),
       st.integers(min_value=1, max_value=32))
def test_hit_counts_match_lru_simulation_on_arbitrary_traces(trace, cache_size):
    hits_vec = hit_counts(trace, max_cache_size=cache_size)
    simulated = LRUCache(cache_size).run(trace).hits
    assert int(hits_vec[cache_size - 1]) == simulated


@given(
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40)
def test_feasible_optimisation_bounds(m, probability, seed):
    dag = DependencyDAG.random(m, probability, seed)
    sigma, exact = best_feasible_extension(dag)
    greedy = greedy_feasible_extension(dag)
    assert is_feasible(sigma, dag)
    assert is_feasible(greedy, dag)
    assert is_feasible(Permutation.identity(m), dag)
    assert greedy.inversions() <= exact <= max_inversions(m)


# --------------------------------------------------------------------------- #
# Footprint and phase decomposition
# --------------------------------------------------------------------------- #
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=40))
@settings(max_examples=60)
def test_footprint_curve_matches_brute_force(trace):
    from repro.cache import footprint_curve

    curve = footprint_curve(trace)
    n = len(trace)
    assert curve.size == n + 1
    for w in range(n + 1):
        if w == 0:
            expected = 0.0
        else:
            windows = [len(set(trace[i : i + w])) for i in range(n - w + 1)]
            expected = sum(windows) / len(windows)
        assert abs(curve[w] - expected) < 1e-9


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=60))
@settings(max_examples=60)
def test_footprint_monotone_and_bounded(trace):
    from repro.cache import footprint_curve

    curve = footprint_curve(trace)
    distinct = len(set(trace))
    assert np.all(np.diff(curve) >= -1e-9)
    assert curve[-1] <= distinct + 1e-9
    assert abs(curve[-1] - distinct) < 1e-9


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40)
def test_phase_model_prediction_exact_for_epoch_traces(m, passes, seed):
    from repro.trace import phase_decomposition, predicted_hits, repeated_traversals

    rng_local = np.random.default_rng(seed)
    schedule = [Permutation(rng_local.permutation(m)) for _ in range(passes)]
    trace = repeated_traversals(schedule)
    decomposition = phase_decomposition(trace)
    assert decomposition.decomposable
    assert decomposition.num_phases == passes
    for cache_size in (1, max(1, m // 2), m):
        predicted = predicted_hits(decomposition, cache_size)
        measured = LRUCache(cache_size).run(trace).hits
        assert predicted == measured


@given(permutations)
def test_data_movement_distance_ordering_consistent_with_theorem2(sigma):
    # the data-movement distance of a re-traversal is a strictly decreasing
    # function of each stack distance improvement, so the sawtooth of the same
    # size is never costlier than sigma
    from repro.cache import data_movement_distance
    from repro.trace import PeriodicTrace as PT

    cost_sigma = data_movement_distance(PT(sigma).to_trace().accesses)
    cost_sawtooth = data_movement_distance(PT.sawtooth(sigma.size).to_trace().accesses)
    assert cost_sawtooth <= cost_sigma + 1e-9
