#!/usr/bin/env python
"""Trace-level analysis: measuring workloads that are not pure re-traversals.

The symmetric-locality theory covers periodic traces ``A σ(A)``; real traces
reuse data arbitrarily often (the Section VI-D limitation).  This example uses
the trace substrate to analyse several synthetic workloads end to end:

1. generate STREAM, naive and tiled matrix-multiply, stencil and Zipfian
   traces,
2. write / re-read them from trace files (the usual tooling workflow),
3. compute their reuse statistics, miss-ratio curves and locality scores,
4. compare LRU against FIFO and the Belady-OPT oracle at a fixed cache size,
5. show where each workload sits between the cyclic (0) and sawtooth (1)
   extremes of the symmetric-locality spectrum.

Run with:  python examples/trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.cache import FIFOCache, LRUCache, mrc_from_trace, simulate_opt
from repro.trace import (
    Trace,
    locality_score,
    matrix_multiply_blocked,
    matrix_multiply_ijk,
    read_text,
    stencil_sweeps,
    stream_copy,
    summarize,
    write_text,
    zipfian_trace,
)


def build_workloads() -> dict[str, Trace]:
    return {
        "stream_copy (2 reps)": stream_copy(256, repetitions=2),
        "matmul 12x12 naive": matrix_multiply_ijk(12),
        "matmul 12x12 tiled": matrix_multiply_blocked(12, 4),
        "stencil fwd sweeps": stencil_sweeps(128, 4, reverse_odd=False),
        "stencil zigzag sweeps": stencil_sweeps(128, 4, reverse_odd=True),
        "zipf(1.0)": zipfian_trace(4000, 256, exponent=1.0, rng=0),
    }


def main() -> None:
    workloads = build_workloads()

    # 1. Round-trip through trace files ----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        reread = {}
        for name, trace in workloads.items():
            path = Path(tmp) / f"{name.split()[0]}.trace"
            write_text(trace, path)
            reread[name] = read_text(path)
        workloads = reread
    print(f"Loaded {len(workloads)} workload traces from disk.\n")

    # 2. Descriptive statistics --------------------------------------------------
    rows = []
    for name, trace in workloads.items():
        stats = summarize(trace)
        rows.append(
            {
                "workload": name,
                "accesses": stats.accesses,
                "footprint": stats.footprint,
                "reuse fraction": stats.reuse_fraction(),
                "mean stack distance": stats.mean_stack_distance,
                "locality score": locality_score(trace),
            }
        )
    print(format_table(rows, title="Workload reuse statistics (locality score: 0 = cyclic, 1 = sawtooth)"))
    print()

    # 3. Miss-ratio curves sampled at a few cache sizes --------------------------
    rows = []
    for name, trace in workloads.items():
        curve = mrc_from_trace(trace.accesses)
        footprint = trace.footprint
        rows.append(
            {
                "workload": name,
                "mr @ 12.5%": curve[max(1, footprint // 8)],
                "mr @ 50%": curve[max(1, footprint // 2)],
                "mr @ 100%": curve[footprint],
                "footprint for mr<=0.2": curve.footprint(0.2) or "-",
            }
        )
    print(format_table(rows, title="LRU miss ratios at fractions of the footprint"))
    print()

    # 4. Policy comparison at half the footprint ---------------------------------
    rows = []
    for name, trace in workloads.items():
        capacity = max(1, trace.footprint // 2)
        lru = LRUCache(capacity).run(trace).miss_ratio
        fifo = FIFOCache(capacity).run(trace).miss_ratio
        opt = simulate_opt(trace.accesses, capacity).miss_ratio
        rows.append({"workload": name, "cache": capacity, "OPT": opt, "LRU": lru, "FIFO": fifo})
    print(format_table(rows, title="Replacement-policy comparison at cache = footprint/2"))
    print()

    print(
        "Observations: STREAM sits at the cyclic end (no reuse within a pass);\n"
        "tiling the matrix multiply and zig-zagging the stencil shorten reuse\n"
        "distances exactly as the symmetric-locality model predicts for\n"
        "sawtooth-style re-traversals."
    )


if __name__ == "__main__":
    main()
