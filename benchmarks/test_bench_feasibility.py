"""Ablation — feasibility-constrained re-ordering (Definition 7).

Random dependence DAGs of increasing density are generated; the exact bitmask
DP, the greedy largest-available-label heuristic and a random linear extension
are compared on the fraction of the unconstrained maximum inversion number
they achieve.  Denser dependences shrink the feasible space towards the
original (cyclic) order.
"""

from __future__ import annotations

from repro.analysis import format_table, run_feasibility_ablation, write_csv


def test_feasibility_constrained_reordering(benchmark, results_dir):
    rows = benchmark(
        run_feasibility_ablation,
        14,
        edge_probabilities=(0.0, 0.1, 0.3, 0.5, 0.8),
        trials=3,
        rng=0,
    )

    exact = [row["exact_norm_inversions"] for row in rows]
    # unconstrained => sawtooth; fully chained => identity; monotone decrease in between
    assert exact[0] == 1.0
    assert all(b <= a + 1e-9 for a, b in zip(exact, exact[1:]))
    for row in rows:
        assert row["greedy_norm_inversions"] <= row["exact_norm_inversions"] + 1e-9
        assert row["random_norm_inversions"] <= row["exact_norm_inversions"] + 1e-9
        # greedy stays within a reasonable factor of the optimum
        if row["exact_norm_inversions"] > 0:
            assert row["greedy_to_exact"] > 0.6

    print()
    print(
        format_table(
            rows,
            title="Feasibility ablation — normalised inversions achieved vs dependence density (m=14)",
        )
    )
    write_csv(results_dir / "feasibility_ablation.csv", rows)
