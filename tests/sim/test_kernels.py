"""Cross-validation of the lane-vectorised FIFO/random/set-associative kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.fifo import FIFOCache
from repro.cache.random_policy import RandomCache
from repro.cache.set_associative import SetAssociativeCache
from repro.core.permutation import Permutation
from repro.sim import (
    compact_trace,
    fifo_sweep_hits,
    random_sweep_hits,
    set_associative_sweep_hits,
)
from repro.trace.generators import zipfian_trace
from repro.trace.trace import PeriodicTrace


@pytest.fixture
def zipf_dense():
    trace = zipfian_trace(3000, 96, exponent=0.9, rng=11).accesses
    return compact_trace(trace)


class TestCompactTrace:
    def test_densifies_sparse_labels(self):
        dense, distinct = compact_trace(np.array([100, 7, 100, 9_999_999, 7]))
        assert distinct == 3
        assert dense.max() == 2
        # identity structure preserved: equal labels stay equal, order kept
        assert dense[0] == dense[2] and dense[1] == dense[4]
        assert len(set(dense[:2])) == 2

    def test_rejects_empty_and_non_integer(self):
        with pytest.raises(ValueError):
            compact_trace(np.array([], dtype=np.int64))
        with pytest.raises(TypeError):
            compact_trace(np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            compact_trace(np.zeros((2, 2), dtype=np.int64))


class TestFIFOKernel:
    def test_bit_identical_to_fifo_replay(self, zipf_dense):
        dense, distinct = zipf_dense
        capacities = np.arange(1, 97, 3)
        kernel = fifo_sweep_hits(dense, capacities, distinct=distinct)
        for capacity, hits in zip(capacities, kernel):
            assert hits == FIFOCache(int(capacity)).run(dense.tolist()).hits

    def test_periodic_trace_bit_identical(self):
        trace = PeriodicTrace(Permutation([3, 1, 4, 0, 2, 5])).to_trace().accesses
        dense, distinct = compact_trace(trace)
        capacities = np.arange(1, 7)
        kernel = fifo_sweep_hits(dense, capacities, distinct=distinct)
        for capacity, hits in zip(capacities, kernel):
            assert hits == FIFOCache(int(capacity)).run(dense.tolist()).hits

    def test_lane_independence(self, zipf_dense):
        """Each capacity lane is unaffected by which other lanes run alongside."""
        dense, distinct = zipf_dense
        full = fifo_sweep_hits(dense, np.arange(1, 33), distinct=distinct)
        alone = fifo_sweep_hits(dense, np.array([17]), distinct=distinct)
        assert alone[0] == full[16]


class TestRandomKernel:
    def test_deterministic_given_seed(self, zipf_dense):
        dense, distinct = zipf_dense
        capacities = np.arange(1, 49)
        a = random_sweep_hits(dense, capacities, seed=3, distinct=distinct)
        b = random_sweep_hits(dense, capacities, seed=3, distinct=distinct)
        assert np.array_equal(a, b)

    def test_partition_invariant(self, zipf_dense):
        """Any split of the grid reproduces the same per-capacity hits."""
        dense, distinct = zipf_dense
        capacities = np.arange(1, 49)
        full = random_sweep_hits(dense, capacities, seed=5, distinct=distinct)
        pieces = [random_sweep_hits(dense, chunk, seed=5, distinct=distinct) for chunk in np.array_split(capacities, 7)]
        assert np.array_equal(full, np.concatenate(pieces))

    def test_capacity_at_footprint_only_cold_misses(self, zipf_dense):
        dense, distinct = zipf_dense
        hits = random_sweep_hits(dense, np.array([distinct]), seed=0, distinct=distinct)
        assert hits[0] == dense.size - distinct

    def test_statistics_match_random_cache(self, zipf_dense):
        """The kernel's hit-ratio distribution matches RandomCache's (no bias).

        Guards the deviate-stream design: pre-drawn per-access deviates are
        only distributionally equivalent to eviction-time draws while the
        stream is independent of the trace, which the salted seeding ensures
        even when trace and sweep share an integer seed.
        """
        dense, distinct = zipf_dense
        seeds = range(12)
        kernel = [int(random_sweep_hits(dense, np.array([16]), seed=s, distinct=distinct)[0]) for s in seeds]
        replay = [RandomCache(16, rng=s).run(dense.tolist()).hits for s in seeds]
        kernel_mean = np.mean(kernel) / dense.size
        replay_mean = np.mean(replay) / dense.size
        assert abs(kernel_mean - replay_mean) < 0.02


class TestSetAssociativeKernel:
    def test_bit_identical_to_model_replay(self, zipf_dense):
        dense, _ = zipf_dense
        ways = 4
        capacities = np.array([4, 8, 16, 32, 64, 96])
        kernel = set_associative_sweep_hits(dense, capacities, ways=ways)
        for capacity, hits in zip(capacities, kernel):
            model = SetAssociativeCache(int(capacity) // ways, ways)
            assert hits == model.run(dense.tolist()).hits

    def test_direct_mapped_and_fully_associative_extremes(self, zipf_dense):
        dense, _ = zipf_dense
        direct = set_associative_sweep_hits(dense, np.array([16]), ways=1)
        model = SetAssociativeCache(16, 1)
        assert direct[0] == model.run(dense.tolist()).hits
        # one set of `capacity` ways degenerates to fully-associative LRU
        fully = set_associative_sweep_hits(dense, np.array([16]), ways=16)
        model = SetAssociativeCache(1, 16)
        assert fully[0] == model.run(dense.tolist()).hits

    def test_rejects_non_multiple_capacities(self, zipf_dense):
        dense, _ = zipf_dense
        with pytest.raises(ValueError):
            set_associative_sweep_hits(dense, np.array([6]), ways=4)
        with pytest.raises(ValueError):
            set_associative_sweep_hits(dense, np.array([4]), ways=0)
