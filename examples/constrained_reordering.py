#!/usr/bin/env python
"""Feasibility-constrained re-ordering: optimising locality under dependences.

Real programs cannot permute their accesses arbitrarily — data dependences
restrict the feasible re-traversals to the linear extensions of a partial
order (Definition 7).  This example

1. builds dependence DAGs of three shapes the paper discusses: unordered data
   (a set), partially ordered data (timestamped layers), and block-ordered
   data (sentences whose words cannot be re-ordered),
2. finds the best feasible re-ordering exactly (bitmask DP) and with the
   greedy heuristic, and compares their locality to the unconstrained sawtooth,
3. runs ChainFind restricted by the feasibility predicate and shows the chain
   stops exactly when no feasible cover remains,
4. measures the resulting schedules with an LRU cache.

Run with:  python examples/constrained_reordering.py
"""

from __future__ import annotations

import numpy as np

from repro import Permutation, cache_hit_vector, chain_find, max_inversions
from repro.analysis import format_table
from repro.cache import LRUCache
from repro.core import (
    DependencyDAG,
    best_feasible_extension,
    count_linear_extensions,
    feasibility_predicate,
    greedy_feasible_extension,
)
from repro.core.optimal import alternating_schedule, schedule_trace
from repro.trace import PeriodicTrace


def analyse(name: str, dag: DependencyDAG) -> dict:
    exact, exact_ell = best_feasible_extension(dag)
    greedy = greedy_feasible_extension(dag)
    return {
        "scenario": name,
        "items": dag.size,
        "dependences": len(dag.edges),
        "linear extensions": count_linear_extensions(dag),
        "max feasible ℓ (exact)": exact_ell,
        "greedy ℓ": greedy.inversions(),
        "unconstrained max ℓ": max_inversions(dag.size),
    }


def main() -> None:
    m = 12

    scenarios = {
        "unordered set": DependencyDAG.unconstrained(m),
        "3 time layers": DependencyDAG.layered([4, 4, 4]),
        "4 sentences of 3 words": DependencyDAG.blocks([3, 3, 3, 3]),
        "random dependences (p=0.2)": DependencyDAG.random(m, 0.2, rng=1),
    }

    rows = [analyse(name, dag) for name, dag in scenarios.items()]
    print(format_table(rows, title="Best feasible re-ordering per dependence structure (m = 12)"))
    print()

    # ChainFind restricted to the feasible region ------------------------------
    rows = []
    for name, dag in scenarios.items():
        result = chain_find(Permutation.identity(m), feasibility=feasibility_predicate(dag))
        rows.append(
            {
                "scenario": name,
                "chain length": result.length,
                "stop reason": result.stopped_reason,
                "final ℓ": result.end.inversions(),
                "final hits (c=6)": int(cache_hit_vector(result.end)[5]),
            }
        )
    print(format_table(rows, title="ChainFind restricted by the feasibility predicate Y"))
    print()

    # Cache effect of using the best feasible order in a Theorem-4 schedule ----
    passes = 4
    cache = m // 2
    rows = []
    for name, dag in scenarios.items():
        best, _ = best_feasible_extension(dag)
        naive = np.concatenate([np.arange(m)] * passes)
        optimised = schedule_trace(alternating_schedule(best, passes))
        naive_mr = LRUCache(cache).run(naive.tolist()).miss_ratio
        optim_mr = LRUCache(cache).run(optimised.tolist()).miss_ratio
        rows.append(
            {
                "scenario": name,
                "cyclic miss ratio": naive_mr,
                "feasible-alternating miss ratio": optim_mr,
                "sawtooth bound": LRUCache(cache)
                .run(PeriodicTrace.sawtooth(m).to_trace().accesses.tolist())
                .miss_ratio,
            }
        )
    print(format_table(rows, title=f"LRU miss ratio over {passes} passes, cache = m/2 (lower is better)"))


if __name__ == "__main__":
    main()
