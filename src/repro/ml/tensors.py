"""Tensor-to-data-item layouts for the deep-learning application layer.

The Section VI-A optimisation operates on the *parameter space* of a model:
each weight tensor is split into fixed-size blocks (cache lines / tiles) and a
traversal visits the blocks in some order.  :class:`TensorLayout` assigns a
contiguous range of item labels to each named tensor, converts between
(tensor, flat offset) coordinates and global item labels, and produces the
canonical traversal order that the permutation machinery then re-orders.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .._util import check_positive_int

__all__ = ["TensorSpec", "TensorLayout"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape and block granularity of one named tensor."""

    name: str
    shape: tuple[int, ...]
    granularity: int = 1

    def __post_init__(self):
        if not self.shape:
            raise ValueError(f"tensor {self.name!r} must have a non-empty shape")
        for dim in self.shape:
            check_positive_int(dim, f"{self.name} dimension")
        check_positive_int(self.granularity, "granularity")

    @property
    def elements(self) -> int:
        """Number of scalar elements."""
        return int(np.prod(self.shape))

    @property
    def blocks(self) -> int:
        """Number of data items (blocks of ``granularity`` consecutive elements)."""
        return -(-self.elements // self.granularity)


class TensorLayout:
    """Assign global item labels to the blocks of a collection of tensors.

    Tensors are laid out in declaration order; block ``b`` of tensor ``t``
    gets the label ``offset(t) + b``.

    Examples
    --------
    >>> layout = TensorLayout([TensorSpec("w1", (4, 8)), TensorSpec("w2", (8, 2))])
    >>> layout.total_items
    48
    >>> layout.item("w2", 0)
    32
    """

    def __init__(self, tensors: Sequence[TensorSpec]):
        if not tensors:
            raise ValueError("layout needs at least one tensor")
        names = [t.name for t in tensors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tensor names in layout: {names}")
        self.tensors: tuple[TensorSpec, ...] = tuple(tensors)
        offsets: dict[str, int] = {}
        base = 0
        for spec in self.tensors:
            offsets[spec.name] = base
            base += spec.blocks
        self._offsets = offsets
        self.total_items = base

    @classmethod
    def from_shapes(cls, shapes: Mapping[str, Sequence[int]], *, granularity: int = 1) -> "TensorLayout":
        """Build a layout from a ``{name: shape}`` mapping with uniform granularity."""
        return cls([TensorSpec(name, tuple(int(d) for d in shape), granularity) for name, shape in shapes.items()])

    def spec(self, name: str) -> TensorSpec:
        """The :class:`TensorSpec` of a named tensor."""
        for t in self.tensors:
            if t.name == name:
                return t
        raise KeyError(f"unknown tensor {name!r}")

    def offset(self, name: str) -> int:
        """Global label of the first block of tensor ``name``."""
        if name not in self._offsets:
            raise KeyError(f"unknown tensor {name!r}")
        return self._offsets[name]

    def item(self, name: str, block: int) -> int:
        """Global label of block ``block`` of tensor ``name``."""
        spec = self.spec(name)
        if not 0 <= block < spec.blocks:
            raise IndexError(f"block {block} out of range for tensor {name!r} ({spec.blocks} blocks)")
        return self._offsets[name] + block

    def items_of(self, name: str) -> np.ndarray:
        """All item labels of one tensor, in block order."""
        spec = self.spec(name)
        start = self._offsets[name]
        return np.arange(start, start + spec.blocks, dtype=np.intp)

    def owner(self, item: int) -> tuple[str, int]:
        """The ``(tensor name, block index)`` owning a global item label."""
        if not 0 <= item < self.total_items:
            raise IndexError(f"item {item} out of range 0..{self.total_items - 1}")
        for spec in self.tensors:
            start = self._offsets[spec.name]
            if start <= item < start + spec.blocks:
                return spec.name, item - start
        raise RuntimeError("unreachable: layout offsets are exhaustive")

    def canonical_order(self) -> np.ndarray:
        """Every item label in layout order — the canonical traversal ``A``."""
        return np.arange(self.total_items, dtype=np.intp)
