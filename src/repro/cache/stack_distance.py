"""Reuse-interval and LRU stack-distance algorithms for arbitrary traces.

The closed-form results of :mod:`repro.core.hits` apply to periodic traces
``A σ(A)``; general program traces reuse data arbitrarily often (the
limitation discussed in Section VI-D/E).  This module provides the classic
trace-processing algorithms so that arbitrary traces can be analysed and the
periodic special case can be cross-validated:

* :func:`reuse_intervals` — the time (access count) between consecutive uses
  of the same item (Definition 4).
* :func:`stack_distances_naive` — Mattson's original stack simulation,
  ``O(N·M)``; the readable oracle.
* :func:`stack_distances` — the Olken/Bennett–Kruskal algorithm: a Fenwick
  tree over access times marks the *last* access of every item, so the number
  of distinct items touched since the previous access of the current item is a
  suffix sum — ``O(N log N)`` overall.
* :func:`stack_distance_histogram` and :func:`hit_counts` — aggregate forms
  used by the miss-ratio-curve construction in :mod:`repro.cache.mrc`.

Distances use the same convention as the rest of the library: the *stack
distance* of an access is ``1 +`` the number of distinct items referenced since
the previous access to the same item; first-ever accesses (cold misses) have
no finite distance and are reported as ``0`` sentinel in the histogram's
overflow slot or ``numpy.iinfo(np.int64).max`` in per-access arrays.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.inversions import FenwickTree

__all__ = [
    "COLD",
    "reuse_intervals",
    "stack_distances_naive",
    "stack_distances",
    "stack_distance_histogram",
    "hit_counts",
]

#: Sentinel distance assigned to cold (first-ever) accesses.
COLD: int = int(np.iinfo(np.int64).max)


def _as_trace(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(trace)
    if arr.ndim != 1:
        raise ValueError(f"trace must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"trace items must be integers, got dtype {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def reuse_intervals(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reuse interval of each access: accesses since the previous use of the same item.

    The first access of an item has no previous use and is reported as
    :data:`COLD`.  (The paper's Definition 4 assigns the interval to the
    *earlier* access of the pair; assigning it to the later access, as done
    here, is the standard trace-processing convention and carries the same
    multiset of finite values.)
    """
    arr = _as_trace(trace)
    out = np.full(arr.size, COLD, dtype=np.int64)
    last_seen: dict[int, int] = {}
    for pos in range(arr.size):
        item = int(arr[pos])
        if item in last_seen:
            out[pos] = pos - last_seen[item] - 1
        last_seen[item] = pos
    return out


def stack_distances_naive(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances by direct stack simulation (``O(N·M)`` oracle).

    Maintains the explicit LRU stack; the distance of an access is the depth
    (1-based) of the item in the stack, or :data:`COLD` if absent.
    """
    arr = _as_trace(trace)
    stack: list[int] = []  # most recently used at the end
    out = np.full(arr.size, COLD, dtype=np.int64)
    for pos in range(arr.size):
        item = int(arr[pos])
        try:
            depth_from_top = len(stack) - stack.index(item)
            out[pos] = depth_from_top
            stack.remove(item)
        except ValueError:
            pass
        stack.append(item)
    return out


def stack_distances(trace: Sequence[int] | np.ndarray) -> np.ndarray:
    """LRU stack distances via the Olken / Bennett–Kruskal Fenwick-tree algorithm.

    For each access the algorithm needs the number of *distinct* items touched
    since the previous access to the same item.  Keeping a Fenwick tree with a
    1 at the position of every item's most recent access, that count is the
    sum of the tree over positions after the item's previous access.  Each
    access does O(log N) work.
    """
    arr = _as_trace(trace)
    n = arr.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last_pos: dict[int, int] = {}
    for pos in range(n):
        item = int(arr[pos])
        prev = last_pos.get(item)
        if prev is not None:
            distinct_between = tree.range_sum(prev + 1, pos - 1)
            out[pos] = distinct_between + 1
            tree.add(prev, -1)
        tree.add(pos, 1)
        last_pos[item] = pos
    return out


def stack_distance_histogram(
    trace: Sequence[int] | np.ndarray, *, max_distance: int | None = None
) -> tuple[np.ndarray, int]:
    """Histogram of finite stack distances plus the count of cold accesses.

    Returns ``(hist, cold)`` where ``hist[d - 1]`` counts accesses at stack
    distance ``d`` (1-based, up to ``max_distance`` or the number of distinct
    items) and ``cold`` counts first-ever accesses.
    """
    arr = _as_trace(trace)
    distances = stack_distances(arr)
    finite = distances[distances != COLD]
    cold = int(arr.size - finite.size)
    limit = int(max_distance) if max_distance is not None else (int(finite.max()) if finite.size else 0)
    hist = np.zeros(max(limit, 0), dtype=np.int64)
    if finite.size:
        clipped = finite[finite <= limit] if limit else finite[:0]
        np.add.at(hist, clipped - 1, 1)
    return hist, cold


def hit_counts(trace: Sequence[int] | np.ndarray, *, max_cache_size: int | None = None) -> np.ndarray:
    """``hits_c`` for ``c = 1 .. max_cache_size`` on an arbitrary trace.

    An access hits in a fully-associative LRU cache of size ``c`` exactly when
    its stack distance is ≤ ``c``; the hit-count vector is therefore the
    cumulative sum of the stack-distance histogram.  The default cache-size
    range extends to the number of distinct items in the trace.
    """
    arr = _as_trace(trace)
    distinct = int(np.unique(arr).size) if arr.size else 0
    limit = int(max_cache_size) if max_cache_size is not None else distinct
    hist, _cold = stack_distance_histogram(arr, max_distance=limit)
    if hist.size < limit:
        hist = np.concatenate([hist, np.zeros(limit - hist.size, dtype=np.int64)])
    return np.cumsum(hist)
