"""Ablation — does the symmetric-locality ranking survive non-LRU caches?

The theory assumes a fully-associative LRU cache (Section II).  This benchmark
replays re-traversals at several inversion levels under LRU, FIFO, Belady-OPT
and a 4-way set-associative LRU cache of the same capacity, reporting the mean
miss ratios.  Under LRU the ranking follows the inversion number exactly; the
other models show how robust the ordering is to the modelling assumption.
"""

from __future__ import annotations

from repro.analysis import format_table, run_policy_ablation, write_csv


def test_policy_ablation_locality_ranking(benchmark, results_dir):
    rows = benchmark(run_policy_ablation, 64, levels=(0.0, 0.25, 0.5, 0.75, 1.0), cache_fraction=0.5, trials=3, rng=0)

    lru = [row["lru"] for row in rows]
    opt = [row["opt"] for row in rows]
    # LRU miss ratio is monotone non-increasing in the inversion level,
    # and Belady-OPT lower-bounds LRU at every level
    assert all(b <= a + 1e-9 for a, b in zip(lru, lru[1:]))
    assert all(o <= l_ + 1e-9 for o, l_ in zip(opt, lru))
    # identity thrashes completely, sawtooth reaches the compulsory floor
    assert lru[0] == 1.0
    assert lru[-1] < 0.8
    # OPT lower-bounds LRU at every level
    for row in rows:
        assert row["opt"] <= row["lru"] + 1e-9

    print()
    print(
        format_table(
            rows,
            title="Policy ablation — mean miss ratio of re-traversals by inversion level (m=64, cache=32)",
        )
    )
    write_csv(results_dir / "policy_ablation.csv", rows)
