"""Fault-tolerant execution: resilient pooling, checkpoints, integrity, chaos.

Long multi-process runs fail in predictable ways — a worker raises, a worker
is killed mid-task (OOM), a task stalls, a run is interrupted, a memmap
trace is truncated or corrupted on disk.  This package gives every one of
those failure modes a deterministic recovery path without ever changing
*what* a run computes:

* :class:`RetryPolicy` (``policy``) — bounded retries, per-task timeouts
  and seeded backoff jitter for :func:`repro.engine.runner.pool_map`'s
  degradation ladder (retry in pool → re-run inline →
  :class:`PoolFailureError`).
* ``checkpoint`` — atomic, checksummed, fingerprinted snapshots
  (:func:`write_checkpoint` / :func:`load_checkpoint`) behind the online
  replay's ``--checkpoint``/``--resume`` and the sweep's task memo.
* ``errors`` — the structured failure types (:class:`TaskFailure`,
  :class:`TraceIntegrityError`, :class:`CheckpointIntegrityError`).
* ``faults`` — seeded :class:`FaultPlan` chaos hooks
  (:func:`install_faults`) plus on-disk trace damage helpers, driving the
  ``tests/resilience`` suite that proves each recovery path end-to-end.

Examples
--------
A retry policy's backoff schedule is a pure function of its seed:

>>> from repro.resilience import RetryPolicy
>>> policy = RetryPolicy(retries=2, backoff=0.1, seed=42)
>>> policy.delay(3, 1) == policy.delay(3, 1)
True
>>> policy.attempts
3
"""

from .checkpoint import CHECKPOINT_SCHEMA, Checkpoint, latest_step, load_checkpoint, write_checkpoint
from .errors import CheckpointError, CheckpointIntegrityError, PoolFailureError, TaskFailure, TraceIntegrityError
from .faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    corrupt_trace_column,
    fire,
    install_faults,
    kill,
    stall,
    transient,
    truncate_trace_column,
)
from .policy import RetryPolicy

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "CheckpointIntegrityError",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "PoolFailureError",
    "RetryPolicy",
    "TaskFailure",
    "TraceIntegrityError",
    "active_plan",
    "corrupt_trace_column",
    "fire",
    "install_faults",
    "kill",
    "latest_step",
    "load_checkpoint",
    "stall",
    "transient",
    "truncate_trace_column",
    "write_checkpoint",
]
