"""Observability: one instrumentation substrate for every engine.

The rule of the layer is that instrumentation is *additive only*: turning
metrics on never changes a result row, summary, or allocation (asserted by
the differential suite), and with nothing recording the instrumented hot
paths run through shared no-op singletons at seed speed.

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms, span timings, per-epoch series), the
  :func:`recording` context that installs the active registry, and the
  :func:`span` timing context manager with its disabled fast path.
* :mod:`repro.obs.manifest` — :class:`RunManifest`: args/seed/git-sha/
  versions provenance written at the head of every metrics file.
* :mod:`repro.obs.export` — JSONL (canonical), CSV, and Prometheus text
  exporters plus the ``repro metrics`` scoreboard renderer.
* :mod:`repro.obs.trajectory` — structured benchmark perf records and the
  direction-aware baseline comparison behind the CI perf-trajectory gate.

Examples
--------
Nothing recording: metrics are no-ops, but spans still measure.

>>> from repro.obs import MetricsRegistry, get_registry, recording, span
>>> get_registry().enabled
False
>>> with span("warmup") as timer:
...     _ = sum(range(100))
>>> timer.seconds >= 0.0
True

Install a registry to record; counters, histograms, and series accumulate:

>>> registry = MetricsRegistry()
>>> with recording(registry):
...     for batch in ([3, 1, 4], [1, 5]):
...         with span("ingest", source="demo"):
...             get_registry().counter("events").add(len(batch))
>>> registry.counter("events").value
5
>>> hist = registry.histogram("moved", edges=(1, 4, 16))
>>> hist.observe_many([2, 3, 20])
>>> hist.counts
[0, 2, 0, 1]

Registries merge associatively — sharded partials fold in any order:

>>> shard = MetricsRegistry()
>>> shard.counter("events").add(7)
>>> registry.merge(shard).counter("events").value
12
"""

from .export import (
    prometheus_text,
    read_jsonl,
    summarize_records,
    write_jsonl,
    write_metrics_csv,
    write_prometheus,
)
from .manifest import RunManifest, git_sha
from .registry import (
    Counter,
    EpochSeriesRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    SpanStats,
    get_registry,
    recording,
    span,
)
from .trajectory import PerfRecord, compare_to_baseline, load_perf, record_perf

__all__ = [
    "Counter",
    "EpochSeriesRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PerfRecord",
    "RunManifest",
    "Span",
    "SpanStats",
    "compare_to_baseline",
    "get_registry",
    "git_sha",
    "load_perf",
    "prometheus_text",
    "read_jsonl",
    "record_perf",
    "recording",
    "span",
    "summarize_records",
    "write_jsonl",
    "write_metrics_csv",
    "write_prometheus",
]
