"""Unit tests for the engine worker-pool runner."""

from __future__ import annotations

import os

import pytest

import numpy as np

from repro.engine.runner import check_workers, pool_map, published_arrays, resolve_array


def _square(x: int) -> int:
    return x * x


def _tag_pid(x: int) -> tuple[int, int]:
    return x, os.getpid()


class TestCheckWorkers:
    def test_accepts_positive(self):
        assert check_workers(1) == 1
        assert check_workers(8) == 8

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_workers(bad)


class TestPoolMap:
    def test_inline_when_single_worker(self):
        values, pids = zip(*pool_map(_tag_pid, [1, 2, 3], workers=1))
        assert values == (1, 2, 3)
        assert set(pids) == {os.getpid()}

    def test_inline_when_single_task(self):
        _, pid = pool_map(_tag_pid, [5], workers=4)[0]
        assert pid == os.getpid()

    def test_pooled_preserves_order(self):
        assert pool_map(_square, list(range(20)), workers=3) == [x * x for x in range(20)]

    def test_empty_tasks(self):
        assert pool_map(_square, [], workers=4) == []

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            pool_map(_square, [1], workers=0)


def _lookup_sum(key: str) -> int:
    return int(resolve_array(key).sum())


class TestPublishedArrays:
    def test_resolve_passthrough_for_arrays(self):
        arr = np.array([1, 2, 3])
        assert resolve_array(arr) is arr

    def test_resolve_by_key_inside_context(self):
        arr = np.array([4, 5, 6])
        with published_arrays({"trace": arr}):
            assert resolve_array("trace") is arr
        with pytest.raises(KeyError):
            resolve_array("trace")

    def test_published_arrays_reach_forked_workers(self):
        arrays = {"a": np.arange(10), "b": np.arange(5)}
        with published_arrays(arrays):
            sums = pool_map(_lookup_sum, ["a", "b", "a"], workers=2)
        assert sums == [45, 10, 45]

    def test_unpublishes_on_error(self):
        arr = np.array([7])
        with pytest.raises(RuntimeError):
            with published_arrays({"x": arr}):
                raise RuntimeError("boom")
        with pytest.raises(KeyError):
            resolve_array("x")
