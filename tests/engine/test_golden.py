"""Golden cross-engine equivalence suite.

The fixtures under ``tests/fixtures/golden/`` were recorded from the
pre-engine code (before ``src/repro/engine/`` existed).  These tests hold
the engine-backed experiment paths to *bit-identical* reproductions of
those outputs — across ``workers`` counts and, for the online replay,
across the ``batch`` and ``reference`` data planes.  JSON float round-trips
are exact (``repr`` ↔ parse), so every comparison is ``==``, never
``approx``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"


def _generator():
    spec = importlib.util.spec_from_file_location("generate_golden", FIXTURES / "generate_golden.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GEN = _generator()


def _fixture(name: str) -> dict:
    return json.loads((FIXTURES / "golden" / f"{name}.json").read_text(encoding="utf-8"))


class TestGoldenProfile:
    def test_single_process_matches_recorded(self):
        assert GEN._jsonable(GEN.golden_profile()) == _fixture("profile")

    @pytest.mark.parametrize("mode,extra", [("exact", {}), ("shards", {"rate": 0.1}), ("reuse", {})])
    def test_api_profile_matches_recorded(self, mode, extra):
        from repro import api

        result = api.profile(GEN.sweep_trace(), mode=mode, seed=0, name="golden", **extra)
        want = _fixture("profile")["curves"][mode]
        assert result.accesses == want["accesses"]
        assert GEN._jsonable(list(result.curve.ratios)) == want["ratios"]

    def test_pooled_batch_matches_recorded(self):
        from repro import api
        from repro.profiling.engine import ProfileJob

        trace = GEN.sweep_trace()
        jobs = [ProfileJob(trace=trace, name="golden", mode=mode, seed=0) for mode in ("exact", "reuse")]
        results = api.profile(jobs, workers=2)
        curves = _fixture("profile")["curves"]
        for job, result in zip(jobs, results):
            assert GEN._jsonable(list(result.curve.ratios)) == curves[job.mode]["ratios"]


class TestGoldenSweep:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_rows_match_recorded(self, workers):
        from repro import api

        result = api.sweep(
            GEN.sweep_trace(),
            name="golden",
            policies=("lru", "fifo", "random", "set-associative"),
            capacities=GEN.SWEEP_CAPACITIES,
            ways=4,
            seed=0,
            workers=workers,
        )
        assert GEN._jsonable(result.rows()) == _fixture("sweep")["rows"]


class TestGoldenPartition:
    @pytest.mark.parametrize("method", ["greedy", "dp", "hull"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_rows_summary_allocation_match_recorded(self, method, workers):
        from repro import api

        result = api.partition(
            GEN.partition_tenants(),
            GEN.PARTITION_BUDGET,
            method=method,
            mode="exact",
            unit=4,
            seed=0,
            name="golden",
            workers=workers,
        )
        want = _fixture("partition")["methods"][method]
        assert GEN._jsonable(result.rows()) == want["rows"]
        assert GEN._jsonable(result.summary()) == want["summary"]
        assert GEN._jsonable(result.allocation()) == want["allocation"]


class TestGoldenOnline:
    @pytest.mark.parametrize("engine", ["batch", "reference"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_replay_matches_recorded(self, engine, workers):
        from repro import api

        knobs = GEN.ONLINE
        result = api.online(
            "three-phase",
            knobs["budget"],
            knobs["window"],
            knobs["epoch"],
            length=knobs["length"],
            seed=knobs["seed"],
            rate=knobs["rate"],
            name="golden",
            workers=workers,
            engine=engine,
        )
        want = _fixture("online")
        assert GEN._jsonable(result.rows()) == want["rows"]
        assert GEN._jsonable(result.summary()) == want["summary"]
        assert list(result.static_allocation) == want["static_allocation"]
        assert list(result.final_allocation) == want["final_allocation"]
        assert [list(a) for a in result.oracle_allocations] == want["oracle_allocations"]
