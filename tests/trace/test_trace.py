"""Unit tests for the Trace and PeriodicTrace containers."""

from __future__ import annotations

import pytest

from repro.core import Permutation, cache_hit_vector
from repro.trace import PeriodicTrace, Trace


class TestTrace:
    def test_basic_properties(self):
        trace = Trace([3, 1, 3, 2], name="demo")
        assert len(trace) == 4
        assert trace.footprint == 3
        assert trace.distinct_items().tolist() == [1, 2, 3]
        assert list(trace) == [3, 1, 3, 2]
        assert trace[0] == 3

    def test_slicing_returns_trace(self):
        trace = Trace(range(10))
        sliced = trace[2:5]
        assert isinstance(sliced, Trace)
        assert sliced.accesses.tolist() == [2, 3, 4]

    def test_equality(self):
        assert Trace([1, 2]) == Trace([1, 2])
        assert Trace([1, 2]) != Trace([2, 1])

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            Trace([0, -1])

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            Trace([0.5, 1.2])

    def test_empty_trace(self):
        trace = Trace([])
        assert len(trace) == 0
        assert trace.footprint == 0

    def test_concatenate(self):
        combined = Trace([0, 1], name="a").concatenate(Trace([2], name="b"))
        assert combined.accesses.tolist() == [0, 1, 2]
        assert "a" in combined.name and "b" in combined.name

    def test_relabelled_first_touch_order(self):
        trace = Trace([100, 7, 100, 42])
        relabelled, mapping = trace.relabelled()
        assert relabelled.accesses.tolist() == [0, 1, 0, 2]
        assert mapping == {100: 0, 7: 1, 42: 2}

    def test_repr_contains_name_and_length(self):
        trace = Trace(range(20), name="long")
        assert "long" in repr(trace)
        assert "20" in repr(trace)
        assert "..." in repr(trace)


class TestPeriodicTrace:
    def test_traversals(self):
        pt = PeriodicTrace(Permutation([2, 0, 1]))
        assert pt.m == 3
        assert pt.first_traversal().tolist() == [0, 1, 2]
        assert pt.second_traversal().tolist() == [2, 0, 1]
        assert pt.to_trace().accesses.tolist() == [0, 1, 2, 2, 0, 1]

    def test_relabelled_items(self):
        pt = PeriodicTrace(Permutation([1, 0]), items=(10, 20))
        assert pt.to_trace().accesses.tolist() == [10, 20, 20, 10]

    def test_items_length_mismatch(self):
        with pytest.raises(ValueError):
            PeriodicTrace(Permutation([0, 1]), items=(1, 2, 3))

    def test_cyclic_and_sawtooth_constructors(self):
        assert PeriodicTrace.cyclic(4).sigma.is_identity()
        assert PeriodicTrace.sawtooth(4).sigma.is_reverse()

    def test_profile_matches_core(self):
        sigma = Permutation([1, 3, 0, 2])
        profile = PeriodicTrace(sigma).profile()
        assert profile.hit_vector == tuple(int(x) for x in cache_hit_vector(sigma))

    def test_trace_name_mentions_inversions(self):
        pt = PeriodicTrace(Permutation.reverse(4))
        assert "ell=6" in pt.to_trace().name
