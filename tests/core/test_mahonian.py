"""Unit tests for repro.core.mahonian — appendix VIII-F combinatorics."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Permutation,
    all_permutations,
    hit_vector_partition,
    integer_partitions,
    mahonian_number,
    mahonian_row,
    mahonian_triangle,
    max_inversions,
    partition_counts_at_level,
    partitions_at_level,
    permutations_with_inversions,
    random_permutation_with_inversions,
    truncated_miss_integral,
    truncated_miss_integral_by_level,
)


class TestMahonianNumbers:
    def test_known_rows(self):
        assert mahonian_row(1) == (1,)
        assert mahonian_row(2) == (1, 1)
        assert mahonian_row(3) == (1, 2, 2, 1)
        assert mahonian_row(4) == (1, 3, 5, 6, 5, 3, 1)
        assert mahonian_row(5) == (1, 4, 9, 15, 20, 22, 20, 15, 9, 4, 1)

    def test_rows_sum_to_factorial(self):
        for m in range(1, 9):
            assert sum(mahonian_row(m)) == math.factorial(m)

    def test_rows_symmetric(self):
        for m in range(1, 9):
            row = mahonian_row(m)
            assert row == row[::-1]

    def test_mahonian_number_out_of_range(self):
        assert mahonian_number(4, 7) == 0
        assert mahonian_number(4, 100) == 0

    def test_matches_enumeration(self):
        for m in range(1, 7):
            counts = {}
            for sigma in all_permutations(m):
                counts[sigma.inversions()] = counts.get(sigma.inversions(), 0) + 1
            for n in range(max_inversions(m) + 1):
                assert counts.get(n, 0) == mahonian_number(m, n)

    def test_triangle(self):
        triangle = mahonian_triangle(4)
        assert len(triangle) == 4
        assert triangle[-1] == mahonian_row(4)

    def test_m_zero(self):
        assert mahonian_row(0) == (1,)


class TestEnumerationAndSampling:
    def test_permutations_with_inversions_counts(self):
        for m in (4, 5, 6):
            for n in range(max_inversions(m) + 1):
                assert len(list(permutations_with_inversions(m, n))) == mahonian_number(m, n)

    def test_enumerated_permutations_have_requested_inversions(self):
        for sigma in permutations_with_inversions(6, 7):
            assert sigma.inversions() == 7

    def test_impossible_level_is_empty(self):
        assert list(permutations_with_inversions(4, 7)) == []

    def test_random_sampler_level(self, rng):
        for n in (0, 5, 10, 15):
            sigma = random_permutation_with_inversions(7, n, rng)
            assert sigma.inversions() == n

    def test_random_sampler_rejects_impossible(self):
        with pytest.raises(ValueError):
            random_permutation_with_inversions(4, 10)

    def test_random_sampler_covers_level_uniformly_enough(self, rng):
        # all 5 permutations of S_4 at level 2 should appear in a large sample
        seen = set()
        for _ in range(200):
            seen.add(random_permutation_with_inversions(4, 2, rng))
        assert len(seen) == mahonian_number(4, 2)


class TestIntegerPartitions:
    def test_partitions_of_small_numbers(self):
        assert set(integer_partitions(4)) == {(4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1)}
        assert list(integer_partitions(0)) == [()]

    def test_max_part_bound(self):
        assert set(integer_partitions(4, max_part=2)) == {(2, 2), (2, 1, 1), (1, 1, 1, 1)}

    def test_max_parts_bound(self):
        assert set(integer_partitions(4, max_parts=2)) == {(4,), (3, 1), (2, 2)}

    def test_partition_count_matches_known_values(self):
        known = {1: 1, 2: 2, 3: 3, 4: 5, 5: 7, 6: 11, 7: 15}
        for n, p in known.items():
            assert len(list(integer_partitions(n))) == p


class TestHitVectorPartitions:
    def test_partition_sums_to_inversions(self, s5):
        for sigma in s5:
            assert sum(hit_vector_partition(sigma)) == sigma.inversions()

    def test_parts_bounded_by_m_minus_one(self, s5):
        for sigma in s5:
            parts = hit_vector_partition(sigma)
            assert all(1 <= p <= 4 for p in parts)

    def test_extremes(self):
        assert hit_vector_partition(Permutation.identity(5)) == ()
        assert hit_vector_partition(Permutation.reverse(5)) == (4, 3, 2, 1)

    def test_every_level_partition_is_valid_partition(self):
        m = 5
        for level in range(max_inversions(m) + 1):
            valid = set(integer_partitions(level, max_part=m - 1, max_parts=m))
            assert partitions_at_level(m, level) <= valid

    def test_partition_counts_sum_to_mahonian(self):
        m = 5
        for level in (0, 3, 6, 10):
            counts = partition_counts_at_level(m, level)
            assert sum(counts.values()) == mahonian_number(m, level)


class TestMissIntegral:
    def test_extremes(self):
        for m in (3, 5, 8):
            assert truncated_miss_integral(Permutation.identity(m)) == pytest.approx(1.0)
            assert truncated_miss_integral(Permutation.reverse(m)) == pytest.approx(0.5)

    def test_constant_within_level_and_linear_slope(self):
        m = 5
        values: dict[int, set[float]] = {}
        for sigma in all_permutations(m):
            values.setdefault(sigma.inversions(), set()).add(round(truncated_miss_integral(sigma), 12))
        for level, observed in values.items():
            assert len(observed) == 1
            expected = 1.0 - level / (m * (m - 1))
            assert next(iter(observed)) == pytest.approx(expected)

    def test_by_level_closed_form(self):
        table = truncated_miss_integral_by_level(6)
        assert table[0] == pytest.approx(1.0)
        assert table[max_inversions(6)] == pytest.approx(0.5)
        drops = [table[k] - table[k + 1] for k in range(max_inversions(6))]
        assert all(d == pytest.approx(1.0 / 30) for d in drops)

    def test_small_m_raises(self):
        with pytest.raises(ValueError):
            truncated_miss_integral(Permutation.identity(1))
        with pytest.raises(ValueError):
            truncated_miss_integral_by_level(1)
