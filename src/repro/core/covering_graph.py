"""The Bruhat covering graph ``H = (S_m, ◁_B)`` as an explicit graded DAG.

Section III-C of the paper defines the digraph ``H`` whose vertices are the
permutations of :math:`S_m` and whose edges are the Bruhat covering relations.
ChainFind (Algorithm 2) walks this graph greedily; Figure 2 measures how often
its edge labeling leaves the greedy choice ambiguous.

For moderate ``m`` (the paper evaluates up to :math:`S_{11}` for single chains
and :math:`S_5` for full enumeration) the graph can be materialised explicitly;
this module builds it as a :class:`networkx.DiGraph` with useful annotations
and provides graded-poset utilities (rank levels, saturated/maximal chains,
rank generating function).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import networkx as nx

from .._util import check_nonnegative_int
from .bruhat import covers, covering_transpositions
from .inversions import max_inversions
from .permutation import Permutation, all_permutations

__all__ = [
    "build_covering_graph",
    "rank_levels",
    "rank_sizes",
    "saturated_chains",
    "count_maximal_chains",
    "is_graded",
    "random_saturated_chain",
]


def build_covering_graph(m: int, *, include_transposition_labels: bool = True) -> nx.DiGraph:
    """Materialise the covering graph of ``S_m``.

    Nodes are :class:`~repro.core.permutation.Permutation` objects carrying a
    ``rank`` attribute (their inversion number).  Edges point *up* the order
    (from ``sigma`` to each ``tau`` covering it) and, when requested, carry a
    ``positions`` attribute with the swapped position pair.

    The graph has ``m!`` nodes; callers should keep ``m <= 7`` or so for full
    enumeration (5040 nodes for ``m = 7``).
    """
    m = check_nonnegative_int(m, "m")
    if m > 9:
        raise ValueError(
            f"refusing to materialise S_{m} ({math.factorial(m)} nodes); "
            "use the lazy covers() enumeration instead"
        )
    graph = nx.DiGraph(m=m)
    for sigma in all_permutations(m):
        graph.add_node(sigma, rank=sigma.inversions())
    for sigma in list(graph.nodes):
        if include_transposition_labels:
            for i, j in covering_transpositions(sigma):
                tau = sigma.swap_positions(i, j)
                graph.add_edge(sigma, tau, positions=(i, j))
        else:
            for tau in covers(sigma):
                graph.add_edge(sigma, tau)
    return graph


def rank_levels(graph: nx.DiGraph) -> dict[int, list[Permutation]]:
    """Group the nodes of a covering graph by rank (inversion number)."""
    levels: dict[int, list[Permutation]] = {}
    for node, data in graph.nodes(data=True):
        levels.setdefault(data["rank"], []).append(node)
    return {rank: sorted(nodes, key=lambda p: p.one_line) for rank, nodes in sorted(levels.items())}


def rank_sizes(graph: nx.DiGraph) -> dict[int, int]:
    """Number of permutations at each rank — the Mahonian numbers ``M(m, k)``."""
    return {rank: len(nodes) for rank, nodes in rank_levels(graph).items()}


def is_graded(graph: nx.DiGraph) -> bool:
    """Check the graded-poset property: every edge increases rank by exactly one."""
    return all(graph.nodes[v]["rank"] == graph.nodes[u]["rank"] + 1 for u, v in graph.edges)


def saturated_chains(
    graph: nx.DiGraph,
    start: Permutation,
    end: Permutation,
    *,
    limit: int | None = None,
) -> Iterator[list[Permutation]]:
    """Yield saturated chains from ``start`` to ``end`` following covering edges.

    A saturated chain visits one node per rank between the two endpoints.  The
    number of such chains can be enormous (for the full interval of ``S_m`` it
    is counted by the Stanley hook-length style formulas), so an optional
    ``limit`` caps the enumeration.
    """
    if start not in graph or end not in graph:
        raise KeyError("start and end must be nodes of the covering graph")
    count = 0
    stack: list[tuple[Permutation, list[Permutation]]] = [(start, [start])]
    while stack:
        node, path = stack.pop()
        if node == end:
            yield path
            count += 1
            if limit is not None and count >= limit:
                return
            continue
        for nxt in graph.successors(node):
            stack.append((nxt, path + [nxt]))


def count_maximal_chains(graph: nx.DiGraph, start: Permutation, end: Permutation) -> int:
    """Count saturated chains from ``start`` to ``end`` by dynamic programming.

    Runs in time linear in the number of edges of the interval, unlike the
    explicit enumeration of :func:`saturated_chains`.
    """
    if start not in graph or end not in graph:
        raise KeyError("start and end must be nodes of the covering graph")
    # process nodes by decreasing distance from end using rank order
    memo: dict[Permutation, int] = {end: 1}

    def chains_from(node: Permutation) -> int:
        """Number of saturated chains from ``node`` to ``end`` (memoised)."""
        if node in memo:
            return memo[node]
        total = sum(chains_from(nxt) for nxt in graph.successors(node))
        memo[node] = total
        return total

    return chains_from(start)


def random_saturated_chain(
    m: int,
    rng,
    *,
    start: Permutation | None = None,
) -> list[Permutation]:
    """Sample a saturated chain from ``start`` (default: identity) to the top.

    Each step picks a uniformly random cover; no explicit graph is built, so
    this works for large ``m`` (cost ``O(m^4)`` in the worst case: ``O(m^2)``
    steps each enumerating ``O(m^2)`` candidate covers).
    """
    from .._util import ensure_rng

    generator = ensure_rng(rng)
    current = start if start is not None else Permutation.identity(m)
    if current.size != m:
        raise ValueError(f"start permutation has size {current.size}, expected {m}")
    chain = [current]
    top = max_inversions(m)
    while current.inversions() < top:
        options = covers(current)
        current = options[int(generator.integers(len(options)))]
        chain.append(current)
    return chain
