"""Cross-validation of the single-pass LRU capacity sweep.

The acceptance bar of the sweep engine: the whole LRU capacity grid derived
from one stack-distance histogram must be *bit-identical* to replaying the
trace through a fresh :class:`~repro.cache.lru.LRUCache` at every capacity —
on random traces and on the paper's periodic ``A σ(A)`` re-traversals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hits import cache_hit_vector
from repro.core.permutation import Permutation
from repro.sim import lru_sweep_hits, naive_sweep_hits
from repro.trace.generators import zipfian_trace
from repro.trace.trace import PeriodicTrace


class TestAgainstReplay:
    def test_random_trace_bit_identical(self, rng):
        trace = rng.integers(0, 40, 1500)
        capacities = np.arange(1, 51)
        assert np.array_equal(lru_sweep_hits(trace, capacities), naive_sweep_hits(trace, capacities, policy="lru"))

    def test_zipf_trace_bit_identical(self):
        trace = zipfian_trace(4000, 128, exponent=0.9, rng=3).accesses
        capacities = np.array([1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144])
        assert np.array_equal(lru_sweep_hits(trace, capacities), naive_sweep_hits(trace, capacities, policy="lru"))

    @pytest.mark.parametrize("m", [4, 6, 9])
    def test_periodic_retraversals_bit_identical(self, m, rng):
        for sigma in (
            Permutation.identity(m),
            Permutation.reverse(m),
            Permutation([int(x) for x in rng.permutation(m)]),
        ):
            trace = PeriodicTrace(sigma).to_trace().accesses
            capacities = np.arange(1, m + 1)
            sweep = lru_sweep_hits(trace, capacities)
            assert np.array_equal(sweep, naive_sweep_hits(trace, capacities, policy="lru"))

    def test_periodic_matches_closed_form_hit_vector(self):
        """On ``A σ(A)`` the swept grid reproduces the paper's closed-form hits."""
        sigma = Permutation([2, 0, 3, 1, 4])
        trace = PeriodicTrace(sigma).to_trace().accesses
        sweep = lru_sweep_hits(trace, np.arange(1, sigma.size + 1))
        assert np.array_equal(sweep, cache_hit_vector(sigma))


class TestGridSemantics:
    def test_single_pass_consistent_with_subset(self):
        trace = zipfian_trace(2000, 64, exponent=1.0, rng=1).accesses
        full = lru_sweep_hits(trace, np.arange(1, 65))
        subset = lru_sweep_hits(trace, np.array([3, 17, 42]))
        assert np.array_equal(subset, full[[2, 16, 41]])

    def test_hits_monotone_in_capacity(self):
        """Stack inclusion: a larger LRU cache never hits less."""
        trace = zipfian_trace(3000, 100, exponent=0.7, rng=5).accesses
        hits = lru_sweep_hits(trace, np.arange(1, 101))
        assert np.all(np.diff(hits) >= 0)

    def test_capacity_at_footprint_leaves_only_cold_misses(self):
        trace = zipfian_trace(3000, 100, exponent=0.7, rng=5).accesses
        distinct = np.unique(trace).size
        hits = lru_sweep_hits(trace, np.array([distinct]))
        assert hits[0] == trace.size - distinct

    def test_rejects_bad_capacities(self):
        trace = np.array([0, 1, 2])
        with pytest.raises(ValueError):
            lru_sweep_hits(trace, np.array([0]))
        with pytest.raises(ValueError):
            lru_sweep_hits(trace, np.array([], dtype=np.int64))
        with pytest.raises(TypeError):
            lru_sweep_hits(trace, np.array([1.5]))
