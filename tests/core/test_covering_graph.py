"""Unit tests for repro.core.covering_graph."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Permutation,
    build_covering_graph,
    count_maximal_chains,
    is_graded,
    mahonian_row,
    max_inversions,
    random_saturated_chain,
    rank_levels,
    rank_sizes,
    saturated_chains,
)


class TestGraphConstruction:
    @pytest.mark.parametrize("m", [0, 1, 2, 3, 4, 5])
    def test_node_count_is_factorial(self, m):
        graph = build_covering_graph(m)
        assert graph.number_of_nodes() == math.factorial(m)

    def test_refuses_huge_groups(self):
        with pytest.raises(ValueError):
            build_covering_graph(10)

    def test_is_graded(self):
        assert is_graded(build_covering_graph(4))

    def test_rank_sizes_are_mahonian(self):
        for m in (3, 4, 5):
            graph = build_covering_graph(m)
            sizes = rank_sizes(graph)
            assert [sizes[k] for k in sorted(sizes)] == list(mahonian_row(m))

    def test_rank_levels_sorted_and_complete(self):
        graph = build_covering_graph(4)
        levels = rank_levels(graph)
        assert sorted(levels) == list(range(max_inversions(4) + 1))
        assert sum(len(v) for v in levels.values()) == 24

    def test_edges_carry_position_labels(self):
        graph = build_covering_graph(3)
        for sigma, tau, data in graph.edges(data=True):
            i, j = data["positions"]
            assert sigma.swap_positions(i, j) == tau

    def test_edges_without_labels(self):
        graph = build_covering_graph(3, include_transposition_labels=False)
        for _, _, data in graph.edges(data=True):
            assert "positions" not in data

    def test_unique_source_and_sink(self):
        graph = build_covering_graph(4)
        sources = [n for n in graph if graph.in_degree(n) == 0]
        sinks = [n for n in graph if graph.out_degree(n) == 0]
        assert sources == [Permutation.identity(4)]
        assert sinks == [Permutation.reverse(4)]


class TestChains:
    def test_saturated_chain_enumeration_s3(self):
        graph = build_covering_graph(3)
        chains = list(saturated_chains(graph, Permutation.identity(3), Permutation.reverse(3)))
        # S_3: the number of maximal chains in Bruhat order is 4? verify via DP below
        assert len(chains) == count_maximal_chains(graph, Permutation.identity(3), Permutation.reverse(3))
        for chain in chains:
            assert chain[0].is_identity() and chain[-1].is_reverse()
            assert len(chain) == max_inversions(3) + 1

    def test_chain_limit(self):
        graph = build_covering_graph(4)
        limited = list(saturated_chains(graph, Permutation.identity(4), Permutation.reverse(4), limit=5))
        assert len(limited) == 5

    def test_count_matches_enumeration_on_subinterval(self):
        graph = build_covering_graph(4)
        start = Permutation.identity(4)
        end = Permutation([2, 1, 0, 3])
        enumerated = len(list(saturated_chains(graph, start, end)))
        assert enumerated == count_maximal_chains(graph, start, end)

    def test_chain_functions_require_graph_nodes(self):
        graph = build_covering_graph(3)
        foreign = Permutation.identity(4)
        with pytest.raises(KeyError):
            list(saturated_chains(graph, foreign, Permutation.reverse(3)))
        with pytest.raises(KeyError):
            count_maximal_chains(graph, foreign, Permutation.reverse(3))

    def test_random_saturated_chain(self, rng):
        chain = random_saturated_chain(6, rng)
        assert chain[0].is_identity()
        assert chain[-1].is_reverse()
        assert len(chain) == max_inversions(6) + 1
        for a, b in zip(chain, chain[1:]):
            assert b.inversions() == a.inversions() + 1

    def test_random_chain_custom_start(self, rng):
        start = Permutation([1, 0, 2, 3, 4])
        chain = random_saturated_chain(5, rng, start=start)
        assert chain[0] == start
        assert len(chain) == max_inversions(5) - 1 + 1

    def test_random_chain_start_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            random_saturated_chain(5, rng, start=Permutation.identity(4))
