#!/usr/bin/env python
"""Deep-learning example: Theorem-4 traversal scheduling for MLP parameters.

Section VI-A of the paper proposes exploiting permutation equivariance to
re-order the traversal of a model's weights on alternate passes: forward in
the natural order, backward in the reversed (sawtooth) order, and so on.  This
example

1. builds a real NumPy MLP (:class:`repro.ml.TracedMLP`) and confirms that the
   weight-space permutation leaves the computed function unchanged,
2. generates the parameter-access traces of several training steps under the
   naive cyclic schedule and the Theorem-4 alternating schedule,
3. measures both with an LRU cache sweep and a two-level cache hierarchy,
4. reproduces the paper's ``(nm)²`` vs ``nm(nm+1)/2`` total-reuse comparison.

Run with:  python examples/mlp_locality.py
"""

from __future__ import annotations

import numpy as np

from repro import Permutation, alternating_schedule, matrix_traversal_costs
from repro.analysis import format_table
from repro.cache import CacheHierarchy, LRUCache
from repro.ml import TracedMLP, hidden_unit_permutation_invariant
from repro.core import random_permutation


def main() -> None:
    rng = np.random.default_rng(7)
    layer_sizes = [64, 128, 32]
    mlp = TracedMLP(layer_sizes, granularity=16, rng=rng)
    m = mlp.num_weight_items
    print(f"MLP {layer_sizes}: {m} weight blocks of 16 weights each\n")

    # 1. Permutation equivariance licenses the re-ordering --------------------
    sigma_hidden = random_permutation(layer_sizes[1], rng)
    ok = hidden_unit_permutation_invariant(mlp.weights[0], mlp.weights[1], sigma_hidden, rng=rng)
    print(f"Hidden-unit permutation leaves the network function unchanged: {ok}")
    x = rng.standard_normal((16, layer_sizes[0]))
    y = rng.standard_normal((16, layer_sizes[-1]))
    out_before = mlp.forward(x).output.copy()
    mlp.permute_hidden_units(0, sigma_hidden)
    out_after = mlp.forward(x).output
    print(f"Max output difference after physically permuting the hidden layer: "
          f"{np.abs(out_before - out_after).max():.2e}\n")

    # 2. Parameter traces under the two schedules ------------------------------
    steps = 4
    naive_trace = mlp.training_trace(x, y, steps=steps)
    schedule = alternating_schedule(Permutation.reverse(m), 2 * steps)
    optimised_trace = mlp.training_trace(x, y, steps=steps, schedule=schedule)
    print(f"{steps} training steps => {len(naive_trace)} parameter-block accesses per schedule\n")

    # 3. LRU sweep + hierarchy --------------------------------------------------
    rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        capacity = max(1, int(fraction * m))
        naive_mr = LRUCache(capacity).run(naive_trace).miss_ratio
        optim_mr = LRUCache(capacity).run(optimised_trace).miss_ratio
        rows.append(
            {
                "cache / footprint": f"{fraction:.2f}",
                "cyclic miss ratio": naive_mr,
                "alternating miss ratio": optim_mr,
                "improvement": naive_mr - optim_mr,
            }
        )
    print(format_table(rows, title="LRU miss ratio of the parameter trace (lower is better)"))
    print()

    levels = [max(m // 8, 1), max(m // 2, 2)]
    h_naive = CacheHierarchy(levels)
    h_naive.run(naive_trace)
    h_optim = CacheHierarchy(levels)
    h_optim.run(optimised_trace)
    print(f"Two-level hierarchy {levels}: AMAT cyclic = {h_naive.amat():.1f}, "
          f"alternating = {h_optim.amat():.1f} (arbitrary latency units)\n")

    # 4. The paper's closed-form comparison ------------------------------------
    rows = []
    for n, k in [(64, 128), (128, 32)]:
        costs = matrix_traversal_costs(n, k)
        rows.append(
            {
                "weight matrix": f"{n}x{k}",
                "cyclic total reuse": costs["cyclic"],
                "sawtooth total reuse": costs["sawtooth"],
                "savings": f"{costs['savings_ratio']:.3f}x",
            }
        )
    print(format_table(rows, title="Closed-form total reuse per layer (Section VI-A2)"))


if __name__ == "__main__":
    main()
