"""Section VI-D — applying the periodic model to epoch-structured workloads.

The paper's theory covers traces where each item is reused once per
re-traversal.  Epoch-style workloads (repeated passes over a parameter set or
an array) satisfy this phase structure exactly, so the per-phase closed form
must predict the measured LRU hits with zero error; irregular workloads
(Zipfian reuse) quantify how far the periodic model drifts from reality.
"""

from __future__ import annotations

from repro.analysis import format_table, write_csv
from repro.cache import LRUCache
from repro.core import Permutation, alternating_schedule, random_permutation
from repro.trace import (
    phase_decomposition,
    predicted_hits,
    prediction_error,
    repeated_traversals,
    zipfian_trace,
)


def test_phase_model_exact_on_epoch_workloads(benchmark, results_dir):
    m, passes = 128, 6
    schedule = alternating_schedule(Permutation.reverse(m), passes)
    trace = repeated_traversals(schedule)

    decomposition = benchmark(phase_decomposition, trace)
    assert decomposition.decomposable
    assert decomposition.num_phases == passes

    rows = []
    for cache_size in (8, 32, 64, 128):
        predicted = predicted_hits(decomposition, cache_size)
        measured = LRUCache(cache_size).run(trace).hits
        assert predicted == measured
        rows.append({"cache_size": cache_size, "predicted_hits": predicted, "measured_hits": measured})

    print()
    title = "Per-phase symmetric-locality prediction vs LRU measurement (Theorem-4 schedule, m=128, 6 passes)"
    print(format_table(rows, title=title))
    write_csv(results_dir / "phase_model_epochs.csv", rows)


def test_phase_model_error_on_irregular_workloads(benchmark, results_dir):
    rows = []
    rng_seed = 0
    for name, trace in {
        "random epoch schedule": repeated_traversals(
            [Permutation.identity(64)] + [random_permutation(64, k) for k in range(3)]
        ),
        "zipf(1.0) irregular": zipfian_trace(2000, 64, exponent=1.0, rng=rng_seed),
    }.items():
        if name == "zipf(1.0) irregular":
            report = benchmark.pedantic(prediction_error, args=(trace, 32), rounds=1, iterations=1)
        else:
            report = prediction_error(trace, 32)
        rows.append({"workload": name, **report})

    epoch_row = rows[0]
    irregular_row = rows[1]
    assert epoch_row["decomposable"] and epoch_row["absolute_error"] == 0
    assert not irregular_row["decomposable"]

    print()
    title = "Periodic-model prediction error at cache size 32 (Section VI-D limitation, quantified)"
    print(format_table(rows, title=title))
    write_csv(results_dir / "phase_model_error.csv", rows)
