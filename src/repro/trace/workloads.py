"""Synthetic workload access traces.

The paper motivates symmetric locality with concrete workloads: the STREAM
micro-benchmark (pure cyclic traversals, Section I), dense linear algebra,
and the repeated parameter accesses of deep-learning models (Section VI-A).
These generators build the corresponding data-access traces at the granularity
of logical data items (array elements or cache blocks), so the library's
trace-level and permutation-level analyses can be applied to each.

Every generator returns a :class:`~repro.trace.trace.Trace`; data structures
are laid out in a single flat item namespace and each workload documents its
layout so traces from the same workload are comparable.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import check_positive_int, ensure_rng
from ..core.permutation import Permutation
from .trace import Trace

__all__ = [
    "stream_copy",
    "stream_triad",
    "matrix_multiply_ijk",
    "matrix_multiply_blocked",
    "stencil_sweeps",
    "mlp_parameter_trace",
    "attention_parameter_trace",
    "gnn_neighbor_trace",
]


# --------------------------------------------------------------------------- #
# STREAM kernels (Section I: the canonical cyclic traversals)
# --------------------------------------------------------------------------- #
def stream_copy(n: int, *, repetitions: int = 1, block: int = 1) -> Trace:
    """The STREAM *copy* kernel ``c[i] = a[i]`` at item granularity ``block``.

    Arrays ``a`` and ``c`` each occupy ``ceil(n / block)`` items; every
    repetition walks both arrays cyclically, which is why STREAM shows no
    cache reuse — exactly the worst-case re-traversal of the paper.
    """
    n = check_positive_int(n, "n")
    repetitions = check_positive_int(repetitions, "repetitions")
    block = check_positive_int(block, "block")
    items_per_array = -(-n // block)
    a_base, c_base = 0, items_per_array
    one_pass = []
    for i in range(n):
        blk = i // block
        one_pass.extend([a_base + blk, c_base + blk])
    return Trace(np.tile(np.asarray(one_pass, dtype=np.intp), repetitions), name="stream_copy")


def stream_triad(n: int, *, repetitions: int = 1, block: int = 1) -> Trace:
    """The STREAM *triad* kernel ``a[i] = b[i] + s * c[i]`` at item granularity ``block``."""
    n = check_positive_int(n, "n")
    repetitions = check_positive_int(repetitions, "repetitions")
    block = check_positive_int(block, "block")
    items_per_array = -(-n // block)
    a_base, b_base, c_base = 0, items_per_array, 2 * items_per_array
    one_pass = []
    for i in range(n):
        blk = i // block
        one_pass.extend([b_base + blk, c_base + blk, a_base + blk])
    return Trace(np.tile(np.asarray(one_pass, dtype=np.intp), repetitions), name="stream_triad")


# --------------------------------------------------------------------------- #
# Dense linear algebra
# --------------------------------------------------------------------------- #
def matrix_multiply_ijk(n: int) -> Trace:
    """Access trace of the naive triple loop ``C = A @ B`` for ``n × n`` matrices.

    Layout: ``A`` occupies items ``[0, n²)``, ``B`` items ``[n², 2n²)`` and
    ``C`` items ``[2n², 3n²)``, all row-major.  The inner ``k`` loop reads
    ``A[i, k]`` and ``B[k, j]`` and accumulates into ``C[i, j]``.
    """
    n = check_positive_int(n, "n")
    n2 = n * n
    accesses = []
    for i in range(n):
        for j in range(n):
            c_item = 2 * n2 + i * n + j
            for k in range(n):
                accesses.append(i * n + k)          # A[i, k]
                accesses.append(n2 + k * n + j)     # B[k, j]
                accesses.append(c_item)             # C[i, j] accumulate
    return Trace(np.asarray(accesses, dtype=np.intp), name=f"matmul_ijk(n={n})")


def matrix_multiply_blocked(n: int, tile: int) -> Trace:
    """Access trace of a tiled matrix multiply with square tiles of size ``tile``.

    Same layout as :func:`matrix_multiply_ijk`; tiling shortens reuse
    distances of ``B`` and is the classical locality optimisation the paper's
    framework generalises.
    """
    n = check_positive_int(n, "n")
    tile = check_positive_int(tile, "tile")
    n2 = n * n
    accesses = []
    for ii in range(0, n, tile):
        for jj in range(0, n, tile):
            for kk in range(0, n, tile):
                for i in range(ii, min(ii + tile, n)):
                    for j in range(jj, min(jj + tile, n)):
                        c_item = 2 * n2 + i * n + j
                        for k in range(kk, min(kk + tile, n)):
                            accesses.append(i * n + k)
                            accesses.append(n2 + k * n + j)
                            accesses.append(c_item)
    return Trace(np.asarray(accesses, dtype=np.intp), name=f"matmul_blocked(n={n}, tile={tile})")


def stencil_sweeps(n: int, sweeps: int, *, reverse_odd: bool = False) -> Trace:
    """1-D three-point stencil over an array of ``n`` cells, repeated ``sweeps`` times.

    Each sweep touches ``x[i-1], x[i], x[i+1]`` for every interior cell.  With
    ``reverse_odd=True`` odd sweeps run backwards — the sawtooth-style
    re-traversal a locality-aware scheduler would choose; with ``False`` every
    sweep is a forward (cyclic) pass.
    """
    n = check_positive_int(n, "n")
    sweeps = check_positive_int(sweeps, "sweeps")
    accesses = []
    for s in range(sweeps):
        interior = range(1, n - 1)
        if reverse_odd and s % 2 == 1:
            interior = range(n - 2, 0, -1)
        for i in interior:
            accesses.extend([i - 1, i, i + 1])
    return Trace(np.asarray(accesses, dtype=np.intp), name=f"stencil(n={n}, sweeps={sweeps})")


# --------------------------------------------------------------------------- #
# Deep-learning parameter traces (Section VI-A)
# --------------------------------------------------------------------------- #
def mlp_parameter_trace(
    layer_sizes: Sequence[int],
    *,
    passes: int = 2,
    weight_order: Permutation | None = None,
    granularity: int = 1,
) -> Trace:
    """Parameter-access trace of an MLP forward (and backward) pass.

    Every linear layer's weight matrix is read element-by-element in row-major
    order on the forward pass; the backward pass re-reads the same parameters.
    ``weight_order`` optionally permutes the order of the *second* (and every
    even) pass — the hook by which the Theorem-4 schedule is applied.
    ``granularity`` groups that many consecutive weights into one data item
    (modelling cache blocks).

    The trace covers all layers in sequence, which is how the parameters are
    streamed during training.
    """
    if len(layer_sizes) < 2:
        raise ValueError("an MLP needs at least an input and an output layer")
    passes = check_positive_int(passes, "passes")
    granularity = check_positive_int(granularity, "granularity")
    # item layout: weights of layer k start after all previous layers' weights
    layer_items: list[np.ndarray] = []
    base = 0
    for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
        count = -(-(fan_in * fan_out) // granularity)
        layer_items.append(np.arange(base, base + count, dtype=np.intp))
        base += count
    all_items = np.concatenate(layer_items)
    m = all_items.size
    if weight_order is not None and weight_order.size != m:
        raise ValueError(f"weight_order acts on {weight_order.size} items but the model has {m} weight items")
    passes_list = []
    for p in range(passes):
        if weight_order is not None and p % 2 == 1:
            passes_list.append(all_items[np.asarray(weight_order.one_line, dtype=np.intp)])
        else:
            passes_list.append(all_items)
    return Trace(np.concatenate(passes_list), name=f"mlp(layers={list(layer_sizes)}, passes={passes})")


def attention_parameter_trace(
    d_model: int,
    num_heads: int,
    *,
    passes: int = 2,
    head_order: Permutation | None = None,
    granularity: int = 64,
) -> Trace:
    """Parameter-access trace of a multi-head attention block.

    The key, query, value and output projection matrices (each
    ``d_model × d_model``) are read head by head.  ``head_order`` permutes the
    order in which heads are visited on every even pass — the
    permutation-equivariant re-ordering the paper proposes for transformers.
    ``granularity`` groups consecutive weights into one item.
    """
    d_model = check_positive_int(d_model, "d_model")
    num_heads = check_positive_int(num_heads, "num_heads")
    passes = check_positive_int(passes, "passes")
    granularity = check_positive_int(granularity, "granularity")
    if d_model % num_heads:
        raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
    if head_order is not None and head_order.size != num_heads:
        raise ValueError(f"head_order must act on {num_heads} heads")
    head_dim = d_model // num_heads
    weights_per_head_per_matrix = d_model * head_dim
    items_per_head = 4 * (-(-weights_per_head_per_matrix // granularity))
    head_blocks = [np.arange(h * items_per_head, (h + 1) * items_per_head, dtype=np.intp) for h in range(num_heads)]
    passes_list = []
    for p in range(passes):
        order = range(num_heads)
        if head_order is not None and p % 2 == 1:
            order = head_order.one_line
        passes_list.append(np.concatenate([head_blocks[h] for h in order]))
    return Trace(
        np.concatenate(passes_list),
        name=f"attention(d={d_model}, heads={num_heads}, passes={passes})",
    )


def gnn_neighbor_trace(
    num_nodes: int,
    avg_degree: float,
    *,
    node_order: Permutation | None = None,
    rounds: int = 2,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Feature-access trace of message passing on a random graph.

    Each round visits every node (in ``node_order`` if given, else label
    order) and reads the feature item of each of its neighbours followed by
    its own.  Graph-reordering preprocessing (Section VI-C) corresponds to
    choosing ``node_order`` to improve temporal locality of the neighbour
    accesses.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    rounds = check_positive_int(rounds, "rounds")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    generator = ensure_rng(rng)
    p = min(avg_degree / max(num_nodes - 1, 1), 1.0)
    # adjacency sampled once so every round sees the same graph
    adjacency: list[np.ndarray] = []
    for u in range(num_nodes):
        mask = generator.random(num_nodes) < p
        mask[u] = False
        adjacency.append(np.nonzero(mask)[0].astype(np.intp))
    if node_order is not None and node_order.size != num_nodes:
        raise ValueError(f"node_order must act on {num_nodes} nodes")
    order = node_order.one_line if node_order is not None else range(num_nodes)
    accesses: list[int] = []
    for _ in range(rounds):
        for u in order:
            accesses.extend(int(v) for v in adjacency[u])
            accesses.append(int(u))
    return Trace(np.asarray(accesses, dtype=np.intp), name=f"gnn(n={num_nodes}, deg={avg_degree})")
