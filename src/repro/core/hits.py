"""Reuse distance, cache-hit vectors and miss-ratio curves of re-traversals.

This module is the executable form of Section IV of the paper.  For a
periodic trace :math:`T = A\\,\\sigma(A)` over ``m`` distinct items it computes

* the *reuse distance* of every access in the re-traversal
  (:func:`reuse_distances`) — the number of **distinct** items accessed
  strictly between the two accesses of the same item,
* the *stack distance* (reuse distance + 1, Mattson's LRU stack depth),
* the reuse-distance histogram and cache-hit vector of Algorithm 1
  (:func:`reuse_distance_histogram`, :func:`cache_hit_vector`), in both a
  vectorised formulation and a line-by-line faithful transcription of the
  paper's pseudocode (:func:`algorithm1_paper`),
* miss-ratio curves (:func:`miss_ratio_curve`) under the two conventions
  described in ``DESIGN.md``,
* executable checks of Theorem 2, Corollary 1 and Theorem 3
  (:func:`theorem2_deficit`, :func:`corollary1_deficit`,
  :func:`theorem3_compare`).

Conventions
-----------
``hits_c`` (for cache size ``c``) counts the accesses of the re-traversal
whose stack distance is at most ``c`` — exactly the accesses that hit in a
fully-associative LRU cache of capacity ``c``.  The first traversal ``A`` is
cold and never hits.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .inversions import FenwickTree, max_inversions
from .permutation import Permutation

__all__ = [
    "LocalityProfile",
    "reuse_distances",
    "stack_distances",
    "reuse_distance_histogram",
    "cache_hit_vector",
    "algorithm1_paper",
    "hits",
    "miss_ratio",
    "miss_ratio_curve",
    "total_reuse",
    "locality_profile",
    "theorem2_deficit",
    "corollary1_deficit",
    "theorem3_compare",
]


def _as_permutation(sigma: Permutation | Sequence[int]) -> Permutation:
    return sigma if isinstance(sigma, Permutation) else Permutation(sigma)


# --------------------------------------------------------------------------- #
# Reuse / stack distances
# --------------------------------------------------------------------------- #
def reuse_distances(sigma: Permutation | Sequence[int]) -> np.ndarray:
    """Reuse distance of each access of the re-traversal ``B = sigma(A)``.

    ``result[i]`` is the number of distinct items accessed strictly between the
    first-traversal access of item ``sigma(i)`` and its re-access at position
    ``i`` of ``B``.  With the canonical first traversal ``A = (0, 1, ..., m-1)``
    this is

    .. math::

        rd(i) = (m - 1 - \\sigma(i)) + \\#\\{j < i : \\sigma(j) < \\sigma(i)\\}

    the first term counting the tail of ``A`` after the item and the second the
    *new* (smaller-valued) items seen in ``B`` before position ``i``.  Items
    larger than ``sigma(i)`` seen in ``B`` are not new — they already occurred
    in the tail of ``A`` — which is exactly the "repeats" subtraction of the
    paper's Algorithm 1.

    Complexity ``O(m log m)`` using a Fenwick tree.
    """
    sigma = _as_permutation(sigma)
    word = sigma.to_array()
    m = sigma.size
    out = np.empty(m, dtype=np.int64)
    tree = FenwickTree(m) if m else None
    for i in range(m):
        a = int(word[i])
        smaller_before = tree.prefix_sum(a - 1)
        out[i] = (m - 1 - a) + smaller_before
        tree.add(a)
    return out


def stack_distances(sigma: Permutation | Sequence[int]) -> np.ndarray:
    """Mattson LRU stack distance (reuse distance + 1) for each re-traversal access."""
    return reuse_distances(sigma) + 1


def reuse_distance_histogram(sigma: Permutation | Sequence[int]) -> np.ndarray:
    """Histogram of stack distances of the re-traversal.

    ``result[d - 1]`` is the number of accesses of ``B = sigma(A)`` whose stack
    distance equals ``d`` (``d`` runs from 1 to ``m``).  The histogram sums to
    ``m``.
    """
    sigma = _as_permutation(sigma)
    m = sigma.size
    hist = np.zeros(m, dtype=np.int64)
    if m == 0:
        return hist
    sd = stack_distances(sigma)
    np.add.at(hist, sd - 1, 1)
    return hist


def cache_hit_vector(sigma: Permutation | Sequence[int]) -> np.ndarray:
    """The cache-hit vector ``hits_C = (hits_1, ..., hits_m)``.

    ``hits_c`` is the number of re-traversal accesses that hit in a
    fully-associative LRU cache of size ``c`` — equivalently the number of
    accesses with stack distance at most ``c``.  It is the cumulative sum of
    the reuse-distance histogram, exactly as in the last line of Algorithm 1.

    >>> cache_hit_vector(Permutation.reverse(4))          # sawtooth4
    array([1, 2, 3, 4])
    >>> cache_hit_vector(Permutation.identity(4))          # cyclic4
    array([0, 0, 0, 4])
    """
    return np.cumsum(reuse_distance_histogram(sigma))


def algorithm1_paper(sigma: Permutation | Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Line-by-line transcription of the paper's Algorithm 1 (1-indexed ranks).

    Returns ``(rdh, chv)``: the reuse-distance histogram and the cache-hit
    vector.  The implementation mirrors the pseudocode — rank
    ``r(a) = m - a + 1`` for 1-indexed item ``a``, a running binary "seen"
    vector ``c`` indexed by rank, and the increment index
    ``r - 1 + i - repeats`` — so that the vectorised
    :func:`reuse_distance_histogram` / :func:`cache_hit_vector` pair can be
    validated against the published algorithm in the tests.
    """
    sigma = _as_permutation(sigma)
    m = sigma.size
    rdh = np.zeros(m, dtype=np.int64)
    chv = np.zeros(m, dtype=np.int64)
    seen_by_rank = np.zeros(m + 2, dtype=np.int64)  # 1-indexed ranks
    word_one_indexed = [v + 1 for v in sigma.one_line]
    for i, k in enumerate(word_one_indexed, start=1):  # i is the 1-indexed position in sigma(A)
        r = m - k + 1
        seen_by_rank[r] = 1
        repeats = int(seen_by_rank[1:r].sum())
        index = r - 1 + i - repeats  # stack distance, 1-indexed
        rdh[index - 1] += 1
        chv[index - 1] += 1
    # hits at size c include hits at smaller sizes
    chv = np.cumsum(chv)
    return rdh, chv


# --------------------------------------------------------------------------- #
# Hits / miss ratios
# --------------------------------------------------------------------------- #
def hits(sigma: Permutation | Sequence[int], cache_size: int) -> int:
    """Number of re-traversal accesses hitting in an LRU cache of ``cache_size``."""
    sigma = _as_permutation(sigma)
    if cache_size <= 0:
        return 0
    vec = cache_hit_vector(sigma)
    if sigma.size == 0:
        return 0
    c = min(cache_size, sigma.size)
    return int(vec[c - 1])


def miss_ratio(
    sigma: Permutation | Sequence[int],
    cache_size: int,
    *,
    convention: str = "full",
) -> float:
    """Miss ratio of the periodic trace ``A sigma(A)`` at one cache size.

    Parameters
    ----------
    convention:
        ``"full"`` divides misses by all ``2m`` accesses (the cold first
        traversal always misses); ``"retraversal"`` divides by the ``m``
        re-traversal accesses only.
    """
    sigma = _as_permutation(sigma)
    m = sigma.size
    if m == 0:
        raise ValueError("miss ratio undefined for the empty trace")
    h = hits(sigma, cache_size)
    if convention == "full":
        return 1.0 - h / (2 * m)
    if convention == "retraversal":
        return 1.0 - h / m
    raise ValueError(f"unknown convention {convention!r}; use 'full' or 'retraversal'")


def miss_ratio_curve(
    sigma: Permutation | Sequence[int],
    *,
    convention: str = "full",
    max_cache_size: int | None = None,
) -> np.ndarray:
    """Miss-ratio curve ``mr(c)`` for ``c = 1 .. max_cache_size`` (default ``m``).

    This is the ``MRC(T)`` of Definition 2, restricted to the interesting
    range ``1 <= c <= m`` (beyond ``m`` the curve is flat).
    """
    sigma = _as_permutation(sigma)
    m = sigma.size
    if m == 0:
        raise ValueError("miss ratio curve undefined for the empty trace")
    limit = m if max_cache_size is None else min(int(max_cache_size), m)
    if limit < 1:
        raise ValueError(f"max_cache_size must be at least 1, got {max_cache_size}")
    vec = cache_hit_vector(sigma)[:limit].astype(np.float64)
    if convention == "full":
        return 1.0 - vec / (2 * m)
    if convention == "retraversal":
        return 1.0 - vec / m
    raise ValueError(f"unknown convention {convention!r}; use 'full' or 'retraversal'")


def total_reuse(sigma: Permutation | Sequence[int]) -> int:
    """Total reuse (sum of stack distances) of the re-traversal.

    This is the cost measure used in Section VI-A2: the cyclic order of an
    ``n x m`` matrix costs ``(nm)^2`` while sawtooth costs ``nm(nm+1)/2``.
    Smaller is better.
    """
    sigma = _as_permutation(sigma)
    m = sigma.size
    # sum of stack distances = m^2 - ℓ(sigma); avoid an O(m log m) pass.
    return m * m - sigma.inversions()


# --------------------------------------------------------------------------- #
# Aggregated profile
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LocalityProfile:
    """All locality statistics of one re-traversal, bundled for reporting.

    Attributes
    ----------
    sigma:
        The re-traversal permutation.
    inversions:
        The Bruhat length ``ℓ(sigma)``.
    hit_vector:
        ``hits_C`` for cache sizes ``1..m``.
    histogram:
        Stack-distance histogram.
    mrc_full, mrc_retraversal:
        Miss-ratio curves under the two denominators.
    total_reuse:
        Sum of stack distances.
    """

    sigma: Permutation
    inversions: int
    hit_vector: tuple[int, ...]
    histogram: tuple[int, ...]
    mrc_full: tuple[float, ...]
    mrc_retraversal: tuple[float, ...]
    total_reuse: int

    @property
    def size(self) -> int:
        """Number of distinct data items ``m``."""
        return self.sigma.size

    def normalized_locality(self) -> float:
        """``ℓ(sigma) / max_inversions(m)`` in ``[0, 1]``; 1 is sawtooth (best)."""
        top = max_inversions(self.size)
        return self.inversions / top if top else 0.0


def locality_profile(sigma: Permutation | Sequence[int]) -> LocalityProfile:
    """Compute the full :class:`LocalityProfile` of a re-traversal."""
    sigma = _as_permutation(sigma)
    hist = reuse_distance_histogram(sigma)
    vec = np.cumsum(hist)
    m = sigma.size
    ell = sigma.inversions()
    mrc_full = tuple(float(x) for x in (1.0 - vec / (2 * m)))
    mrc_re = tuple(float(x) for x in (1.0 - vec / m))
    return LocalityProfile(
        sigma=sigma,
        inversions=ell,
        hit_vector=tuple(int(x) for x in vec),
        histogram=tuple(int(x) for x in hist),
        mrc_full=mrc_full,
        mrc_retraversal=mrc_re,
        total_reuse=m * m - ell,
    )


# --------------------------------------------------------------------------- #
# Theorem checks
# --------------------------------------------------------------------------- #
def theorem2_deficit(sigma: Permutation | Sequence[int]) -> int:
    """Difference between the two sides of Theorem 2 (zero when the theorem holds).

    Theorem 2: :math:`\\sum_{c=1}^{m-1} hits_c(\\sigma) = \\ell(\\sigma)`.
    """
    sigma = _as_permutation(sigma)
    vec = cache_hit_vector(sigma)
    lhs = int(vec[:-1].sum()) if sigma.size else 0
    return lhs - sigma.inversions()


def corollary1_deficit(sigma: Permutation | Sequence[int]) -> int:
    """Difference between the two sides of Corollary 1 (zero when it holds).

    Corollary 1: :math:`\\sum_{c=1}^{m} hits_c(\\sigma) = m + \\ell(\\sigma)`.
    """
    sigma = _as_permutation(sigma)
    vec = cache_hit_vector(sigma)
    lhs = int(vec.sum())
    return lhs - (sigma.size + sigma.inversions())


def theorem3_compare(sigma: Permutation, tau: Permutation) -> dict[str, object]:
    """Compare the miss-ratio curves of a covering pair, as Theorem 3 predicts.

    For ``sigma ◁_B tau`` the paper's Theorem 3 states the miss ratio of
    ``tau`` is no worse at every cache size and strictly better at exactly
    one.  **Reproduction note**: this is true when the covering step swaps
    *adjacent* positions (a weak-order cover — one stack distance shrinks by
    exactly one), but it fails for general Bruhat covers that swap distant
    positions: the swapped pair's stack distances can move in opposite
    directions, e.g. ``(2,1,4,3) ◁_B (4,1,2,3)`` in ``S_4`` where ``hits_3``
    drops from 2 to 1 while ``hits_1`` and ``hits_2`` each gain 1.  What does
    survive for every Bruhat cover is Theorem 2's aggregate form: the *summed*
    hit vector below cache size ``m`` grows by exactly one (``hit_gain == 1``).
    The test-suite and ``EXPERIMENTS.md`` record this discrepancy.

    The return value reports, for the given pair (covering or not):

    ``dominates``
        ``True`` when ``mr(c; tau) <= mr(c; sigma)`` for all ``c <= m``.
    ``improved_sizes``
        Cache sizes where ``tau`` strictly improves.
    ``hit_gain``
        Total extra hits of ``tau`` over ``sigma`` across ``c = 1..m-1``.
    """
    if sigma.size != tau.size:
        raise ValueError("permutations must act on the same number of items")
    vec_s = cache_hit_vector(sigma)
    vec_t = cache_hit_vector(tau)
    diff = vec_t - vec_s
    improved = [int(c) for c in (np.nonzero(diff > 0)[0] + 1)]
    return {
        "dominates": bool(np.all(diff >= 0)),
        "improved_sizes": improved,
        "hit_gain": int(diff[:-1].sum()) if sigma.size else 0,
    }
