"""Unit tests for the crash-safe checkpoint store."""

from __future__ import annotations

import pytest

import numpy as np

from repro.resilience import (
    CheckpointError,
    CheckpointIntegrityError,
    latest_step,
    load_checkpoint,
    write_checkpoint,
)


class TestRoundTrip:
    def test_state_round_trips(self, tmp_path):
        state = {"position": 1500, "array": np.arange(5), "nested": {"a": (1, 2)}}
        path = write_checkpoint(tmp_path, 3, state, fingerprint="fp")
        assert path.name == "step-00000003.ckpt"
        loaded = load_checkpoint(tmp_path, fingerprint="fp")
        assert loaded.step == 3
        assert loaded.path == path
        assert loaded.state["position"] == 1500
        np.testing.assert_array_equal(loaded.state["array"], np.arange(5))
        assert loaded.state["nested"] == {"a": (1, 2)}

    def test_latest_step_tracks_newest(self, tmp_path):
        assert latest_step(tmp_path) is None
        write_checkpoint(tmp_path, 1, {"s": 1}, fingerprint="fp")
        write_checkpoint(tmp_path, 2, {"s": 2}, fingerprint="fp")
        assert latest_step(tmp_path) == 2
        assert load_checkpoint(tmp_path).state == {"s": 2}

    def test_load_specific_step(self, tmp_path):
        for step in (1, 2, 3):
            write_checkpoint(tmp_path, step, {"s": step}, fingerprint="fp")
        assert load_checkpoint(tmp_path, step=2).state == {"s": 2}
        with pytest.raises(CheckpointError, match="no step 9"):
            load_checkpoint(tmp_path, step=9)

    def test_rewriting_a_step_replaces_it(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"s": "old"}, fingerprint="fp")
        write_checkpoint(tmp_path, 1, {"s": "new"}, fingerprint="fp")
        assert load_checkpoint(tmp_path, step=1).state == {"s": "new"}

    def test_no_tmp_files_left_behind(self, tmp_path):
        write_checkpoint(tmp_path, 1, {"s": 1}, fingerprint="fp")
        assert not list(tmp_path.glob("*.tmp"))


class TestPruning:
    def test_keep_bounds_the_store(self, tmp_path):
        for step in range(1, 7):
            write_checkpoint(tmp_path, step, {"s": step}, fingerprint="fp", keep=3)
        snapshots = sorted(p.name for p in tmp_path.glob("step-*.ckpt"))
        assert snapshots == ["step-00000004.ckpt", "step-00000005.ckpt", "step-00000006.ckpt"]
        assert latest_step(tmp_path) == 6

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            write_checkpoint(tmp_path, 1, {}, fingerprint="fp", keep=0)


class TestRejection:
    def test_fingerprint_mismatch_on_write(self, tmp_path):
        write_checkpoint(tmp_path, 1, {}, fingerprint="run-a")
        with pytest.raises(CheckpointError, match="different run"):
            write_checkpoint(tmp_path, 2, {}, fingerprint="run-b")

    def test_fingerprint_mismatch_on_load(self, tmp_path):
        write_checkpoint(tmp_path, 1, {}, fingerprint="run-a")
        with pytest.raises(CheckpointError, match="different run"):
            load_checkpoint(tmp_path, fingerprint="run-b")

    def test_missing_store(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            load_checkpoint(tmp_path / "nope")

    def test_corrupted_snapshot_fails_checksum(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, {"s": 1}, fingerprint="fp")
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointIntegrityError) as excinfo:
            load_checkpoint(tmp_path, fingerprint="fp")
        message = str(excinfo.value)
        assert path.name in message
        assert "expected" in message and "found" in message

    def test_deleted_snapshot_is_reported(self, tmp_path):
        path = write_checkpoint(tmp_path, 1, {"s": 1}, fingerprint="fp")
        path.unlink()
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path, fingerprint="fp")

    def test_unreadable_manifest(self, tmp_path):
        write_checkpoint(tmp_path, 1, {}, fingerprint="fp")
        (tmp_path / "MANIFEST.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointIntegrityError, match="unreadable manifest"):
            load_checkpoint(tmp_path)

    def test_schema_mismatch(self, tmp_path):
        import json

        write_checkpoint(tmp_path, 1, {}, fingerprint="fp")
        manifest_path = tmp_path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["schema"] = 99
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(tmp_path)

    def test_negative_step_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="step"):
            write_checkpoint(tmp_path, -1, {}, fingerprint="fp")
