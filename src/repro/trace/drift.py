"""Phase-shifting workload generators for the online re-partitioning engine.

The static optimizer in :mod:`repro.alloc` assumes one stationary profile per
tenant; everything in :mod:`repro.online` exists because real traffic is only
*piecewise* stationary.  This module generates the piecewise part, with the
ground-truth phase boundaries attached so experiments can compare adaptive
behaviour against an oracle that re-partitions exactly at the shifts:

* :func:`zipf_alpha_drift` — popularity skew drift: each phase draws from the
  same item universe with a different Zipf exponent.
* :func:`working_set_migration` — the working set moves to a disjoint item
  range (optionally a different size) each phase; the classic cause of
  partition-rotting, since blocks holding the old set become dead weight.
* :func:`compose_phases` — interleave per-tenant, per-phase streams into one
  multi-tenant trace with aligned phases (a tenant may be absent from a
  phase: arrival/departure churn).
* :func:`three_phase_pair` — the canonical 3-phase two-tenant seesaw used by
  the ``online`` CLI subcommand, the ``online-adaptation`` experiment and the
  benchmarks: the tenants' working-set sizes swap each phase, so any static
  split starves one side in every phase.
* :func:`tenant_churn` — a tenant that arrives for the middle phase only.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .._util import check_positive_int, ensure_rng
from .generators import zipfian_trace
from .tenancy import MultiTenantTrace
from .trace import Trace

__all__ = [
    "PhasedTrace",
    "DriftingWorkload",
    "zipf_alpha_drift",
    "working_set_migration",
    "compose_phases",
    "three_phase_pair",
    "tenant_churn",
]


@dataclass(frozen=True)
class PhasedTrace:
    """A single-stream trace with known phase-start positions.

    ``boundaries[p]`` is the index of phase ``p``'s first access;
    ``boundaries[0]`` is always 0.
    """

    trace: Trace
    boundaries: tuple[int, ...]

    def __post_init__(self):
        if not self.boundaries or self.boundaries[0] != 0:
            raise ValueError("boundaries must start at 0")
        if any(b >= c for b, c in zip(self.boundaries, self.boundaries[1:])):
            raise ValueError("boundaries must be strictly increasing")
        if self.boundaries[-1] >= len(self.trace):
            raise ValueError("the final phase would be empty")

    @property
    def num_phases(self) -> int:
        """Number of phases."""
        return len(self.boundaries)

    def phase(self, index: int) -> np.ndarray:
        """The accesses of phase ``index``."""
        starts = self.boundaries + (len(self.trace),)
        return self.trace.accesses[starts[index] : starts[index + 1]]


@dataclass(frozen=True)
class DriftingWorkload:
    """A composed multi-tenant trace with known phase-start positions.

    ``boundaries`` index into the *composed* trace, so
    ``composed.trace.accesses[boundaries[p]:boundaries[p + 1]]`` is phase
    ``p`` for every tenant at once.
    """

    composed: MultiTenantTrace
    boundaries: tuple[int, ...]

    @property
    def num_phases(self) -> int:
        """Number of phases."""
        return len(self.boundaries)

    def phase_slice(self, index: int) -> tuple[int, int]:
        """Half-open ``(start, end)`` positions of phase ``index`` in the composed trace."""
        starts = self.boundaries + (len(self.composed.trace),)
        return int(starts[index]), int(starts[index + 1])

    def tenant_phase_trace(self, tenant: int, phase: int) -> np.ndarray:
        """Tenant ``tenant``'s accesses during phase ``phase`` (composed labels)."""
        start, end = self.phase_slice(phase)
        window = self.composed.trace.accesses[start:end]
        return window[self.composed.tenant_ids[start:end] == tenant]


def zipf_alpha_drift(
    length_per_phase: int,
    items: int,
    exponents: Sequence[float],
    *,
    seed: int = 0,
) -> PhasedTrace:
    """Zipf traffic whose popularity exponent changes at every phase boundary.

    Examples
    --------
    >>> phased = zipf_alpha_drift(100, 50, [0.2, 1.2], seed=3)
    >>> phased.num_phases, len(phased.trace), phased.boundaries
    (2, 200, (0, 100))
    """
    length_per_phase = check_positive_int(length_per_phase, "length_per_phase")
    check_positive_int(items, "items")
    if not exponents:
        raise ValueError("need at least one phase exponent")
    rng = ensure_rng(seed)
    parts = [zipfian_trace(length_per_phase, items, exponent=float(s), rng=rng).accesses for s in exponents]
    boundaries = tuple(p * length_per_phase for p in range(len(exponents)))
    name = "zipf-drift(" + ",".join(f"{float(s):g}" for s in exponents) + ")"
    return PhasedTrace(trace=Trace(np.concatenate(parts), name=name), boundaries=boundaries)


def working_set_migration(
    length_per_phase: int,
    working_sets: Sequence[tuple[int, int]],
    *,
    exponent: float = 0.6,
    seed: int = 0,
) -> PhasedTrace:
    """Traffic whose working set occupies a different item range each phase.

    ``working_sets`` lists one ``(first_item, footprint)`` pair per phase;
    within a phase, items are drawn Zipf-ranked from that range (hottest at
    ``first_item``).  Disjoint ranges model the hard case: nothing cached for
    one phase helps the next.

    Examples
    --------
    >>> phased = working_set_migration(80, [(0, 20), (100, 40)], seed=1)
    >>> int(phased.phase(0).max()) < 20, int(phased.phase(1).min()) >= 100
    (True, True)
    """
    length_per_phase = check_positive_int(length_per_phase, "length_per_phase")
    if not working_sets:
        raise ValueError("need at least one phase working set")
    rng = ensure_rng(seed)
    parts = []
    for first, footprint in working_sets:
        first = int(first)
        if first < 0:
            raise ValueError(f"working-set start must be non-negative, got {first}")
        footprint = check_positive_int(footprint, "footprint")
        parts.append(first + zipfian_trace(length_per_phase, footprint, exponent=exponent, rng=rng).accesses)
    boundaries = tuple(p * length_per_phase for p in range(len(working_sets)))
    name = "ws-migration(" + ",".join(f"{int(f)}+{int(w)}" for f, w in working_sets) + ")"
    return PhasedTrace(trace=Trace(np.concatenate(parts), name=name), boundaries=boundaries)


def compose_phases(
    phase_streams: Sequence[Sequence[np.ndarray | Sequence[int] | None]],
    *,
    names: Sequence[str],
    rates: Sequence[float] | None = None,
    seed: int = 0,
    name: str = "drifting",
) -> DriftingWorkload:
    """Interleave per-tenant, per-phase streams into one phase-aligned trace.

    ``phase_streams[t][p]`` holds tenant ``t``'s references during phase
    ``p`` in the tenant's own label space, or ``None``/empty when the tenant
    is inactive there (arrival/departure churn).  Unlike
    :func:`repro.trace.tenancy.compose_tenants` — which interleaves whole
    traces and therefore cannot keep independently generated phases aligned —
    this merges *within* each phase (seeded exponential arrival times, order
    preserving) and concatenates the phases, so every tenant crosses each
    boundary at the same composed position.  Tenant namespaces are offset to
    stay disjoint, with one fixed offset per tenant across all phases.
    """
    if not phase_streams:
        raise ValueError("need at least one tenant")
    num_phases = len(phase_streams[0])
    if num_phases == 0:
        raise ValueError("need at least one phase")
    if any(len(streams) != num_phases for streams in phase_streams):
        raise ValueError("every tenant must list one stream (or None) per phase")
    if len(names) != len(phase_streams):
        raise ValueError(f"got {len(names)} names for {len(phase_streams)} tenants")
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    if rates is None:
        rates = [1.0] * len(phase_streams)
    if len(rates) != len(phase_streams):
        raise ValueError(f"got {len(rates)} rates for {len(phase_streams)} tenants")
    if any(float(r) <= 0 for r in rates):
        raise ValueError("tenant rates must be positive")

    arrays: list[list[np.ndarray | None]] = []
    for streams in phase_streams:
        arrays.append([None if s is None else np.asarray(s, dtype=np.int64) for s in streams])
    for streams in arrays:
        for arr in streams:
            if arr is not None and arr.size and int(arr.min()) < 0:
                raise ValueError("tenant item labels must be non-negative")
    if any(all(arr is None or arr.size == 0 for arr in streams) for streams in arrays):
        raise ValueError("every tenant must be active in at least one phase")

    # One fixed namespace offset per tenant, wide enough for all its phases.
    offsets: list[int] = []
    base = 0
    for streams in arrays:
        offsets.append(base)
        top = max(int(arr.max()) for arr in streams if arr is not None and arr.size)
        base += top + 1

    rng = ensure_rng(seed)
    phase_items: list[np.ndarray] = []
    phase_ids: list[np.ndarray] = []
    boundaries: list[int] = []
    position = 0
    for p in range(num_phases):
        boundaries.append(position)
        merged_items: list[np.ndarray] = []
        merged_times: list[np.ndarray] = []
        merged_ids: list[np.ndarray] = []
        for t, streams in enumerate(arrays):
            arr = streams[p]
            if arr is None or arr.size == 0:
                continue
            merged_items.append(arr + offsets[t])
            merged_times.append(np.cumsum(rng.exponential(1.0 / float(rates[t]), size=arr.size)))
            merged_ids.append(np.full(arr.size, t, dtype=np.int64))
        if not merged_items:
            raise ValueError(f"phase {p} has no active tenant")
        items = np.concatenate(merged_items)
        order = np.argsort(np.concatenate(merged_times), kind="stable")
        phase_items.append(items[order])
        phase_ids.append(np.concatenate(merged_ids)[order])
        position += items.size

    composed = MultiTenantTrace(
        trace=Trace(np.concatenate(phase_items), name=name),
        names=tuple(str(n) for n in names),
        rates=tuple(float(r) for r in rates),
        offsets=tuple(offsets),
        tenant_ids=np.concatenate(phase_ids),
    )
    return DriftingWorkload(composed=composed, boundaries=tuple(boundaries))


def three_phase_pair(
    length_per_phase: int = 12_000,
    *,
    large: int = 900,
    small: int = 250,
    exponent: float = 0.6,
    seed: int = 7,
) -> DriftingWorkload:
    """The canonical 3-phase seesaw: two tenants whose working-set sizes swap.

    Tenant ``alpha`` needs a ``large`` working set in phases 0 and 2 and only
    ``small`` in phase 1; tenant ``beta`` is its mirror.  Each phase uses a
    disjoint item range (working-set migration), so a static whole-trace
    partition must starve one tenant in *every* phase while per-phase
    re-partitioning can serve both — the workload the acceptance benchmark
    measures the adaptive engine on.
    """
    length_per_phase = check_positive_int(length_per_phase, "length_per_phase")
    large = check_positive_int(large, "large")
    small = check_positive_int(small, "small")
    rng = ensure_rng(seed)
    stride = 2 * (large + small)
    alpha_sets = [(0 * stride, large), (1 * stride, small), (2 * stride, large)]
    beta_sets = [(0 * stride, small), (1 * stride, large), (2 * stride, small)]
    alpha = working_set_migration(length_per_phase, alpha_sets, exponent=exponent, seed=rng)
    beta = working_set_migration(length_per_phase, beta_sets, exponent=exponent, seed=rng)
    return compose_phases(
        [[alpha.phase(p) for p in range(3)], [beta.phase(p) for p in range(3)]],
        names=("alpha", "beta"),
        seed=rng,
        name=f"three-phase-pair(large={large}, small={small})",
    )


def tenant_churn(
    length_per_phase: int = 8_000,
    *,
    resident_items: int = 600,
    visitor_items: int = 600,
    exponent: float = 0.6,
    seed: int = 11,
) -> DriftingWorkload:
    """Arrival/departure churn: a visitor tenant active only in the middle phase.

    Tenant ``resident`` runs for all three phases over a stable working set;
    tenant ``visitor`` arrives at phase 1 and departs at phase 2.  An
    adaptive partitioner should hand the visitor capacity only while it is
    present and return it afterwards.
    """
    length_per_phase = check_positive_int(length_per_phase, "length_per_phase")
    rng = ensure_rng(seed)
    resident = []
    for _ in range(3):
        resident.append(zipfian_trace(length_per_phase, resident_items, exponent=exponent, rng=rng).accesses)
    visitor = zipfian_trace(length_per_phase, visitor_items, exponent=exponent, rng=rng).accesses
    return compose_phases(
        [resident, [None, visitor, None]],
        names=("resident", "visitor"),
        seed=rng,
        name="tenant-churn",
    )
