"""Unit tests for the trace generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Permutation, max_inversions
from repro.trace import (
    blocked_traversal,
    column_major_matrix,
    cyclic_retraversal,
    fixed_inversion_retraversal,
    random_retraversal,
    random_trace,
    repeated_traversals,
    row_major_matrix,
    sawtooth_retraversal,
    strided_traversal,
    tiled_matrix,
    zipfian_trace,
)


class TestRetraversalGenerators:
    def test_cyclic_and_sawtooth(self):
        assert cyclic_retraversal(5).sigma.is_identity()
        assert sawtooth_retraversal(5).sigma.is_reverse()

    def test_random_retraversal_valid(self, rng):
        pt = random_retraversal(12, rng)
        assert sorted(pt.sigma.one_line) == list(range(12))

    def test_fixed_inversion_retraversal(self, rng):
        for target in (0, 5, 20, max_inversions(10)):
            pt = fixed_inversion_retraversal(10, target, rng)
            assert pt.sigma.inversions() == target

    def test_repeated_traversals_trace(self):
        sigma = Permutation.reverse(3)
        trace = repeated_traversals([Permutation.identity(3), sigma, Permutation.identity(3)])
        assert trace.accesses.tolist() == [0, 1, 2, 2, 1, 0, 0, 1, 2]

    def test_repeated_traversals_validation(self):
        with pytest.raises(ValueError):
            repeated_traversals([])
        with pytest.raises(ValueError):
            repeated_traversals([Permutation.identity(2), Permutation.identity(3)])


class TestArrayWalks:
    def test_strided_traversal_visits_everything(self):
        sigma = strided_traversal(10, 3)
        assert sorted(sigma.one_line) == list(range(10))
        assert sigma.one_line[:4] == (0, 3, 6, 9)

    def test_strided_requires_coprime(self):
        with pytest.raises(ValueError):
            strided_traversal(10, 5)

    def test_blocked_traversal_reverses_blocks(self):
        sigma = blocked_traversal(6, 2)
        assert sigma.one_line == (4, 5, 2, 3, 0, 1)

    def test_blocked_traversal_partial_block(self):
        sigma = blocked_traversal(5, 2)
        assert sorted(sigma.one_line) == list(range(5))
        assert sigma.one_line[0] == 4

    def test_row_major_is_identity(self):
        assert row_major_matrix(3, 4).is_identity()

    def test_column_major_transposes_order(self):
        sigma = column_major_matrix(2, 3)
        assert sigma.one_line == (0, 3, 1, 4, 2, 5)

    def test_column_major_is_permutation(self):
        sigma = column_major_matrix(5, 7)
        assert sorted(sigma.one_line) == list(range(35))

    def test_tiled_matrix_covers_all_elements(self):
        sigma = tiled_matrix(4, 6, 2, 3)
        assert sorted(sigma.one_line) == list(range(24))
        # first tile is the top-left 2x3 block in row-major order
        assert sigma.one_line[:6] == (0, 1, 2, 6, 7, 8)

    def test_tiled_matrix_partial_tiles(self):
        sigma = tiled_matrix(3, 5, 2, 2)
        assert sorted(sigma.one_line) == list(range(15))


class TestSyntheticTraces:
    def test_random_trace_footprint_bounded(self, rng):
        trace = random_trace(500, 20, rng)
        assert len(trace) == 500
        assert trace.footprint <= 20

    def test_random_trace_zero_length(self, rng):
        assert len(random_trace(0, 5, rng)) == 0

    def test_zipfian_trace_skewed(self, rng):
        trace = zipfian_trace(5000, 50, exponent=1.2, rng=rng)
        counts = np.bincount(trace.accesses, minlength=50)
        assert counts[0] > counts[10] > counts[-1]

    def test_zipfian_exponent_zero_is_uniformish(self, rng):
        trace = zipfian_trace(2000, 10, exponent=0.0, rng=rng)
        counts = np.bincount(trace.accesses, minlength=10)
        assert counts.min() > 100

    def test_zipfian_validation(self, rng):
        with pytest.raises(ValueError):
            zipfian_trace(10, 5, exponent=-1.0, rng=rng)

    def test_generators_reproducible_with_seed(self):
        assert random_trace(50, 10, 3) == random_trace(50, 10, 3)
        assert zipfian_trace(50, 10, rng=3) == zipfian_trace(50, 10, rng=3)
