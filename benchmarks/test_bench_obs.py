"""Disabled-mode observability overhead on the canonical online replay.

The observability layer's acceptance claim: with no registry recording (the
default for every engine entry point), the instrumentation left in the hot
paths — ``span()`` enter/exit, ``get_registry().enabled`` guards, null-counter
calls — costs **< 2%** of the 72k-reference online replay's wall time.

The measurement is compositional rather than a before/after diff (the seed
code no longer exists to diff against): microbenchmark the per-call cost of
each disabled-mode primitive, count how many of each one full replay performs
(a recording registry observes the exact call counts; structural counts are
over-estimated generously), and bound the total against the replay's measured
wall time.
"""

from __future__ import annotations

import time

from repro.analysis import format_table, write_csv
from repro.obs import MetricsRegistry, get_registry, record_perf, recording, span
from repro.online import OnlineJob, run_replay
from repro.trace.drift import three_phase_pair

LENGTH_PER_PHASE = 12_000
SEED = 7
JOB = OnlineJob(
    budget=1150,
    window=6000,
    epoch=2000,
    method="hull",
    rate=0.5,
    move_cost=1.0,
    name="bench-obs",
)


def _per_call(fn, calls: int = 200_000) -> float:
    """Median-of-5 per-call cost of one disabled-mode primitive."""
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        samples.append((time.perf_counter() - start) / calls)
    return sorted(samples)[2]


def test_disabled_span_overhead_below_2_percent(results_dir, perf_trajectory):
    workload = three_phase_pair(LENGTH_PER_PHASE, seed=SEED)

    # Wall time of the replay exactly as shipped: no registry, so every
    # instrumentation site takes its disabled fast path.
    assert not get_registry().enabled
    replay_seconds = min(_timed(lambda: run_replay(workload, JOB)) for _ in range(3))

    # Count the instrumentation events of one replay by recording it.
    registry = MetricsRegistry()
    with recording(registry):
        result = run_replay(workload, JOB)
    snapshot = registry.snapshot()
    span_calls = sum(stats[0] for key, stats in snapshot.items() if key[0] == "span")
    epochs = len(result.epochs)
    # Disabled-mode calls the recording run cannot see directly, bounded from
    # above: one null-counter add per run_segment per lane (every lane stops
    # at every epoch end and phase boundary), the per-epoch enabled-guards,
    # and a constant handful of end-of-run counters/gauges.
    segment_stops = epochs + workload.num_phases + 2
    counter_calls = 3 * segment_stops + 3 * epochs + 8
    guard_calls = epochs + 8

    def one_span():
        with span("bench.noop"):
            pass

    cost_span = _per_call(one_span)
    null_counter = get_registry().counter("bench.noop")
    cost_counter = _per_call(lambda: null_counter.add(1))

    def one_guard():
        if get_registry().enabled:  # pragma: no cover - never taken
            raise AssertionError

    cost_guard = _per_call(one_guard)

    overhead = span_calls * cost_span + counter_calls * cost_counter + guard_calls * cost_guard
    fraction = overhead / replay_seconds
    assert fraction < 0.02, (
        f"disabled-mode instrumentation must cost < 2% of the replay: "
        f"{overhead * 1e6:.0f}us over {replay_seconds * 1e3:.0f}ms = {fraction:.2%} "
        f"({span_calls} spans, {counter_calls} counter calls, {guard_calls} guards)"
    )

    row = {
        "replay_seconds": replay_seconds,
        "span_calls": span_calls,
        "counter_calls": counter_calls,
        "guard_calls": guard_calls,
        "span_ns": cost_span * 1e9,
        "counter_ns": cost_counter * 1e9,
        "guard_ns": cost_guard * 1e9,
        "overhead_percent": fraction * 100,
    }
    print()
    print(format_table([row], title=f"disabled-mode obs overhead — {result.accesses} refs x 3 lanes"))
    write_csv(results_dir / "obs_overhead.csv", [row])
    record_perf(
        perf_trajectory,
        "bench_obs",
        "disabled_overhead_percent",
        fraction * 100,
        unit="%",
        direction="lower_is_better",
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
