"""Permutation equivariance of network components (Section VI-A1).

A function ``f`` is *permutation equivariant* when ``σ f(x) = f(σ x)`` for
every permutation ``σ`` of the token/row axis.  The paper relies on this
property to argue that re-ordering the traversal of parameters (or of
permutation-invariant data) cannot change the model's result, only its memory
behaviour.

This module provides

* reference NumPy implementations of the components the paper lists as
  equivariant — element-wise activations, softmax over the feature axis,
  row-wise linear layers, layer normalisation, and (self-)attention,
* :func:`is_permutation_equivariant`, a randomised numerical check of the
  property for any callable,
* :func:`hidden_unit_permutation_invariant`, the weight-space counterpart used
  by :mod:`repro.ml.mlp`: permuting the hidden units of an MLP (and its weight
  matrices consistently) leaves the function computed by the network
  unchanged, which is what licenses the Theorem-4 re-ordering of weight
  traversals.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .._util import ensure_rng
from ..core.permutation import Permutation, random_permutation

__all__ = [
    "relu",
    "gelu",
    "softmax",
    "layer_norm",
    "linear",
    "self_attention",
    "is_permutation_equivariant",
    "hidden_unit_permutation_invariant",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Layer normalisation over the last axis (no learned scale/shift)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Row-wise affine map ``x @ weight + bias`` (each row of ``x`` is a token)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def self_attention(
    x: np.ndarray,
    w_q: np.ndarray,
    w_k: np.ndarray,
    w_v: np.ndarray,
    w_o: np.ndarray,
) -> np.ndarray:
    """Single-head scaled dot-product self-attention over the rows of ``x``."""
    q, k, v = x @ w_q, x @ w_k, x @ w_v
    scale = 1.0 / np.sqrt(q.shape[-1])
    attn = softmax((q @ k.T) * scale, axis=-1)
    return (attn @ v) @ w_o


def is_permutation_equivariant(
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    tokens: int,
    features: int,
    trials: int = 8,
    rng: np.random.Generator | int | None = None,
    atol: float = 1e-8,
) -> bool:
    """Numerically test ``σ f(x) == f(σ x)`` on random inputs and permutations.

    ``fn`` maps a ``(tokens, features)`` array to a ``(tokens, ...)`` array;
    the permutation acts on the token (row) axis.
    """
    generator = ensure_rng(rng)
    for _ in range(trials):
        x = generator.standard_normal((tokens, features))
        sigma = random_permutation(tokens, generator)
        perm = np.asarray(sigma.one_line, dtype=np.intp)
        left = fn(x)[perm]
        right = fn(x[perm])
        if not np.allclose(left, right, atol=atol):
            return False
    return True


def hidden_unit_permutation_invariant(
    w1: np.ndarray,
    w2: np.ndarray,
    sigma: Permutation,
    *,
    activation: Callable[[np.ndarray], np.ndarray] = relu,
    rng: np.random.Generator | int | None = None,
    trials: int = 4,
    atol: float = 1e-8,
) -> bool:
    """Check that permuting hidden units leaves a two-layer MLP's function unchanged.

    With hidden permutation ``σ``, the columns of ``w1`` and the rows of
    ``w2`` are permuted consistently; the composite map
    ``x ↦ act(x @ w1) @ w2`` must be identical because element-wise
    activations commute with the permutation.  This is the weight-space
    permutation equivariance the paper exploits: the optimiser may traverse
    (and even physically re-order) the hidden dimension in any order.
    """
    if w1.shape[1] != w2.shape[0]:
        raise ValueError("w1 columns must match w2 rows (the hidden dimension)")
    if sigma.size != w1.shape[1]:
        raise ValueError(f"permutation acts on {sigma.size} units, hidden dimension is {w1.shape[1]}")
    generator = ensure_rng(rng)
    perm = np.asarray(sigma.one_line, dtype=np.intp)
    w1_p = w1[:, perm]
    w2_p = w2[perm, :]
    for _ in range(trials):
        x = generator.standard_normal((3, w1.shape[0]))
        original = activation(x @ w1) @ w2
        permuted = activation(x @ w1_p) @ w2_p
        if not np.allclose(original, permuted, atol=atol):
            return False
    return True
