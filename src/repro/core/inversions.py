"""Inversion counting algorithms.

The inversion number :math:`\\ell(\\sigma)` is the central quantity of the
paper: Theorem 2 shows it equals the truncated sum of the cache-hit vector of
the re-traversal :math:`A\\,\\sigma(A)`, so counting inversions *is* measuring
symmetric locality.

Several interchangeable implementations are provided, all returning identical
results (cross-checked by the property tests):

``count_inversions_naive``
    The quadratic textbook double loop.  Useful as an oracle.
``count_inversions_mergesort``
    Classic divide-and-conquer, :math:`O(m \\log m)` comparisons.
``count_inversions_fenwick``
    Binary indexed tree sweep, :math:`O(m \\log m)`; also produces the
    per-element inversion contributions that Algorithm 1 needs.
``count_inversions_numpy``
    Fully vectorised :math:`O(m^2)` memory/compute broadcast; fastest for the
    small-to-moderate ``m`` used when enumerating whole symmetric groups.
``count_inversions``
    Dispatching front-end that picks a sensible implementation by size.

The module also provides :class:`FenwickTree`, reused by the cache
stack-distance algorithms in :mod:`repro.cache.stack_distance`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import as_int_array

__all__ = [
    "FenwickTree",
    "count_inversions",
    "count_inversions_naive",
    "count_inversions_mergesort",
    "count_inversions_fenwick",
    "count_inversions_numpy",
    "inversion_vector",
    "left_inversion_counts",
    "max_inversions",
]

#: Below this size the vectorised O(m^2) broadcast is faster than the
#: O(m log m) Fenwick sweep because of constant factors.
_NUMPY_CUTOFF = 2048


class FenwickTree:
    """A binary indexed tree over ``size`` integer counters (prefix sums).

    Supports point updates and prefix-sum queries in :math:`O(\\log n)`.
    Used for inversion counting and for the LRU stack-distance algorithm of
    Mattson/Olken, where it tracks which data items have been touched since a
    given time.
    """

    __slots__ = ("_tree", "_size", "_total")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._size = int(size)
        self._tree = np.zeros(self._size + 1, dtype=np.int64)
        self._total = 0

    @property
    def size(self) -> int:
        """Number of slots in the tree."""
        return self._size

    @property
    def total(self) -> int:
        """Sum of all counters."""
        return self._total

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` to the counter at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for FenwickTree of size {self._size}")
        self._total += delta
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of counters at positions ``0 .. index`` inclusive.

        ``index = -1`` returns 0 by convention.
        """
        if index < 0:
            return 0
        if index >= self._size:
            index = self._size - 1
        i = index + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of counters at positions ``lo .. hi`` inclusive."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def suffix_sum(self, index: int) -> int:
        """Sum of counters at positions ``index .. size-1`` inclusive."""
        return self._total - self.prefix_sum(index - 1)


def max_inversions(m: int) -> int:
    """The maximum inversion number in ``S_m``: ``m * (m - 1) / 2``.

    Attained only by the reverse (sawtooth) permutation, which is the top of
    the Bruhat order and has the best symmetric locality.
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    return m * (m - 1) // 2


def count_inversions_naive(sequence: Sequence[int]) -> int:
    """Count inversions with the quadratic double loop (reference oracle)."""
    arr = list(sequence)
    m = len(arr)
    return sum(1 for i in range(m) for j in range(i + 1, m) if arr[i] > arr[j])


def count_inversions_numpy(sequence: Sequence[int]) -> int:
    """Count inversions with a vectorised pairwise comparison (:math:`O(m^2)` memory)."""
    arr = np.asarray(sequence)
    if arr.size < 2:
        return 0
    # upper-triangular mask of pairs i < j with arr[i] > arr[j]
    greater = arr[:, None] > arr[None, :]
    return int(np.count_nonzero(np.triu(greater, k=1)))


def count_inversions_mergesort(sequence: Sequence[int]) -> int:
    """Count inversions by merge sort in :math:`O(m \\log m)`."""
    arr = list(sequence)

    def sort(lo: int, hi: int, buf: list) -> int:
        """Sort ``arr[lo:hi]`` in place, returning the inversions merged away."""
        if hi - lo <= 1:
            return 0
        mid = (lo + hi) // 2
        count = sort(lo, mid, buf) + sort(mid, hi, buf)
        i, j, k = lo, mid, lo
        while i < mid and j < hi:
            if arr[i] <= arr[j]:
                buf[k] = arr[i]
                i += 1
            else:
                buf[k] = arr[j]
                j += 1
                count += mid - i
            k += 1
        while i < mid:
            buf[k] = arr[i]
            i += 1
            k += 1
        while j < hi:
            buf[k] = arr[j]
            j += 1
            k += 1
        arr[lo:hi] = buf[lo:hi]
        return count

    return sort(0, len(arr), arr.copy())


def count_inversions_fenwick(sequence: Sequence[int]) -> int:
    """Count inversions with a Fenwick tree sweep in :math:`O(m \\log m)`.

    Works for arbitrary integer sequences (values are rank-compressed first).
    """
    arr = as_int_array(sequence, "sequence")
    m = arr.size
    if m < 2:
        return 0
    # Rank-compress values so ties are handled and the tree stays small.
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(m, dtype=np.intp)
    ranks[order] = np.arange(m)
    tree = FenwickTree(m)
    count = 0
    # Sweep right-to-left: an inversion (i, j), i < j, arr[i] > arr[j] is found
    # when processing i by counting already-seen elements with smaller rank.
    for i in range(m - 1, -1, -1):
        count += tree.prefix_sum(int(ranks[i]) - 1)
        tree.add(int(ranks[i]))
    return count


def count_inversions(sequence: Sequence[int]) -> int:
    """Count inversions, dispatching to the fastest implementation for the size."""
    arr = np.asarray(sequence)
    if arr.size <= _NUMPY_CUTOFF:
        return count_inversions_numpy(arr)
    return count_inversions_fenwick(arr)


def inversion_vector(sequence: Sequence[int]) -> np.ndarray:
    """Per-position right inversion counts (the Lehmer code of the sequence).

    ``result[i] = #{j > i : sequence[j] < sequence[i]}``; the total number of
    inversions is ``result.sum()``.
    """
    arr = np.asarray(sequence)
    m = arr.size
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    less = arr[None, :] < arr[:, None]
    upper = np.triu(less, k=1)
    return upper.sum(axis=1).astype(np.int64)


def left_inversion_counts(sequence: Sequence[int]) -> np.ndarray:
    """Per-position left inversion counts.

    ``result[j] = #{i < j : sequence[i] > sequence[j]}`` — the number of larger
    elements that appear *before* position ``j``.  This is the quantity the
    Snyder proof of Theorem 2 calls :math:`\\ell_a(\\sigma)` (indexed by value),
    and it is also what Algorithm 1 subtracts when converting a reuse interval
    into a reuse distance.
    """
    arr = np.asarray(sequence)
    m = arr.size
    if m == 0:
        return np.zeros(0, dtype=np.int64)
    greater = arr[:, None] > arr[None, :]
    upper = np.triu(greater, k=1)
    return upper.sum(axis=0).astype(np.int64)
