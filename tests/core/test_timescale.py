"""Unit tests for the timescale / data-movement labelings and labeling comparison."""

from __future__ import annotations

import pytest

from repro.core import (
    DataMovementLabeling,
    MissRatioLabeling,
    Permutation,
    TimescaleLabeling,
    TotalReuseLabeling,
    chain_find,
    compare_labelings,
    covers,
    max_inversions,
)


class TestTimescaleLabeling:
    def test_prefers_better_locality_destination(self):
        labeling = TimescaleLabeling()
        sigma = Permutation.identity(4)
        labels = {tau: labeling.label(sigma, tau) for tau in covers(sigma)}
        # labels are comparable tuples of negated footprints
        assert all(isinstance(lbl, tuple) for lbl in labels.values())

    def test_chainfind_reaches_top(self):
        result = chain_find(Permutation.identity(5), TimescaleLabeling())
        assert result.end.is_reverse()
        assert result.length == max_inversions(5)

    def test_num_windows_validation(self):
        with pytest.raises(ValueError):
            TimescaleLabeling(num_windows=0)

    def test_sawtooth_labelled_higher_than_cyclic_like_cover(self):
        # among the covers of a rank-1 permutation, the one leading towards the
        # sawtooth should never be labelled *lower* than all others
        labeling = TimescaleLabeling()
        sigma = Permutation([1, 0, 2, 3])
        best, _ = labeling.best_covers(sigma, covers(sigma))
        assert best  # a maximal cover exists and is well defined


class TestDataMovementLabeling:
    def test_chainfind_reaches_top(self):
        result = chain_find(Permutation.identity(5), DataMovementLabeling())
        assert result.end.is_reverse()

    def test_label_monotone_in_inversions(self):
        labeling = DataMovementLabeling()
        e = Permutation.identity(4)
        saw = Permutation.reverse(4)
        near_saw = Permutation([3, 2, 0, 1])
        # higher locality => smaller data movement => larger (negated) label
        assert labeling.label(e, saw) > labeling.label(e, near_saw)


class TestTotalReuseLabeling:
    def test_all_covers_tie(self):
        labeling = TotalReuseLabeling()
        e = Permutation.identity(5)
        best, _ = labeling.best_covers(e, covers(e))
        assert len(best) == len(covers(e))

    def test_chainfind_still_terminates_at_top(self):
        result = chain_find(Permutation.identity(5), TotalReuseLabeling())
        assert result.end.is_reverse()
        # the labeling distinguishes nothing: at every step the tie spans all
        # available covers of the current permutation
        for sigma, multiplicity in zip(result.chain, result.tie_multiplicities):
            assert multiplicity == len(covers(sigma))


class TestCompareLabelings:
    def test_default_comparison_structure(self):
        rows = compare_labelings(5)
        names = {row["labeling"] for row in rows}
        assert "miss_ratio (λ_e)" in names
        assert "timescale (footprint)" in names
        assert "total_reuse (control)" in names
        for row in rows:
            assert row["chain_length"] == max_inversions(5)
            assert row["reaches_top"]

    def test_control_has_most_ties(self):
        rows = {row["labeling"]: row for row in compare_labelings(5)}
        control = rows["total_reuse (control)"]
        assert all(control["arbitrary_choices"] >= row["arbitrary_choices"] for row in rows.values())

    def test_custom_labelings_and_weak_moves(self):
        rows = compare_labelings(
            4,
            {"mr": MissRatioLabeling(), "dm": DataMovementLabeling()},
            moves="weak",
        )
        assert len(rows) == 2
        for row in rows:
            assert row["chain_length"] == max_inversions(4)
            assert row["reaches_top"]

    def test_no_labeling_removes_all_ties(self):
        # the paper's Problem-3 conclusion: none of the attempted
        # locality-derived labelings is a good labeling
        rows = compare_labelings(6)
        assert all(row["arbitrary_choices"] > 0 for row in rows)


class TestWeakMovesChainFind:
    def test_weak_moves_reach_top_with_adjacent_swaps_only(self):
        result = chain_find(Permutation.identity(6), moves="weak")
        assert result.end.is_reverse()
        assert result.length == max_inversions(6)
        for a, b in zip(result.chain, result.chain[1:]):
            diff = [i for i in range(6) if a[i] != b[i]]
            assert len(diff) == 2 and diff[1] == diff[0] + 1

    def test_weak_moves_theorem3_dominance_along_chain(self):
        from repro.core import theorem3_compare

        result = chain_find(Permutation.identity(5), moves="weak")
        for a, b in zip(result.chain, result.chain[1:]):
            report = theorem3_compare(a, b)
            assert report["dominates"]
            assert len(report["improved_sizes"]) == 1

    def test_invalid_moves_argument(self):
        with pytest.raises(ValueError):
            chain_find(Permutation.identity(4), moves="diagonal")
