"""Tests for the multi-tenant workload composer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import Trace, TenantSpec, compose_tenants, zipfian_trace
from repro.trace.trace import PeriodicTrace


@pytest.fixture
def three_tenants():
    return [
        TenantSpec(zipfian_trace(2000, 256, exponent=0.9, rng=3), name="zipf"),
        TenantSpec(PeriodicTrace.sawtooth(100).to_trace(), name="saw"),
        TenantSpec(Trace(np.arange(50) % 10), name="mod"),
    ]


class TestComposeTenants:
    def test_length_is_sum_of_tenant_lengths(self, three_tenants):
        composed = compose_tenants(three_tenants, seed=0)
        assert len(composed.trace) == sum(spec.accesses.size for spec in three_tenants)

    def test_tenant_order_is_preserved(self, three_tenants):
        composed = compose_tenants(three_tenants, seed=1)
        for t, spec in enumerate(three_tenants):
            extracted = composed.tenant_trace(t) - composed.offsets[t]
            np.testing.assert_array_equal(extracted, spec.accesses.astype(np.int64))

    def test_namespaces_are_disjoint(self, three_tenants):
        composed = compose_tenants(three_tenants, seed=2)
        item_sets = [set(composed.tenant_trace(t).tolist()) for t in range(composed.num_tenants)]
        for i in range(len(item_sets)):
            for j in range(i + 1, len(item_sets)):
                assert not item_sets[i] & item_sets[j]

    def test_deterministic_in_seed(self, three_tenants):
        a = compose_tenants(three_tenants, seed=5)
        b = compose_tenants(three_tenants, seed=5)
        c = compose_tenants(three_tenants, seed=6)
        np.testing.assert_array_equal(a.trace.accesses, b.trace.accesses)
        np.testing.assert_array_equal(a.tenant_ids, b.tenant_ids)
        assert not np.array_equal(a.trace.accesses, c.trace.accesses)

    def test_rates_skew_the_interleaving(self):
        """A tenant with 10x the rate lands its accesses much earlier on average."""
        fast = TenantSpec(Trace(np.zeros(500, dtype=np.int64)), name="fast", rate=10.0)
        slow = TenantSpec(Trace(np.zeros(500, dtype=np.int64)), name="slow", rate=1.0)
        composed = compose_tenants([fast, slow], seed=0)
        positions_fast = np.nonzero(composed.tenant_ids == 0)[0]
        positions_slow = np.nonzero(composed.tenant_ids == 1)[0]
        assert positions_fast.mean() < positions_slow.mean() / 2

    def test_tenant_share_sums_to_one(self, three_tenants):
        composed = compose_tenants(three_tenants, seed=0)
        total = sum(composed.tenant_share(t) for t in range(composed.num_tenants))
        assert total == pytest.approx(1.0)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            compose_tenants([])
        with pytest.raises(ValueError):
            compose_tenants([TenantSpec(Trace([]), name="empty")])

    def test_duplicate_names_are_disambiguated(self):
        """Name-keyed downstream reports (e.g. PartitionResult.allocation)
        must never collapse two tenants into one entry."""
        specs = [TenantSpec(Trace([0, 1])), TenantSpec(Trace([0, 1])), TenantSpec(Trace([0]), name="b")]
        composed = compose_tenants(specs, seed=0)
        assert composed.names == ("tenant", "tenant-1", "b")

    def test_rejects_negative_labels(self):
        """Raw-array tenants bypass Trace validation; negative labels would
        silently alias namespaces across tenants."""
        with pytest.raises(ValueError):
            compose_tenants([TenantSpec(np.array([0, 1, 2])), TenantSpec(np.array([-5, 0, -5]))])

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TenantSpec(Trace([1, 2]), rate=0.0)
        with pytest.raises(ValueError):
            TenantSpec(Trace([1, 2]), rate=-1.0)
