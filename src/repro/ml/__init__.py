"""Section VI application layer: permutation-equivariant models and traversal scheduling.

Examples
--------
The Theorem-4 alternating schedule halves long-range reuse of repeated
parameter passes; :func:`compare_schedules` quantifies the win.

>>> from repro.ml import compare_schedules
>>> comparison = compare_schedules(items=16, passes=4)
>>> comparison["sawtooth"].total_reuse < comparison["cyclic"].total_reuse
True
"""

from .attention import TracedAttention
from .equivariance import (
    gelu,
    hidden_unit_permutation_invariant,
    is_permutation_equivariant,
    layer_norm,
    linear,
    relu,
    self_attention,
    softmax,
)
from .gnn import (
    RandomGraph,
    bfs_order,
    degree_order,
    message_passing_trace,
    reverse_cuthill_mckee_order,
)
from .mlp import MLPPassRecord, TracedMLP
from .schedule import ScheduleEvaluation, build_schedule, compare_schedules, evaluate_schedule
from .tensors import TensorLayout, TensorSpec

__all__ = [
    "TracedAttention",
    "gelu",
    "hidden_unit_permutation_invariant",
    "is_permutation_equivariant",
    "layer_norm",
    "linear",
    "relu",
    "self_attention",
    "softmax",
    "RandomGraph",
    "bfs_order",
    "degree_order",
    "message_passing_trace",
    "reverse_cuthill_mckee_order",
    "MLPPassRecord",
    "TracedMLP",
    "ScheduleEvaluation",
    "build_schedule",
    "compare_schedules",
    "evaluate_schedule",
    "TensorLayout",
    "TensorSpec",
]
